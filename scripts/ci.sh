#!/usr/bin/env bash
# Tier-1 CI gate: format, lint, build, test.
#
# Mirrors .github/workflows/ci.yml so the same gate runs locally:
#   ./scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test -q --workspace

echo "CI gate passed."
