#!/usr/bin/env bash
# Tier-1 CI gate: format, lint, build, test.
#
# Mirrors .github/workflows/ci.yml so the same gate runs locally:
#   ./scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test -q --workspace

echo "==> cargo doc -D warnings"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q

echo "==> cargo test --doc"
cargo test -q --workspace --doc

echo "==> fault smoke sweep (loss figure under seeded 1% drop+dup)"
ABR_ITERS=20 ABR_JOBS=2 ABR_SWEEP_JSON=BENCH_sweep.json \
  ABR_FAULTS="seed=7; drop p=0.01; dup p=0.01" \
  cargo run -q --release -p abr_bench --bin loss_figure

echo "==> traced figure run (Chrome JSON + CPU attribution, reconciled)"
ABR_ITERS=20 ABR_TRACE="chrome=TRACE_events.json,report=TRACE_cpu.txt" \
  cargo run -q --release -p abr_bench --bin trace_figure

echo "==> topology smoke matrix (every tree family end-to-end on the DES)"
for topo in binomial knomial4 chain flat; do
  ABR_TOPO="$topo" ABR_ITERS=5 ABR_JOBS=2 \
    cargo run -q --release -p abr_bench --bin fig6 > "FIG6_$topo.txt"
  echo "    ABR_TOPO=$topo ok"
done
# The binomial schedule must replay the paper's mask-loop tree exactly:
# its fig6 series are pinned byte-for-byte against a committed golden.
diff -u crates/bench/golden/fig6_iters5.txt FIG6_binomial.txt \
  || { echo "ABR_TOPO=binomial diverged from the pre-refactor golden"; exit 1; }

echo "==> skew-vs-topology figure"
ABR_ITERS=20 ABR_JOBS=2 \
  cargo run -q --release -p abr_bench --bin topology_figure > FIG_topology.txt

echo "==> scale smoke (fig_scale capped at 1k ranks + before/after throughput)"
ABR_SCALE_MAX=1024 ABR_ITERS=5 ABR_JOBS=2 \
  cargo run -q --release -p abr_bench --bin scale_figure > FIG_scale.txt
grep -q '"schema": "abr-scale-v1"' BENCH_scale.json \
  || { echo "BENCH_scale.json missing or malformed"; exit 1; }

echo "==> fabric smoke (512-rank oversubscribed fat-tree fig_fabric)"
ABR_SCALE_MAX=512 ABR_ITERS=5 ABR_JOBS=2 \
  cargo run -q --release -p abr_bench --bin fabric_figure > FIG_fabric.txt
grep -q '"schema": "abr-fabric-v1"' BENCH_fabric.json \
  || { echo "BENCH_fabric.json missing or malformed"; exit 1; }

echo "==> flat-fabric golden diff (FabricNetwork wrapper must not perturb figures)"
ABR_FABRIC=flat ABR_TOPO=binomial ABR_ITERS=5 ABR_JOBS=2 \
  cargo run -q --release -p abr_bench --bin fig6 > FIG6_fabric_flat.txt
diff -u crates/bench/golden/fig6_iters5.txt FIG6_fabric_flat.txt \
  || { echo "ABR_FABRIC=flat diverged from the pre-fabric golden"; exit 1; }

echo "==> bandwidth smoke (segmented pipeline + dual-root allreduce, capped at 256 KiB)"
ABR_MSG_BYTES=262144 ABR_ITERS=5 ABR_JOBS=2 \
  cargo run -q --release -p abr_bench --bin bandwidth_figure > FIG_bandwidth_smoke.txt
grep -q '"schema": "abr-bw-v1"' BENCH_bw.json \
  || { echo "BENCH_bw.json missing or malformed"; exit 1; }

echo "==> segmentation-off golden diff (ABR_SEGMENTS=1 must not perturb figures)"
ABR_SEGMENTS=1 ABR_TOPO=binomial ABR_ITERS=5 ABR_JOBS=2 \
  cargo run -q --release -p abr_bench --bin fig6 > FIG6_segments_off.txt
diff -u crates/bench/golden/fig6_iters5.txt FIG6_segments_off.txt \
  || { echo "ABR_SEGMENTS=1 diverged from the pre-segmentation golden"; exit 1; }

echo "==> docs link check (intra-repo links in the teaching docs)"
./scripts/check_links.sh

echo "==> parallel executor determinism (same figure under 2 and 8 shards)"
ABR_DES_SHARDS=2 ABR_SCALE_MAX=1024 ABR_ITERS=5 ABR_JOBS=1 \
  ABR_SCALE_JSON=/dev/null \
  cargo run -q --release -p abr_bench --bin scale_figure > FIG_scale_s2.txt
ABR_DES_SHARDS=8 ABR_SCALE_MAX=1024 ABR_ITERS=5 ABR_JOBS=1 \
  ABR_SCALE_JSON=/dev/null \
  cargo run -q --release -p abr_bench --bin scale_figure > FIG_scale_s8.txt
# Compare only the figure tables: the trailing throughput section reports
# wall-clock timings, which legitimately vary run to run.
sed '/^### hot-path/,$d' FIG_scale_s2.txt > FIG_scale_s2.tables
sed '/^### hot-path/,$d' FIG_scale_s8.txt > FIG_scale_s8.tables
diff -u FIG_scale_s2.tables FIG_scale_s8.tables \
  || { echo "scale figure diverged between 2 and 8 shards"; exit 1; }

echo "CI gate passed."
