#!/usr/bin/env bash
# Docs link check: every intra-repo markdown link in the teaching docs
# must point at a file that exists. External (http/https) links and pure
# fragment links are skipped; a `#section` suffix on a file link is
# stripped before the existence check.
#
#   ./scripts/check_links.sh [doc.md ...]
#
# With no arguments, checks the four teaching docs.
set -euo pipefail
cd "$(dirname "$0")/.."

docs=("$@")
if [ ${#docs[@]} -eq 0 ]; then
  docs=(README.md DESIGN.md EXPERIMENTS.md ARCHITECTURE.md)
fi

fail=0
for doc in "${docs[@]}"; do
  if [ ! -f "$doc" ]; then
    echo "MISSING DOC: $doc"
    fail=1
    continue
  fi
  # Markdown inline links: [text](target). Reference-style links are not
  # used in this repo.
  while IFS= read -r target; do
    case "$target" in
    http://* | https://* | "#"*) continue ;;
    esac
    path="${target%%#*}"
    [ -z "$path" ] && continue
    if [ ! -e "$path" ]; then
      echo "DEAD LINK in $doc: ($target)"
      fail=1
    fi
  done < <(grep -o '](\([^)]*\))' "$doc" | sed 's/^](//; s/)$//')
done

if [ "$fail" -ne 0 ]; then
  echo "docs link check FAILED"
  exit 1
fi
echo "docs link check passed: ${docs[*]}"
