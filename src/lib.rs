//! `app-bypass-reduction` — umbrella crate re-exporting the full stack.
//!
//! See the README for a tour. The layers, bottom-up:
//!
//! * [`abr_des`] — deterministic discrete-event simulation kernel,
//! * [`abr_gm`] — GM/Myrinet-like messaging substrate,
//! * [`abr_mpr`] — MPICH-like message-passing runtime (the `nab` baseline),
//! * [`abr_core`] — application-bypass reduction (the paper's contribution),
//! * [`abr_cluster`] — cluster harness, drivers and microbenchmarks.

pub use abr_cluster as cluster;
pub use abr_core as abred;
pub use abr_des as des;
pub use abr_gm as gm;
pub use abr_mpr as mpr;
