//! Offline shim for the [`bytes`](https://docs.rs/bytes) crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the tiny slice of the `bytes` API it actually uses: an
//! immutable, cheaply clonable byte buffer. `Bytes` here is an
//! `Arc<[u8]>`; clones are reference-count bumps, exactly the property the
//! protocol engines rely on when fanning a payload out to several children.

#![warn(missing_docs)]

use std::borrow::Borrow;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply clonable, immutable contiguous slice of memory.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer (no allocation).
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(&[][..]),
        }
    }

    /// Copy `slice` into a new buffer.
    pub fn copy_from_slice(slice: &[u8]) -> Self {
        Bytes {
            data: Arc::from(slice),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copy the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }

    /// A new `Bytes` covering `range` of this buffer (copies; the real
    /// crate shares, but no caller here is on a hot path with `slice`).
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        Bytes {
            data: Arc::from(&self.data[range]),
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: v.into() }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes { data: Arc::from(s) }
    }
}

impl<const N: usize> From<&'static [u8; N]> for Bytes {
    fn from(s: &'static [u8; N]) -> Self {
        Bytes {
            data: Arc::from(&s[..]),
        }
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(b: Box<[u8]>) -> Self {
        Bytes { data: b.into() }
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.data[..] == other.data[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.data[..] == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.data[..] == other[..]
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == other.data[..]
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.data.hash(state)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_storage() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(Arc::strong_count(&a.data), 2);
    }

    #[test]
    fn deref_and_eq() {
        let a = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(a.len(), 3);
        assert_eq!(&a[1..], &[2, 3][..]);
        assert_eq!(a, vec![1u8, 2, 3]);
        assert!(Bytes::new().is_empty());
    }
}
