//! Offline shim for `serde`: only the derive-macro names are provided, and
//! they expand to nothing (see the `serde_derive` shim). The annotated
//! types keep their `#[derive(Serialize, Deserialize)]` attributes so the
//! real serde can be swapped back in when the build environment has
//! registry access.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};
