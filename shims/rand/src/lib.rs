//! Offline shim for the [`rand`](https://docs.rs/rand) crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the slice of the `rand` 0.8 API it uses: `SmallRng`
//! seeded from a `u64`, plus `Rng::{gen, gen_range, gen_bool}`. The
//! generator is xoshiro256++ with SplitMix64 seed expansion — the same
//! algorithm `rand`'s 64-bit `SmallRng` uses — and integer ranges use
//! rejection sampling, so draws are exactly uniform.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level 64-bit generator interface.
pub trait RngCore {
    /// The next raw 64-bit draw.
    fn next_u64(&mut self) -> u64;
}

/// Seeding interface (only the `u64` entry point is provided).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types drawable uniformly from a generator via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform draw in `[0, bound)` by rejection (no modulo bias).
fn below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Rejection zone: the largest multiple of `bound` that fits in u64.
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

int_range_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + f64::draw(rng) * (self.end - self.start)
    }
}

/// The user-facing generator interface.
pub trait Rng: RngCore {
    /// Draw a value of type `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Draw uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        f64::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// SplitMix64 — used to expand a 64-bit seed into generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Non-cryptographic generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, and statistically strong; the same
    /// algorithm `rand` 0.8 uses for `SmallRng` on 64-bit targets.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut st = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut st);
            }
            // All-zero state would be a fixed point; SplitMix64 cannot
            // produce it from any seed, but be defensive anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = r.gen_range(3u64..17);
            assert!((3..17).contains(&x));
            let y = r.gen_range(5u64..=9);
            assert!((5..=9).contains(&y));
            let f = r.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SmallRng::seed_from_u64(2);
        for _ in 0..100 {
            assert!(r.gen_bool(1.0));
            assert!(!r.gen_bool(0.0));
        }
    }

    #[test]
    fn roughly_uniform() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[r.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((9_300..10_700).contains(&c), "non-uniform: {counts:?}");
        }
    }
}
