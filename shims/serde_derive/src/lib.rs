//! Offline shim for `serde_derive`: `#[derive(Serialize, Deserialize)]`
//! expand to nothing. Nothing in this workspace serializes through serde's
//! trait machinery (the one JSON artifact, `BENCH_sweep.json`, is written by
//! hand); the derives on the model types exist so downstream users can swap
//! the real serde back in without touching the annotated code.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
