//! Offline shim for the [`criterion`](https://docs.rs/criterion) crate.
//!
//! The build environment has no network access to crates.io, so this crate
//! provides a compatible subset of the criterion API backed by a simple
//! wall-clock sampler: per benchmark it calibrates an iteration batch to a
//! few milliseconds, takes a fixed number of samples, and reports
//! min/median/max ns-per-iteration. Numbers are comparable within a
//! machine and run, which is all the before/after hot-path tracking needs.
//!
//! Environment knobs: `CRITERION_SAMPLES` (default 15) and
//! `CRITERION_BATCH_MS` (default 4) trade precision for runtime.

#![warn(missing_docs)]

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Samples per benchmark (`CRITERION_SAMPLES`, default 15).
fn samples_from_env(configured: Option<usize>) -> usize {
    std::env::var("CRITERION_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .or(configured)
        .unwrap_or(15)
        .max(3)
}

/// Target per-sample batch duration (`CRITERION_BATCH_MS`, default 4).
fn batch_target() -> Duration {
    let ms = std::env::var("CRITERION_BATCH_MS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(4u64)
        .max(1);
    Duration::from_millis(ms)
}

/// Passed to the closure given to `bench_function`; call [`Bencher::iter`].
pub struct Bencher {
    /// Measured ns/iter samples, filled by `iter`.
    samples_ns: Vec<f64>,
    samples: usize,
}

impl Bencher {
    /// Measure `f`, running it in calibrated batches.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup + calibration: grow the batch until it costs ~target.
        let target = batch_target();
        let mut batch = 1u64;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let dt = t0.elapsed();
            if dt >= target {
                break;
            }
            // At least double; scale toward the target if we have signal.
            let factor = if dt.as_nanos() == 0 {
                8
            } else {
                ((target.as_nanos() / dt.as_nanos()) as u64 + 1).clamp(2, 64)
            };
            batch = batch.saturating_mul(factor);
        }
        self.samples_ns.clear();
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let dt = t0.elapsed();
            self.samples_ns.push(dt.as_nanos() as f64 / batch as f64);
        }
    }
}

fn report(name: &str, samples_ns: &mut [f64]) {
    if samples_ns.is_empty() {
        println!("{name:<50} (no samples — did the closure call b.iter?)");
        return;
    }
    samples_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let min = samples_ns[0];
    let med = samples_ns[samples_ns.len() / 2];
    let max = samples_ns[samples_ns.len() - 1];
    let fmt = |ns: f64| -> String {
        if ns >= 1e9 {
            format!("{:.4} s", ns / 1e9)
        } else if ns >= 1e6 {
            format!("{:.4} ms", ns / 1e6)
        } else if ns >= 1e3 {
            format!("{:.4} µs", ns / 1e3)
        } else {
            format!("{ns:.2} ns")
        }
    };
    println!(
        "{name:<50} time:   [{} {} {}]",
        fmt(min),
        fmt(med),
        fmt(max)
    );
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let name = name.into();
        let mut b = Bencher {
            samples_ns: Vec::new(),
            samples: samples_from_env(None),
        };
        f(&mut b);
        report(&name, &mut b.samples_ns);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            prefix: name.into(),
            sample_size: None,
        }
    }
}

/// A named id for a parameterized benchmark.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// A group of related benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    prefix: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.min(50));
        self
    }

    /// Set the measurement time (accepted for API compatibility; the shim
    /// sizes batches from `CRITERION_BATCH_MS` instead).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    fn run(&mut self, name: String, f: &mut dyn FnMut(&mut Bencher)) {
        let mut b = Bencher {
            samples_ns: Vec::new(),
            samples: samples_from_env(self.sample_size),
        };
        f(&mut b);
        report(&format!("{}/{}", self.prefix, name), &mut b.samples_ns);
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        self.run(name.into(), &mut f);
        self
    }

    /// Run one parameterized benchmark in the group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.run(id.id, &mut |b| f(b, input));
        self
    }

    /// Finish the group.
    pub fn finish(self) {}
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_produces_samples() {
        std::env::set_var("CRITERION_BATCH_MS", "1");
        std::env::set_var("CRITERION_SAMPLES", "3");
        let mut c = Criterion::default();
        c.bench_function("smoke/add", |b| {
            b.iter(|| black_box(2u64) + black_box(3u64))
        });
        let mut g = c.benchmark_group("grp");
        g.sample_size(3);
        g.bench_with_input(BenchmarkId::new("mul", 7), &7u64, |b, &n| {
            b.iter(|| black_box(n) * 2)
        });
        g.finish();
    }
}
