//! Offline shim for the [`proptest`](https://docs.rs/proptest) crate.
//!
//! The build environment has no network access to crates.io, so this crate
//! reimplements the slice of the proptest API the workspace's property
//! tests use: the `proptest!` macro, `prop_assert*`/`prop_assume`,
//! `prop_oneof!`, `Just`, `any::<T>()`, range strategies, `.prop_map`,
//! `prop::collection::vec`, and `prop::sample::Index`.
//!
//! Semantics: each test runs `ProptestConfig::cases` generated cases from a
//! seed derived deterministically from the test name (override the case
//! count with the `PROPTEST_CASES` environment variable). There is no
//! shrinking — a failing case panics with the generated inputs printed, so
//! a failure is always reproducible by re-running the test.

#![warn(missing_docs)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------

/// The deterministic generator behind a test run (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Create a generator from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`; 0 when `bound` is 0.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % bound;
            }
        }
    }
}

// ---------------------------------------------------------------------
// Config and case results
// ---------------------------------------------------------------------

/// Per-test configuration (only the case count is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 128 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed — the whole test fails.
    Fail(String),
    /// `prop_assume!` rejected the inputs — the case is retried.
    Reject(String),
}

impl TestCaseError {
    /// An assertion failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// An input rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Result of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Drive a property test: run `config.cases` cases, retrying rejected
/// inputs (bounded), panicking on the first failing case with the
/// generated inputs included in the message. Called by `proptest!`.
pub fn run_proptest(
    config: &ProptestConfig,
    name: &str,
    mut case: impl FnMut(&mut TestRng) -> (String, TestCaseResult),
) {
    let cases = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(config.cases);
    // Deterministic per-test seed: FNV-1a over the test name.
    let mut seed = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        seed ^= b as u64;
        seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let mut rng = TestRng::new(seed);
    let max_rejects = cases as u64 * 16 + 1024;
    let mut rejects = 0u64;
    let mut ran = 0u32;
    while ran < cases {
        let (inputs, outcome) = case(&mut rng);
        match outcome {
            Ok(()) => ran += 1,
            Err(TestCaseError::Reject(_)) => {
                rejects += 1;
                assert!(
                    rejects <= max_rejects,
                    "proptest '{name}': too many prop_assume! rejections ({rejects})"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest '{name}' failed at case {ran}: {msg}\n  inputs: {inputs}");
            }
        }
    }
}

// ---------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------

/// A generator of values for one test argument.
pub trait Strategy {
    /// The generated type.
    type Value: fmt::Debug;

    /// Generate one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U: fmt::Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erase for heterogeneous collections (`prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            gen: Box::new(move |rng| self.gen_value(rng)),
        }
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V> {
    #[allow(clippy::type_complexity)]
    gen: Box<dyn Fn(&mut TestRng) -> V>,
}

impl<V: fmt::Debug> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn gen_value(&self, rng: &mut TestRng) -> V {
        (self.gen)(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: fmt::Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn gen_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.gen_value(rng))
    }
}

/// Uniform choice among boxed strategies (`prop_oneof!`).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Choose uniformly among `options`.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<V: fmt::Debug> Strategy for Union<V> {
    type Value = V;
    fn gen_value(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].gen_value(rng)
    }
}

macro_rules! int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}

int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn gen_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! tuple_strategies {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.gen_value(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Types with a canonical "anything" strategy ([`any`]).
pub trait Arbitrary: fmt::Debug + Sized {
    /// Generate an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy producing arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

/// `prop::…` namespace mirroring the real crate's module layout.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::fmt;
        use std::ops::Range;

        /// Strategy for `Vec<T>` with a length drawn from `size`.
        pub struct VecStrategy<S> {
            elem: S,
            size: Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S>
        where
            S::Value: fmt::Debug,
        {
            type Value = Vec<S::Value>;
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                let span = (self.size.end - self.size.start) as u64;
                let len = self.size.start + rng.below(span.max(1)) as usize;
                (0..len).map(|_| self.elem.gen_value(rng)).collect()
            }
        }

        /// A `Vec` of values from `elem`, with length in `size`.
        pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
            assert!(size.start < size.end, "empty vec size range");
            VecStrategy { elem, size }
        }
    }

    /// Sampling helpers.
    pub mod sample {
        use super::super::{Arbitrary, TestRng};

        /// An index into a collection whose length is only known at use
        /// time (`Index::index(len)` maps it into `0..len`).
        #[derive(Debug, Clone, Copy)]
        pub struct Index(u64);

        impl Index {
            /// Map into `0..len`.
            pub fn index(&self, len: usize) -> usize {
                assert!(len > 0, "Index::index on empty collection");
                (self.0 % len as u64) as usize
            }
        }

        impl Arbitrary for Index {
            fn arbitrary(rng: &mut TestRng) -> Self {
                Index(rng.next_u64())
            }
        }
    }
}

// ---------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------

/// Assert inside a property test; failure reports the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {} ({})\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), format!($($fmt)+), l, r
        );
    }};
}

/// Reject the current generated inputs (the case is re-drawn).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(concat!(
                "assumption failed: ",
                stringify!($cond)
            )));
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Define property tests: each `fn name(arg in strategy, …) { body }`
/// becomes a `#[test]` running many generated cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]; do not call directly.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $cfg;
                $crate::run_proptest(&config, stringify!($name), |prop_rng| {
                    $(let $arg = $crate::Strategy::gen_value(&{ $strat }, prop_rng);)+
                    let inputs = {
                        let mut s = ::std::string::String::new();
                        $(
                            s.push_str(stringify!($arg));
                            s.push_str(" = ");
                            s.push_str(&format!("{:?}", &$arg));
                            s.push_str("; ");
                        )+
                        s
                    };
                    let outcome: $crate::TestCaseResult = (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    (inputs, outcome)
                });
            }
        )*
    };
}

/// One-stop imports mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3u64..10, y in 0i32..=5, b in any::<bool>()) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0..=5).contains(&y));
            let _ = b;
        }

        #[test]
        fn vec_lengths(v in prop::collection::vec(0u8..4, 2..7)) {
            prop_assert!(v.len() >= 2 && v.len() < 7);
            prop_assert!(v.iter().all(|&e| e < 4));
        }

        #[test]
        fn oneof_and_map(x in prop_oneof![Just(0u64), (5u64..8).prop_map(|v| v * 10)]) {
            prop_assert!(x == 0 || (50..80).contains(&x), "got {}", x);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_case_reports_inputs() {
        crate::run_proptest(&ProptestConfig::with_cases(8), "demo", |rng| {
            let x = rng.below(100);
            let res = if x < 1000 {
                Err(TestCaseError::fail("always fails"))
            } else {
                Ok(())
            };
            (format!("x = {x}"), res)
        });
    }
}
