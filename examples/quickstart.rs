//! Quickstart: an 8-rank in-process cluster performing application-bypass
//! reductions on real threads.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use abr_cluster::live::run_live;
use abr_cluster::node::ClusterSpec;
use abr_core::AbConfig;
use abr_mpr::op::ReduceOp;
use abr_mpr::types::{bytes_to_f64s, f64s_to_bytes, Datatype};

fn main() {
    let spec = ClusterSpec::homogeneous_1000(8);

    // Every rank contributes a small vector; rank 0 collects the sum.
    let results = run_live(&spec, AbConfig::default(), |ctx| {
        let mine = vec![ctx.rank() as f64, 1.0, (ctx.rank() * ctx.rank()) as f64];
        let out = ctx
            .reduce(0, ReduceOp::Sum, Datatype::F64, &f64s_to_bytes(&mine))
            .expect("reduce failed");
        ctx.barrier();
        (out, ctx.stats())
    });

    let (root_result, _) = &results[0];
    let sum = bytes_to_f64s(root_result.as_ref().expect("root holds the result"));
    println!("reduced vector at root: {sum:?}");
    assert_eq!(sum[0], (0..8).map(f64::from).sum::<f64>());
    assert_eq!(sum[1], 8.0);

    println!("\nper-rank application-bypass activity:");
    println!("rank  ab_reductions  fallbacks  zero_copy  signals");
    for (r, (_, stats)) in results.iter().enumerate() {
        println!(
            "{r:>4}  {:>13}  {:>9}  {:>9}  {:>7}",
            stats.ab.ab_reductions,
            stats.ab.fallbacks(),
            stats.ab.zero_copy_children,
            stats.ab.signals_handled,
        );
    }
    println!("\n(internal tree nodes 2, 4, 6 ran bypassed; the root and the");
    println!(" leaves fell back to the stock blocking path, as in the paper)");
}
