//! Distributed power iteration over the live runtime — a real numerical
//! kernel using the wider collective set: `allgather` to assemble the
//! iterate, `allreduce` for norms and convergence, and the bypassed reduce
//! for the final residual check.
//!
//! Finds the dominant eigenvalue of a row-distributed symmetric matrix.
//!
//! ```text
//! cargo run --release --example power_iteration
//! ```

use abr_cluster::live::run_live;
use abr_cluster::node::ClusterSpec;
use abr_core::AbConfig;
use abr_mpr::op::ReduceOp;
use abr_mpr::types::{bytes_to_f64s, f64s_to_bytes, Datatype};

const RANKS: u32 = 8;
const ROWS_PER_RANK: usize = 4;
const DIM: usize = RANKS as usize * ROWS_PER_RANK;
const MAX_ITERS: usize = 60;
const TOL: f64 = 1e-10;

/// The (i, j) entry of a fixed symmetric test matrix: strong, slightly
/// graded diagonal plus smooth off-diagonal decay.
fn entry(i: usize, j: usize) -> f64 {
    let base = 1.0 / (1.0 + (i as f64 - j as f64).abs());
    if i == j {
        10.0 + i as f64 * 0.1 + base
    } else {
        base
    }
}

fn main() {
    let spec = ClusterSpec::homogeneous_1000(RANKS);
    let results = run_live(&spec, AbConfig::default(), |ctx| {
        let rank = ctx.rank() as usize;
        let row0 = rank * ROWS_PER_RANK;
        let mut x_local = vec![1.0f64; ROWS_PER_RANK];
        let mut lambda = 0.0f64;
        let mut iterations = 0;
        for it in 0..MAX_ITERS {
            iterations = it + 1;
            // Assemble the full iterate on every rank.
            let full = bytes_to_f64s(&ctx.allgather(&f64s_to_bytes(&x_local)).unwrap());
            debug_assert_eq!(full.len(), DIM);
            // Local rows of y = A x.
            let y_local: Vec<f64> = (0..ROWS_PER_RANK)
                .map(|r| (0..DIM).map(|j| entry(row0 + r, j) * full[j]).sum())
                .collect();
            // lambda = x^T y and ||y||^2, both via allreduce.
            let partial = [
                x_local
                    .iter()
                    .zip(&y_local)
                    .map(|(a, b)| a * b)
                    .sum::<f64>(),
                y_local.iter().map(|v| v * v).sum::<f64>(),
            ];
            let sums = bytes_to_f64s(
                &ctx.allreduce(ReduceOp::Sum, Datatype::F64, &f64s_to_bytes(&partial))
                    .unwrap(),
            );
            let new_lambda = sums[0];
            let norm = sums[1].sqrt();
            for (x, y) in x_local.iter_mut().zip(&y_local) {
                *x = y / norm;
            }
            let delta = (new_lambda - lambda).abs();
            lambda = new_lambda;
            if delta < TOL {
                break;
            }
        }
        ctx.barrier();
        (lambda, iterations, ctx.stats())
    });

    let (lambda, iterations, _) = &results[0];
    println!("dominant eigenvalue ≈ {lambda:.9} (converged in {iterations} iterations)");
    // Every rank agrees.
    for (r, (l, _, _)) in results.iter().enumerate() {
        assert!((l - lambda).abs() < 1e-9, "rank {r} disagrees: {l}");
    }
    // Sanity: by Gershgorin, the dominant eigenvalue is near the largest
    // diagonal entry (~13.1 + row sums); check a generous bracket.
    assert!(
        (12.0..20.0).contains(lambda),
        "eigenvalue {lambda} outside plausible range"
    );
    // And verify the residual ||Ax - lambda x|| distributed-ly.
    println!(
        "collectives used: allgather ({} ranks x {} iters), allreduce, barrier",
        RANKS, iterations
    );
}
