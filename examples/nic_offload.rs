//! The §VII NIC-based reduction extension, head to head with plain
//! application bypass and the stock baseline on the simulated cluster:
//! host CPU, NIC time, signals, and the message-size latency crossover
//! from "NIC-Based Reduction in Myrinet Clusters: Is It Beneficial?"
//! (the paper's ref. [11]).
//!
//! ```text
//! cargo run --release --example nic_offload [nodes] [iters]
//! ```

use abr_cluster::microbench::{run_cpu_util, run_latency, CpuUtilConfig, LatencyConfig, Mode};
use abr_cluster::node::ClusterSpec;
use abr_cluster::report::{f2, Table};
use abr_core::DelayPolicy;

fn main() {
    let mut args = std::env::args().skip(1);
    let nodes: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(16);
    let iters: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(150);
    let modes = [
        Mode::Baseline,
        Mode::Bypass(DelayPolicy::None),
        Mode::NicBypass,
    ];

    let mut cpu = Table::new(
        format!("Host CPU per reduction ({nodes} nodes, 500us max skew, 4 elems)"),
        &["mode", "host_cpu_us", "nic_us_total", "signals"],
    );
    for mode in modes {
        let r = run_cpu_util(&CpuUtilConfig {
            elems: 4,
            max_skew_us: 500,
            iters,
            mode,
            ..CpuUtilConfig::new(ClusterSpec::heterogeneous(nodes), mode)
        });
        cpu.row(vec![
            mode.label().to_string(),
            f2(r.mean_cpu_us),
            f2(r.nic_us_total),
            r.signals.to_string(),
        ]);
    }
    cpu.print();

    println!();
    let mut lat = Table::new(
        format!("Latency vs message size ({nodes} nodes, no skew)"),
        &["elems", "nab", "ab", "ab-nic", "nic wins?"],
    );
    for &elems in &[1usize, 4, 16, 64, 256] {
        let cell = |mode| {
            run_latency(&LatencyConfig {
                elems,
                iters,
                mode,
                ..LatencyConfig::new(ClusterSpec::heterogeneous(nodes), mode)
            })
            .mean_latency_us
        };
        let (nab, ab, nic) = (
            cell(Mode::Baseline),
            cell(Mode::Bypass(DelayPolicy::None)),
            cell(Mode::NicBypass),
        );
        lat.row(vec![
            elems.to_string(),
            f2(nab),
            f2(ab),
            f2(nic),
            if nic < ab { "yes".into() } else { "no".into() },
        ]);
    }
    lat.print();
    println!("\nthe LANai is ~9x slower per element than the host CPU, so NIC");
    println!("offload buys signal-free small reductions and pays on large ones —");
    println!("the trade-off the paper's ref. [11] set out to measure.");
}
