//! A deliberately *imbalanced* 1-D heat-diffusion stencil whose per-sweep
//! convergence check is a global reduction — the workload class the paper's
//! introduction motivates: asymmetric work assignments skew the processes,
//! and every reduction then punishes the balanced ranks.
//!
//! Each rank owns a slice of the rod; odd ranks get twice the cells (and
//! thus roughly twice the compute per sweep). After every sweep the ranks
//! reduce the global residual to rank 0, which broadcasts "converged or
//! not". Run with bypass on (default) or off (`--baseline`) and compare the
//! reported call times of the early-arriving ranks.
//!
//! ```text
//! cargo run --release --example skewed_stencil [--baseline]
//! ```

use abr_cluster::live::run_live;
use abr_cluster::node::ClusterSpec;
use abr_core::AbConfig;
use abr_mpr::op::ReduceOp;
use abr_mpr::types::{bytes_to_f64s, f64s_to_bytes, Datatype, TagSel};
use bytes::Bytes;
use std::time::{Duration, Instant};

const RANKS: u32 = 8;
const BASE_CELLS: usize = 64;
const SWEEPS: usize = 40;
const HALO_TAG: i32 = 7;

fn main() {
    let baseline = std::env::args().any(|a| a == "--baseline");
    let ab = if baseline {
        AbConfig::disabled()
    } else {
        AbConfig::default()
    };
    println!(
        "running {} sweeps of an imbalanced stencil over {RANKS} ranks ({})",
        SWEEPS,
        if baseline {
            "baseline reduce"
        } else {
            "application-bypass reduce"
        },
    );

    let spec = ClusterSpec::homogeneous_1000(RANKS);
    let results = run_live(&spec, ab, |ctx| {
        let rank = ctx.rank();
        // Odd ranks own twice the cells: structural imbalance.
        let cells = if rank % 2 == 1 {
            2 * BASE_CELLS
        } else {
            BASE_CELLS
        };
        let mut u = vec![0.0f64; cells + 2]; // plus halo cells
                                             // Dirichlet boundary: hot left end of the rod.
        if rank == 0 {
            u[0] = 100.0;
        }
        let mut reduce_time = Duration::ZERO;
        let mut sweeps_done = 0usize;
        for _sweep in 0..SWEEPS {
            // Halo exchange with neighbours.
            if rank > 0 {
                ctx.send(rank - 1, HALO_TAG, Bytes::from(u[1].to_le_bytes().to_vec()))
                    .unwrap();
            }
            if rank < RANKS - 1 {
                ctx.send(
                    rank + 1,
                    HALO_TAG,
                    Bytes::from(u[cells].to_le_bytes().to_vec()),
                )
                .unwrap();
            }
            if rank > 0 {
                let d = ctx.recv(Some(rank - 1), TagSel::Is(HALO_TAG), 8).unwrap();
                u[0] = f64::from_le_bytes(d.as_ref().try_into().unwrap());
            }
            if rank < RANKS - 1 {
                let d = ctx.recv(Some(rank + 1), TagSel::Is(HALO_TAG), 8).unwrap();
                u[cells + 1] = f64::from_le_bytes(d.as_ref().try_into().unwrap());
            }
            // Jacobi sweep; the imbalance is the extra arithmetic on the
            // bigger slices (plus a proportional artificial delay so the
            // skew is visible at demo scale).
            let mut next = u.clone();
            let mut local_residual = 0.0f64;
            for i in 1..=cells {
                next[i] = 0.5 * (u[i - 1] + u[i + 1]);
                local_residual += (next[i] - u[i]).abs();
            }
            u = next;
            std::thread::sleep(Duration::from_micros(50 * cells as u64 / BASE_CELLS as u64));
            // Global residual to rank 0 — the skew-sensitive collective.
            let t0 = Instant::now();
            let global = ctx
                .reduce(
                    0,
                    ReduceOp::Sum,
                    Datatype::F64,
                    &f64s_to_bytes(&[local_residual]),
                )
                .unwrap();
            reduce_time += t0.elapsed();
            sweeps_done += 1;
            // Rank 0 decides and broadcasts; everyone obeys.
            let verdict = if rank == 0 {
                let r = bytes_to_f64s(&global.unwrap())[0];
                Some(Bytes::from(vec![u8::from(r < 1e-6)]))
            } else {
                None
            };
            let flag = ctx.bcast(0, verdict, 1).unwrap();
            if flag[0] == 1 {
                break;
            }
        }
        ctx.barrier();
        (rank, sweeps_done, reduce_time, ctx.stats(), u[1])
    });

    println!("\nrank  cells  sweeps  time-in-reduce  ab_reductions  async_children");
    for (rank, sweeps, reduce_time, stats, _) in &results {
        let cells = if rank % 2 == 1 {
            2 * BASE_CELLS
        } else {
            BASE_CELLS
        };
        println!(
            "{rank:>4}  {cells:>5}  {sweeps:>6}  {:>12.2?}  {:>13}  {:>14}",
            reduce_time, stats.ab.ab_reductions, stats.ab.async_children,
        );
    }
    let total_async: u64 = results.iter().map(|r| r.3.ab.async_children).sum();
    if baseline {
        assert_eq!(total_async, 0);
        println!("\nbaseline: every parent blocked inside MPI_Reduce for its slow children.");
    } else {
        println!(
            "\nbypass: {total_async} child contributions were folded in asynchronously \
             while their parents kept computing."
        );
    }
}
