//! Drive the discrete-event microbenchmark directly: a miniature Fig. 6
//! sweep over any cluster size, printed as a table. Useful for exploring
//! the design space beyond the paper's parameters.
//!
//! ```text
//! cargo run --release --example skew_sweep [nodes] [elems] [iters]
//! ```

use abr_cluster::microbench::{run_cpu_util, CpuUtilConfig, Mode};
use abr_cluster::node::ClusterSpec;
use abr_cluster::report::{f2, ratio, Table};
use abr_core::DelayPolicy;

fn main() {
    let mut args = std::env::args().skip(1);
    let nodes: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(16);
    let elems: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);
    let iters: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(200);

    println!("skew sweep: {nodes} heterogeneous nodes, {elems}-element doubles, {iters} iterations/cell\n");
    let mut table = Table::new(
        format!("CPU utilization vs skew ({nodes} nodes, {elems} elems)"),
        &[
            "skew_us",
            "nab_us",
            "ab_us",
            "ab+delay_us",
            "foi",
            "ab_p95",
            "nab_p95",
            "signals_ab",
        ],
    );
    for skew in [0u64, 100, 250, 500, 750, 1000, 1500, 2000] {
        let base = CpuUtilConfig {
            elems,
            max_skew_us: skew,
            iters,
            ..CpuUtilConfig::new(ClusterSpec::heterogeneous(nodes), Mode::Baseline)
        };
        let nab = run_cpu_util(&base);
        let ab = run_cpu_util(&CpuUtilConfig {
            mode: Mode::Bypass(DelayPolicy::None),
            ..base.clone()
        });
        let ab_delay = run_cpu_util(&CpuUtilConfig {
            mode: Mode::Bypass(DelayPolicy::PerProcess {
                us_per_process: 2.0,
            }),
            ..base.clone()
        });
        table.row(vec![
            skew.to_string(),
            f2(nab.mean_cpu_us),
            f2(ab.mean_cpu_us),
            f2(ab_delay.mean_cpu_us),
            ratio(nab.mean_cpu_us, ab.mean_cpu_us),
            f2(ab.p95_us),
            f2(nab.p95_us),
            ab.signals.to_string(),
        ]);
    }
    table.print();
    println!("\nfoi = nab/ab factor of improvement; the paper reports up to 5.1 at 32 nodes.");
}
