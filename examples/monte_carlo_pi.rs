//! Split-phase reduction overlap: a Monte-Carlo π estimator where every
//! rank keeps sampling *while* the previous round's hit-count reduction
//! completes in the background — the §II/§VII extension in action, with the
//! root bypassed too.
//!
//! ```text
//! cargo run --release --example monte_carlo_pi
//! ```

use abr_cluster::live::run_live;
use abr_cluster::node::ClusterSpec;
use abr_core::AbConfig;
use abr_mpr::op::ReduceOp;
use abr_mpr::types::{bytes_to_i32s, i32s_to_bytes, Datatype};

const RANKS: u32 = 8;
const ROUNDS: usize = 6;
const SAMPLES_PER_ROUND: u32 = 200_000;

/// A tiny deterministic PRNG so the example needs no CLI seeds.
fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

fn sample_round(rank: u32, round: usize) -> i32 {
    let mut state = 0x9E3779B97F4A7C15u64 ^ ((rank as u64) << 32) ^ round as u64;
    let mut hits = 0i32;
    for _ in 0..SAMPLES_PER_ROUND {
        let x = (xorshift(&mut state) >> 11) as f64 / (1u64 << 53) as f64;
        let y = (xorshift(&mut state) >> 11) as f64 / (1u64 << 53) as f64;
        if x * x + y * y <= 1.0 {
            hits += 1;
        }
    }
    hits
}

fn main() {
    let spec = ClusterSpec::homogeneous_1000(RANKS);
    let estimates = run_live(&spec, AbConfig::default(), |ctx| {
        let mut pi_per_round = Vec::new();
        // Pipeline: sample round k+1 while round k's reduction is in
        // flight. The split handle is pinned to the communicator's
        // collective order, so every rank must post rounds in order.
        let mut in_flight = None;
        for round in 0..=ROUNDS {
            let finished = in_flight
                .take()
                .map(|h: abr_cluster::live::SplitReduce| h.wait().expect("reduce failed"));
            if round < ROUNDS {
                let hits = sample_round(ctx.rank(), round);
                in_flight = Some(ctx.reduce_split(
                    0,
                    ReduceOp::Sum,
                    Datatype::I32,
                    &i32s_to_bytes(&[hits]),
                ));
            }
            if let Some(Some(total)) = finished {
                // Only the root sees the data.
                let total_hits = bytes_to_i32s(&total)[0] as f64;
                let total_samples = (RANKS * SAMPLES_PER_ROUND) as f64;
                pi_per_round.push(4.0 * total_hits / total_samples);
            }
        }
        ctx.barrier();
        (pi_per_round, ctx.stats())
    });

    let (pis, root_stats) = &estimates[0];
    println!("per-round π estimates at the root (sampling overlapped the reductions):");
    for (k, pi) in pis.iter().enumerate() {
        println!(
            "  round {k}: π ≈ {pi:.5}  (error {:+.5})",
            pi - std::f64::consts::PI
        );
    }
    assert_eq!(pis.len(), ROUNDS);
    let worst = pis
        .iter()
        .map(|p| (p - std::f64::consts::PI).abs())
        .fold(0.0f64, f64::max);
    assert!(worst < 0.02, "estimates implausibly bad: {pis:?}");
    println!(
        "\nroot split-phase reductions: {}, handled via signals: {}",
        root_stats.ab.split_phase_started, root_stats.ab.signals_handled
    );
}
