//! Reproduce the paper's Fig. 2 as ASCII time lines from an actual
//! simulation: four processes, node 3 late, with and without application
//! bypass. Gray arrows in the paper = CPU occupied by the reduction; here:
//!
//! ```text
//!   #  application busy work      P  polling inside MPI_Reduce
//!   p  protocol processing        S  signal delivery / async handler
//!   .  CPU free for the application
//! ```
//!
//! In (a), node 2 — the internal node — burns a long `P` stretch waiting
//! for late node 3. In (b) it returns immediately and the same span shows
//! `.`/`#`: time the application got back, with a small `S` blip when node
//! 3's message finally arrives.
//!
//! ```text
//! cargo run --release --example fig2_timeline
//! ```

use abr_cluster::driver::TimelineEvent;
use abr_cluster::node::ClusterSpec;
use abr_cluster::program::{Program, Step, StepCtx};
use abr_cluster::DesDriver;
use abr_core::{AbConfig, AbEngine};
use abr_des::meter::CpuCategory;
use abr_des::SimDuration;
use abr_mpr::engine::EngineConfig;
use abr_mpr::op::ReduceOp;
use abr_mpr::types::{f64s_to_bytes, Datatype};

const LATE_NODE: u32 = 3;
const SKEW_US: u64 = 250;

struct Fig2Program {
    rank: u32,
    phase: u8,
}

impl Program for Fig2Program {
    fn next(&mut self, _ctx: &mut StepCtx) -> Step {
        self.phase += 1;
        match self.phase {
            // Node 3 starts late (the paper's skewed process).
            1 => Step::Busy(SimDuration::from_us(if self.rank == LATE_NODE {
                SKEW_US
            } else {
                5
            })),
            2 => Step::Reduce {
                root: 0,
                op: ReduceOp::Sum,
                dtype: Datatype::F64,
                data: f64s_to_bytes(&[self.rank as f64; 4]),
            },
            // "Other processing" after the call returns.
            3 => Step::Busy(SimDuration::from_us(120)),
            _ => Step::Done,
        }
    }
}

fn run(ab: bool) -> (Vec<TimelineEvent>, u64) {
    let spec = ClusterSpec::homogeneous_1000(4);
    let programs: Vec<Box<dyn Program>> = (0..4)
        .map(|rank| Box::new(Fig2Program { rank, phase: 0 }) as Box<dyn Program>)
        .collect();
    let cfg = if ab {
        AbConfig::default()
    } else {
        AbConfig::disabled()
    };
    let mut d = DesDriver::new(
        &spec,
        |r, ec: EngineConfig| AbEngine::new(r, 4, ec, cfg.clone()),
        programs,
    )
    .with_timeline();
    d.run();
    let end = d.now().as_nanos();
    (d.timeline().unwrap_or(&[]).to_vec(), end)
}

fn render(events: &[TimelineEvent], end_ns: u64, title: &str) {
    const COLS: usize = 96;
    println!("{title}");
    let bucket = (end_ns.max(1)).div_ceil(COLS as u64);
    for node in 0..4usize {
        // Priority per bucket: Signal > Polling > Protocol > App > idle.
        let mut row = vec![b'.'; COLS];
        let mut priority = [0u8; COLS];
        for e in events.iter().filter(|e| e.node == node) {
            let (ch, pr) = match e.kind {
                CpuCategory::SignalHandler => (b'S', 4),
                CpuCategory::Polling => (b'P', 3),
                CpuCategory::Protocol => (b'p', 2),
                CpuCategory::Application => (b'#', 1),
                CpuCategory::NicOffload => (b'N', 4),
            };
            let first = (e.start.as_nanos() / bucket) as usize;
            let last = ((e.start.as_nanos() + e.dur.as_nanos()) / bucket) as usize;
            for b in first..=last.min(COLS - 1) {
                if pr > priority[b] {
                    priority[b] = pr;
                    row[b] = ch;
                }
            }
        }
        println!("  node {node} |{}|", String::from_utf8(row).unwrap());
    }
    println!();
}

fn main() {
    println!(
        "Fig. 2 reproduction: 4 processes, node {LATE_NODE} starts {SKEW_US}us late.\n\
         #=app busy  P=polling in MPI_Reduce  p=protocol  S=signal handler  .=CPU free\n"
    );
    let (nab, end_a) = run(false);
    render(
        &nab,
        end_a,
        "(a) non-application-bypass: node 2 polls (P) until node 3 shows up",
    );
    let (ab, end_b) = run(true);
    render(
        &ab,
        end_b,
        "(b) application-bypass: node 2's call returns; a signal (S) finishes the job",
    );
    let nab_poll: f64 = nab
        .iter()
        .filter(|e| e.node == 2 && e.kind == CpuCategory::Polling)
        .map(|e| e.dur.as_us_f64())
        .sum();
    let ab_poll: f64 = ab
        .iter()
        .filter(|e| e.node == 2 && e.kind == CpuCategory::Polling)
        .map(|e| e.dur.as_us_f64())
        .sum();
    println!(
        "node 2 polling time: {nab_poll:.1}us (nab)  vs  {:.1}us (ab)",
        ab_poll.max(0.0)
    );
    assert!(ab_poll < nab_poll / 4.0, "bypass must free node 2's CPU");
}
