//! Segmented, pipelined large-message reductions: the k-segment pipeline
//! must be invisible to results (bitwise equal to the 1-segment oracle on
//! random trees, sizes and operators, for the stock and bypass engines
//! alike), the DES and live drivers must emit the same trace skeleton on
//! a segmented chain run, and the dual-root doubly-pipelined allreduce
//! must agree with a plain fold on every rank under every mode.

use abr_cluster::live::run_live;
use abr_cluster::node::ClusterSpec;
use abr_cluster::program::{Program, Step, StepCtx};
use abr_cluster::DesDriver;
use abr_core::{AbConfig, AbEngine};
use abr_mpr::engine::EngineConfig;
use abr_mpr::op::ReduceOp;
use abr_mpr::topology::TopologyKind;
use abr_mpr::types::{bytes_to_f64s, f64s_to_bytes, Datatype};
use abr_trace::{RingRecorder, TraceClock, TraceEvent, Tracer};
use proptest::prelude::*;
use std::sync::Arc;

/// One reduction to `root`, every rank contributing `inputs[rank]`;
/// returns the root's result values.
struct OnceReduceProgram {
    rank: u32,
    root: u32,
    input: Vec<f64>,
    op: ReduceOp,
    phase: u8,
}

impl Program for OnceReduceProgram {
    fn next(&mut self, ctx: &mut StepCtx) -> Step {
        loop {
            match self.phase {
                0 => {
                    self.phase = 1;
                    return Step::Reduce {
                        root: self.root,
                        op: self.op,
                        dtype: Datatype::F64,
                        data: f64s_to_bytes(&self.input),
                    };
                }
                1 => {
                    if self.rank == self.root {
                        if let Some(d) = ctx.last_data.take() {
                            for v in bytes_to_f64s(&d) {
                                ctx.record("value", v);
                            }
                        }
                    }
                    self.phase = 2;
                    continue;
                }
                2 => {
                    self.phase = 3;
                    return Step::Barrier;
                }
                _ => return Step::Done,
            }
        }
    }
}

/// Run one reduction under the DES and return the root's values plus the
/// drained trace (when `traced`).
#[allow(clippy::too_many_arguments)]
fn des_reduce_windowed(
    n: u32,
    root: u32,
    topo: TopologyKind,
    op: ReduceOp,
    inputs: &[Vec<f64>],
    ab: bool,
    window: usize,
    traced: bool,
) -> (Vec<f64>, Option<abr_trace::Trace>) {
    let spec = ClusterSpec::heterogeneous(n)
        .with_topology(topo)
        .with_segments(window);
    let programs: Vec<Box<dyn Program>> = (0..n)
        .map(|rank| {
            Box::new(OnceReduceProgram {
                rank,
                root,
                input: inputs[rank as usize].clone(),
                op,
                phase: 0,
            }) as Box<dyn Program>
        })
        .collect();
    let cfg = if ab {
        AbConfig::default()
    } else {
        AbConfig::disabled()
    };
    let mut d = DesDriver::new(
        &spec,
        |r, ec: EngineConfig| AbEngine::new(r, n, ec, cfg.clone()),
        programs,
    );
    let rec = traced.then(|| RingRecorder::new(n, 1 << 16, TraceClock::Virtual, 0, 0));
    if let Some(rec) = &rec {
        d.install_tracer(Arc::clone(rec) as Arc<dyn Tracer>);
    }
    d.run();
    let values = d.results()[root as usize]
        .obs
        .iter()
        .filter(|o| o.key == "value")
        .map(|o| o.value)
        .collect();
    (values, rec.map(|r| r.snapshot()))
}

fn random_inputs(n: u32, elems: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..n)
        .map(|_| {
            (0..elems)
                .map(|_| ((next() % 7) as f64 + 1.0) * 0.5)
                .collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// A k-segment pipelined reduction must be bitwise identical to the
    /// single-segment oracle, whatever the tree family, message size,
    /// operator, pipeline window, or engine (stock vs bypass).
    #[test]
    fn prop_segmented_equals_single_segment_oracle(
        n in 2u32..10,
        root_sel in 0u32..10,
        elems in 256usize..1024,
        topo_sel in 0usize..4,
        op_sel in 0usize..4,
        window in 2usize..6,
        seed in 0u64..1_000_000,
    ) {
        let root = root_sel % n;
        let topo = [
            TopologyKind::Binomial,
            TopologyKind::Knomial(4),
            TopologyKind::Chain,
            TopologyKind::ChainRev,
        ][topo_sel];
        let op = [ReduceOp::Sum, ReduceOp::Min, ReduceOp::Max, ReduceOp::Prod][op_sel];
        let inputs = random_inputs(n, elems, seed);
        let (oracle, _) = des_reduce_windowed(n, root, topo, op, &inputs, false, 1, false);
        prop_assert_eq!(oracle.len(), elems);
        for ab in [false, true] {
            let (seg, _) = des_reduce_windowed(n, root, topo, op, &inputs, ab, window, false);
            prop_assert_eq!(&seg, &oracle, "ab={} window={} diverged", ab, window);
        }
    }
}

/// The bypass engine must actually take the segmented master path for a
/// large message (visible as `seg-split` phase markers in the trace), and
/// still match the unsegmented oracle bitwise.
#[test]
fn segmented_bypass_path_is_exercised_and_exact() {
    let n = 8u32;
    let elems = 4096; // 32 KiB: above the eager limit, so window 1 goes rendezvous.
    let inputs = random_inputs(n, elems, 0xB17E);
    let (oracle, _) = des_reduce_windowed(
        n,
        0,
        TopologyKind::Chain,
        ReduceOp::Sum,
        &inputs,
        false,
        1,
        false,
    );
    let (seg, trace) = des_reduce_windowed(
        n,
        0,
        TopologyKind::Chain,
        ReduceOp::Sum,
        &inputs,
        true,
        4,
        true,
    );
    assert_eq!(seg, oracle, "segmented bypass result diverged");
    let trace = trace.expect("traced run");
    let seg_phases: usize = trace
        .per_rank
        .iter()
        .flatten()
        .filter(|r| {
            matches!(
                r.event,
                TraceEvent::SegPhaseEnter { phase, .. } if phase == "seg-split"
            )
        })
        .count();
    assert!(
        seg_phases >= 2,
        "expected pipelined seg-split segments in the trace, saw {seg_phases}"
    );
}

/// DES and live drivers must emit the same send/recv skeleton for a
/// segmented chain reduction: per-link FIFO makes the segment order
/// deterministic, so the pipeline cannot introduce scheduling dependence.
#[test]
fn des_and_live_agree_on_segmented_chain_skeleton() {
    let n = 6u32;
    let elems = 3072; // 24 KiB per rank.
    let window = 4;
    let spec = ClusterSpec::homogeneous_1000(n)
        .with_topology(TopologyKind::Chain)
        .with_segments(window);
    // DES side.
    let inputs = random_inputs(n, elems, 0x5E65);
    let programs: Vec<Box<dyn Program>> = (0..n)
        .map(|rank| {
            Box::new(OnceReduceProgram {
                rank,
                root: 0,
                input: inputs[rank as usize].clone(),
                op: ReduceOp::Sum,
                phase: 0,
            }) as Box<dyn Program>
        })
        .collect();
    let mut d = DesDriver::new(
        &spec,
        |r, ec: EngineConfig| AbEngine::new(r, n, ec, AbConfig::default()),
        programs,
    );
    let des_rec = RingRecorder::new(n, 1 << 16, TraceClock::Virtual, 0, 0);
    d.install_tracer(Arc::clone(&des_rec) as Arc<dyn Tracer>);
    d.run();
    let des = des_rec.snapshot().skeleton();
    // Live side: same spec, same inputs, real threads.
    let live_rec = RingRecorder::new(n, 1 << 16, TraceClock::Wall, 0, 0);
    let inputs2 = inputs.clone();
    abr_cluster::live::run_live_traced(
        &spec,
        AbConfig::default(),
        &abr_cluster::FaultPlan::none(),
        abr_cluster::RelConfig::live_default(),
        Some(Arc::clone(&live_rec) as Arc<dyn Tracer>),
        move |ctx| {
            let data = f64s_to_bytes(&inputs2[ctx.rank() as usize]);
            let out = ctx.reduce(0, ReduceOp::Sum, Datatype::F64, &data).unwrap();
            ctx.barrier();
            out
        },
    );
    let live = live_rec.snapshot().skeleton();
    assert_eq!(des, live, "segmented chain skeletons diverge");
    // Sanity: the run was actually pipelined — the sole child of the root
    // sends one eager packet per segment, not a single rendezvous.
    let sends = des[1].split(" ->").count() - 1;
    assert!(
        sends >= 2,
        "rank 1 should send one packet per segment: {}",
        des[1]
    );
}

/// DES program driving the dual-root allreduce (blocking or split-phase)
/// and recording every rank's full result.
struct DualProgram {
    rank: u32,
    input: Vec<f64>,
    split: bool,
    phase: u8,
}

impl Program for DualProgram {
    fn next(&mut self, ctx: &mut StepCtx) -> Step {
        loop {
            match self.phase {
                0 => {
                    self.phase = 1;
                    let (op, dtype) = (ReduceOp::Sum, Datatype::F64);
                    let data = f64s_to_bytes(&self.input);
                    return if self.split {
                        Step::AllreduceDualSplit { op, dtype, data }
                    } else {
                        Step::AllreduceDual { op, dtype, data }
                    };
                }
                1 => {
                    if self.split {
                        self.phase = 2;
                        return Step::WaitSplit;
                    }
                    self.phase = 2;
                    continue;
                }
                2 => {
                    let d = ctx
                        .last_data
                        .take()
                        .unwrap_or_else(|| panic!("rank {} got no allreduce result", self.rank));
                    for v in bytes_to_f64s(&d) {
                        ctx.record("value", v);
                    }
                    self.phase = 3;
                    return Step::Barrier;
                }
                _ => return Step::Done,
            }
        }
    }
}

fn des_dual_allreduce(n: u32, elems: usize, ab: bool, split: bool, window: usize) -> Vec<Vec<f64>> {
    let spec = ClusterSpec::heterogeneous(n).with_segments(window);
    let inputs = random_inputs(n, elems, 0xD0A1);
    let programs: Vec<Box<dyn Program>> = (0..n)
        .map(|rank| {
            Box::new(DualProgram {
                rank,
                input: inputs[rank as usize].clone(),
                split,
                phase: 0,
            }) as Box<dyn Program>
        })
        .collect();
    let cfg = if ab {
        AbConfig::default()
    } else {
        AbConfig::disabled()
    };
    let mut d = DesDriver::new(
        &spec,
        |r, ec: EngineConfig| AbEngine::new(r, n, ec, cfg.clone()),
        programs,
    );
    d.run();
    d.results()
        .iter()
        .map(|node| {
            node.obs
                .iter()
                .filter(|o| o.key == "value")
                .map(|o| o.value)
                .collect()
        })
        .collect()
}

/// The dual-root doubly-pipelined allreduce must hand every rank the
/// element-wise sum, bitwise identical across the stock engine, the
/// bypassed blocking call, and the bypassed split-phase call, segmented
/// or not.
#[test]
fn dual_allreduce_agrees_on_every_rank_under_every_mode() {
    let n = 6u32;
    let elems = 512;
    let inputs = random_inputs(n, elems, 0xD0A1);
    let expect: Vec<f64> = (0..elems)
        .map(|j| inputs.iter().map(|v| v[j]).sum::<f64>())
        .collect();
    let oracle = des_dual_allreduce(n, elems, false, false, 1);
    for (rank, vals) in oracle.iter().enumerate() {
        assert_eq!(vals.len(), elems, "rank {rank} incomplete");
        for (got, want) in vals.iter().zip(&expect) {
            assert!(
                (got - want).abs() <= want.abs() * 1e-9,
                "rank {rank}: {got} vs {want}"
            );
        }
    }
    for (ab, split, window) in [
        (false, false, 3),
        (true, false, 1),
        (true, false, 3),
        (true, true, 1),
        (true, true, 3),
    ] {
        let got = des_dual_allreduce(n, elems, ab, split, window);
        assert_eq!(
            got, oracle,
            "dual allreduce diverged: ab={ab} split={split} window={window}"
        );
    }
}

/// The live driver's dual-root allreduce (blocking and split-phase) must
/// match the DES result on every rank.
#[test]
fn dual_allreduce_agrees_between_des_and_live() {
    let n = 4u32;
    let elems = 256;
    let des = des_dual_allreduce(n, elems, true, false, 2);
    let spec = ClusterSpec::heterogeneous(n).with_segments(2);
    let inputs = random_inputs(n, elems, 0xD0A1);
    for split in [false, true] {
        let inputs2 = inputs.clone();
        let live = run_live(&spec, AbConfig::default(), move |ctx| {
            let data = f64s_to_bytes(&inputs2[ctx.rank() as usize]);
            let out = if split {
                ctx.allreduce_dual_split(ReduceOp::Sum, Datatype::F64, &data)
                    .wait()
                    .unwrap()
                    .expect("allreduce result on every rank")
            } else {
                ctx.allreduce_dual(ReduceOp::Sum, Datatype::F64, &data)
                    .unwrap()
            };
            ctx.barrier();
            bytes_to_f64s(&out)
        });
        for (rank, vals) in live.iter().enumerate() {
            assert_eq!(
                vals, &des[rank],
                "split={split} rank {rank} diverged from DES"
            );
        }
    }
}
