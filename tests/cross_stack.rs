//! Cross-stack consistency: the same protocol engines under the
//! discrete-event driver, the live threaded driver, and the zero-latency
//! loopback must agree on every reduction result; property tests randomize
//! shapes, operators and skew schedules.

use abr_cluster::live::run_live;
use abr_cluster::node::ClusterSpec;
use abr_cluster::program::{Program, Step, StepCtx};
use abr_cluster::DesDriver;
use abr_core::{AbConfig, AbEngine};
use abr_des::SimDuration;
use abr_mpr::engine::EngineConfig;
use abr_mpr::op::ReduceOp;
use abr_mpr::types::{bytes_to_f64s, f64s_to_bytes, Datatype};
use proptest::prelude::*;

/// A DES program that runs reductions with per-iteration skews and records
/// the root's results.
struct SkewedReduceProgram {
    rank: u32,
    root: u32,
    inputs: Vec<Vec<f64>>,
    skews_us: Vec<u64>,
    op: ReduceOp,
    iter: usize,
    phase: u8,
}

impl Program for SkewedReduceProgram {
    fn next(&mut self, ctx: &mut StepCtx) -> Step {
        loop {
            if self.iter >= self.inputs.len() {
                return Step::Done;
            }
            match self.phase {
                0 => {
                    self.phase = 1;
                    return Step::Busy(SimDuration::from_us(self.skews_us[self.iter]));
                }
                1 => {
                    self.phase = 2;
                    return Step::Reduce {
                        root: self.root,
                        op: self.op,
                        dtype: Datatype::F64,
                        data: f64s_to_bytes(&self.inputs[self.iter]),
                    };
                }
                2 => {
                    if self.rank == self.root {
                        if let Some(d) = ctx.last_data.take() {
                            for (j, v) in bytes_to_f64s(&d).into_iter().enumerate() {
                                // Encode (iter, elem) into the observation
                                // key space via value packing.
                                ctx.record("result", (self.iter * 1000 + j) as f64);
                                ctx.record("value", v);
                            }
                        }
                    }
                    self.phase = 3;
                    continue;
                }
                3 => {
                    self.iter += 1;
                    self.phase = 0;
                    return Step::Barrier;
                }
                _ => unreachable!(),
            }
        }
    }
}

fn des_reduce_results(
    n: u32,
    root: u32,
    op: ReduceOp,
    inputs_per_iter: &[Vec<Vec<f64>>], // [iter][rank] -> elems
    skews: &[Vec<u64>],                // [iter][rank] -> us
    ab: bool,
) -> Vec<f64> {
    let spec = ClusterSpec::heterogeneous(n);
    let programs: Vec<Box<dyn Program>> = (0..n)
        .map(|rank| {
            Box::new(SkewedReduceProgram {
                rank,
                root,
                inputs: inputs_per_iter
                    .iter()
                    .map(|it| it[rank as usize].clone())
                    .collect(),
                skews_us: skews.iter().map(|it| it[rank as usize]).collect(),
                op,
                iter: 0,
                phase: 0,
            }) as Box<dyn Program>
        })
        .collect();
    let cfg = if ab {
        AbConfig::default()
    } else {
        AbConfig::disabled()
    };
    let mut d = DesDriver::new(
        &spec,
        |r, ec: EngineConfig| AbEngine::new(r, n, ec, cfg.clone()),
        programs,
    );
    d.run();
    d.results()[root as usize]
        .obs
        .iter()
        .filter(|o| o.key == "value")
        .map(|o| o.value)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// AB and baseline must produce byte-identical reduction results no
    /// matter the cluster size, root, element count, operator or skew
    /// schedule.
    #[test]
    fn prop_ab_equals_baseline_under_des(
        n in 2u32..20,
        root_sel in 0u32..20,
        elems in 1usize..24,
        iters in 1usize..4,
        op_sel in 0usize..4,
        seed in 0u64..1_000_000,
    ) {
        let root = root_sel % n;
        let op = [ReduceOp::Sum, ReduceOp::Min, ReduceOp::Max, ReduceOp::Prod][op_sel];
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        // Prod overflows with big values; keep inputs small and positive.
        let inputs: Vec<Vec<Vec<f64>>> = (0..iters)
            .map(|_| {
                (0..n)
                    .map(|_| (0..elems).map(|_| ((next() % 7) as f64 + 1.0) * 0.5).collect())
                    .collect()
            })
            .collect();
        let skews: Vec<Vec<u64>> = (0..iters)
            .map(|_| (0..n).map(|_| next() % 700).collect())
            .collect();
        let base = des_reduce_results(n, root, op, &inputs, &skews, false);
        let bypass = des_reduce_results(n, root, op, &inputs, &skews, true);
        prop_assert_eq!(&base, &bypass, "ab and nab disagree");
        // And both agree with a plain fold.
        let mut expect = Vec::new();
        for it in &inputs {
            for j in 0..elems {
                let col: Vec<f64> = it.iter().map(|v| v[j]).collect();
                let folded = match op {
                    ReduceOp::Sum => col.iter().sum::<f64>(),
                    ReduceOp::Prod => col.iter().product::<f64>(),
                    ReduceOp::Min => col.iter().cloned().fold(f64::INFINITY, f64::min),
                    ReduceOp::Max => col.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
                    _ => unreachable!(),
                };
                expect.push(folded);
            }
        }
        // Sum/Prod can differ in rounding by association order; our engines
        // combine in identical (tree) order so base==bypass exactly, and
        // both should be close to the sequential fold.
        for (got, want) in base.iter().zip(&expect) {
            prop_assert!((got - want).abs() <= want.abs() * 1e-9 + 1e-9,
                "result {got} vs fold {want}");
        }
    }
}

#[test]
fn des_and_live_agree_on_reduction_results() {
    let n = 8u32;
    let inputs: Vec<Vec<f64>> = (0..n).map(|r| vec![r as f64 * 1.5, -(r as f64)]).collect();
    // DES result.
    let des = des_reduce_results(
        n,
        0,
        ReduceOp::Sum,
        std::slice::from_ref(&inputs),
        &[(0..n).map(|r| (r as u64) * 37).collect()],
        true,
    );
    // Live result with real thread skew.
    let inputs2 = inputs.clone();
    let live = run_live(
        &ClusterSpec::homogeneous_1000(n),
        AbConfig::default(),
        move |ctx| {
            std::thread::sleep(std::time::Duration::from_micros(ctx.rank() as u64 * 200));
            let data = f64s_to_bytes(&inputs2[ctx.rank() as usize]);
            let out = ctx.reduce(0, ReduceOp::Sum, Datatype::F64, &data).unwrap();
            ctx.barrier();
            out.map(|d| bytes_to_f64s(&d))
        },
    );
    let live_root = live[0].clone().expect("root result");
    assert_eq!(des, live_root, "DES and live disagree");
}

#[test]
fn all_roots_work_under_both_drivers() {
    let n = 6u32;
    for root in 0..n {
        let inputs: Vec<Vec<f64>> = (0..n).map(|r| vec![(r + 1) as f64]).collect();
        let res = des_reduce_results(
            n,
            root,
            ReduceOp::Sum,
            &[inputs],
            &[vec![0; n as usize]],
            true,
        );
        assert_eq!(
            res,
            vec![(1..=n).map(f64::from).sum::<f64>()],
            "root {root}"
        );
    }
}
