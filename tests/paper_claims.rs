//! Integration tests asserting the paper's headline claims end-to-end,
//! using the same machinery the figure harnesses use (smaller iteration
//! counts; the claims are about *shape*, which converges fast).

use abr_cluster::microbench::{run_cpu_util, run_latency, CpuUtilConfig, LatencyConfig, Mode};
use abr_cluster::node::ClusterSpec;
use abr_core::DelayPolicy;

fn ab() -> Mode {
    Mode::Bypass(DelayPolicy::None)
}

fn cpu(nodes: u32, elems: usize, skew: u64, mode: Mode) -> abr_cluster::CpuUtilResult {
    run_cpu_util(&CpuUtilConfig {
        elems,
        max_skew_us: skew,
        iters: 60,
        ..CpuUtilConfig::new(ClusterSpec::heterogeneous(nodes), mode)
    })
}

#[test]
fn claim_factor_of_improvement_about_five_at_32_nodes() {
    // §VI-A: "a maximum factor of improvement of 5.1 for four-element
    // messages when the maximum skew is 1,000us".
    let nab = cpu(32, 4, 1000, Mode::Baseline);
    let abr = cpu(32, 4, 1000, ab());
    let foi = nab.mean_cpu_us / abr.mean_cpu_us;
    assert!(
        (4.0..7.5).contains(&foi),
        "FoI at 32 nodes / 4 elems / 1000us skew = {foi:.2}, expected ~5"
    );
}

#[test]
fn claim_improvement_increases_with_system_size() {
    // §VI-A Fig. 7: the factor of improvement grows with node count.
    let mut last = 0.0;
    for nodes in [2u32, 8, 32] {
        let nab = cpu(nodes, 4, 1000, Mode::Baseline);
        let abr = cpu(nodes, 4, 1000, ab());
        let foi = nab.mean_cpu_us / abr.mean_cpu_us;
        assert!(
            foi > last * 0.98, // monotone up to noise
            "FoI fell from {last:.2} to {foi:.2} at {nodes} nodes"
        );
        last = foi;
    }
    assert!(last > 3.0, "FoI at 32 nodes should be large, got {last:.2}");
}

#[test]
fn claim_improvement_greatest_for_small_messages_under_skew() {
    // §VI-A: "the factor of improvement is greatest for small message
    // sizes" — which matters because 95% of real reductions are <= 3
    // elements (Moody et al.).
    let foi = |elems| {
        let nab = cpu(32, elems, 1000, Mode::Baseline);
        let abr = cpu(32, elems, 1000, ab());
        nab.mean_cpu_us / abr.mean_cpu_us
    };
    let small = foi(4);
    let large = foi(128);
    assert!(
        small > large,
        "FoI(4 elems)={small:.2} should exceed FoI(128 elems)={large:.2}"
    );
}

#[test]
fn claim_ab_consistently_outperforms_under_any_skew() {
    // §VI-A Fig. 6: ab beats nab "for all combinations of skew and message
    // size" (with skew present).
    for skew in [100u64, 500, 1000] {
        for elems in [4usize, 32, 128] {
            let nab = cpu(16, elems, skew, Mode::Baseline);
            let abr = cpu(16, elems, skew, ab());
            assert!(
                abr.mean_cpu_us < nab.mean_cpu_us,
                "skew={skew} elems={elems}: ab {:.1} !< nab {:.1}",
                abr.mean_cpu_us,
                nab.mean_cpu_us
            );
        }
    }
}

#[test]
fn claim_no_skew_crossover_with_system_size() {
    // §VI-B Fig. 8: without injected skew the baseline's cost grows with
    // node count while ab flattens; by 32 nodes ab wins for large messages
    // (paper: FoI up to 1.5 at 128 elems).
    let nab_2 = cpu(2, 128, 0, Mode::Baseline);
    let nab_32 = cpu(32, 128, 0, Mode::Baseline);
    assert!(
        nab_32.mean_cpu_us > nab_2.mean_cpu_us * 1.3,
        "baseline should not scale: {:.1} -> {:.1}",
        nab_2.mean_cpu_us,
        nab_32.mean_cpu_us
    );
    let ab_32 = cpu(32, 128, 0, ab());
    let foi = nab_32.mean_cpu_us / ab_32.mean_cpu_us;
    assert!(
        foi > 1.2,
        "at 32 nodes / 128 elems / no skew, ab should win (paper: 1.5x), got {foi:.2}"
    );
}

#[test]
fn claim_copy_reduction_percentages() {
    // §V: 50% fewer copies for unexpected messages, 100% for expected and
    // late ones. Audit via counters: every bypassed child is either
    // zero-copy (late/expected) or single-copy (early), never the 1-2
    // copies of the stock path.
    let r = cpu(16, 32, 500, ab());
    let get = |k: &str| {
        r.counters
            .iter()
            .find(|(n, _)| *n == k)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    };
    let zero_copy = get("zero_copy_children");
    let parked = get("ab_unexpected_parked");
    let ab_handled = get("sync_children") + get("async_children");
    assert!(zero_copy > 0, "no zero-copy children recorded");
    assert_eq!(
        zero_copy + parked,
        ab_handled,
        "every bypassed child is zero-copy or single-copy"
    );
    assert_eq!(get("copies_saved"), zero_copy + parked);
}

#[test]
fn claim_baseline_never_signals_and_bypass_does() {
    // §V-A: signals exist only for application-bypass reduction traffic.
    // (Note signal *count* is not monotone in skew: a very late parent
    // finds its children's messages already parked and pays no signal at
    // all — only the baseline's polling cost grows with skew.)
    let nab = cpu(16, 4, 1000, Mode::Baseline);
    assert_eq!(nab.signals, 0);
    let quiet = cpu(16, 4, 0, ab());
    let noisy = cpu(16, 4, 1000, ab());
    assert!(quiet.signals > 0, "even natural skew produces some signals");
    assert!(noisy.signals > 0);
}

#[test]
fn claim_latency_parity_at_small_scale_and_penalty_at_large() {
    // §VI-B Fig. 9: "for small numbers of nodes, the latency of the two
    // implementations are nearly identical... once past four, signal
    // overhead appears".
    let lat = |nodes, mode| {
        run_latency(&LatencyConfig {
            iters: 40,
            ..LatencyConfig::new(ClusterSpec::homogeneous_700(nodes), mode)
        })
        .mean_latency_us
    };
    let nab4 = lat(4, Mode::Baseline);
    let ab4 = lat(4, ab());
    assert!(
        (ab4 - nab4).abs() / nab4 < 0.08,
        "4-node latencies should be nearly identical: {ab4:.1} vs {nab4:.1}"
    );
    let nab16 = lat(16, Mode::Baseline);
    let ab16 = lat(16, ab());
    assert!(
        ab16 > nab16,
        "16-node ab should pay a signal penalty: {ab16:.1} vs {nab16:.1}"
    );
}

#[test]
fn claim_latency_penalty_does_not_blow_up_with_message_size() {
    // §VI-B Fig. 10: the ab latency penalty "stabilizes and remains fairly
    // constant" with message size — in particular it must not grow.
    let lat = |elems, mode| {
        run_latency(&LatencyConfig {
            elems,
            iters: 40,
            ..LatencyConfig::new(ClusterSpec::heterogeneous_32(), mode)
        })
        .mean_latency_us
    };
    let gap_small = lat(1, ab()) - lat(1, Mode::Baseline);
    let gap_large = lat(128, ab()) - lat(128, Mode::Baseline);
    assert!(gap_small > 0.0, "penalty at 1 elem: {gap_small:.1}");
    assert!(
        gap_large < gap_small * 1.5,
        "penalty grew with size: {gap_small:.1} -> {gap_large:.1}"
    );
}

#[test]
fn extension_nic_offload_eliminates_host_signals_and_cuts_host_cpu() {
    // §VII future work (refs [9]/[11]): performing the operation on the NIC
    // processor frees the host entirely — no polling for late children and
    // no signals at all — at the price of slow LANai arithmetic.
    let nab = cpu(16, 4, 500, Mode::Baseline);
    let abr = cpu(16, 4, 500, ab());
    let nic = cpu(16, 4, 500, Mode::NicBypass);
    assert_eq!(nic.signals, 0, "NIC offload must never signal the host");
    assert!(
        nic.mean_cpu_us < abr.mean_cpu_us,
        "nic {:.1} vs ab {:.1}",
        nic.mean_cpu_us,
        abr.mean_cpu_us
    );
    assert!(nic.mean_cpu_us < nab.mean_cpu_us / 2.0);
    assert!(
        nic.nic_us_total > 0.0,
        "the NIC must have done the work instead"
    );
    assert_eq!(nab.nic_us_total, 0.0);
    assert_eq!(abr.nic_us_total, 0.0);
}

#[test]
fn extension_nic_offload_latency_crossover_with_message_size() {
    // Ref [11] asks "is it beneficial?" — the answer depends on message
    // size: the LANai's slow per-element arithmetic sits on the critical
    // path, so NIC offload wins small-message latency and loses large.
    let lat = |elems, mode| {
        run_latency(&LatencyConfig {
            elems,
            iters: 40,
            ..LatencyConfig::new(ClusterSpec::heterogeneous_32(), mode)
        })
        .mean_latency_us
    };
    assert!(
        lat(1, Mode::NicBypass) < lat(1, ab()),
        "at 1 element the avoided signals should win"
    );
    assert!(
        lat(128, Mode::NicBypass) > lat(128, ab()),
        "at 128 elements the slow NIC arithmetic should lose"
    );
}

#[test]
fn extension_split_phase_beats_plain_bypass_under_skew() {
    // §II: "a split-phase implementation would enable optimization of the
    // root node as well".
    let nab = cpu(16, 4, 1000, Mode::Baseline);
    let split = cpu(16, 4, 1000, Mode::SplitPhase);
    let abr = cpu(16, 4, 1000, ab());
    assert!(split.mean_cpu_us < nab.mean_cpu_us);
    // The root no longer burns its wait polling, so split-phase should be
    // at least competitive with plain bypass.
    assert!(
        split.mean_cpu_us < abr.mean_cpu_us * 1.15,
        "split {:.1} vs ab {:.1}",
        split.mean_cpu_us,
        abr.mean_cpu_us
    );
}
