//! Fault-tolerance property tests: under seeded random loss the full
//! stack (reliability layer + engine-level duplicate suppression) must
//! always converge to the fault-free oracle, in both bypass and baseline
//! modes, under both drivers.

use abr_cluster::live::run_live_faults;
use abr_cluster::node::ClusterSpec;
use abr_cluster::program::{FnProgram, Program, Step, StepCtx};
use abr_cluster::{DesDriver, FaultPlan, RelConfig};
use abr_core::{AbConfig, AbEngine};
use abr_faults::RelStats;
use abr_mpr::engine::EngineConfig;
use abr_mpr::op::ReduceOp;
use abr_mpr::types::{bytes_to_f64s, f64s_to_bytes, Datatype};
use proptest::prelude::*;

const N: u32 = 32;

fn rank_input(rank: u32) -> Vec<f64> {
    vec![rank as f64 + 1.0, 0.5 * rank as f64]
}

fn oracle() -> Vec<f64> {
    let mut sum = vec![0.0, 0.0];
    for r in 0..N {
        let v = rank_input(r);
        sum[0] += v[0];
        sum[1] += v[1];
    }
    sum
}

/// One 32-node sum-reduction to root 0 under the DES with `plan`.
fn des_lossy_reduce(ab: AbConfig, plan: &FaultPlan) -> (Vec<f64>, RelStats) {
    let spec = ClusterSpec::homogeneous_1000(N);
    let programs: Vec<Box<dyn Program>> = (0..N)
        .map(|rank| {
            let mut phase = 0u8;
            Box::new(FnProgram(move |ctx: &mut StepCtx| {
                if phase == 0 {
                    phase = 1;
                    return Step::Reduce {
                        root: 0,
                        op: ReduceOp::Sum,
                        dtype: Datatype::F64,
                        data: f64s_to_bytes(&rank_input(rank)),
                    };
                }
                if rank == 0 {
                    if let Some(d) = ctx.last_data.take() {
                        for v in bytes_to_f64s(&d) {
                            ctx.record("result", v);
                        }
                    }
                }
                Step::Done
            })) as Box<dyn Program>
        })
        .collect();
    let mut d = DesDriver::new(
        &spec,
        |r, ec: EngineConfig| AbEngine::new(r, N, ec, ab.clone()),
        programs,
    );
    d.set_faults(plan, RelConfig::sim_default());
    d.run();
    let rel = d.rel_stats().unwrap_or_default();
    let vals = d.results()[0]
        .obs
        .iter()
        .filter(|o| o.key == "result")
        .map(|o| o.value)
        .collect();
    (vals, rel)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// 1% drop + 1% duplicate with a random seed: the reduction must
    /// always produce the fault-free result, bypass and baseline alike,
    /// and the two modes must agree bit-for-bit with each other.
    #[test]
    fn prop_lossy_des_reduction_matches_fault_free_oracle(seed in 0u64..u64::MAX) {
        let plan = FaultPlan::uniform_loss(seed, 0.01);
        let (ab_vals, _) = des_lossy_reduce(AbConfig::default(), &plan);
        let (nab_vals, _) = des_lossy_reduce(AbConfig::disabled(), &plan);
        prop_assert_eq!(&ab_vals, &oracle(), "bypass diverged under loss, seed {}", seed);
        prop_assert_eq!(&nab_vals, &oracle(), "baseline diverged under loss, seed {}", seed);
        prop_assert_eq!(&ab_vals, &nab_vals, "ab and nab disagree under loss, seed {}", seed);
    }

    /// Heavier loss (5%) still converges — the retry budget (10) is far
    /// deeper than any plausible consecutive-loss streak at p=0.05.
    #[test]
    fn prop_heavy_loss_still_converges(seed in 0u64..u64::MAX) {
        let plan = FaultPlan::uniform_loss(seed, 0.05);
        let (vals, rel) = des_lossy_reduce(AbConfig::default(), &plan);
        prop_assert_eq!(&vals, &oracle(), "seed {}: {:?}", seed, rel);
        prop_assert_eq!(rel.links_dead, 0, "seed {}: {:?}", seed, rel);
    }
}

/// The live threaded driver recovers from the same class of seeded loss on
/// the full 32-rank cluster. The RTO is shortened from the 200 ms live
/// default to keep the test quick; 20 ms is still orders of magnitude
/// above scheduler noise, so no spurious retransmission storm can start.
#[test]
fn live_32_rank_reduction_survives_seeded_loss() {
    let rel_cfg = RelConfig {
        rto_ns: 20_000_000,
        backoff: 2,
        max_retries: 10,
    };
    for seed in [1u64, 0xABCD, 0x5EED_F00D] {
        let plan = FaultPlan::uniform_loss(seed, 0.01);
        let out = run_live_faults(
            &ClusterSpec::homogeneous_1000(N),
            AbConfig::default(),
            &plan,
            rel_cfg,
            |ctx| {
                let data = f64s_to_bytes(&rank_input(ctx.rank()));
                ctx.reduce(0, ReduceOp::Sum, Datatype::F64, &data)
                    .unwrap()
                    .map(|d| bytes_to_f64s(&d))
            },
        );
        let root = out.results[0].clone().expect("root result");
        assert_eq!(root, oracle(), "seed {seed}: live lossy run diverged");
        assert_eq!(out.rel.links_dead, 0, "seed {seed}: {:?}", out.rel);
    }
}
