//! Property tests for the DES kernel: the event queue against a reference
//! model, and statistical sanity of derived RNG streams.

use abr_des::{Accumulator, EventQueue, ShardedEventQueue, SimTime, StreamRng};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Schedule(u64),
    Pop,
    CancelNth(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..10_000).prop_map(Op::Schedule),
        Just(Op::Pop),
        (0usize..32).prop_map(Op::CancelNth),
    ]
}

proptest! {
    /// The queue always pops the earliest live event, with FIFO tie-breaks,
    /// matching a naive reference model under arbitrary interleavings of
    /// schedule / pop / cancel.
    #[test]
    fn event_queue_matches_reference_model(ops in prop::collection::vec(op_strategy(), 1..200)) {
        let mut q: EventQueue<u64> = EventQueue::new();
        // Model: Vec of (time, seq, payload, alive)
        let mut model: Vec<(u64, u64, u64, bool)> = Vec::new();
        let mut ids = Vec::new();
        let mut seq = 0u64;
        let mut now = 0u64;
        for op in ops {
            match op {
                Op::Schedule(dt) => {
                    let at = now + dt; // never in the past
                    let id = q.schedule(SimTime::from_nanos(at), seq);
                    ids.push(id);
                    model.push((at, seq, seq, true));
                    seq += 1;
                }
                Op::Pop => {
                    // Model pop: earliest (time, seq) alive.
                    let pick = model
                        .iter()
                        .enumerate()
                        .filter(|(_, e)| e.3)
                        .min_by_key(|(_, e)| (e.0, e.1))
                        .map(|(i, _)| i);
                    let got = q.pop();
                    match pick {
                        Some(i) => {
                            let (at, _, payload, _) = model[i];
                            model[i].3 = false;
                            let got = got.expect("model has a live event");
                            prop_assert_eq!(got.at, SimTime::from_nanos(at));
                            prop_assert_eq!(got.payload, payload);
                            now = at;
                        }
                        None => prop_assert!(got.is_none()),
                    }
                }
                Op::CancelNth(k) => {
                    if !ids.is_empty() {
                        let idx = k % ids.len();
                        let expected = model[idx].3;
                        let did = q.cancel(ids[idx]);
                        prop_assert_eq!(did, expected, "cancel disagreed with model");
                        model[idx].3 = false;
                    }
                }
            }
        }
        // Drain both fully; order must keep matching.
        loop {
            let pick = model
                .iter()
                .enumerate()
                .filter(|(_, e)| e.3)
                .min_by_key(|(_, e)| (e.0, e.1))
                .map(|(i, _)| i);
            let got = q.pop();
            match pick {
                Some(i) => {
                    model[i].3 = false;
                    prop_assert_eq!(got.unwrap().payload, model[i].2);
                }
                None => {
                    prop_assert!(got.is_none());
                    break;
                }
            }
        }
    }

    /// len() agrees with the number of live events at every step.
    #[test]
    fn event_queue_len_is_consistent(times in prop::collection::vec(0u64..1000, 1..64), cancels in prop::collection::vec(any::<prop::sample::Index>(), 0..16)) {
        let mut q: EventQueue<()> = EventQueue::new();
        let ids: Vec<_> = times.iter().map(|&t| q.schedule(SimTime::from_nanos(t), ())).collect();
        prop_assert_eq!(q.len(), times.len());
        let mut cancelled = std::collections::HashSet::new();
        for c in cancels {
            let id = ids[c.index(ids.len())];
            if q.cancel(id) {
                cancelled.insert(id);
            }
        }
        prop_assert_eq!(q.len(), times.len() - cancelled.len());
        let mut popped = 0;
        while q.pop().is_some() {
            popped += 1;
        }
        prop_assert_eq!(popped, times.len() - cancelled.len());
    }

    /// A sharded queue pops in exactly the single-queue keyed order, for
    /// every shard count, under arbitrary interleavings of schedules (to
    /// arbitrary shards), pops, and cancels: sharding is an implementation
    /// detail of *where* events wait, never of *when* they fire.
    #[test]
    fn sharded_queue_order_is_shard_count_invariant(
        ops in prop::collection::vec(
            prop_oneof![
                (0u64..5_000, 0usize..8).prop_map(|(dt, s)| (0u8, dt, s)),
                Just((1u8, 0, 0)),                       // pop
                (0usize..64).prop_map(|k| (2u8, k as u64, 0)), // cancel nth
            ],
            1..250,
        )
    ) {
        // Reference: everything on one shard.
        let mut runs: Vec<Vec<u64>> = Vec::new();
        for shards in [1usize, 2, 8] {
            let mut q: ShardedEventQueue<u64> = ShardedEventQueue::new(shards);
            let mut ids = Vec::new();
            let mut popped = Vec::new();
            let mut payload = 0u64;
            for &(kind, a, s) in &ops {
                match kind {
                    0 => {
                        let at = q.now() + abr_des::SimDuration::from_nanos(a);
                        // Same event stream regardless of shard count: the
                        // target shard is taken modulo the shard count, so
                        // schedule order and keys are identical across runs.
                        ids.push(q.schedule(s % shards, at, payload));
                        payload += 1;
                    }
                    1 => {
                        if let Some((_, ev)) = q.pop() {
                            popped.push(ev.payload);
                        }
                    }
                    _ => {
                        if !ids.is_empty() {
                            let (shard, id) = ids[a as usize % ids.len()];
                            q.cancel(shard, id);
                        }
                    }
                }
            }
            while let Some((_, ev)) = q.pop() {
                popped.push(ev.payload);
            }
            prop_assert!(q.is_empty());
            runs.push(popped);
        }
        prop_assert_eq!(&runs[0], &runs[1], "2 shards diverged from 1");
        prop_assert_eq!(&runs[0], &runs[2], "8 shards diverged from 1");
    }

    /// Derived streams from distinct paths are uncorrelated enough that
    /// their means land near the uniform expectation.
    #[test]
    fn rng_streams_have_uniform_means(seed in any::<u64>(), a in 0u64..1000, b in 0u64..1000) {
        prop_assume!(a != b);
        let root = StreamRng::root(seed);
        let mut s1 = root.derive(&[a]);
        let mut s2 = root.derive(&[b]);
        let mut acc1 = Accumulator::new();
        let mut acc2 = Accumulator::new();
        for _ in 0..2000 {
            acc1.push(s1.below(1000) as f64);
            acc2.push(s2.below(1000) as f64);
        }
        // Mean of U[0,1000) is 499.5 with sd ~288; sample mean sd ~6.5.
        prop_assert!((acc1.mean() - 499.5).abs() < 40.0, "stream a mean {}", acc1.mean());
        prop_assert!((acc2.mean() - 499.5).abs() < 40.0, "stream b mean {}", acc2.mean());
        // And the two streams differ.
        let mut s1b = root.derive(&[a]);
        let mut s2b = root.derive(&[b]);
        let same = (0..64).all(|_| s1b.next_u64() == s2b.next_u64());
        prop_assert!(!same, "distinct paths produced identical streams");
    }
}
