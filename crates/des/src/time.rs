//! Virtual time for the simulation kernel.
//!
//! Time is kept in integer nanoseconds. The paper reports everything in
//! microseconds; nanosecond resolution leaves headroom for sub-microsecond
//! cost-model constants (e.g. per-byte copy costs) without accumulating
//! rounding error over the 10,000-iteration benchmark loops.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant in virtual time, in nanoseconds since simulation start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of virtual time, in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of virtual time.
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from integer microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Raw nanoseconds since simulation start.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds since simulation start, as a float (for reporting).
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// The duration elapsed since `earlier`. Saturates at zero if `earlier`
    /// is in the future, which keeps benchmark arithmetic total.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked duration since `earlier`; `None` if `earlier > self`.
    #[inline]
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from integer microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from fractional microseconds (rounds to nearest nanosecond).
    #[inline]
    pub fn from_us_f64(us: f64) -> Self {
        debug_assert!(us >= 0.0, "durations are non-negative, got {us}");
        SimDuration((us * 1_000.0).round().max(0.0) as u64)
    }

    /// Raw nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds, as a float (for reporting).
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// True if this duration is exactly zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction: `self - rhs`, clamped at zero.
    #[inline]
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Scale by an integer factor.
    #[inline]
    pub const fn scaled(self, factor: u64) -> SimDuration {
        SimDuration(self.0 * factor)
    }

    /// Scale by a float factor (e.g. a CPU-speed class multiplier),
    /// rounding to the nearest nanosecond.
    #[inline]
    pub fn scaled_f64(self, factor: f64) -> SimDuration {
        debug_assert!(factor >= 0.0);
        SimDuration((self.0 as f64 * factor).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Panics (in debug) on time going backwards; use
    /// [`SimTime::saturating_since`] when the ordering is not guaranteed.
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self >= rhs, "time went backwards: {self:?} - {rhs:?}");
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(self >= rhs, "negative duration: {self:?} - {rhs:?}");
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        debug_assert!(*self >= rhs);
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_us_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_us_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimTime::from_us(5).as_nanos(), 5_000);
        assert_eq!(SimDuration::from_us(7).as_nanos(), 7_000);
        assert_eq!(SimTime::from_nanos(42).as_nanos(), 42);
        assert_eq!(SimDuration::from_nanos(42).as_nanos(), 42);
    }

    #[test]
    fn fractional_us_rounds_to_nearest_nanosecond() {
        assert_eq!(SimDuration::from_us_f64(0.0005).as_nanos(), 1); // 0.5ns rounds up
        assert_eq!(SimDuration::from_us_f64(1.2344).as_nanos(), 1234);
        assert_eq!(SimDuration::from_us_f64(0.0).as_nanos(), 0);
    }

    #[test]
    fn time_plus_duration_advances() {
        let t = SimTime::from_us(10) + SimDuration::from_us(5);
        assert_eq!(t, SimTime::from_us(15));
        let mut t2 = SimTime::ZERO;
        t2 += SimDuration::from_nanos(3);
        assert_eq!(t2.as_nanos(), 3);
    }

    #[test]
    fn time_difference_is_duration() {
        let d = SimTime::from_us(15) - SimTime::from_us(10);
        assert_eq!(d, SimDuration::from_us(5));
    }

    #[test]
    fn saturating_since_clamps_to_zero() {
        let early = SimTime::from_us(10);
        let late = SimTime::from_us(20);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration::from_us(10));
    }

    #[test]
    fn checked_since_detects_reversal() {
        let early = SimTime::from_us(10);
        let late = SimTime::from_us(20);
        assert_eq!(early.checked_since(late), None);
        assert_eq!(late.checked_since(early), Some(SimDuration::from_us(10)));
    }

    #[test]
    fn duration_arithmetic() {
        let a = SimDuration::from_us(10);
        let b = SimDuration::from_us(4);
        assert_eq!(a + b, SimDuration::from_us(14));
        assert_eq!(a - b, SimDuration::from_us(6));
        assert_eq!(a * 3, SimDuration::from_us(30));
        assert_eq!(a / 2, SimDuration::from_us(5));
        assert_eq!(b.saturating_sub(a), SimDuration::ZERO);
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_us(10);
        assert_eq!(d.scaled(3), SimDuration::from_us(30));
        assert_eq!(d.scaled_f64(1.5), SimDuration::from_us(15));
        assert_eq!(d.scaled_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    fn duration_sum() {
        let total: SimDuration = (1..=4).map(SimDuration::from_us).sum();
        assert_eq!(total, SimDuration::from_us(10));
    }

    #[test]
    fn display_formats_microseconds() {
        assert_eq!(format!("{}", SimTime::from_us(3)), "3.000us");
        assert_eq!(format!("{}", SimDuration::from_nanos(1500)), "1.500us");
    }

    #[test]
    fn ordering_follows_nanos() {
        assert!(SimTime::from_us(1) < SimTime::from_us(2));
        assert!(SimDuration::from_nanos(999) < SimDuration::from_us(1));
        assert!(SimTime::MAX > SimTime::from_us(u32::MAX as u64));
    }
}
