//! A fast, deterministic hasher for simulation-internal maps.
//!
//! The std `HashMap` default (SipHash) is DoS-resistant but costs tens of
//! cycles per lookup — measurable on the DES hot path, where every packet
//! touches the per-pair FIFO floor and wire-sequence maps. Simulation keys
//! are small integers controlled by the simulator itself, so collision
//! attacks are not a concern; this module provides the classic
//! multiply-xor ("Fx") hash used by rustc, which is a handful of cycles and
//! — unlike the randomized default — deterministic across processes.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-xor hasher over the written bytes (rustc's FxHasher scheme).
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

/// The golden-ratio multiplier: odd, high bit entropy, the standard Fibonacci
/// hashing constant for 64-bit words.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_round_trips() {
        let mut m: FxHashMap<(u32, u32), u64> = FxHashMap::default();
        for src in 0..50u32 {
            for dst in 0..50u32 {
                m.insert((src, dst), (src * 1000 + dst) as u64);
            }
        }
        assert_eq!(m.len(), 2500);
        assert_eq!(m.get(&(7, 13)), Some(&7013));
        assert_eq!(m.get(&(50, 0)), None);
    }

    #[test]
    fn hash_is_deterministic_and_spreads() {
        let h = |n: u64| {
            let mut hasher = FxHasher::default();
            hasher.write_u64(n);
            hasher.finish()
        };
        assert_eq!(h(42), h(42));
        // Consecutive keys must not collide in the low bits (the table
        // index) for any realistic table size.
        let mut low: FxHashSet<u64> = FxHashSet::default();
        for n in 0..4096u64 {
            low.insert(h(n) & 0xFFF);
        }
        assert!(low.len() > 2048, "low-bit spread too weak: {}", low.len());
    }
}
