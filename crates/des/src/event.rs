//! A cancellable, deterministic event queue.
//!
//! Events scheduled for the same instant pop in FIFO scheduling order, so a
//! simulation run is a pure function of its inputs and seeds. Cancellation is
//! lazy: a cancelled event stays in the heap but is skipped on pop. This is
//! the standard DES technique for modelling preemption — the cluster driver
//! cancels a node's in-flight "step complete" event and reschedules it later
//! when a signal handler steals the CPU.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::binary_heap::BinaryHeap;
use std::collections::HashSet;

/// An opaque handle identifying a scheduled event, used to cancel it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(u64);

/// An event popped from the queue: when it fires, its id, and its payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduledEvent<E> {
    /// The virtual instant at which the event fires.
    pub at: SimTime,
    /// The handle under which the event was scheduled.
    pub id: EventId,
    /// The caller-defined payload.
    pub payload: E,
}

struct HeapEntry<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for HeapEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for HeapEntry<E> {}
impl<E> PartialOrd for HeapEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for HeapEntry<E> {
    // Reversed: BinaryHeap is a max-heap, we want earliest-first with
    // lowest-sequence-first tie-breaking.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A priority queue of timestamped events with stable tie-breaking and
/// O(1)-amortized lazy cancellation.
pub struct EventQueue<E> {
    heap: BinaryHeap<HeapEntry<E>>,
    cancelled: HashSet<u64>,
    /// Ids currently in the heap and not cancelled; makes `cancel` O(1).
    live: HashSet<u64>,
    next_seq: u64,
    now: SimTime,
    popped: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            cancelled: HashSet::new(),
            live: HashSet::new(),
            next_seq: 0,
            now: SimTime::ZERO,
            popped: 0,
        }
    }

    /// The current virtual time: the timestamp of the most recently popped
    /// event (or zero before any pop).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of events delivered so far.
    #[inline]
    pub fn delivered(&self) -> u64 {
        self.popped
    }

    /// Number of live (not yet popped, not cancelled) events.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// True if no live events remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Schedule `payload` to fire at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is before the current time — events may not be
    /// scheduled in the past.
    pub fn schedule(&mut self, at: SimTime, payload: E) -> EventId {
        assert!(
            at >= self.now,
            "cannot schedule event in the past: at={at:?} now={:?}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(HeapEntry { at, seq, payload });
        self.live.insert(seq);
        EventId(seq)
    }

    /// Cancel a previously scheduled event. Returns `true` if the event was
    /// still pending (it will now never fire), `false` if it had already
    /// fired or been cancelled.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if self.live.remove(&id.0) {
            self.cancelled.insert(id.0);
            true
        } else {
            false
        }
    }

    /// Remove and return the earliest live event, advancing the clock to its
    /// timestamp. Returns `None` when the queue is exhausted.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        while let Some(entry) = self.heap.pop() {
            if self.cancelled.remove(&entry.seq) {
                continue;
            }
            self.live.remove(&entry.seq);
            debug_assert!(entry.at >= self.now, "event queue produced time travel");
            self.now = entry.at;
            self.popped += 1;
            return Some(ScheduledEvent {
                at: entry.at,
                id: EventId(entry.seq),
                payload: entry.payload,
            });
        }
        None
    }

    /// The timestamp of the next live event without popping it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        // Drop cancelled entries from the front so peek is accurate.
        while let Some(entry) = self.heap.peek() {
            if self.cancelled.contains(&entry.seq) {
                let seq = entry.seq;
                self.heap.pop();
                self.cancelled.remove(&seq);
            } else {
                return Some(entry.at);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn us(n: u64) -> SimTime {
        SimTime::from_us(n)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(us(30), "c");
        q.schedule(us(10), "a");
        q.schedule(us(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn simultaneous_events_pop_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(us(5), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(us(10), ());
        q.schedule(us(25), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), us(10));
        q.pop();
        assert_eq!(q.now(), us(25));
        assert_eq!(q.delivered(), 2);
    }

    #[test]
    #[should_panic(expected = "cannot schedule event in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(us(10), ());
        q.pop();
        q.schedule(us(5), ());
    }

    #[test]
    fn cancellation_suppresses_delivery() {
        let mut q = EventQueue::new();
        let a = q.schedule(us(10), "a");
        q.schedule(us(20), "b");
        assert!(q.cancel(a));
        let e = q.pop().unwrap();
        assert_eq!(e.payload, "b");
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_is_idempotent_and_safe_after_fire() {
        let mut q = EventQueue::new();
        let a = q.schedule(us(10), ());
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double cancel reports false");
        let b = q.schedule(us(20), ());
        q.pop();
        assert!(!q.cancel(b), "cancelling a fired event reports false");
        assert!(!q.cancel(EventId(999)), "unknown id reports false");
    }

    #[test]
    fn len_and_is_empty_account_for_cancellations() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        let a = q.schedule(us(1), ());
        q.schedule(us(2), ());
        assert_eq!(q.len(), 2);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule(us(10), "a");
        q.schedule(us(20), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(us(20)));
        assert_eq!(q.pop().unwrap().payload, "b");
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn reschedule_pattern_models_preemption() {
        // Cancel an in-flight completion and push it later — the core move
        // used by the cluster driver when a signal handler preempts a busy
        // loop.
        let mut q = EventQueue::new();
        let done = q.schedule(us(100), "work-done");
        q.schedule(us(40), "signal");
        let e = q.pop().unwrap();
        assert_eq!(e.payload, "signal");
        assert!(q.cancel(done));
        q.schedule(e.at + SimDuration::from_us(70), "work-done");
        let e = q.pop().unwrap();
        assert_eq!((e.payload, e.at), ("work-done", us(110)));
    }

    #[test]
    fn interleaved_schedule_and_pop_is_deterministic() {
        let run = || {
            let mut q = EventQueue::new();
            let mut log = Vec::new();
            q.schedule(us(1), 1u32);
            q.schedule(us(3), 3);
            while let Some(e) = q.pop() {
                log.push((e.at.as_nanos(), e.payload));
                if e.payload == 1 {
                    q.schedule(e.at + SimDuration::from_us(1), 2);
                }
            }
            log
        };
        assert_eq!(run(), run());
        assert_eq!(run().iter().map(|&(_, p)| p).collect::<Vec<_>>(), vec![1, 2, 3]);
    }
}
