//! A cancellable, deterministic event queue.
//!
//! Events scheduled for the same instant pop in FIFO scheduling order, so a
//! simulation run is a pure function of its inputs and seeds. Cancellation is
//! lazy: a cancelled event stays in the heap but is skipped on pop. This is
//! the standard DES technique for modelling preemption — the cluster driver
//! cancels a node's in-flight "step complete" event and reschedules it later
//! when a signal handler steals the CPU.
//!
//! # Implementation
//!
//! Liveness is tracked in a slab of generation-tagged slots rather than hash
//! sets: an [`EventId`] packs a slot index and the slot's generation at
//! scheduling time, so `schedule`, `cancel`, and `pop` are all hash-free —
//! each is a couple of array accesses plus the heap operation. A stale id
//! (already fired or cancelled) simply fails the generation check.
//!
//! Cancelled events leave tombstones in the heap. To keep memory strictly
//! bounded by the live-event count, the heap is compacted in place whenever
//! tombstones outnumber live entries, which amortizes to O(1) per
//! cancellation.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::binary_heap::BinaryHeap;

/// An opaque handle identifying a scheduled event, used to cancel it.
///
/// Ids are only meaningful for the queue that issued them. A handle for an
/// event that has fired or been cancelled is *stale*: using it is safe and
/// reports "not pending", even if its slot has since been reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(u64);

impl EventId {
    #[inline]
    fn new(slot: u32, gen: u32) -> Self {
        EventId(((gen as u64) << 32) | slot as u64)
    }

    #[inline]
    fn slot(self) -> u32 {
        self.0 as u32
    }

    #[inline]
    fn gen(self) -> u32 {
        (self.0 >> 32) as u32
    }
}

/// An event popped from the queue: when it fires, its id, and its payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduledEvent<E> {
    /// The virtual instant at which the event fires.
    pub at: SimTime,
    /// The handle under which the event was scheduled.
    pub id: EventId,
    /// The caller-defined payload.
    pub payload: E,
}

/// Per-slot liveness record. `gen` increments every time the slot is
/// reallocated, invalidating ids (and heap entries) from earlier tenancies.
#[derive(Clone, Copy)]
struct Slot {
    gen: u32,
    live: bool,
}

struct HeapEntry<E> {
    at: SimTime,
    /// Tie-break key for events at the same instant. [`EventQueue::schedule`]
    /// assigns a queue-local monotonic sequence (FIFO order);
    /// [`EventQueue::schedule_keyed`] lets the caller supply a key, which is
    /// how sharded queues keep one global order across shards.
    key: u64,
    slot: u32,
    gen: u32,
    payload: E,
}

impl<E> PartialEq for HeapEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.key == other.key
    }
}
impl<E> Eq for HeapEntry<E> {}
impl<E> PartialOrd for HeapEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for HeapEntry<E> {
    // Reversed: BinaryHeap is a max-heap, we want earliest-first with
    // lowest-key-first tie-breaking.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.key.cmp(&self.key))
    }
}

/// A priority queue of timestamped events with stable tie-breaking and
/// O(1)-amortized hash-free cancellation.
pub struct EventQueue<E> {
    heap: BinaryHeap<HeapEntry<E>>,
    slots: Vec<Slot>,
    free: Vec<u32>,
    /// Cancelled-but-still-heaped entry count; drives compaction.
    dead_in_heap: usize,
    live_count: usize,
    next_seq: u64,
    now: SimTime,
    popped: u64,
    trace: abr_trace::TraceHandle,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            dead_in_heap: 0,
            live_count: 0,
            next_seq: 0,
            now: SimTime::ZERO,
            popped: 0,
            trace: abr_trace::TraceHandle::default(),
        }
    }

    /// Publish the virtual clock to `trace` as events are dispatched:
    /// every pop forwards its timestamp via `TraceHandle::set_now_ns`,
    /// making the event loop the single time source for all trace
    /// records in a DES run. A disabled handle (the default) costs one
    /// branch per pop.
    pub fn set_tracer(&mut self, trace: abr_trace::TraceHandle) {
        self.trace = trace;
    }

    /// The current virtual time: the timestamp of the most recently popped
    /// event (or zero before any pop).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of events delivered so far.
    #[inline]
    pub fn delivered(&self) -> u64 {
        self.popped
    }

    /// Number of live (not yet popped, not cancelled) events.
    pub fn len(&self) -> usize {
        self.live_count
    }

    /// True if no live events remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Schedule `payload` to fire at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is before the current time — events may not be
    /// scheduled in the past.
    pub fn schedule(&mut self, at: SimTime, payload: E) -> EventId {
        let key = self.next_seq;
        self.next_seq += 1;
        self.schedule_keyed(at, key, payload)
    }

    /// Schedule `payload` at `at` under an explicit tie-break key.
    ///
    /// Events at the same instant pop in increasing key order. Callers that
    /// mix `schedule_keyed` with [`EventQueue::schedule`] must keep the key
    /// spaces disjoint or accept interleaving; the sharded executor uses
    /// keys derived from `(origin rank, per-origin counter)` so the merged
    /// order is independent of how ranks are partitioned into shards.
    ///
    /// # Panics
    /// Panics if `at` is before the current time.
    pub fn schedule_keyed(&mut self, at: SimTime, key: u64, payload: E) -> EventId {
        assert!(
            at >= self.now,
            "cannot schedule event in the past: at={at:?} now={:?}",
            self.now
        );
        let slot = match self.free.pop() {
            Some(idx) => {
                // Bump the generation so stale ids and tombstoned heap
                // entries from the previous tenant can't touch this event.
                let s = &mut self.slots[idx as usize];
                s.gen = s.gen.wrapping_add(1);
                s.live = true;
                idx
            }
            None => {
                let idx = self.slots.len() as u32;
                self.slots.push(Slot { gen: 0, live: true });
                idx
            }
        };
        let gen = self.slots[slot as usize].gen;
        self.heap.push(HeapEntry {
            at,
            key,
            slot,
            gen,
            payload,
        });
        self.live_count += 1;
        EventId::new(slot, gen)
    }

    /// True if the heap entry refers to the current, live tenancy of its
    /// slot (i.e. it is not a tombstone).
    #[inline]
    fn entry_is_live(slots: &[Slot], slot: u32, gen: u32) -> bool {
        let s = slots[slot as usize];
        s.gen == gen && s.live
    }

    /// Cancel a previously scheduled event. Returns `true` if the event was
    /// still pending (it will now never fire), `false` if it had already
    /// fired or been cancelled.
    pub fn cancel(&mut self, id: EventId) -> bool {
        let idx = id.slot() as usize;
        match self.slots.get_mut(idx) {
            Some(s) if s.gen == id.gen() && s.live => {
                s.live = false;
                self.free.push(id.slot());
                self.live_count -= 1;
                self.dead_in_heap += 1;
                self.maybe_compact();
                true
            }
            _ => false,
        }
    }

    /// Drop tombstones when they outnumber live entries, so heap memory is
    /// always O(live events). Amortized O(1) per cancellation: a compaction
    /// costing O(n) only runs after n/2 cancellations.
    fn maybe_compact(&mut self) {
        if self.dead_in_heap <= self.live_count || self.dead_in_heap < 64 {
            return;
        }
        let slots = std::mem::take(&mut self.slots);
        let mut entries = std::mem::take(&mut self.heap).into_vec();
        entries.retain(|e| Self::entry_is_live(&slots, e.slot, e.gen));
        entries.shrink_to_fit();
        self.heap = BinaryHeap::from(entries);
        self.slots = slots;
        self.dead_in_heap = 0;
    }

    /// Remove and return the earliest live event, advancing the clock to its
    /// timestamp. Returns `None` when the queue is exhausted.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        while let Some(entry) = self.heap.pop() {
            if !Self::entry_is_live(&self.slots, entry.slot, entry.gen) {
                self.dead_in_heap -= 1;
                continue;
            }
            self.slots[entry.slot as usize].live = false;
            self.free.push(entry.slot);
            self.live_count -= 1;
            debug_assert!(entry.at >= self.now, "event queue produced time travel");
            self.now = entry.at;
            self.popped += 1;
            self.trace.set_now_ns(entry.at.as_nanos());
            return Some(ScheduledEvent {
                at: entry.at,
                id: EventId::new(entry.slot, entry.gen),
                payload: entry.payload,
            });
        }
        None
    }

    /// The timestamp of the next live event without popping it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        // Drop tombstones from the front so peek is accurate.
        while let Some(entry) = self.heap.peek() {
            if Self::entry_is_live(&self.slots, entry.slot, entry.gen) {
                return Some(entry.at);
            }
            self.heap.pop();
            self.dead_in_heap -= 1;
        }
        None
    }

    /// The `(time, key)` ordering coordinate of the next live event without
    /// popping it — what a cross-shard merge compares to find the global
    /// minimum.
    pub fn peek_coord(&mut self) -> Option<(SimTime, u64)> {
        while let Some(entry) = self.heap.peek() {
            if Self::entry_is_live(&self.slots, entry.slot, entry.gen) {
                return Some((entry.at, entry.key));
            }
            self.heap.pop();
            self.dead_in_heap -= 1;
        }
        None
    }

    /// Internal sizes for memory-bound assertions: (heap entries, slot-slab
    /// length, free-list length).
    #[doc(hidden)]
    pub fn debug_mem(&self) -> (usize, usize, usize) {
        (self.heap.len(), self.slots.len(), self.free.len())
    }
}

/// A set of event queues sharded by region with one global ordering.
///
/// Each shard is an independent [`EventQueue`] (own heap, own slot slab, own
/// cancellation), but scheduling stamps every event with a key drawn from a
/// counter shared across shards, and [`ShardedEventQueue::pop`] always
/// returns the globally earliest live event — so the popped sequence is
/// **byte-identical** to a single [`EventQueue`] fed the same schedule calls
/// in the same order, for any shard count. That invariance is the substrate
/// of the parallel one-run executor: shards can be drained independently
/// between synchronization horizons without perturbing the event order a
/// sequential run would see.
pub struct ShardedEventQueue<E> {
    shards: Vec<EventQueue<E>>,
    next_seq: u64,
    now: SimTime,
    popped: u64,
}

impl<E> ShardedEventQueue<E> {
    /// Create a queue with `shards` regions (at least 1).
    pub fn new(shards: usize) -> Self {
        ShardedEventQueue {
            shards: (0..shards.max(1)).map(|_| EventQueue::new()).collect(),
            next_seq: 0,
            now: SimTime::ZERO,
            popped: 0,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Schedule `payload` at `at` on `shard`, stamped with the next key from
    /// the shared sequence. Returns the shard plus the id to cancel with.
    ///
    /// # Panics
    /// Panics if `shard` is out of range or `at` is before the current time.
    pub fn schedule(&mut self, shard: usize, at: SimTime, payload: E) -> (usize, EventId) {
        assert!(
            at >= self.now,
            "cannot schedule event in the past: at={at:?} now={:?}",
            self.now
        );
        let key = self.next_seq;
        self.next_seq += 1;
        (shard, self.shards[shard].schedule_keyed(at, key, payload))
    }

    /// Cancel an event previously scheduled on `shard`.
    pub fn cancel(&mut self, shard: usize, id: EventId) -> bool {
        self.shards[shard].cancel(id)
    }

    /// Remove and return the globally earliest live event (and the shard it
    /// came from), advancing the shared clock.
    pub fn pop(&mut self) -> Option<(usize, ScheduledEvent<E>)> {
        let mut best: Option<(usize, (SimTime, u64))> = None;
        for (i, q) in self.shards.iter_mut().enumerate() {
            if let Some(coord) = q.peek_coord() {
                if best.map(|(_, b)| coord < b).unwrap_or(true) {
                    best = Some((i, coord));
                }
            }
        }
        let (shard, _) = best?;
        let ev = self.shards[shard].pop().expect("peeked shard is non-empty");
        self.now = ev.at;
        self.popped += 1;
        Some((shard, ev))
    }

    /// The timestamp of the globally next live event.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.shards.iter_mut().filter_map(|q| q.peek_time()).min()
    }

    /// Current virtual time (timestamp of the most recent pop).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total events popped.
    pub fn delivered(&self) -> u64 {
        self.popped
    }

    /// Live events across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|q| q.len()).sum()
    }

    /// True if no live events remain anywhere.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|q| q.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn us(n: u64) -> SimTime {
        SimTime::from_us(n)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(us(30), "c");
        q.schedule(us(10), "a");
        q.schedule(us(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn simultaneous_events_pop_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(us(5), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(us(10), ());
        q.schedule(us(25), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), us(10));
        q.pop();
        assert_eq!(q.now(), us(25));
        assert_eq!(q.delivered(), 2);
    }

    #[test]
    #[should_panic(expected = "cannot schedule event in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(us(10), ());
        q.pop();
        q.schedule(us(5), ());
    }

    #[test]
    fn cancellation_suppresses_delivery() {
        let mut q = EventQueue::new();
        let a = q.schedule(us(10), "a");
        q.schedule(us(20), "b");
        assert!(q.cancel(a));
        let e = q.pop().unwrap();
        assert_eq!(e.payload, "b");
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_is_idempotent_and_safe_after_fire() {
        let mut q = EventQueue::new();
        let a = q.schedule(us(10), ());
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double cancel reports false");
        let b = q.schedule(us(20), ());
        q.pop();
        assert!(!q.cancel(b), "cancelling a fired event reports false");
        let bogus = EventId::new(999, 0);
        assert!(!q.cancel(bogus), "unknown id reports false");
    }

    #[test]
    fn stale_id_cannot_cancel_slot_reuser() {
        // `a` fires, freeing its slot; `c` reuses it. The stale handle for
        // `a` must not cancel `c`.
        let mut q = EventQueue::new();
        let a = q.schedule(us(10), "a");
        q.pop();
        let c = q.schedule(us(30), "c");
        assert_eq!(c.slot(), a.slot(), "test assumes slot reuse");
        assert!(!q.cancel(a), "stale id must be inert");
        assert_eq!(q.pop().unwrap().payload, "c");
    }

    #[test]
    fn len_and_is_empty_account_for_cancellations() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        let a = q.schedule(us(1), ());
        q.schedule(us(2), ());
        assert_eq!(q.len(), 2);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule(us(10), "a");
        q.schedule(us(20), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(us(20)));
        assert_eq!(q.pop().unwrap().payload, "b");
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn reschedule_pattern_models_preemption() {
        // Cancel an in-flight completion and push it later — the core move
        // used by the cluster driver when a signal handler preempts a busy
        // loop.
        let mut q = EventQueue::new();
        let done = q.schedule(us(100), "work-done");
        q.schedule(us(40), "signal");
        let e = q.pop().unwrap();
        assert_eq!(e.payload, "signal");
        assert!(q.cancel(done));
        q.schedule(e.at + SimDuration::from_us(70), "work-done");
        let e = q.pop().unwrap();
        assert_eq!((e.payload, e.at), ("work-done", us(110)));
    }

    #[test]
    fn interleaved_schedule_and_pop_is_deterministic() {
        let run = || {
            let mut q = EventQueue::new();
            let mut log = Vec::new();
            q.schedule(us(1), 1u32);
            q.schedule(us(3), 3);
            while let Some(e) = q.pop() {
                log.push((e.at.as_nanos(), e.payload));
                if e.payload == 1 {
                    q.schedule(e.at + SimDuration::from_us(1), 2);
                }
            }
            log
        };
        assert_eq!(run(), run());
        assert_eq!(
            run().iter().map(|&(_, p)| p).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
    }

    #[test]
    fn cancellation_memory_is_bounded_by_live_events() {
        // Sustained cancel/reschedule churn must not grow the heap, the slot
        // slab, or the free list beyond O(peak live events).
        let mut q = EventQueue::new();
        let mut ids = Vec::new();
        for i in 0..100u64 {
            ids.push(q.schedule(us(1_000 + i), i));
        }
        for round in 0..100_000u64 {
            let victim = (round % 100) as usize;
            assert!(q.cancel(ids[victim]));
            ids[victim] = q.schedule(us(2_000 + round), round);
        }
        assert_eq!(q.len(), 100);
        let (heap_len, slab_len, free_len) = q.debug_mem();
        assert!(
            heap_len <= 2 * 100 + 64,
            "heap grew unboundedly: {heap_len} entries for 100 live events"
        );
        assert!(
            slab_len <= 2 * 100 + 64,
            "slot slab grew unboundedly: {slab_len} slots for 100 live events"
        );
        assert!(free_len <= slab_len, "free list exceeds slab");
        // Everything still pops, in time order, exactly once.
        let mut count = 0;
        let mut last = q.now();
        while let Some(e) = q.pop() {
            assert!(e.at >= last);
            last = e.at;
            count += 1;
        }
        assert_eq!(count, 100);
    }

    #[test]
    fn keyed_scheduling_orders_ties_by_key() {
        let mut q = EventQueue::new();
        q.schedule_keyed(us(5), 30, "c");
        q.schedule_keyed(us(5), 10, "a");
        q.schedule_keyed(us(5), 20, "b");
        q.schedule_keyed(us(1), 99, "first");
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec!["first", "a", "b", "c"]);
    }

    #[test]
    fn peek_coord_reports_time_and_key() {
        let mut q = EventQueue::new();
        let a = q.schedule_keyed(us(5), 7, "a");
        q.schedule_keyed(us(9), 1, "b");
        assert_eq!(q.peek_coord(), Some((us(5), 7)));
        q.cancel(a);
        assert_eq!(q.peek_coord(), Some((us(9), 1)));
        q.pop();
        assert_eq!(q.peek_coord(), None);
    }

    #[test]
    fn sharded_queue_matches_single_queue_order() {
        // Feed the same schedule/cancel/pop script to a single queue and to
        // sharded queues of every width; the popped sequences must be
        // byte-identical.
        let script = |shards: usize| -> Vec<(u64, u64)> {
            let mut q = ShardedEventQueue::new(shards);
            let rng = crate::rng::StreamRng::root(0x5EED);
            let mut ids = Vec::new();
            let mut log = Vec::new();
            let mut now = 0u64;
            for step in 0..600u64 {
                let mut r = rng.derive(&[step]);
                match r.below(4) {
                    0 | 1 => {
                        let at = now + r.below(500);
                        let shard = (r.below(shards as u64)) as usize;
                        ids.push(q.schedule(shard, us(at), step));
                    }
                    2 => {
                        if let Some((shard, ev)) = q.pop() {
                            assert!(shard < shards);
                            now = ev.at.as_nanos() / 1_000;
                            log.push((ev.at.as_nanos(), ev.payload));
                        }
                    }
                    _ => {
                        if !ids.is_empty() {
                            let (shard, id) = ids[(r.below(ids.len() as u64)) as usize];
                            q.cancel(shard, id);
                        }
                    }
                }
            }
            while let Some((_, ev)) = q.pop() {
                log.push((ev.at.as_nanos(), ev.payload));
            }
            log
        };
        let single = script(1);
        for shards in [2, 3, 8] {
            assert_eq!(script(shards), single, "shards={shards} diverged");
        }
    }

    #[test]
    fn sharded_queue_len_and_clock() {
        let mut q = ShardedEventQueue::new(4);
        assert!(q.is_empty());
        q.schedule(0, us(10), "a");
        q.schedule(3, us(5), "b");
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(us(5)));
        let (shard, ev) = q.pop().unwrap();
        assert_eq!((shard, ev.payload), (3, "b"));
        assert_eq!(q.now(), us(5));
        q.pop();
        assert_eq!(q.delivered(), 2);
        assert!(q.is_empty());
    }

    #[test]
    fn pop_reclaims_slots_for_reuse() {
        let mut q = EventQueue::new();
        for wave in 0..50u64 {
            for i in 0..10u64 {
                q.schedule(us(wave * 10 + i + 1), i);
            }
            for _ in 0..10 {
                q.pop().unwrap();
            }
        }
        let (heap_len, slab_len, _) = q.debug_mem();
        assert_eq!(heap_len, 0);
        assert!(slab_len <= 10, "slots not reused across waves: {slab_len}");
    }
}
