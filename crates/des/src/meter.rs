//! Per-node CPU-time accounting.
//!
//! The paper's headline metric is *average per-node CPU utilization* of a
//! reduction: the CPU microseconds a node spends on the operation, whether
//! synchronously inside `MPI_Reduce` (polling included) or asynchronously in
//! a signal handler. [`CpuMeter`] charges every simulated CPU activity and
//! supports measurement windows so the microbenchmark can apply the paper's
//! recipe (measure the window, subtract the injected skew and catch-up
//! delays).
//!
//! The [`CpuCategory::NicOffload`] category records work done on the *NIC
//! processor* (the §VII NIC-based-reduction extension); it is excluded from
//! [`CpuWindow::host_total`] because it does not occupy the host CPU.

use crate::time::SimDuration;
use abr_trace::{TraceEvent, TraceHandle};

/// Labels for where CPU time went; used for diagnostic breakdowns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CpuCategory {
    /// Application busy loops (skew injection, catch-up, "useful work").
    Application,
    /// Polling the network inside a blocking MPI call.
    Polling,
    /// Protocol processing: matching, copies, reduction arithmetic, sends.
    Protocol,
    /// Signal delivery and asynchronous handler execution.
    SignalHandler,
    /// Work performed on the NIC processor instead of the host (the
    /// NIC-based reduction extension).
    NicOffload,
}

const NUM_CATEGORIES: usize = 5;

impl CpuCategory {
    /// Stable short label used as the trace/attribution bucket name.
    pub fn label(self) -> &'static str {
        match self {
            CpuCategory::Application => "app",
            CpuCategory::Polling => "poll",
            CpuCategory::Protocol => "protocol",
            CpuCategory::SignalHandler => "signal",
            CpuCategory::NicOffload => "nic",
        }
    }

    fn index(self) -> usize {
        match self {
            CpuCategory::Application => 0,
            CpuCategory::Polling => 1,
            CpuCategory::Protocol => 2,
            CpuCategory::SignalHandler => 3,
            CpuCategory::NicOffload => 4,
        }
    }
}

/// Per-category charge totals captured by a measurement window.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CpuWindow {
    /// Application busy-loop time.
    pub application: SimDuration,
    /// Poll-burn time.
    pub polling: SimDuration,
    /// Protocol work.
    pub protocol: SimDuration,
    /// Signal-handler time.
    pub signal: SimDuration,
    /// NIC-processor time (not host CPU).
    pub nic: SimDuration,
}

impl CpuWindow {
    /// Everything that occupied the *host* CPU during the window.
    pub fn host_total(&self) -> SimDuration {
        self.application + self.polling + self.protocol + self.signal
    }

    /// Host plus NIC time.
    pub fn total(&self) -> SimDuration {
        self.host_total() + self.nic
    }
}

/// Accumulates CPU time charged to a simulated node.
#[derive(Debug, Clone, Default)]
pub struct CpuMeter {
    total: SimDuration,
    by_category: [SimDuration; NUM_CATEGORIES],
    window_open: bool,
    window_start: [SimDuration; NUM_CATEGORIES],
    trace: TraceHandle,
}

impl CpuMeter {
    /// A fresh meter with nothing charged.
    pub fn new() -> Self {
        Self::default()
    }

    /// Route a copy of every future charge to `trace` as
    /// [`TraceEvent::CpuCharge`] events, so the trace-side CPU
    /// attribution reconciles with this meter by construction.
    pub fn set_tracer(&mut self, trace: TraceHandle) {
        self.trace = trace;
    }

    /// Charge `d` of CPU time under `category`.
    pub fn charge(&mut self, category: CpuCategory, d: SimDuration) {
        self.total += d;
        self.by_category[category.index()] += d;
        self.trace.emit(TraceEvent::CpuCharge {
            bucket: category.label(),
            nanos: d.as_nanos(),
        });
    }

    /// All CPU time charged since construction (host and NIC).
    pub fn total(&self) -> SimDuration {
        self.total
    }

    /// CPU time charged under one category.
    pub fn category(&self, category: CpuCategory) -> SimDuration {
        self.by_category[category.index()]
    }

    /// Open a measurement window. Only one window may be open at a time.
    pub fn window_start(&mut self) {
        debug_assert!(!self.window_open, "measurement window already open");
        self.window_open = true;
        self.window_start = self.by_category;
    }

    /// Close the window, returning the per-category CPU time charged while
    /// it was open.
    pub fn window_stop(&mut self) -> CpuWindow {
        debug_assert!(self.window_open, "no measurement window open");
        self.window_open = false;
        let d = |c: CpuCategory| self.by_category[c.index()] - self.window_start[c.index()];
        CpuWindow {
            application: d(CpuCategory::Application),
            polling: d(CpuCategory::Polling),
            protocol: d(CpuCategory::Protocol),
            signal: d(CpuCategory::SignalHandler),
            nic: d(CpuCategory::NicOffload),
        }
    }

    /// True if a measurement window is currently open.
    pub fn window_open(&self) -> bool {
        self.window_open
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(n: u64) -> SimDuration {
        SimDuration::from_us(n)
    }

    #[test]
    fn charges_accumulate_by_category() {
        let mut m = CpuMeter::new();
        m.charge(CpuCategory::Polling, us(3));
        m.charge(CpuCategory::Polling, us(2));
        m.charge(CpuCategory::Protocol, us(1));
        m.charge(CpuCategory::NicOffload, us(7));
        assert_eq!(m.total(), us(13));
        assert_eq!(m.category(CpuCategory::Polling), us(5));
        assert_eq!(m.category(CpuCategory::Protocol), us(1));
        assert_eq!(m.category(CpuCategory::NicOffload), us(7));
        assert_eq!(m.category(CpuCategory::SignalHandler), SimDuration::ZERO);
    }

    #[test]
    fn window_captures_only_enclosed_charges() {
        let mut m = CpuMeter::new();
        m.charge(CpuCategory::Application, us(10));
        m.window_start();
        m.charge(CpuCategory::Polling, us(4));
        m.charge(CpuCategory::SignalHandler, us(6));
        m.charge(CpuCategory::NicOffload, us(5));
        let w = m.window_stop();
        assert_eq!(w.polling, us(4));
        assert_eq!(w.signal, us(6));
        assert_eq!(w.nic, us(5));
        assert_eq!(w.application, SimDuration::ZERO);
        assert_eq!(w.host_total(), us(10));
        assert_eq!(w.total(), us(15));
    }

    #[test]
    fn nic_time_excluded_from_host_total() {
        let mut m = CpuMeter::new();
        m.window_start();
        m.charge(CpuCategory::NicOffload, us(100));
        m.charge(CpuCategory::Protocol, us(1));
        let w = m.window_stop();
        assert_eq!(w.host_total(), us(1));
        assert_eq!(w.total(), us(101));
    }

    #[test]
    fn consecutive_windows_are_independent() {
        let mut m = CpuMeter::new();
        m.window_start();
        m.charge(CpuCategory::Protocol, us(1));
        assert_eq!(m.window_stop().protocol, us(1));
        m.window_start();
        m.charge(CpuCategory::Protocol, us(2));
        assert_eq!(m.window_stop().protocol, us(2));
    }

    #[test]
    fn empty_window_is_zero() {
        let mut m = CpuMeter::new();
        m.window_start();
        let w = m.window_stop();
        assert_eq!(w, CpuWindow::default());
        assert!(!m.window_open());
    }

    #[test]
    fn window_open_flag_tracks_state() {
        let mut m = CpuMeter::new();
        assert!(!m.window_open());
        m.window_start();
        assert!(m.window_open());
        m.window_stop();
        assert!(!m.window_open());
    }
}
