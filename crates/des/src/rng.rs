//! Hierarchically derivable, deterministic random-number streams.
//!
//! The microbenchmarks in the paper draw a fresh random skew per node per
//! iteration. To make every simulation run exactly reproducible (and every
//! (experiment, iteration, rank) stream statistically independent), streams
//! are derived from a root seed by hashing a path of labels with SplitMix64,
//! then feeding the result to a [`rand`] `SmallRng`.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// SplitMix64 step — a tiny, well-mixed 64-bit hash used only for seed
/// derivation (never for the variates themselves).
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Mix a sequence of labels into a single 64-bit seed.
fn mix_path(root: u64, path: &[u64]) -> u64 {
    let mut state = root ^ 0xA076_1D64_78BD_642F;
    let mut acc = splitmix64(&mut state);
    for &label in path {
        state ^= label.wrapping_mul(0xE703_7ED1_A0B4_28DB);
        acc ^= splitmix64(&mut state).rotate_left(17);
    }
    acc
}

/// A deterministic random stream that can spawn independent child streams.
#[derive(Debug, Clone)]
pub struct StreamRng {
    seed: u64,
    rng: SmallRng,
}

impl StreamRng {
    /// Create the root stream for a simulation from a user-provided seed.
    pub fn root(seed: u64) -> Self {
        StreamRng {
            seed,
            rng: SmallRng::seed_from_u64(mix_path(seed, &[])),
        }
    }

    /// Derive an independent child stream from a path of labels, e.g.
    /// `derive(&[experiment_id, iteration, rank])`. Deriving the same path
    /// from the same root always yields the same stream; different paths
    /// yield statistically independent streams.
    pub fn derive(&self, path: &[u64]) -> StreamRng {
        let child_seed = mix_path(self.seed, path);
        StreamRng {
            seed: child_seed,
            rng: SmallRng::seed_from_u64(child_seed),
        }
    }

    /// A uniform draw in `[0, bound)`; returns 0 when `bound == 0` so that a
    /// "maximum skew of zero" degenerates to no skew without branching at the
    /// call site.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.rng.gen_range(0..bound)
        }
    }

    /// A uniform draw in the inclusive range `[lo, hi]`.
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        self.rng.gen_range(lo..=hi)
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.rng.gen::<f64>()
    }

    /// A raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.rng.gen()
    }

    /// Flip a coin with probability `p` of `true`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.rng.gen_bool(p.clamp(0.0, 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_path_same_stream() {
        let root = StreamRng::root(42);
        let mut a = root.derive(&[1, 2, 3]);
        let mut b = root.derive(&[1, 2, 3]);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_paths_diverge() {
        let root = StreamRng::root(42);
        let mut a = root.derive(&[1, 2, 3]);
        let mut b = root.derive(&[1, 2, 4]);
        let draws_a: Vec<_> = (0..8).map(|_| a.next_u64()).collect();
        let draws_b: Vec<_> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(draws_a, draws_b);
    }

    #[test]
    fn different_roots_diverge() {
        let mut a = StreamRng::root(1).derive(&[7]);
        let mut b = StreamRng::root(2).derive(&[7]);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn path_order_matters() {
        let root = StreamRng::root(9);
        let mut a = root.derive(&[1, 2]);
        let mut b = root.derive(&[2, 1]);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_zero_bound_is_zero() {
        let mut r = StreamRng::root(5).derive(&[0]);
        assert_eq!(r.below(0), 0);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = StreamRng::root(5).derive(&[1]);
        for _ in 0..10_000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut r = StreamRng::root(5).derive(&[2]);
        let mut counts = [0u32; 10];
        let n = 100_000;
        for _ in 0..n {
            counts[r.below(10) as usize] += 1;
        }
        for &c in &counts {
            // expect 10_000 each; allow +-5% which is ~16 sigma
            assert!((9_500..10_500).contains(&c), "non-uniform: {counts:?}");
        }
    }

    #[test]
    fn range_inclusive_hits_endpoints() {
        let mut r = StreamRng::root(5).derive(&[3]);
        let (mut saw_lo, mut saw_hi) = (false, false);
        for _ in 0..1_000 {
            match r.range_inclusive(3, 4) {
                3 => saw_lo = true,
                4 => saw_hi = true,
                other => panic!("out of range: {other}"),
            }
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn unit_f64_in_unit_interval() {
        let mut r = StreamRng::root(11).derive(&[4]);
        for _ in 0..1_000 {
            let x = r.unit_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = StreamRng::root(11).derive(&[5]);
        for _ in 0..100 {
            assert!(!r.chance(0.0));
            assert!(r.chance(1.0));
        }
        // Out-of-range probabilities are clamped rather than panicking.
        assert!(r.chance(2.0));
        assert!(!r.chance(-1.0));
    }

    #[test]
    fn derive_from_derived_stream_is_stable() {
        let root = StreamRng::root(1234);
        let child = root.derive(&[10]);
        let mut g1 = child.derive(&[20]);
        let mut g2 = child.derive(&[20]);
        assert_eq!(g1.next_u64(), g2.next_u64());
    }
}
