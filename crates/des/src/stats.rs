//! Streaming statistics used by the benchmark harnesses.

use serde::{Deserialize, Serialize};

/// A streaming accumulator: count, mean, min, max and variance (Welford).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Accumulator {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl Accumulator {
    /// An empty accumulator.
    pub fn new() -> Self {
        Accumulator {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// Fold one observation in.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean; 0 for an empty accumulator.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Smallest observation; `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation; `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Sample variance (n-1 denominator); 0 with fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Merge another accumulator into this one (parallel Welford merge).
    pub fn merge(&mut self, other: &Accumulator) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A fixed-width linear histogram over `[0, width * bins)` with an overflow
/// bucket; used to sanity-check skew distributions in tests.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    width: f64,
    counts: Vec<u64>,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// Create a histogram of `bins` buckets each `width` wide.
    ///
    /// # Panics
    /// Panics if `bins == 0` or `width <= 0`.
    pub fn new(bins: usize, width: f64) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(width > 0.0, "bin width must be positive");
        Histogram {
            width,
            counts: vec![0; bins],
            overflow: 0,
            total: 0,
        }
    }

    /// Record one observation. Negative values clamp into the first bin.
    pub fn record(&mut self, x: f64) {
        self.total += 1;
        let idx = (x.max(0.0) / self.width) as usize;
        if idx < self.counts.len() {
            self.counts[idx] += 1;
        } else {
            self.overflow += 1;
        }
    }

    /// Count in bucket `i`.
    pub fn bucket(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// Number of buckets (excluding overflow).
    pub fn buckets(&self) -> usize {
        self.counts.len()
    }

    /// Observations beyond the last bucket.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The value below which `q` (0..=1) of the observations fall, estimated
    /// at bucket granularity (upper edge of the containing bucket).
    pub fn quantile(&self, q: f64) -> f64 {
        let target = (q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return (i as f64 + 1.0) * self.width;
            }
        }
        f64::INFINITY
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_accumulator_is_benign() {
        let a = Accumulator::new();
        assert_eq!(a.count(), 0);
        assert_eq!(a.mean(), 0.0);
        assert_eq!(a.variance(), 0.0);
        assert_eq!(a.min(), None);
        assert_eq!(a.max(), None);
    }

    #[test]
    fn mean_min_max_sum() {
        let mut a = Accumulator::new();
        for x in [2.0, 4.0, 6.0] {
            a.push(x);
        }
        assert_eq!(a.count(), 3);
        assert_eq!(a.mean(), 4.0);
        assert_eq!(a.min(), Some(2.0));
        assert_eq!(a.max(), Some(6.0));
        assert_eq!(a.sum(), 12.0);
    }

    #[test]
    fn variance_matches_textbook() {
        let mut a = Accumulator::new();
        for x in [1.0, 2.0, 3.0, 4.0] {
            a.push(x);
        }
        // sample variance of 1..4 = 5/3
        assert!((a.variance() - 5.0 / 3.0).abs() < 1e-12);
        assert!((a.std_dev() - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn single_observation_has_zero_variance() {
        let mut a = Accumulator::new();
        a.push(7.0);
        assert_eq!(a.variance(), 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Accumulator::new();
        for &x in &data {
            whole.push(x);
        }
        let mut left = Accumulator::new();
        let mut right = Accumulator::new();
        for &x in &data[..37] {
            left.push(x);
        }
        for &x in &data[37..] {
            right.push(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Accumulator::new();
        a.push(1.0);
        a.push(3.0);
        let before = a.mean();
        a.merge(&Accumulator::new());
        assert_eq!(a.mean(), before);
        let mut empty = Accumulator::new();
        empty.merge(&a);
        assert_eq!(empty.count(), 2);
        assert_eq!(empty.mean(), before);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(4, 10.0);
        for x in [0.0, 5.0, 9.99, 10.0, 25.0, 39.9, 40.0, 1000.0, -3.0] {
            h.record(x);
        }
        assert_eq!(h.bucket(0), 4); // 0, 5, 9.99, -3 (clamped)
        assert_eq!(h.bucket(1), 1); // 10.0
        assert_eq!(h.bucket(2), 1); // 25
        assert_eq!(h.bucket(3), 1); // 39.9
        assert_eq!(h.overflow(), 2); // 40, 1000
        assert_eq!(h.total(), 9);
        assert_eq!(h.buckets(), 4);
    }

    #[test]
    fn histogram_quantile() {
        let mut h = Histogram::new(10, 1.0);
        for i in 0..100 {
            h.record(i as f64 / 10.0); // uniform over [0, 10)
        }
        assert!((h.quantile(0.5) - 5.0).abs() <= 1.0);
        assert!((h.quantile(1.0) - 10.0).abs() <= 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bin_histogram_panics() {
        let _ = Histogram::new(0, 1.0);
    }
}
