//! `abr_des` — a small, deterministic discrete-event simulation (DES) kernel.
//!
//! This crate provides the virtual-time substrate on which the cluster
//! simulator in `abr_cluster` runs:
//!
//! * [`SimTime`] / [`SimDuration`] — nanosecond-resolution virtual time,
//! * [`EventQueue`] — a cancellable priority queue of timestamped events with
//!   deterministic FIFO tie-breaking,
//! * [`rng`] — hierarchically derivable, seeded random-number streams so that
//!   every (experiment, iteration, rank) tuple draws from an independent and
//!   reproducible stream,
//! * [`stats`] — streaming accumulators and histograms used by the
//!   benchmark harnesses,
//! * [`CpuMeter`] — per-node CPU-time accounting with measurement windows,
//!   the instrument behind the paper's "average CPU utilization" metric.
//!
//! The kernel is intentionally generic: it knows nothing about networks,
//! NICs or MPI. Higher layers define their own event payload types.
//!
//! **Tracing**: with an [`abr_trace::TraceHandle`] installed,
//! [`EventQueue::pop`] publishes virtual time to the recorder (making the
//! event loop the single time source for trace stamps) and every
//! [`CpuMeter::charge`] emits a `CpuCharge` event, so trace-side CPU
//! attribution reconciles with the meters by construction. Without a
//! handle both sites cost one `Option` branch.

//! # Example
//!
//! ```
//! use abr_des::{EventQueue, SimTime};
//!
//! let mut q = EventQueue::new();
//! q.schedule(SimTime::from_us(30), "late");
//! let early = q.schedule(SimTime::from_us(10), "early");
//! q.cancel(early);
//! assert_eq!(q.pop().unwrap().payload, "late");
//! assert_eq!(q.now(), SimTime::from_us(30));
//! ```

#![deny(missing_docs)]

pub mod event;
pub mod hash;
pub mod meter;
pub mod rng;
pub mod stats;
pub mod time;

pub use event::{EventId, EventQueue, ScheduledEvent, ShardedEventQueue};
pub use hash::{FxHashMap, FxHashSet};
pub use meter::{CpuMeter, CpuWindow};
pub use rng::StreamRng;
pub use stats::{Accumulator, Histogram};
pub use time::{SimDuration, SimTime};
