//! Rank-to-node placement under per-node slot limits.
//!
//! A cluster node hosts at most `slots` ranks; the placement policy decides
//! which ranks share a node — and therefore which jobs contend for a NIC
//! and a CPU. The three policies bracket the realistic schedules:
//!
//! * [`PlacePolicy::Blocked`] — node-major fill: each job concentrates on
//!   as few nodes as possible, so contention is mostly *intra*-job.
//! * [`PlacePolicy::Cyclic`] — slot-major round-robin: successive ranks
//!   land on successive nodes, so jobs interleave and contention is mostly
//!   *inter*-job.
//! * [`PlacePolicy::Packed`] — greedy most-free-first: a load balancer
//!   that keeps per-node occupancy as even as possible at every step.
//!
//! Placement is deterministic in `(mix, nodes, slots, policy)` and fails
//! fast when the mix demands more slots than the cluster has.

use crate::JobMix;

/// Which ranks share a node. See the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacePolicy {
    /// Node-major fill: concentrate each job on the fewest nodes.
    Blocked,
    /// Slot-major round-robin: spread every job across the whole cluster.
    Cyclic,
    /// Greedy most-free-slots-first balancing.
    Packed,
}

impl PlacePolicy {
    /// Stable label, used in figures and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            PlacePolicy::Blocked => "blocked",
            PlacePolicy::Cyclic => "cyclic",
            PlacePolicy::Packed => "packed",
        }
    }
}

impl std::str::FromStr for PlacePolicy {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim() {
            "blocked" => Ok(PlacePolicy::Blocked),
            "cyclic" => Ok(PlacePolicy::Cyclic),
            "packed" => Ok(PlacePolicy::Packed),
            other => Err(format!(
                "unknown placement policy {other:?} (expected blocked|cyclic|packed)"
            )),
        }
    }
}

/// A complete rank-to-node map for one mix.
#[derive(Debug, Clone, PartialEq)]
pub struct Placement {
    /// Cluster nodes available.
    pub nodes: usize,
    /// Ranks a node can host.
    pub slots: usize,
    /// `node_of[job][local_rank]` = hosting node index.
    pub node_of: Vec<Vec<usize>>,
}

impl Placement {
    /// The identity placement for a single `n`-rank job on `n` nodes —
    /// rank `r` on node `r`, exactly the solo driver's world. This is the
    /// placement the single-job equivalence tests pin against the legacy
    /// path.
    pub fn identity(n: usize) -> Placement {
        Placement {
            nodes: n,
            slots: 1,
            node_of: vec![(0..n).collect()],
        }
    }

    /// Ranks hosted per node (diagnostics and tests).
    pub fn occupancy(&self) -> Vec<usize> {
        let mut occ = vec![0usize; self.nodes];
        for job in &self.node_of {
            for &n in job {
                occ[n] += 1;
            }
        }
        occ
    }
}

/// Place every rank of `mix` onto `nodes` nodes of `slots` slots each.
///
/// Returns an error naming the shortfall when the mix demands more slots
/// than the cluster offers; the figure bins surface it as a panic.
pub fn place(
    mix: &JobMix,
    nodes: usize,
    slots: usize,
    policy: PlacePolicy,
) -> Result<Placement, String> {
    let demand = mix.total_ranks();
    let supply = nodes * slots;
    if demand > supply {
        return Err(format!(
            "placement overflow: mix needs {demand} slots but {nodes} nodes x {slots} slots = {supply}"
        ));
    }
    let mut used = vec![0usize; nodes];
    let mut cursor = 0usize; // Cyclic's rotating node pointer.
    let mut node_of = Vec::with_capacity(mix.jobs.len());
    for job in &mix.jobs {
        let mut hosts = Vec::with_capacity(job.ranks as usize);
        for _ in 0..job.ranks {
            let n = match policy {
                PlacePolicy::Blocked => (0..nodes)
                    .find(|&n| used[n] < slots)
                    .expect("demand checked against supply"),
                PlacePolicy::Cyclic => {
                    let n = (0..nodes)
                        .map(|k| (cursor + k) % nodes)
                        .find(|&n| used[n] < slots)
                        .expect("demand checked against supply");
                    cursor = (n + 1) % nodes;
                    n
                }
                PlacePolicy::Packed => (0..nodes)
                    .filter(|&n| used[n] < slots)
                    .min_by_key(|&n| (used[n], n))
                    .expect("demand checked against supply"),
            };
            used[n] += 1;
            hosts.push(n);
        }
        node_of.push(hosts);
    }
    Ok(Placement {
        nodes,
        slots,
        node_of,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::JobMix;

    fn mix() -> JobMix {
        JobMix::generate(11, 6, 2.0)
    }

    #[test]
    fn every_policy_respects_the_slot_cap() {
        let m = mix();
        let nodes = m.total_ranks(); // roomy
        for policy in [
            PlacePolicy::Blocked,
            PlacePolicy::Cyclic,
            PlacePolicy::Packed,
        ] {
            let p = place(&m, nodes, 2, policy).expect("fits");
            assert_eq!(p.node_of.len(), m.jobs.len());
            for (j, hosts) in p.node_of.iter().enumerate() {
                assert_eq!(hosts.len(), m.jobs[j].ranks as usize);
            }
            assert!(
                p.occupancy().iter().all(|&o| o <= 2),
                "{policy:?} exceeded the slot cap: {:?}",
                p.occupancy()
            );
        }
    }

    #[test]
    fn blocked_concentrates_and_cyclic_spreads() {
        let m = mix();
        let nodes = m.total_ranks();
        let blocked = place(&m, nodes, 4, PlacePolicy::Blocked).expect("fits");
        let cyclic = place(&m, nodes, 4, PlacePolicy::Cyclic).expect("fits");
        let nodes_touched = |p: &Placement| p.occupancy().iter().filter(|&&o| o > 0).count();
        assert!(
            nodes_touched(&blocked) < nodes_touched(&cyclic),
            "blocked ({}) should touch fewer nodes than cyclic ({})",
            nodes_touched(&blocked),
            nodes_touched(&cyclic)
        );
    }

    #[test]
    fn packed_keeps_occupancy_even() {
        let m = mix();
        let nodes = 16;
        let p = place(&m, nodes, 16, PlacePolicy::Packed).expect("fits");
        let occ = p.occupancy();
        let (min, max) = (occ.iter().min().unwrap(), occ.iter().max().unwrap());
        assert!(max - min <= 1, "packed occupancy uneven: {occ:?}");
    }

    #[test]
    fn overflow_fails_with_the_shortfall() {
        let m = mix();
        let err = place(&m, 2, 1, PlacePolicy::Blocked).unwrap_err();
        assert!(err.contains("placement overflow"), "{err}");
    }

    #[test]
    fn identity_placement_is_one_rank_per_node() {
        let p = Placement::identity(5);
        assert_eq!(p.node_of, vec![vec![0, 1, 2, 3, 4]]);
        assert!(p.occupancy().iter().all(|&o| o == 1));
    }

    #[test]
    fn policy_parses_and_rejects_junk() {
        assert_eq!("cyclic".parse::<PlacePolicy>(), Ok(PlacePolicy::Cyclic));
        assert!("best-fit".parse::<PlacePolicy>().is_err());
    }
}
