//! The multi-tenant job layer.
//!
//! Production clusters do not run one solo 32-rank benchmark — they run
//! hundreds of co-scheduled jobs whose ranks share nodes, NICs, and host
//! CPUs. This crate defines the *workload* half of that picture, kept
//! deliberately free of any driver machinery so both the discrete-event and
//! the live threaded runtimes can execute the same mixes:
//!
//! * [`JobSpec`] / [`JobMix`] — a seeded generator producing a deterministic
//!   mix of MapReduce-style shuffle+reduce jobs (the Snippets 2–3 shape:
//!   each iteration shuffles partial results around a ring, then reduces to
//!   a root) and iterative-allreduce "training" jobs.
//! * [`place`] — a placement layer mapping every job rank onto a cluster
//!   node under a per-node slot limit, with [`PlacePolicy::Blocked`] /
//!   [`PlacePolicy::Cyclic`] / [`PlacePolicy::Packed`] policies.
//! * Fail-fast environment knobs (`ABR_TENANT_JOBS`, `ABR_TENANT_LOAD`,
//!   `ABR_TENANT_SLOTS`) parsed through [`abr_trace::parse_env`], so a
//!   typo'd value aborts loudly instead of silently running the default.
//!
//! Everything is a pure function of its seed: the same `(seed, jobs, load)`
//! triple generates byte-identical mixes, and placement is deterministic in
//! the mix — the property the multi-tenant determinism tests pin.

#![deny(missing_docs)]

use abr_des::rng::StreamRng;

mod place;

pub use place::{place, PlacePolicy, Placement};

/// Identifies one job in a [`JobMix`]. Job ids are dense, starting at 0;
/// job 0 of a single-job mix is the legacy solo-driver configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u32);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job{}", self.0)
    }
}

/// What a job's ranks do each iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobKind {
    /// MapReduce-style iteration: each rank computes (busy loop), shuffles
    /// its partial result one hop around the job's rank ring, then the job
    /// reduces to a root — the Snippets 2–3 shuffle+reduce shape.
    ShuffleReduce,
    /// Iterative training job: each rank computes, then the job runs a
    /// (gradient) allreduce.
    Training,
}

impl JobKind {
    /// Short stable label, used in figures and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            JobKind::ShuffleReduce => "shuffle",
            JobKind::Training => "train",
        }
    }
}

/// One job: a rank count, an iteration count, and the per-iteration
/// compute/communication shape. All fields are produced by the seeded
/// generator, so a spec is fully reproducible from the mix seed.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Dense job id.
    pub id: JobId,
    /// Iteration shape.
    pub kind: JobKind,
    /// Ranks in the job's communicator.
    pub ranks: u32,
    /// Iterations (each completes one reduction collective).
    pub iters: u32,
    /// Elements per reduction vector.
    pub elems: u32,
    /// Mean per-iteration compute ("think") time in microseconds —
    /// already divided by the offered-load factor.
    pub think_us: u64,
    /// Per-rank straggler-jitter bound in microseconds. An *absolute*
    /// quantity (OS noise, cache misses, timer quanta), deliberately not
    /// scaled by load: as load rises and think time shrinks, the jitter
    /// comes to dominate the iteration — exactly the regime where blocked
    /// peers wait on stragglers most of the time.
    pub jitter_us: u64,
    /// Per-job RNG seed (drives the per-rank compute jitter).
    pub seed: u64,
}

impl JobSpec {
    /// Reductions this job completes over its lifetime (one per iteration).
    pub fn reductions(&self) -> u64 {
        self.iters as u64
    }
}

/// A seeded, deterministic collection of co-scheduled jobs.
#[derive(Debug, Clone, PartialEq)]
pub struct JobMix {
    /// The generator seed this mix was derived from.
    pub seed: u64,
    /// The offered-load factor the mix was generated at.
    pub load: f64,
    /// The jobs, in id order.
    pub jobs: Vec<JobSpec>,
}

/// RNG stream label for the mix generator.
const STREAM_MIX: u64 = 0x4a4f424d; // "JOBM"

impl JobMix {
    /// Generate `n_jobs` jobs from `seed` at offered-load factor `load`.
    ///
    /// `load` scales how often each job communicates: per-iteration think
    /// time is drawn in a fixed band and divided by `load`, so `load = 1.0`
    /// is a relaxed mix and rising load drives every job toward
    /// back-to-back collectives (saturation). Rank counts alternate through
    /// {4, 8, 16} and kinds through the two shapes, both seed-jittered, so
    /// any nontrivial mix exercises both job kinds and several job sizes.
    ///
    /// # Panics
    /// Panics on a non-positive or non-finite `load`, or zero `n_jobs` —
    /// the callers (figure bins, tests) always have a concrete mix in mind.
    pub fn generate(seed: u64, n_jobs: usize, load: f64) -> JobMix {
        assert!(n_jobs >= 1, "a job mix needs at least one job");
        assert!(
            load.is_finite() && load > 0.0,
            "offered load must be positive and finite, got {load}"
        );
        let root = StreamRng::root(seed);
        let jobs = (0..n_jobs as u32)
            .map(|j| {
                let mut rng = root.derive(&[STREAM_MIX, j as u64]);
                let kind = if rng.below(2) == 0 {
                    JobKind::ShuffleReduce
                } else {
                    JobKind::Training
                };
                let ranks = 1 << rng.range_inclusive(2, 4); // 4 / 8 / 16
                let iters = rng.range_inclusive(8, 16) as u32;
                let base_think = rng.range_inclusive(300, 800) as f64;
                let think_us = (base_think / load).max(1.0).round() as u64;
                let jitter_us = rng.range_inclusive(40, 120);
                JobSpec {
                    id: JobId(j),
                    kind,
                    ranks: ranks as u32,
                    iters,
                    elems: 4,
                    think_us,
                    jitter_us,
                    seed: rng.next_u64(),
                }
            })
            .collect();
        JobMix { seed, load, jobs }
    }

    /// Total ranks across all jobs (the slot demand placement must satisfy).
    pub fn total_ranks(&self) -> usize {
        self.jobs.iter().map(|j| j.ranks as usize).sum()
    }

    /// Total reductions the mix completes.
    pub fn total_reductions(&self) -> u64 {
        self.jobs.iter().map(|j| j.reductions()).sum()
    }
}

/// `ABR_TENANT_JOBS`: number of jobs in the tenant mix.
///
/// # Panics
/// Panics on a set-but-invalid value (non-numeric or zero).
pub fn tenant_jobs_from_env() -> Option<usize> {
    abr_trace::parse_env("ABR_TENANT_JOBS", |raw| match raw.trim().parse::<usize>() {
        Ok(0) | Err(_) => Err(format!(
            "ABR_TENANT_JOBS must be a positive job count, got {raw:?}"
        )),
        Ok(n) => Ok(n),
    })
}

/// `ABR_TENANT_LOAD`: cap the offered-load sweep at this factor (the
/// figure sweeps a fixed ladder of load points and drops those above the
/// cap).
///
/// # Panics
/// Panics on a set-but-invalid value (non-positive or non-finite).
pub fn tenant_load_from_env() -> Option<f64> {
    abr_trace::parse_env("ABR_TENANT_LOAD", |raw| match raw.trim().parse::<f64>() {
        Ok(l) if l.is_finite() && l > 0.0 => Ok(l),
        _ => Err(format!(
            "ABR_TENANT_LOAD must be a positive load factor, got {raw:?}"
        )),
    })
}

/// `ABR_TENANT_SLOTS`: ranks a single cluster node can host.
///
/// # Panics
/// Panics on a set-but-invalid value (non-numeric or zero).
pub fn tenant_slots_from_env() -> Option<usize> {
    abr_trace::parse_env("ABR_TENANT_SLOTS", |raw| {
        match raw.trim().parse::<usize>() {
            Ok(0) | Err(_) => Err(format!(
                "ABR_TENANT_SLOTS must be a positive slot count, got {raw:?}"
            )),
            Ok(n) => Ok(n),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_is_deterministic_in_its_seed() {
        let a = JobMix::generate(42, 8, 2.0);
        let b = JobMix::generate(42, 8, 2.0);
        assert_eq!(a, b);
        let c = JobMix::generate(43, 8, 2.0);
        assert_ne!(a, c, "different seeds should perturb the mix");
    }

    #[test]
    fn mix_covers_both_kinds_and_several_sizes() {
        let mix = JobMix::generate(7, 16, 1.0);
        assert!(mix.jobs.iter().any(|j| j.kind == JobKind::ShuffleReduce));
        assert!(mix.jobs.iter().any(|j| j.kind == JobKind::Training));
        let sizes: std::collections::HashSet<u32> = mix.jobs.iter().map(|j| j.ranks).collect();
        assert!(sizes.len() >= 2, "one rank count only: {sizes:?}");
        for j in &mix.jobs {
            assert!(matches!(j.ranks, 4 | 8 | 16));
            assert!(j.iters >= 8 && j.iters <= 16);
        }
    }

    #[test]
    fn load_scales_think_time_down() {
        let relaxed = JobMix::generate(9, 4, 1.0);
        let saturated = JobMix::generate(9, 4, 8.0);
        for (a, b) in relaxed.jobs.iter().zip(&saturated.jobs) {
            assert!(
                b.think_us < a.think_us,
                "job {}: {} !< {}",
                a.id,
                b.think_us,
                a.think_us
            );
            // Straggler jitter is absolute: load must not touch it.
            assert_eq!(a.jitter_us, b.jitter_us, "job {}: jitter scaled", a.id);
            assert!(a.jitter_us >= 40 && a.jitter_us <= 120);
        }
    }

    #[test]
    #[should_panic(expected = "offered load")]
    fn nonpositive_load_fails_fast() {
        let _ = JobMix::generate(1, 2, 0.0);
    }

    #[test]
    fn job_id_displays_compactly() {
        assert_eq!(JobId(3).to_string(), "job3");
    }
}
