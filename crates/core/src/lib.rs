//! `abr_core` — application-bypass reduction (the paper's contribution).
//!
//! A collective operation with *application bypass* does not require the
//! application to block for the operation to make progress. This crate
//! implements the paper's application-bypass `MPI_Reduce` on top of the
//! MPICH-like runtime in `abr_mpr`:
//!
//! * [`descriptor`] — the *descriptor queue* holding intermediate reduction
//!   state (partial result, parent, pending children) between the
//!   synchronous call and asynchronous processing (§IV-B, §V-A),
//! * [`unexpected`] — the dedicated application-bypass unexpected queue that
//!   halves the copy count for early messages (§V-A),
//! * [`delay`] — the §IV-E bounded exit delay that trades a little blocking
//!   for fewer signals,
//! * [`stats`] — counters proving the paper's copy-reduction claims and
//!   auditing signal behaviour,
//! * [`engine`] — [`AbEngine`], which wraps [`abr_mpr::Engine`] and adds the
//!   gray boxes of Figs. 3-5: the synchronous component inside the reduce
//!   call, the asynchronous handler triggered by NIC signals, and the
//!   signal enable/disable policy,
//! * a split-phase extension ([`engine::AbEngine::ireduce_split`])
//!   implementing the paper's §II/§VII suggestion that a split-phase
//!   interface would let even the *root* benefit from bypass.
//!
//! The decision table (§V-B): root and leaf ranks, and messages beyond the
//! eager limit, fall back to the stock blocking reduction; internal tree
//! nodes run bypassed.
//!
//! **Tracing**: with an [`abr_trace::TraceHandle`] installed (via
//! `MessageEngine::set_tracer`), [`AbEngine`] brackets the synchronous
//! reduction component (`reduce-sync`) and the asynchronous handler
//! (`signal-handler`) as phase events and marks descriptor/broadcast
//! completions, so a Chrome timeline shows Figs. 3-5 as they execute.

//! # Example
//!
//! The Fig. 2 scenario in miniature: an internal node's reduce call
//! returns even though its child never showed up; a signal finishes the
//! reduction later.
//!
//! ```
//! use abr_core::{AbConfig, AbEngine};
//! use abr_mpr::engine::{EngineConfig, MessageEngine};
//! use abr_mpr::{ReduceOp, Datatype};
//! use abr_mpr::types::f64s_to_bytes;
//!
//! // Rank 2 of 4 is internal (children: rank 3) when the root is 0.
//! let mut e = AbEngine::new(2, 4, EngineConfig::default(), AbConfig::default());
//! let comm = e.world();
//! let req = e.ireduce(&comm, 0, ReduceOp::Sum, Datatype::F64, &f64s_to_bytes(&[2.0]));
//! // Child 3 has not arrived, yet the call may return: exit the bounded
//! // block (what a driver does when the §IV-E delay budget expires).
//! assert!(!e.test(req));
//! e.split_phase_exit(req);
//! assert!(e.test(req), "the call returned — application bypass");
//! assert_eq!(e.descriptor_queue().len(), 1, "the reduction itself is pending");
//! assert!(e.signals_enabled(), "and will finish via a signal");
//! ```

#![deny(missing_docs)]

pub mod bcast;
pub mod delay;
pub mod descriptor;
pub mod engine;
pub mod stats;
pub mod unexpected;

pub use abr_mpr::tree::tree_depth;
pub use bcast::{BcastWait, BcastWaitQueue};
pub use delay::DelayPolicy;
pub use descriptor::{DescriptorQueue, ReduceDescriptor};
pub use engine::{AbConfig, AbEngine};
pub use stats::AbStats;
pub use unexpected::AbUnexpectedQueue;
