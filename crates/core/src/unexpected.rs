//! The dedicated application-bypass unexpected queue (§V-A).
//!
//! Early collective messages — ones whose reduction instance has no
//! descriptor yet — are parked here with a *single* copy and consumed
//! directly by the next synchronous reduce call, instead of taking the
//! two-copy trip through MPICH's general unexpected queue. Keeping a
//! separate queue also keeps the optimization away from the common
//! point-to-point path, as the paper stresses.

use abr_mpr::types::Rank;
use bytes::Bytes;
use std::collections::VecDeque;

/// One parked early message.
#[derive(Debug, Clone)]
pub struct AbUnexpectedMsg {
    /// Sending rank (a child for reduce traffic, the parent for broadcast).
    pub src: Rank,
    /// Collective tag (distinguishes reduce from broadcast instances).
    pub tag: i32,
    /// Collective context id.
    pub context: u32,
    /// Instance sequence number.
    pub coll_seq: u64,
    /// Instance root.
    pub root: Rank,
    /// The contribution payload (one copy already made).
    pub data: Bytes,
}

/// FIFO queue of early application-bypass messages.
#[derive(Debug, Default)]
pub struct AbUnexpectedQueue {
    entries: VecDeque<AbUnexpectedMsg>,
    high_water: usize,
    total: u64,
}

impl AbUnexpectedQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Park an early message.
    pub fn push(&mut self, msg: AbUnexpectedMsg) {
        self.entries.push_back(msg);
        self.high_water = self.high_water.max(self.entries.len());
        self.total += 1;
    }

    /// Take the oldest parked message from `src` with `tag` in `context`
    /// (FIFO keeps overlapped instances straight, as with the descriptor
    /// queue).
    pub fn take(&mut self, src: Rank, tag: i32, context: u32) -> Option<AbUnexpectedMsg> {
        let idx = self
            .entries
            .iter()
            .position(|m| m.src == src && m.tag == tag && m.context == context)?;
        self.entries.remove(idx)
    }

    /// Number of parked messages.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Peak occupancy.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Lifetime parked count.
    pub fn total(&self) -> u64 {
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: i32 = -2;

    fn msg(src: Rank, ctx: u32, seq: u64) -> AbUnexpectedMsg {
        AbUnexpectedMsg {
            src,
            tag: T,
            context: ctx,
            coll_seq: seq,
            root: 0,
            data: Bytes::from(vec![seq as u8]),
        }
    }

    #[test]
    fn take_is_fifo_per_sender() {
        let mut q = AbUnexpectedQueue::new();
        q.push(msg(4, 1, 10));
        q.push(msg(4, 1, 11));
        q.push(msg(5, 1, 10));
        assert_eq!(q.take(4, T, 1).unwrap().coll_seq, 10);
        assert_eq!(q.take(4, T, 1).unwrap().coll_seq, 11);
        assert!(q.take(4, T, 1).is_none());
        assert_eq!(q.take(5, T, 1).unwrap().coll_seq, 10);
        assert!(q.is_empty());
    }

    #[test]
    fn context_is_part_of_the_key() {
        let mut q = AbUnexpectedQueue::new();
        q.push(msg(4, 1, 0));
        assert!(q.take(4, T, 2).is_none());
        assert!(q.take(4, T, 1).is_some());
    }

    #[test]
    fn tag_is_part_of_the_key() {
        // A parked broadcast payload must never satisfy a reduce sweep.
        let mut q = AbUnexpectedQueue::new();
        q.push(msg(4, 1, 0));
        assert!(q.take(4, -3, 1).is_none());
        assert!(q.take(4, T, 1).is_some());
    }

    #[test]
    fn counters() {
        let mut q = AbUnexpectedQueue::new();
        q.push(msg(1, 1, 0));
        q.push(msg(2, 1, 0));
        q.take(1, T, 1);
        q.push(msg(3, 1, 0));
        assert_eq!(q.high_water(), 2);
        assert_eq!(q.total(), 3);
        assert_eq!(q.len(), 2);
    }
}
