//! The §IV-E exit-delay heuristic.
//!
//! Interrupts are unnecessary if MPICH is already checking for receives
//! inside `MPI_Reduce`, so the paper experimented with delaying the exit
//! from `MPI_Reduce` briefly when children are still outstanding, hoping
//! late children catch up before the call returns. Too short and nothing is
//! saved; too long and the call re-introduces the blocking the whole design
//! removes. The paper's "simple scheme" scales the delay with the number of
//! processes; we keep that, plus the obvious ablation points.

use abr_des::SimDuration;

/// How long the synchronous component lingers before delegating outstanding
/// children to asynchronous processing.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum DelayPolicy {
    /// Exit immediately (pure application bypass; every late child costs a
    /// signal).
    #[default]
    None,
    /// Delay a fixed number of microseconds regardless of scale.
    Fixed {
        /// The delay.
        us: f64,
    },
    /// The paper's simple scheme: delay proportional to the number of
    /// processes in the reduction.
    PerProcess {
        /// Microseconds per participating process.
        us_per_process: f64,
    },
    /// A depth-aware refinement the paper sketches but leaves open: scale
    /// with the binomial-tree depth instead of the raw process count.
    PerTreeLevel {
        /// Microseconds per tree level (`ceil(log2 size)` levels).
        us_per_level: f64,
    },
}

impl DelayPolicy {
    /// The delay budget for a reduction over `size` processes.
    pub fn budget(&self, size: u32) -> SimDuration {
        match *self {
            DelayPolicy::None => SimDuration::ZERO,
            DelayPolicy::Fixed { us } => SimDuration::from_us_f64(us),
            DelayPolicy::PerProcess { us_per_process } => {
                SimDuration::from_us_f64(us_per_process * size as f64)
            }
            DelayPolicy::PerTreeLevel { us_per_level } => {
                SimDuration::from_us_f64(us_per_level * crate::tree_depth(size) as f64)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_zero() {
        assert_eq!(DelayPolicy::None.budget(32), SimDuration::ZERO);
        assert_eq!(DelayPolicy::default().budget(8), SimDuration::ZERO);
    }

    #[test]
    fn fixed_ignores_size() {
        let p = DelayPolicy::Fixed { us: 7.5 };
        assert_eq!(p.budget(2), p.budget(1024));
        assert_eq!(p.budget(2), SimDuration::from_us_f64(7.5));
    }

    #[test]
    fn per_process_scales_linearly() {
        let p = DelayPolicy::PerProcess {
            us_per_process: 0.5,
        };
        assert_eq!(p.budget(32), SimDuration::from_us(16));
        assert_eq!(p.budget(2), SimDuration::from_us(1));
    }

    #[test]
    fn per_level_scales_logarithmically() {
        let p = DelayPolicy::PerTreeLevel { us_per_level: 3.0 };
        assert_eq!(p.budget(32), SimDuration::from_us(15)); // 5 levels
        assert_eq!(p.budget(2), SimDuration::from_us(3)); // 1 level
        assert!(
            p.budget(1024).as_us_f64()
                < DelayPolicy::PerProcess {
                    us_per_process: 3.0
                }
                .budget(1024)
                .as_us_f64()
        );
    }
}
