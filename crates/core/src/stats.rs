//! Counters auditing the application-bypass implementation.
//!
//! These exist to *prove* the paper's claims in tests and benches: the 50%
//! copy reduction for unexpected messages, the 100% reduction for expected
//! and late messages, the fallback decision table, and the signal economy.

/// Application-bypass counters (monotone).
#[derive(Debug, Clone, Copy, Default)]
pub struct AbStats {
    /// Reductions run through the bypass path (internal nodes).
    pub ab_reductions: u64,
    /// Fallbacks because this rank was the instance root.
    pub fallback_root: u64,
    /// Fallbacks because this rank was a leaf.
    pub fallback_leaf: u64,
    /// Fallbacks because the message exceeded the eager limit.
    pub fallback_large: u64,
    /// Fallbacks because bypass is disabled in configuration.
    pub fallback_disabled: u64,
    /// Children folded in during the synchronous component (Fig. 3).
    pub sync_children: u64,
    /// Children folded in by the asynchronous handler (Fig. 5).
    pub async_children: u64,
    /// Early messages parked on the AB unexpected queue (one copy instead
    /// of MPICH's two: 50% saved).
    pub ab_unexpected_parked: u64,
    /// Expected or late messages consumed directly from the packet buffer
    /// (zero copies instead of MPICH's one: 100% saved).
    pub zero_copy_children: u64,
    /// Results sent to parents from the asynchronous handler.
    pub async_parent_sends: u64,
    /// Results sent to parents inside the synchronous call.
    pub sync_parent_sends: u64,
    /// Signals handled (asynchronous activations).
    pub signals_handled: u64,
    /// Exit delays applied (§IV-E), regardless of whether they helped.
    pub exit_delays: u64,
    /// Reductions whose descriptor drained before the call exited (the
    /// delay or fast children made asynchronous processing unnecessary).
    pub completed_in_sync: u64,
    /// Reductions that exited the call with children still outstanding.
    pub delegated_to_async: u64,
    /// Split-phase reductions posted via the extension API.
    pub split_phase_started: u64,
    /// Children folded in by the NIC processor (NIC-offload extension).
    pub nic_children: u64,
    /// Results forwarded to parents directly by the NIC.
    pub nic_parent_sends: u64,
    /// Application-bypass broadcasts posted (ref. \[8\] companion system).
    pub bcast_splits: u64,
    /// Broadcast payloads forwarded to children by the bypass machinery.
    pub bcast_forwards: u64,
    /// Broadcast waits satisfied inside a signal handler.
    pub async_bcasts: u64,
    /// Split-phase allreduces posted (§II extension).
    pub allreduce_splits: u64,
    /// Segmented (pipelined) bypassed reductions posted: large payloads
    /// run as a window of eager-sized per-segment reduces instead of
    /// falling back to the stock rendezvous path.
    pub seg_reductions: u64,
    /// Bypassed dual-root doubly-pipelined allreduces posted (Träff).
    pub dual_allreduce_splits: u64,
    /// Retransmitted duplicates suppressed by the bypass layer (repeat
    /// `rel_seq` at delivery, or a non-pending sender at descriptor match).
    pub duplicates_suppressed: u64,
}

impl AbStats {
    /// Host memory copies *saved* versus the default MPICH implementation:
    /// one per zero-copy child (expected/late) and one per AB-parked early
    /// message.
    pub fn copies_saved(&self) -> u64 {
        self.zero_copy_children + self.ab_unexpected_parked
    }

    /// Total children folded in through bypass machinery.
    pub fn children_processed(&self) -> u64 {
        self.sync_children + self.async_children
    }

    /// Total fallback count.
    pub fn fallbacks(&self) -> u64 {
        self.fallback_root + self.fallback_leaf + self.fallback_large + self.fallback_disabled
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_sums() {
        let s = AbStats {
            zero_copy_children: 3,
            ab_unexpected_parked: 2,
            sync_children: 4,
            async_children: 5,
            fallback_root: 1,
            fallback_leaf: 2,
            fallback_large: 3,
            fallback_disabled: 4,
            ..Default::default()
        };
        assert_eq!(s.copies_saved(), 5);
        assert_eq!(s.children_processed(), 9);
        assert_eq!(s.fallbacks(), 10);
    }

    #[test]
    fn default_is_zero() {
        let s = AbStats::default();
        assert_eq!(s.copies_saved(), 0);
        assert_eq!(s.fallbacks(), 0);
    }
}
