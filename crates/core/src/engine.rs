//! [`AbEngine`]: the application-bypass layer wrapped around the MPICH-like
//! engine.
//!
//! Composition mirrors the paper's code structure. `abr_mpr::Engine` is
//! stock MPICH over GM; this type adds:
//!
//! * the **mode decision** of §V-B — root and leaf ranks and over-eager-limit
//!   messages fall back to the stock blocking reduction,
//! * the **synchronous component** (Fig. 3) inside [`AbEngine::ireduce`]:
//!   disable signals, enqueue a descriptor, fold in children that already
//!   arrived, optionally linger (§IV-E, via the driver's bounded block),
//!   then exit, enabling signals if work remains,
//! * the **asynchronous component** (Fig. 5), run from
//!   [`AbEngine::handle_signal`] when the NIC raises a signal for a
//!   collective packet: match the sender against the descriptor queue,
//!   apply the operator straight out of the packet buffer (zero copies),
//!   send the result up when a descriptor drains, and disable signals when
//!   the queue empties,
//! * the **pre-processing hook** of Fig. 4 (gray boxes): every incoming
//!   packet is classified before MPICH matching sees it; root-instance
//!   packets pass through to the default mechanisms,
//! * the **split-phase extension** (§II/§VII): [`AbEngine::ireduce_split`]
//!   gives even the root a non-blocking reduce whose completion is driven
//!   entirely by signals.

use crate::bcast::{BcastWait, BcastWaitQueue};
use crate::delay::DelayPolicy;
use crate::descriptor::{DescriptorQueue, ReduceDescriptor};
use crate::stats::AbStats;
use crate::unexpected::{AbUnexpectedMsg, AbUnexpectedQueue};
use abr_des::meter::CpuCategory;
use abr_des::SimDuration;
use abr_gm::packet::{Packet, PacketKind};
use abr_mpr::charge::Charges;
use abr_mpr::engine::{Action, Engine, EngineConfig, MessageEngine};
use abr_mpr::op::ReduceOp;
use abr_mpr::request::Outcome;
use abr_mpr::topology::{shared_schedule, TopoSchedule, TopologyKind};
use abr_mpr::types::{coll_code, coll_tag, coll_tag_code, Datatype, Rank, TagSel};
use abr_mpr::{Communicator, ReqId};
use abr_trace::{TraceEvent, TraceHandle};
use bytes::Bytes;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Configuration of the bypass layer.
#[derive(Debug, Clone)]
pub struct AbConfig {
    /// Master switch; disabled means every reduce takes the stock path and
    /// no collective packet types are emitted (the `nab` baseline).
    pub enabled: bool,
    /// The §IV-E exit-delay policy.
    pub delay: DelayPolicy,
    /// The §VII NIC-based-reduction extension: the NIC processor matches
    /// incoming collective packets against the descriptor table and applies
    /// the operator itself, so late children cost the host *nothing* — no
    /// polling, no signals. The price is the LANai's much slower per-element
    /// arithmetic, charged to the NIC meter.
    pub nic_offload: bool,
}

impl Default for AbConfig {
    fn default() -> Self {
        AbConfig {
            enabled: true,
            delay: DelayPolicy::None,
            nic_offload: false,
        }
    }
}

impl AbConfig {
    /// The stock-MPICH baseline configuration.
    pub fn disabled() -> Self {
        AbConfig {
            enabled: false,
            delay: DelayPolicy::None,
            nic_offload: false,
        }
    }

    /// Application bypass with the NIC-based reduction extension on.
    pub fn nic_offload() -> Self {
        AbConfig {
            enabled: true,
            delay: DelayPolicy::None,
            nic_offload: true,
        }
    }
}

/// The application-bypass engine. Implements [`MessageEngine`] so drivers
/// treat it interchangeably with the baseline [`Engine`].
pub struct AbEngine {
    inner: Engine,
    config: AbConfig,
    rx: VecDeque<Packet>,
    descriptors: DescriptorQueue,
    bcast_waits: BcastWaitQueue,
    ab_unexpected: AbUnexpectedQueue,
    signals_on: bool,
    stats: AbStats,
    /// Bounded-block budgets for reduce calls whose synchronous phase left
    /// children outstanding.
    hints: HashMap<u64, SimDuration>,
    /// In-flight split-phase allreduces (§II extension): reduce-to-0 then
    /// broadcast, both bypassed, chained by the progress paths.
    split_allreduces: Vec<SplitAllreduce>,
    /// In-flight segmented bypassed reductions: each segment is an
    /// independent per-segment split reduce; the master admits segments up
    /// to the pipeline window and concatenates results at the root.
    seg_splits: Vec<SegSplit>,
    /// In-flight bypassed dual-root allreduces: two opposite-direction
    /// chain halves, each a per-segment reduce→bcast pipeline.
    dual_splits: Vec<DualSplit>,
    /// Highest reliability sequence seen per source (see
    /// [`AbStats::duplicates_suppressed`]); independent of the inner
    /// engine's map, which only ever sees the packets we forward.
    last_rel_seq: HashMap<u32, u64>,
}

/// Chaining state of one split-phase allreduce.
struct SplitAllreduce {
    shell: ReqId,
    comm: Communicator,
    len: usize,
    bcast_seq: u64,
    phase1: Option<ReqId>,
    phase2: Option<ReqId>,
}

/// One segmented (pipelined) bypassed reduction. Each segment runs as an
/// independent split-phase reduce on its own pre-allocated sequence
/// number, so segment `i` at this rank is wire-compatible with segment
/// `i` of the stock pipeline running on fallback ranks. At most `window`
/// segments are in flight; new ones are admitted as older ones drain.
struct SegSplit {
    shell: ReqId,
    comm: Communicator,
    root: Rank,
    op: ReduceOp,
    dtype: Datatype,
    data: Vec<u8>,
    base_seq: u64,
    k: usize,
    seg_bytes: usize,
    window: usize,
    started: usize,
    done: usize,
    /// In-flight per-segment requests (index = segment).
    subs: Vec<Option<ReqId>>,
    /// Per-segment results (root only; interior ranks complete `Done`).
    results: Vec<Option<Bytes>>,
}

/// Per-segment position inside one dual-root half's reduce→bcast chain.
enum DualSegState {
    /// Not yet admitted to the pipeline window.
    Pending,
    /// Reduce toward the half's chain root in flight.
    Reduce(ReqId),
    /// Broadcast back down the chain in flight.
    Bcast(ReqId),
    /// Segment result landed in `results`.
    Done,
}

/// One half of a bypassed dual-root allreduce: a byte range of the
/// payload pipelined over a chain schedule (L toward rank 0, H toward
/// rank `size - 1`).
struct DualHalfSplit {
    offset: usize,
    len: usize,
    root: Rank,
    sched: Arc<TopoSchedule>,
    reduce_base_seq: u64,
    bcast_base_seq: u64,
    k: usize,
    seg_bytes: usize,
    started: usize,
    done: usize,
    segs: Vec<DualSegState>,
    results: Vec<Option<Bytes>>,
}

/// A bypassed dual-root doubly-pipelined allreduce (Träff): both halves
/// progress concurrently so both directions of every chain link carry
/// traffic; each rank is interior in one half and root/leaf in the other.
struct DualSplit {
    shell: ReqId,
    comm: Communicator,
    op: ReduceOp,
    dtype: Datatype,
    data: Vec<u8>,
    window: usize,
    halves: [DualHalfSplit; 2],
}

impl AbEngine {
    /// Wrap a fresh engine for `rank` of `size`.
    pub fn new(rank: Rank, size: u32, engine_config: EngineConfig, config: AbConfig) -> Self {
        let mut inner = Engine::new(rank, size, engine_config);
        if config.enabled {
            // All reduction traffic uses the new collective packet type so
            // destination NICs can raise signals (§V-A).
            inner.set_reduce_packet_kind(PacketKind::Collective);
        }
        AbEngine {
            inner,
            config,
            rx: VecDeque::new(),
            descriptors: DescriptorQueue::new(),
            bcast_waits: BcastWaitQueue::new(),
            ab_unexpected: AbUnexpectedQueue::new(),
            signals_on: false,
            stats: AbStats::default(),
            hints: HashMap::new(),
            split_allreduces: Vec::new(),
            seg_splits: Vec::new(),
            dual_splits: Vec::new(),
            last_rel_seq: HashMap::new(),
        }
    }

    /// Bypass counters.
    pub fn ab_stats(&self) -> &AbStats {
        &self.stats
    }

    /// The wrapped engine (stats, memory audits).
    pub fn inner(&self) -> &Engine {
        &self.inner
    }

    /// Mutable access to the wrapped engine, for operations the bypass
    /// layer does not intercept (gather/scatter/allgather and friends).
    pub fn inner_mut(&mut self) -> &mut Engine {
        &mut self.inner
    }

    /// Rebind the world communicator (per-job contexts in a multi-tenant
    /// run); delegates to the wrapped engine, which owns all sequence
    /// allocation.
    pub fn set_world(&mut self, world: Communicator) {
        self.inner.set_world(world);
    }

    /// Outstanding descriptors (diagnostics).
    pub fn descriptor_queue(&self) -> &DescriptorQueue {
        &self.descriptors
    }

    /// The AB unexpected queue (diagnostics).
    pub fn ab_unexpected_queue(&self) -> &AbUnexpectedQueue {
        &self.ab_unexpected
    }

    /// Pending application-bypass broadcasts (diagnostics).
    pub fn bcast_wait_queue(&self) -> &BcastWaitQueue {
        &self.bcast_waits
    }

    /// True while any bypass state is outstanding (descriptors or bcasts).
    fn bypass_idle(&self) -> bool {
        self.descriptors.is_empty() && self.bcast_waits.is_empty()
    }

    /// Whether this engine currently wants NIC signals enabled.
    pub fn signals_enabled(&self) -> bool {
        self.signals_on
    }

    /// The configured exit-delay policy.
    pub fn delay_policy(&self) -> DelayPolicy {
        self.config.delay
    }

    fn set_signals(&mut self, on: bool) {
        if self.signals_on == on {
            return;
        }
        self.signals_on = on;
        let toggle = self.inner.cost().signal_toggle();
        self.inner.charge(CpuCategory::Protocol, toggle);
        self.inner.push_action(if on {
            Action::EnableSignals
        } else {
            Action::DisableSignals
        });
    }

    /// The split-phase extension (§II/§VII): a non-blocking reduce whose
    /// request completes — possibly entirely asynchronously, via signals —
    /// when this rank's part is done. For the root that means the full
    /// result ([`Outcome::Data`]); for every other rank, when its subtree
    /// result has been sent up ([`Outcome::Done`]). Unlike
    /// [`AbEngine::ireduce`], even the root bypasses the application, and
    /// the caller never needs to poll if signals are enabled.
    ///
    /// Falls back to the stock path for over-eager-limit messages and for
    /// leaves (whose only action is a send, completing immediately).
    ///
    /// Large payloads under an [`EngineConfig::segments`] window of 2+
    /// segment instead of falling back: each eager-sized segment is an
    /// independent split reduce, pipelined up the same tree.
    pub fn ireduce_split(
        &mut self,
        comm: &Communicator,
        root: Rank,
        op: ReduceOp,
        dtype: Datatype,
        data: &[u8],
    ) -> ReqId {
        comm.check_rank(root).expect("invalid root");
        // The plan depends only on configuration shared by every rank, so
        // all ranks agree on the segment count (and thus on how many
        // sequence numbers this collective consumes) before any rank-local
        // mode decision.
        let (k, seg_bytes) = self
            .inner
            .segment_plan(root, comm.size, data.len(), dtype.size());
        if k >= 2 {
            return self.ireduce_segmented(comm, root, op, dtype, data, k, seg_bytes, true);
        }
        let seq = self.inner.alloc_coll_seq(comm.coll_context);
        self.ireduce_split_with_seq(comm, root, op, dtype, data, seq)
    }

    /// As [`AbEngine::ireduce_split`] with an externally allocated instance
    /// sequence number (the split-phase allreduce pre-allocates both
    /// phases' numbers so every rank agrees on instance order).
    fn ireduce_split_with_seq(
        &mut self,
        comm: &Communicator,
        root: Rank,
        op: ReduceOp,
        dtype: Datatype,
        data: &[u8],
        seq: u64,
    ) -> ReqId {
        let sched = self.inner.schedule(root, comm.size);
        self.ireduce_split_with_seq_sched(comm, root, op, dtype, data, seq, sched)
    }

    /// As [`AbEngine::ireduce_split_with_seq`] against an explicit schedule
    /// (the dual-root halves reduce over chain schedules regardless of the
    /// configured topology).
    #[allow(clippy::too_many_arguments)] // mirrors ireduce_split_with_seq + sched
    fn ireduce_split_with_seq_sched(
        &mut self,
        comm: &Communicator,
        root: Rank,
        op: ReduceOp,
        dtype: Datatype,
        data: &[u8],
        seq: u64,
        sched: Arc<TopoSchedule>,
    ) -> ReqId {
        let rank = self.inner.rank();
        if !self.config.enabled || data.len() > self.inner.eager_limit() {
            self.stats.fallback_large += u64::from(self.config.enabled);
            self.stats.fallback_disabled += u64::from(!self.config.enabled);
            return self
                .inner
                .ireduce_with_seq_sched(comm, root, op, dtype, data, seq, sched);
        }
        if sched.is_leaf(rank) || comm.size == 1 {
            // A leaf's only action is the send; the stock path already
            // completes it without blocking. Size-1: trivially complete.
            return self
                .inner
                .ireduce_with_seq_sched(comm, root, op, dtype, data, seq, sched);
        }
        self.stats.split_phase_started += 1;
        let parent = sched.parent_of(rank);
        self.ab_reduce_start(comm, root, op, dtype, data, seq, parent, true, sched)
    }

    /// Application-bypass broadcast (the companion system of ref. \[8\]): the
    /// call returns immediately; the request completes with the payload
    /// when the parent's data arrives — driven by signals, never by the
    /// application blocking. The root completes at once (it owns the data);
    /// interior nodes forward down their subtree from the signal handler.
    ///
    /// Falls back to the stock blocking broadcast when bypass is disabled
    /// or the payload exceeds the eager limit.
    pub fn ibcast_split(
        &mut self,
        comm: &Communicator,
        root: Rank,
        data: Option<Bytes>,
        len: usize,
    ) -> ReqId {
        comm.check_rank(root).expect("invalid root");
        let seq = self.inner.alloc_coll_seq(comm.coll_context);
        self.ibcast_split_with_seq(comm, root, data, len, seq)
    }

    fn ibcast_split_with_seq(
        &mut self,
        comm: &Communicator,
        root: Rank,
        data: Option<Bytes>,
        len: usize,
        seq: u64,
    ) -> ReqId {
        let sched = self.inner.schedule(root, comm.size);
        self.ibcast_split_with_seq_sched(comm, root, data, len, seq, sched)
    }

    /// As [`AbEngine::ibcast_split_with_seq`] against an explicit schedule
    /// (the dual-root halves broadcast over chain schedules regardless of
    /// the configured topology).
    fn ibcast_split_with_seq_sched(
        &mut self,
        comm: &Communicator,
        root: Rank,
        data: Option<Bytes>,
        len: usize,
        seq: u64,
        sched: Arc<TopoSchedule>,
    ) -> ReqId {
        let rank = self.inner.rank();
        if !self.config.enabled || len > self.inner.eager_limit() {
            return self
                .inner
                .ibcast_with_seq_sched(comm, root, data, len, seq, sched);
        }
        self.stats.bcast_splits += 1;
        if rank == root {
            let payload = data.expect("the root supplies bcast data");
            debug_assert_eq!(payload.len(), len);
            let req = self.inner.alloc_shell_req();
            // Largest subtree first, like the blocking path.
            for i in (0..sched.children_of(rank).len()).rev() {
                let child = sched.children_of(rank)[i];
                let send = self.inner.isend_with_kind(
                    child,
                    coll_tag(coll_code::BCAST, seq, 0),
                    comm.coll_context,
                    payload.clone(),
                    PacketKind::Collective,
                    seq,
                    root,
                );
                let done = self.inner.take_outcome(send);
                debug_assert!(matches!(done, Some(Outcome::Done)));
                self.stats.bcast_forwards += 1;
            }
            self.inner.complete_shell(req, Outcome::Data(payload));
            return req;
        }
        let req = self.inner.alloc_shell_req();
        let parent = sched.parent_of(rank).expect("non-root has a parent");
        // The parent's data may already be parked (early arrival).
        if let Some(msg) = self.ab_unexpected.take(
            parent,
            coll_tag(coll_code::BCAST, seq, 0),
            comm.coll_context,
        ) {
            debug_assert_eq!(msg.coll_seq, seq, "bcast instance mix-up");
            let w = BcastWait {
                context: comm.coll_context,
                coll_seq: seq,
                root,
                parent,
                len,
                sched,
                call_req: req,
            };
            self.deliver_bcast(w, msg.data, false);
            return req;
        }
        self.bcast_waits.push(BcastWait {
            context: comm.coll_context,
            coll_seq: seq,
            root,
            parent,
            len,
            sched,
            call_req: req,
        });
        // Split-phase: the application will not poll; arm signals (broadcast
        // stays host-signal-driven even under NIC reduce offload).
        self.set_signals(true);
        // Drain anything already in the receive queue — the data may be
        // sitting there right now.
        self.drain_rx(false);
        self.inner.crank();
        req
    }

    /// Split-phase allreduce (the paper's §II observation that even
    /// synchronizing operations benefit "if they are implemented in a
    /// split-phase manner"): a bypassed reduce to rank 0 chained into a
    /// bypassed broadcast, driven entirely by the progress paths. Every
    /// rank's request completes with the reduced data.
    pub fn iallreduce_split(
        &mut self,
        comm: &Communicator,
        op: ReduceOp,
        dtype: Datatype,
        data: &[u8],
    ) -> ReqId {
        // Pre-allocate both phases' instance numbers so all ranks agree on
        // collective order regardless of when the chain advances locally.
        let reduce_seq = self.inner.alloc_coll_seq(comm.coll_context);
        let bcast_seq = self.inner.alloc_coll_seq(comm.coll_context);
        self.stats.allreduce_splits += 1;
        let shell = self.inner.alloc_shell_req();
        let phase1 = self.ireduce_split_with_seq(comm, 0, op, dtype, data, reduce_seq);
        self.split_allreduces.push(SplitAllreduce {
            shell,
            comm: *comm,
            len: data.len(),
            bcast_seq,
            phase1: Some(phase1),
            phase2: None,
        });
        self.step_split_allreduces();
        shell
    }

    /// Advance any split-phase allreduce chains whose current phase has
    /// completed. Called from every progress path.
    fn step_split_allreduces(&mut self) {
        if self.split_allreduces.is_empty() {
            return;
        }
        let mut i = 0;
        while i < self.split_allreduces.len() {
            // Phase 1 -> phase 2 transition.
            if let Some(p1) = self.split_allreduces[i].phase1 {
                if self.inner.test(p1) {
                    let out = self.inner.take_outcome(p1);
                    let (comm, len, bcast_seq) = {
                        let e = &self.split_allreduces[i];
                        (e.comm, e.len, e.bcast_seq)
                    };
                    let data = match out {
                        Some(Outcome::Data(d)) => Some(d),
                        Some(Outcome::Done) | None => None,
                        Some(Outcome::Failed(err)) => {
                            let shell = self.split_allreduces.remove(i).shell;
                            self.inner.complete_shell(shell, Outcome::Failed(err));
                            continue;
                        }
                    };
                    debug_assert_eq!(data.is_some(), self.inner.rank() == 0);
                    let p2 = self.ibcast_split_with_seq(&comm, 0, data, len, bcast_seq);
                    let e = &mut self.split_allreduces[i];
                    e.phase1 = None;
                    e.phase2 = Some(p2);
                }
            }
            // Phase 2 completion.
            if let Some(p2) = self.split_allreduces[i].phase2 {
                if self.inner.test(p2) {
                    let out = self.inner.take_outcome(p2);
                    let shell = self.split_allreduces.remove(i).shell;
                    match out {
                        Some(o) => self.inner.complete_shell(shell, o),
                        None => unreachable!("tested complete"),
                    }
                    continue;
                }
            }
            i += 1;
        }
    }

    /// Shared body of the segmented reduce paths (blocking and split): one
    /// sequence number per segment, stock segmented pipeline on the §V-B
    /// fallback ranks, a [`SegSplit`] master of per-segment bypassed
    /// reduces everywhere else. The two are wire-compatible because both
    /// tag segment `i` with `base_seq + i`.
    #[allow(clippy::too_many_arguments)] // mirrors ireduce + the segment plan
    fn ireduce_segmented(
        &mut self,
        comm: &Communicator,
        root: Rank,
        op: ReduceOp,
        dtype: Datatype,
        data: &[u8],
        k: usize,
        seg_bytes: usize,
        split: bool,
    ) -> ReqId {
        // Reserve the block even on fallback ranks: every rank must consume
        // the same count to keep later instances' tags aligned.
        let base_seq = self.inner.alloc_seq_range(comm.coll_context, k);
        let rank = self.inner.rank();
        if !self.config.enabled {
            self.stats.fallback_disabled += 1;
            return self
                .inner
                .ireduce_segmented_with_seqs(comm, root, op, dtype, data, base_seq, k, seg_bytes);
        }
        let sched = self.inner.schedule(root, comm.size);
        if (!split && rank == root) || sched.is_leaf(rank) {
            // Same §V-B fallbacks as the single-segment path; the stock
            // pipeline reuses the pre-allocated sequence block so its
            // per-segment tags match the bypassed ranks' exactly.
            if !split && rank == root {
                self.stats.fallback_root += 1;
            } else {
                self.stats.fallback_leaf += 1;
            }
            return self
                .inner
                .ireduce_segmented_with_seqs(comm, root, op, dtype, data, base_seq, k, seg_bytes);
        }
        self.stats.seg_reductions += 1;
        if !split {
            self.stats.ab_reductions += 1;
        }
        let shell = self.inner.alloc_shell_req();
        self.seg_splits.push(SegSplit {
            shell,
            comm: *comm,
            root,
            op,
            dtype,
            data: data.to_vec(),
            base_seq,
            k,
            seg_bytes,
            window: self.inner.segment_window(),
            started: 0,
            done: 0,
            subs: vec![None; k],
            results: vec![None; k],
        });
        self.step_seg_splits();
        shell
    }

    /// Advance the segmented-reduction masters: admit segments while the
    /// pipeline window has room, reap completed per-segment requests, and
    /// complete the shell when the last segment drains. Called from every
    /// progress path.
    fn step_seg_splits(&mut self) {
        if self.seg_splits.is_empty() {
            return;
        }
        // Detach the list so per-segment posts (which re-enter the engine)
        // can never alias it.
        let mut list = std::mem::take(&mut self.seg_splits);
        let mut i = 0;
        while i < list.len() {
            let mut failed = None;
            loop {
                let mut advanced = false;
                // Admit segments while the window has room.
                while failed.is_none() {
                    let e = &list[i];
                    if e.started - e.done >= e.window || e.started >= e.k {
                        break;
                    }
                    let s = e.started;
                    let lo = s * e.seg_bytes;
                    let hi = (lo + e.seg_bytes).min(e.data.len());
                    let (comm, root, op, dtype) = (e.comm, e.root, e.op, e.dtype);
                    let seq = e.base_seq + s as u64;
                    self.inner.tracer().emit(TraceEvent::SegPhaseEnter {
                        phase: "seg-split",
                        seg: s as u32,
                    });
                    let sub = self.ireduce_split_with_seq(
                        &comm,
                        root,
                        op,
                        dtype,
                        &list[i].data[lo..hi],
                        seq,
                    );
                    let e = &mut list[i];
                    e.started += 1;
                    e.subs[s] = Some(sub);
                    advanced = true;
                }
                // Reap completed segments.
                for s in 0..list[i].started {
                    let Some(sub) = list[i].subs[s] else { continue };
                    if !self.inner.test(sub) {
                        continue;
                    }
                    let out = self.inner.take_outcome(sub);
                    let e = &mut list[i];
                    e.subs[s] = None;
                    e.done += 1;
                    match out {
                        Some(Outcome::Data(d)) => e.results[s] = Some(d),
                        Some(Outcome::Done) | None => {}
                        Some(Outcome::Failed(err)) => failed = Some(err),
                    }
                    self.inner.tracer().emit(TraceEvent::SegPhaseExit {
                        phase: "seg-split",
                        seg: s as u32,
                    });
                    advanced = true;
                }
                if !advanced || failed.is_some() {
                    break;
                }
            }
            if let Some(err) = failed {
                let shell = list.remove(i).shell;
                self.inner.complete_shell(shell, Outcome::Failed(err));
                continue;
            }
            if list[i].done == list[i].k {
                let e = list.remove(i);
                if self.inner.rank() == e.root {
                    // Split-phase root: concatenate the segment results.
                    let total = e
                        .results
                        .iter()
                        .map(|r| r.as_ref().map_or(0, |b| b.len()))
                        .sum();
                    let mut out = Vec::with_capacity(total);
                    for r in e.results {
                        out.extend_from_slice(&r.expect("root holds every segment result"));
                    }
                    self.inner
                        .complete_shell(e.shell, Outcome::Data(Bytes::from(out)));
                } else {
                    self.inner.complete_shell(e.shell, Outcome::Done);
                }
                continue;
            }
            i += 1;
        }
        let mut reentrant = std::mem::replace(&mut self.seg_splits, list);
        self.seg_splits.append(&mut reentrant);
    }

    /// Split-phase dual-root doubly-pipelined allreduce (Träff): the
    /// bypassed counterpart of [`Engine::iallreduce_dual`]. The payload
    /// splits into element-aligned halves pipelined over opposite-direction
    /// chains; each segment is a bypassed reduce chained into a bypassed
    /// broadcast, and the request completes with the full reduced vector on
    /// every rank.
    pub fn iallreduce_dual_split(
        &mut self,
        comm: &Communicator,
        op: ReduceOp,
        dtype: Datatype,
        data: &[u8],
    ) -> ReqId {
        let elem = dtype.size();
        let lo_len = data.len() / elem / 2 * elem;
        let hi_len = data.len() - lo_len;
        if !self.config.enabled || comm.size < 2 || lo_len == 0 || hi_len == 0 {
            // Too small to split (or bypass is off): the stock dual-root
            // path degrades identically on every rank.
            return MessageEngine::iallreduce_dual(self, comm, op, dtype, data);
        }
        self.stats.dual_allreduce_splits += 1;
        let sched_l = shared_schedule(TopologyKind::Chain, 0, comm.size);
        let sched_h = shared_schedule(TopologyKind::ChainRev, comm.size - 1, comm.size);
        let (k_l, seg_l) = self.inner.plan_segments(lo_len, elem, sched_l.max_depth());
        let (k_h, seg_h) = self.inner.plan_segments(hi_len, elem, sched_h.max_depth());
        // Same fixed allocation order as the stock dual-root path:
        // [L reduce][L bcast][H reduce][H bcast].
        let ctx = comm.coll_context;
        let l_red = self.inner.alloc_seq_range(ctx, k_l);
        let l_bc = self.inner.alloc_seq_range(ctx, k_l);
        let h_red = self.inner.alloc_seq_range(ctx, k_h);
        let h_bc = self.inner.alloc_seq_range(ctx, k_h);
        let shell = self.inner.alloc_shell_req();
        let half = |offset: usize,
                    len: usize,
                    root: Rank,
                    sched: Arc<TopoSchedule>,
                    red: u64,
                    bc: u64,
                    k: usize,
                    seg_bytes: usize| DualHalfSplit {
            offset,
            len,
            root,
            sched,
            reduce_base_seq: red,
            bcast_base_seq: bc,
            k,
            seg_bytes,
            started: 0,
            done: 0,
            segs: (0..k).map(|_| DualSegState::Pending).collect(),
            results: vec![None; k],
        };
        self.dual_splits.push(DualSplit {
            shell,
            comm: *comm,
            op,
            dtype,
            data: data.to_vec(),
            window: self.inner.segment_window(),
            halves: [
                half(0, lo_len, 0, sched_l, l_red, l_bc, k_l, seg_l),
                half(
                    lo_len,
                    hi_len,
                    comm.size - 1,
                    sched_h,
                    h_red,
                    h_bc,
                    k_h,
                    seg_h,
                ),
            ],
        });
        self.step_dual_splits();
        shell
    }

    /// Advance the bypassed dual-root allreduces: per half, admit reduce
    /// segments while the window has room, chain completed reduces into
    /// broadcasts, and complete the shell once both halves hold every
    /// segment's broadcast payload. Called from every progress path.
    fn step_dual_splits(&mut self) {
        if self.dual_splits.is_empty() {
            return;
        }
        let mut list = std::mem::take(&mut self.dual_splits);
        let mut i = 0;
        while i < list.len() {
            let mut failed = None;
            'steps: loop {
                let mut advanced = false;
                for h in 0..2 {
                    let label = if h == 0 {
                        "dual-split-lo"
                    } else {
                        "dual-split-hi"
                    };
                    // Admit reduce segments while the window has room.
                    loop {
                        let e = &list[i];
                        let half = &e.halves[h];
                        if half.started - half.done >= e.window || half.started >= half.k {
                            break;
                        }
                        let s = half.started;
                        let lo = half.offset + s * half.seg_bytes;
                        let hi = (lo + half.seg_bytes).min(half.offset + half.len);
                        let seq = half.reduce_base_seq + s as u64;
                        let (comm, op, dtype, root) = (e.comm, e.op, e.dtype, half.root);
                        let sched = Arc::clone(&half.sched);
                        self.inner.tracer().emit(TraceEvent::SegPhaseEnter {
                            phase: label,
                            seg: s as u32,
                        });
                        let sub = self.ireduce_split_with_seq_sched(
                            &comm,
                            root,
                            op,
                            dtype,
                            &list[i].data[lo..hi],
                            seq,
                            sched,
                        );
                        let half = &mut list[i].halves[h];
                        half.started += 1;
                        half.segs[s] = DualSegState::Reduce(sub);
                        advanced = true;
                    }
                    // Reap: reduces chain into broadcasts; broadcasts finish
                    // the segment on every rank.
                    for s in 0..list[i].halves[h].started {
                        let sub = match &list[i].halves[h].segs[s] {
                            DualSegState::Reduce(r) => *r,
                            DualSegState::Bcast(b) => *b,
                            _ => continue,
                        };
                        if !self.inner.test(sub) {
                            continue;
                        }
                        let reducing = matches!(list[i].halves[h].segs[s], DualSegState::Reduce(_));
                        let out = self.inner.take_outcome(sub);
                        if let Some(Outcome::Failed(err)) = out {
                            failed = Some(err);
                            break 'steps;
                        }
                        if reducing {
                            // The half's root holds the segment result;
                            // everyone chains into the broadcast.
                            let payload = match out {
                                Some(Outcome::Data(d)) => Some(d),
                                _ => None,
                            };
                            let e = &list[i];
                            let half = &e.halves[h];
                            debug_assert_eq!(payload.is_some(), self.inner.rank() == half.root);
                            let seg_len = payload.as_ref().map_or_else(
                                || half.seg_bytes.min(half.len - s * half.seg_bytes),
                                |d| d.len(),
                            );
                            let seq = half.bcast_base_seq + s as u64;
                            let (comm, root) = (e.comm, half.root);
                            let sched = Arc::clone(&half.sched);
                            let sub2 = self.ibcast_split_with_seq_sched(
                                &comm, root, payload, seg_len, seq, sched,
                            );
                            list[i].halves[h].segs[s] = DualSegState::Bcast(sub2);
                        } else {
                            let d = match out {
                                Some(Outcome::Data(d)) => d,
                                _ => unreachable!("broadcast completes with the payload"),
                            };
                            self.inner.tracer().emit(TraceEvent::SegPhaseExit {
                                phase: label,
                                seg: s as u32,
                            });
                            let half = &mut list[i].halves[h];
                            half.results[s] = Some(d);
                            half.segs[s] = DualSegState::Done;
                            half.done += 1;
                        }
                        advanced = true;
                    }
                }
                if !advanced {
                    break;
                }
            }
            if let Some(err) = failed {
                let shell = list.remove(i).shell;
                self.inner.complete_shell(shell, Outcome::Failed(err));
                continue;
            }
            if list[i].halves.iter().all(|half| half.done == half.k) {
                let e = list.remove(i);
                let mut out = Vec::with_capacity(e.data.len());
                for half in &e.halves {
                    for r in &half.results {
                        out.extend_from_slice(r.as_ref().expect("every segment broadcast"));
                    }
                }
                debug_assert_eq!(out.len(), e.data.len());
                self.inner
                    .complete_shell(e.shell, Outcome::Data(Bytes::from(out)));
                continue;
            }
            i += 1;
        }
        let mut reentrant = std::mem::replace(&mut self.dual_splits, list);
        self.dual_splits.append(&mut reentrant);
    }

    /// Shared body of the bypassed reduce paths. `parent == None` is the
    /// split-phase root, which keeps the result.
    #[allow(clippy::too_many_arguments)]
    fn ab_reduce_start(
        &mut self,
        comm: &Communicator,
        root: Rank,
        op: ReduceOp,
        dtype: Datatype,
        data: &[u8],
        seq: u64,
        parent: Option<Rank>,
        split: bool,
        sched: Arc<TopoSchedule>,
    ) -> ReqId {
        let rank = self.inner.rank();
        let ctx = comm.coll_context;
        self.inner.tracer().emit(TraceEvent::PhaseEnter {
            phase: "reduce-sync",
        });
        // Fig. 3: first, disable signals — we will be making communication
        // progress explicitly inside the call.
        self.set_signals(false);
        let req = self.inner.alloc_shell_req();
        let kids = sched.children_of(rank);
        let desc_cost = self.inner.cost().descriptor();
        self.inner.charge(CpuCategory::Protocol, desc_cost);
        let mut desc = ReduceDescriptor {
            context: ctx,
            coll_seq: seq,
            root,
            op,
            dtype,
            acc: data.to_vec(),
            parent,
            pending_children: kids.to_vec(),
            call_req: Some(req),
        };
        // Fold in children already parked on the AB unexpected queue —
        // processed directly from the queue, no second copy (§V-B).
        for child in kids {
            if let Some(msg) =
                self.ab_unexpected
                    .take(*child, coll_tag(coll_code::REDUCE, seq, 0), ctx)
            {
                debug_assert_eq!(msg.coll_seq, seq, "FIFO instance mix-up");
                let op_cost = self.inner.cost().reduce_op(dtype.count(desc.acc.len()));
                self.inner.charge(CpuCategory::Protocol, op_cost);
                desc.op
                    .apply(dtype, &mut desc.acc, &msg.data)
                    .expect("op/type checked at post");
                desc.complete_child(*child);
                self.stats.sync_children += 1;
            }
        }
        // The split-phase root may find children in the *MPICH* unexpected
        // queue (they passed through pre-processing before this descriptor
        // existed, back when this rank looked like a blocking root).
        if parent.is_none() {
            let pending = desc.pending_children.clone();
            for child in pending {
                if let Some(msg) = self.inner.take_unexpected(
                    Some(child),
                    TagSel::Is(coll_tag(coll_code::REDUCE, seq, 0)),
                    ctx,
                ) {
                    debug_assert_eq!(msg.coll_seq, seq, "FIFO instance mix-up");
                    let op_cost = self.inner.cost().reduce_op(dtype.count(desc.acc.len()));
                    self.inner.charge(CpuCategory::Protocol, op_cost);
                    desc.op
                        .apply(dtype, &mut desc.acc, &msg.data)
                        .expect("op/type checked at post");
                    desc.complete_child(child);
                    self.stats.sync_children += 1;
                }
            }
        }
        let swept_complete = desc.is_complete();
        self.descriptors.push(desc);
        if swept_complete {
            // Every child was already waiting on the unexpected queues: the
            // whole reduction finishes inside the synchronous call.
            let idx = self.descriptors.len() - 1;
            self.finish_descriptor(idx, false);
        }
        // Fig. 3: trigger progress. Packets already in the receive queue now
        // match the descriptor directly (zero additional copies).
        self.drain_rx(false);
        self.inner.crank();
        if !self.inner.test(req) {
            if split {
                // Split-phase semantics: the post returns immediately and
                // the *request* stays pending until this rank's part of the
                // reduction finishes (possibly entirely via signals). Arm
                // signals now — the application will not be polling.
                self.stats.delegated_to_async += 1;
                if !self.config.nic_offload {
                    self.set_signals(true);
                }
            } else {
                // Blocking-call semantics: register the bounded-block
                // budget the driver honours before `split_phase_exit`.
                let budget = self.config.delay.budget(comm.size);
                if !budget.is_zero() {
                    self.stats.exit_delays += 1;
                }
                self.hints.insert(req.raw(), budget);
            }
        } else {
            self.stats.completed_in_sync += 1;
        }
        self.inner.tracer().emit(TraceEvent::PhaseExit {
            phase: "reduce-sync",
        });
        req
    }

    /// The synchronous phase is over for `req` (driver's bounded block
    /// expired, or a split-phase post). Fig. 3's exit path: clear the call
    /// linkage, enable signals if reductions remain outstanding, return.
    fn exit_sync(&mut self, req: ReqId) {
        self.hints.remove(&req.raw());
        if self.inner.test(req) {
            return; // completed during the bounded block
        }
        for i in 0..self.descriptors.len() {
            let d = self.descriptors.get_mut(i);
            if d.call_req == Some(req) {
                d.call_req = None;
            }
        }
        self.stats.delegated_to_async += 1;
        // Under NIC offload the NIC completes descriptors autonomously;
        // host signals are never needed (the extension's whole point).
        let nic_covers_everything = self.config.nic_offload && self.bcast_waits.is_empty();
        if !self.bypass_idle() && !nic_covers_everything {
            self.set_signals(true);
        }
        // The *call* returns now; the reduction itself continues
        // asynchronously. (For the non-split internal-node path the caller
        // needed only the call semantics, so the request completes `Done`.)
        self.inner.complete_shell(req, Outcome::Done);
    }

    /// NIC-context pre-processing (the §VII extension): match and fold the
    /// packet entirely on the NIC processor. Returns `Some(pkt)` to deliver
    /// to the host (no descriptor matched: a root-instance or early packet).
    fn nic_process(&mut self, pkt: Packet) -> Option<Packet> {
        if pkt.header.kind != PacketKind::Collective
            || coll_tag_code(pkt.header.tag) != Some(coll_code::REDUCE)
        {
            // The NIC firmware only understands reduce descriptors;
            // broadcast traffic goes to the host path.
            return Some(pkt);
        }
        let src = pkt.header.src.0;
        let ctx = pkt.header.context;
        let (idx, probed) = self.descriptors.find_for_sender(src, ctx);
        let match_cost = self.inner.cost().nic_match().scaled(probed.max(1) as u64);
        self.inner.charge(CpuCategory::NicOffload, match_cost);
        let Some(idx) = idx else {
            return Some(pkt);
        };
        {
            let d = self.descriptors.get_mut(idx);
            debug_assert_eq!(d.coll_seq, pkt.header.coll_seq, "instance mismatch");
            // Idempotence: retire the sender's pending slot *before* folding
            // so a retransmitted contribution can never be reduced twice.
            if !d.complete_child(src) {
                self.stats.duplicates_suppressed += 1;
                return None;
            }
            let elems = d.dtype.count(d.acc.len());
            let (op, dtype) = (d.op, d.dtype);
            let op_cost = self.inner.cost().nic_reduce_op(elems);
            self.inner.charge(CpuCategory::NicOffload, op_cost);
            op.apply(dtype, &mut d.acc, &pkt.payload)
                .expect("op/type checked at post");
        }
        self.stats.nic_children += 1;
        self.stats.zero_copy_children += 1;
        if self.descriptors.get_mut(idx).is_complete() {
            self.finish_descriptor_from_nic(idx);
        }
        None
    }

    /// A NIC-resident descriptor drained: the NIC forwards the result to
    /// the parent itself and flags completion to the host. Zero host cost.
    fn finish_descriptor_from_nic(&mut self, idx: usize) {
        let d = self.descriptors.remove(idx);
        let fwd_cost = self.inner.cost().nic_match();
        self.inner.charge(CpuCategory::NicOffload, fwd_cost);
        let acc = d.acc;
        if let Some(parent) = d.parent {
            let header = abr_gm::packet::PacketHeader {
                src: abr_gm::packet::NodeId(self.inner.rank()),
                dst: abr_gm::packet::NodeId(parent),
                kind: PacketKind::Collective,
                context: d.context,
                tag: coll_tag(coll_code::REDUCE, d.coll_seq, 0),
                coll_seq: d.coll_seq,
                coll_root: d.root,
                msg_len: acc.len() as u32,
                wire_seq: 0,
                rel_seq: 0,
            };
            self.inner
                .push_action(Action::Send(Packet::new(header, Bytes::from(acc))));
            self.stats.nic_parent_sends += 1;
            if let Some(call) = d.call_req {
                self.hints.remove(&call.raw());
                self.inner.complete_shell(call, Outcome::Done);
            }
        } else if let Some(call) = d.call_req {
            self.hints.remove(&call.raw());
            self.inner
                .complete_shell(call, Outcome::Data(Bytes::from(acc)));
        } else {
            debug_assert!(false, "rootless descriptor without a call request");
        }
    }

    /// Classify one incoming packet (Fig. 4 gray boxes / Fig. 5). Returns
    /// `Some(packet)` if it must pass through to the default MPICH path.
    fn preprocess(&mut self, pkt: Packet, in_signal: bool) -> Option<Packet> {
        if pkt.header.kind != PacketKind::Collective {
            return Some(pkt);
        }
        if coll_tag_code(pkt.header.tag) == Some(coll_code::BCAST) {
            return self.preprocess_bcast(pkt, in_signal);
        }
        let src = pkt.header.src.0;
        let ctx = pkt.header.context;
        let (idx, probed) = self.descriptors.find_for_sender(src, ctx);
        let probe_cost = self.inner.cost().descriptor_probe(probed);
        self.inner.charge(CpuCategory::Protocol, probe_cost);
        let Some(idx) = idx else {
            if pkt.header.coll_root == self.inner.rank() {
                // This rank is the instance's root running the standard
                // synchronous code: leave the packet to default MPICH
                // mechanisms (Fig. 4).
                return Some(pkt);
            }
            // Early message: no descriptor yet. Park it with a single copy
            // (§V-A: half of MPICH's two-copy unexpected path).
            let copy = self.inner.cost().copy(pkt.payload.len());
            self.inner.charge(CpuCategory::Protocol, copy);
            self.stats.ab_unexpected_parked += 1;
            self.ab_unexpected.push(AbUnexpectedMsg {
                src,
                tag: pkt.header.tag,
                context: ctx,
                coll_seq: pkt.header.coll_seq,
                root: pkt.header.coll_root,
                data: pkt.payload,
            });
            return None;
        };
        // Expected or late message: apply the operator directly from the
        // packet buffer — zero copies (§V-C).
        {
            let d = self.descriptors.get_mut(idx);
            debug_assert_eq!(d.coll_seq, pkt.header.coll_seq, "instance mismatch");
            // Idempotence: retire the sender's pending slot *before* folding
            // so a retransmitted contribution can never be reduced twice.
            if !d.complete_child(src) {
                self.stats.duplicates_suppressed += 1;
                return None;
            }
            let elems = d.dtype.count(d.acc.len());
            let (op, dtype) = (d.op, d.dtype);
            let op_cost = self.inner.cost().reduce_op(elems);
            self.inner.charge(CpuCategory::Protocol, op_cost);
            op.apply(dtype, &mut d.acc, &pkt.payload)
                .expect("op/type checked at post");
        }
        self.stats.zero_copy_children += 1;
        if in_signal {
            self.stats.async_children += 1;
        } else {
            self.stats.sync_children += 1;
        }
        if self.descriptors.get_mut(idx).is_complete() {
            self.finish_descriptor(idx, in_signal);
        }
        None
    }

    /// All children of the descriptor at `idx` have reported: send the
    /// result to the parent (or hand it to the split-phase root's request),
    /// dequeue, and disable signals if nothing remains outstanding (Fig. 5).
    fn finish_descriptor(&mut self, idx: usize, in_signal: bool) {
        self.inner.tracer().emit(TraceEvent::EngineState {
            state: "descriptor-done",
        });
        let d = self.descriptors.remove(idx);
        let desc_cost = self.inner.cost().descriptor();
        self.inner.charge(CpuCategory::Protocol, desc_cost);
        let acc = d.acc;
        if let Some(parent) = d.parent {
            let send = self.inner.isend_with_kind(
                parent,
                coll_tag(coll_code::REDUCE, d.coll_seq, 0),
                d.context,
                Bytes::from(acc),
                PacketKind::Collective,
                d.coll_seq,
                d.root,
            );
            // AB runs only below the eager limit, so the send completes
            // locally at post; reap it.
            let done = self.inner.take_outcome(send);
            debug_assert!(matches!(done, Some(Outcome::Done)));
            if in_signal {
                self.stats.async_parent_sends += 1;
            } else {
                self.stats.sync_parent_sends += 1;
            }
            if let Some(call) = d.call_req {
                self.hints.remove(&call.raw());
                if !in_signal {
                    self.stats.completed_in_sync += 1;
                }
                self.inner.complete_shell(call, Outcome::Done);
            }
        } else if let Some(call) = d.call_req {
            // Split-phase root: the request carries the final result.
            self.hints.remove(&call.raw());
            self.inner
                .complete_shell(call, Outcome::Data(Bytes::from(acc)));
        } else {
            debug_assert!(false, "rootless descriptor without a call request");
        }
        if self.bypass_idle() {
            self.set_signals(false);
        }
    }

    /// The broadcast half of pre-processing: data from a parent either
    /// satisfies the oldest matching [`BcastWait`] (forward to children,
    /// complete the request — ref. \[8\]'s design) or parks as early.
    fn preprocess_bcast(&mut self, pkt: Packet, in_signal: bool) -> Option<Packet> {
        let src = pkt.header.src.0;
        let ctx = pkt.header.context;
        let (idx, probed) = self.bcast_waits.find_for_parent(src, ctx);
        let probe_cost = self.inner.cost().descriptor_probe(probed);
        self.inner.charge(CpuCategory::Protocol, probe_cost);
        match idx {
            Some(i) => {
                let w = self.bcast_waits.remove(i);
                debug_assert_eq!(w.coll_seq, pkt.header.coll_seq, "bcast instance mismatch");
                self.deliver_bcast(w, pkt.payload, in_signal);
                None
            }
            None => {
                // Early: the wait is not registered yet (this rank has not
                // reached its ibcast_split call). Park with one copy.
                let copy = self.inner.cost().copy(pkt.payload.len());
                self.inner.charge(CpuCategory::Protocol, copy);
                self.stats.ab_unexpected_parked += 1;
                self.ab_unexpected.push(AbUnexpectedMsg {
                    src,
                    tag: pkt.header.tag,
                    context: ctx,
                    coll_seq: pkt.header.coll_seq,
                    root: pkt.header.coll_root,
                    data: pkt.payload,
                });
                None
            }
        }
    }

    /// The parent's broadcast payload is in hand: forward it down the
    /// subtree and complete the split-phase request with the data.
    fn deliver_bcast(&mut self, w: BcastWait, data: Bytes, in_signal: bool) {
        self.inner.tracer().emit(TraceEvent::EngineState {
            state: "bcast-delivered",
        });
        let desc_cost = self.inner.cost().descriptor();
        self.inner.charge(CpuCategory::Protocol, desc_cost);
        // Largest subtree first, like the blocking path.
        let rank = self.inner.rank();
        for i in (0..w.sched.children_of(rank).len()).rev() {
            let child = w.sched.children_of(rank)[i];
            let send = self.inner.isend_with_kind(
                child,
                coll_tag(coll_code::BCAST, w.coll_seq, 0),
                w.context,
                data.clone(),
                PacketKind::Collective,
                w.coll_seq,
                w.root,
            );
            let done = self.inner.take_outcome(send);
            debug_assert!(matches!(done, Some(Outcome::Done)));
            self.stats.bcast_forwards += 1;
        }
        if in_signal {
            self.stats.async_bcasts += 1;
        }
        self.hints.remove(&w.call_req.raw());
        self.inner.complete_shell(w.call_req, Outcome::Data(data));
        if self.bypass_idle() {
            self.set_signals(false);
        }
    }

    /// Run pre-processing over everything in the receive queue, forwarding
    /// pass-through packets to the inner engine.
    fn drain_rx(&mut self, in_signal: bool) -> bool {
        let mut progressed = false;
        while let Some(pkt) = self.rx.pop_front() {
            progressed = true;
            let (src, kind, bytes) = (
                pkt.header.src.0,
                pkt.header.kind.label(),
                pkt.header.msg_len,
            );
            if let Some(pass) = self.preprocess(pkt, in_signal) {
                // Pass-through: the inner engine emits its PacketRecv
                // when it processes the packet.
                self.inner.deliver(pass);
            } else {
                // Consumed by pre-processing: this was the acceptance
                // point, so emit the engine-level receive here.
                self.inner
                    .tracer()
                    .emit(TraceEvent::PacketRecv { src, kind, bytes });
            }
        }
        progressed
    }
}

impl MessageEngine for AbEngine {
    fn rank(&self) -> Rank {
        self.inner.rank()
    }
    fn size(&self) -> u32 {
        self.inner.size()
    }
    fn world(&self) -> Communicator {
        self.inner.world()
    }

    fn set_tracer(&mut self, trace: TraceHandle) {
        self.inner.set_tracer(trace);
    }

    fn deliver(&mut self, pkt: Packet) {
        // Idempotence under retransmission: a duplicate that slipped past
        // the reliability layer must not reach pre-processing, or its
        // contribution could fold into a descriptor twice.
        if pkt.header.rel_seq != 0 {
            let last = self.last_rel_seq.entry(pkt.header.src.0).or_insert(0);
            if pkt.header.rel_seq <= *last {
                self.stats.duplicates_suppressed += 1;
                return;
            }
            *last = pkt.header.rel_seq;
        }
        self.rx.push_back(pkt);
    }

    fn progress(&mut self) -> bool {
        let a = self.drain_rx(false);
        let b = self.inner.progress();
        self.step_split_allreduces();
        self.step_seg_splits();
        self.step_dual_splits();
        a || b
    }

    /// Fig. 5: the NIC raised a signal. All work done here is accounted as
    /// signal-handler CPU.
    fn handle_signal(&mut self) -> bool {
        self.stats.signals_handled += 1;
        self.inner.tracer().emit(TraceEvent::PhaseEnter {
            phase: "signal-handler",
        });
        let stash = self.inner.take_charges();
        let sig_cost = self.inner.cost().signal_cost();
        self.inner.charge(CpuCategory::SignalHandler, sig_cost);
        let a = self.drain_rx(true);
        let b = self.inner.crank();
        self.step_split_allreduces();
        self.step_seg_splits();
        self.step_dual_splits();
        // Everything charged during the handler counts as signal time.
        let work = self.inner.take_charges();
        let mut recat = Charges::ZERO;
        recat.add(CpuCategory::SignalHandler, work.total());
        self.inner.merge_charges(stash);
        self.inner.merge_charges(recat);
        self.inner.tracer().emit(TraceEvent::PhaseExit {
            phase: "signal-handler",
        });
        a || b
    }

    fn drain_actions(&mut self) -> Vec<Action> {
        self.inner.drain_actions()
    }
    fn drain_actions_into(&mut self, out: &mut Vec<Action>) {
        self.inner.drain_actions_into(out)
    }
    fn take_charges(&mut self) -> Charges {
        self.inner.take_charges()
    }
    fn test(&self, req: ReqId) -> bool {
        self.inner.test(req)
    }
    fn take_outcome(&mut self, req: ReqId) -> Option<Outcome> {
        self.inner.take_outcome(req)
    }
    fn isend(&mut self, comm: &Communicator, dst: Rank, tag: i32, data: Bytes) -> ReqId {
        self.inner.isend(comm, dst, tag, data)
    }
    fn irecv(&mut self, comm: &Communicator, src: Option<Rank>, tag: TagSel, cap: usize) -> ReqId {
        self.inner.irecv(comm, src, tag, cap)
    }

    /// The paper's application-bypass `MPI_Reduce` (Fig. 3). With an
    /// [`EngineConfig::segments`] window of 2+, large payloads run as a
    /// segmented pipeline of eager-sized bypassed reduces instead of
    /// falling back to the stock rendezvous path.
    fn ireduce(
        &mut self,
        comm: &Communicator,
        root: Rank,
        op: ReduceOp,
        dtype: Datatype,
        data: &[u8],
    ) -> ReqId {
        comm.check_rank(root).expect("invalid root");
        // Plan first (see `ireduce_split`): all ranks must agree on the
        // segment count before any rank-local mode decision.
        let (k, seg_bytes) = self
            .inner
            .segment_plan(root, comm.size, data.len(), dtype.size());
        if k >= 2 {
            return self.ireduce_segmented(comm, root, op, dtype, data, k, seg_bytes, false);
        }
        let seq = self.inner.alloc_coll_seq(comm.coll_context);
        let rank = self.inner.rank();
        // §V-B mode decision.
        if !self.config.enabled {
            self.stats.fallback_disabled += 1;
            return self
                .inner
                .ireduce_with_seq(comm, root, op, dtype, data, seq);
        }
        if rank == root {
            self.stats.fallback_root += 1;
            return self
                .inner
                .ireduce_with_seq(comm, root, op, dtype, data, seq);
        }
        if self.inner.schedule(root, comm.size).is_leaf(rank) {
            self.stats.fallback_leaf += 1;
            return self
                .inner
                .ireduce_with_seq(comm, root, op, dtype, data, seq);
        }
        if data.len() > self.inner.eager_limit() {
            self.stats.fallback_large += 1;
            return self
                .inner
                .ireduce_with_seq(comm, root, op, dtype, data, seq);
        }
        self.stats.ab_reductions += 1;
        let sched = self.inner.schedule(root, comm.size);
        let parent = sched.parent_of(rank);
        debug_assert!(parent.is_some(), "internal node always has a parent");
        self.ab_reduce_start(comm, root, op, dtype, data, seq, parent, false, sched)
    }

    fn ibcast(
        &mut self,
        comm: &Communicator,
        root: Rank,
        data: Option<Bytes>,
        len: usize,
    ) -> ReqId {
        self.inner.ibcast(comm, root, data, len)
    }
    fn ibarrier(&mut self, comm: &Communicator) -> ReqId {
        self.inner.ibarrier(comm)
    }
    fn iallreduce(
        &mut self,
        comm: &Communicator,
        op: ReduceOp,
        dtype: Datatype,
        data: &[u8],
    ) -> ReqId {
        // Allreduce is not bypassed, so its internal reduce must NOT use
        // the collective packet type (§V-A reserves it for application-
        // bypass reduction traffic): non-root ranks have no descriptors and
        // would park these packets on the AB unexpected queue forever.
        let saved = self.inner.reduce_packet_kind();
        self.inner.set_reduce_packet_kind(PacketKind::Eager);
        let req = self.inner.iallreduce(comm, op, dtype, data);
        self.inner.set_reduce_packet_kind(saved);
        req
    }

    fn iallreduce_dual(
        &mut self,
        comm: &Communicator,
        op: ReduceOp,
        dtype: Datatype,
        data: &[u8],
    ) -> ReqId {
        // The blocking dual-root allreduce runs the stock two-chain
        // pipeline; like `iallreduce`, its reduce halves must not emit the
        // collective packet type (no descriptors exist for them).
        let saved = self.inner.reduce_packet_kind();
        self.inner.set_reduce_packet_kind(PacketKind::Eager);
        let req = self.inner.iallreduce_dual(comm, op, dtype, data);
        self.inner.set_reduce_packet_kind(saved);
        req
    }

    fn iallreduce_dual_split(
        &mut self,
        comm: &Communicator,
        op: ReduceOp,
        dtype: Datatype,
        data: &[u8],
    ) -> ReqId {
        AbEngine::iallreduce_dual_split(self, comm, op, dtype, data)
    }

    fn ireduce_split(
        &mut self,
        comm: &Communicator,
        root: Rank,
        op: ReduceOp,
        dtype: Datatype,
        data: &[u8],
    ) -> ReqId {
        AbEngine::ireduce_split(self, comm, root, op, dtype, data)
    }

    fn ibcast_split(
        &mut self,
        comm: &Communicator,
        root: Rank,
        data: Option<Bytes>,
        len: usize,
    ) -> ReqId {
        AbEngine::ibcast_split(self, comm, root, data, len)
    }

    fn has_pending_signal_work(&self) -> bool {
        self.rx
            .iter()
            .any(|p| p.header.kind == PacketKind::Collective)
    }

    fn counters(&self) -> Vec<(&'static str, u64)> {
        let mut c = self.inner.counters();
        let s = &self.stats;
        c.extend([
            ("ab_reductions", s.ab_reductions),
            ("fallback_root", s.fallback_root),
            ("fallback_leaf", s.fallback_leaf),
            ("fallback_large", s.fallback_large),
            ("sync_children", s.sync_children),
            ("async_children", s.async_children),
            ("ab_unexpected_parked", s.ab_unexpected_parked),
            ("zero_copy_children", s.zero_copy_children),
            ("signals_handled", s.signals_handled),
            ("delegated_to_async", s.delegated_to_async),
            ("completed_in_sync", s.completed_in_sync),
            ("copies_saved", s.copies_saved()),
            (
                "descriptor_high_water",
                self.descriptors.high_water() as u64,
            ),
            ("nic_children", s.nic_children),
            ("bcast_splits", s.bcast_splits),
            ("bcast_forwards", s.bcast_forwards),
            ("ab_duplicates_suppressed", s.duplicates_suppressed),
        ]);
        c
    }

    fn bounded_block_hint(&self, req: ReqId) -> Option<SimDuration> {
        self.hints.get(&req.raw()).copied()
    }

    fn sleeps_when_blocked(&self) -> bool {
        // With bypass on, the NIC raises a signal for every arrival that
        // matters, so a blocked caller can park in `sigsuspend` instead of
        // spinning on the progress engine.
        self.config.enabled
    }

    fn split_phase_exit(&mut self, req: ReqId) {
        self.exit_sync(req);
    }

    fn nic_preprocess(&mut self, pkt: Packet) -> Option<Packet> {
        if !self.config.enabled || !self.config.nic_offload {
            return Some(pkt);
        }
        self.nic_process(pkt)
    }
}
