//! Application-bypass broadcast (the companion system of the paper's
//! ref. \[8\], *"Application-Bypass Broadcast in MPICH over GM"*, whose
//! interrupt-based design this paper explicitly builds on).
//!
//! The blocking binomial broadcast makes every interior node wait for its
//! parent's data before it can forward down its subtree — under skew, a
//! late *ancestor* stalls an entire subtree of otherwise-ready processes.
//! Bypass splits it: the call registers a [`BcastWait`] and returns; when
//! the parent's data arrives (via signal), the node forwards to its
//! children and completes asynchronously.

use abr_mpr::topology::TopoSchedule;
use abr_mpr::types::Rank;
use abr_mpr::ReqId;
use std::sync::Arc;

/// A pending application-bypass broadcast at a non-root rank.
#[derive(Debug)]
pub struct BcastWait {
    /// Collective context id.
    pub context: u32,
    /// Instance sequence number.
    pub coll_seq: u64,
    /// Root of the broadcast.
    pub root: Rank,
    /// The parent this rank receives from.
    pub parent: Rank,
    /// Payload length in bytes.
    pub len: usize,
    /// The shared schedule; the forward loop walks this rank's children in
    /// reverse (largest subtree first) without any per-wait allocation.
    pub sched: Arc<TopoSchedule>,
    /// The split-phase request completed with the data.
    pub call_req: ReqId,
}

/// FIFO queue of pending broadcast waits; matched by (parent, context) in
/// arrival order, like the reduce descriptor queue.
#[derive(Debug, Default)]
pub struct BcastWaitQueue {
    entries: Vec<BcastWait>,
    high_water: usize,
    total: u64,
}

impl BcastWaitQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a wait.
    pub fn push(&mut self, w: BcastWait) {
        self.entries.push(w);
        self.high_water = self.high_water.max(self.entries.len());
        self.total += 1;
    }

    /// Index of the oldest wait in `context` expecting data from `src`,
    /// plus the number of entries probed (for cost accounting).
    pub fn find_for_parent(&self, src: Rank, context: u32) -> (Option<usize>, usize) {
        let mut probed = 0;
        for (i, w) in self.entries.iter().enumerate() {
            probed += 1;
            if w.context == context && w.parent == src {
                return (Some(i), probed);
            }
        }
        (None, probed)
    }

    /// Remove a wait by index.
    pub fn remove(&mut self, idx: usize) -> BcastWait {
        self.entries.remove(idx)
    }

    /// Number of pending waits.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Peak occupancy.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Lifetime registered count.
    pub fn total(&self) -> u64 {
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wait(seq: u64, parent: Rank) -> BcastWait {
        use abr_mpr::topology::TopologyKind;
        BcastWait {
            context: 1,
            coll_seq: seq,
            root: 0,
            parent,
            len: 8,
            sched: Arc::new(TopologyKind::Binomial.schedule(0, 4)),
            call_req: ReqId::from_raw(seq),
        }
    }

    #[test]
    fn oldest_wait_per_parent_matches_first() {
        let mut q = BcastWaitQueue::new();
        q.push(wait(0, 2));
        q.push(wait(1, 2));
        let (idx, probed) = q.find_for_parent(2, 1);
        assert_eq!(idx, Some(0));
        assert_eq!(probed, 1);
        assert_eq!(q.remove(0).coll_seq, 0);
        let (idx, _) = q.find_for_parent(2, 1);
        assert_eq!(q.remove(idx.unwrap()).coll_seq, 1);
        assert!(q.is_empty());
    }

    #[test]
    fn parent_and_context_are_the_key() {
        let mut q = BcastWaitQueue::new();
        q.push(wait(0, 2));
        assert_eq!(q.find_for_parent(3, 1).0, None);
        assert_eq!(q.find_for_parent(2, 2).0, None);
        assert_eq!(q.find_for_parent(2, 1).0, Some(0));
    }

    #[test]
    fn counters_track_peak_and_total() {
        let mut q = BcastWaitQueue::new();
        q.push(wait(0, 1));
        q.push(wait(1, 1));
        q.remove(0);
        q.push(wait(2, 1));
        assert_eq!(q.high_water(), 2);
        assert_eq!(q.total(), 3);
        assert_eq!(q.len(), 2);
    }
}
