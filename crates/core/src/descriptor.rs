//! Reduce descriptors and the descriptor queue (§IV-B, §V-A).
//!
//! Each descriptor carries the intermediate state of one reduction
//! instance: the running partial result, the identity of the parent to send
//! the final result to, and the list of children whose contributions are
//! still pending. The child list doubles as the matching key for late
//! messages — an incoming collective packet from rank `s` matches the
//! *oldest* descriptor still waiting on `s`, which is correct because the
//! transport delivers each (child, parent) pair's messages in order.

use abr_mpr::op::ReduceOp;
use abr_mpr::types::{Datatype, Rank};
use abr_mpr::ReqId;

/// Intermediate state of one in-flight application-bypass reduction.
#[derive(Debug)]
pub struct ReduceDescriptor {
    /// Collective context id of the communicator.
    pub context: u32,
    /// Instance sequence number (for cross-checks and diagnostics).
    pub coll_seq: u64,
    /// Root of this instance.
    pub root: Rank,
    /// Operator.
    pub op: ReduceOp,
    /// Element type.
    pub dtype: Datatype,
    /// Running partial result, seeded with the local contribution.
    pub acc: Vec<u8>,
    /// Parent to send the final result to — recorded during the synchronous
    /// call because it depends on the instance's root (§IV-B). `None` for a
    /// split-phase *root* descriptor, which keeps the result instead.
    pub parent: Option<Rank>,
    /// Children whose contributions are still pending.
    pub pending_children: Vec<Rank>,
    /// The MPI-call (shell) request to complete if the descriptor finishes
    /// while the call is still blocked in its synchronous phase; cleared
    /// when the call exits.
    pub call_req: Option<ReqId>,
}

impl ReduceDescriptor {
    /// Mark `child` processed. Returns true if it was pending.
    pub fn complete_child(&mut self, child: Rank) -> bool {
        if let Some(idx) = self.pending_children.iter().position(|&c| c == child) {
            self.pending_children.swap_remove(idx);
            true
        } else {
            false
        }
    }

    /// True once every child has reported.
    pub fn is_complete(&self) -> bool {
        self.pending_children.is_empty()
    }
}

/// FIFO queue of outstanding reduction descriptors.
#[derive(Debug, Default)]
pub struct DescriptorQueue {
    entries: Vec<ReduceDescriptor>,
    high_water: usize,
    total_enqueued: u64,
}

impl DescriptorQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueue a descriptor (instances are created in program order, so the
    /// queue is ordered by instance).
    pub fn push(&mut self, d: ReduceDescriptor) {
        self.entries.push(d);
        self.high_water = self.high_water.max(self.entries.len());
        self.total_enqueued += 1;
    }

    /// Index of the oldest descriptor in `context` still waiting on `src`
    /// (the §IV-D late-message match). Also reports how many entries were
    /// probed, so the caller can charge search cost.
    pub fn find_for_sender(&self, src: Rank, context: u32) -> (Option<usize>, usize) {
        let mut probed = 0;
        for (i, d) in self.entries.iter().enumerate() {
            probed += 1;
            if d.context == context && d.pending_children.contains(&src) {
                return (Some(i), probed);
            }
        }
        (None, probed)
    }

    /// Borrow a descriptor by index.
    pub fn get_mut(&mut self, idx: usize) -> &mut ReduceDescriptor {
        &mut self.entries[idx]
    }

    /// Remove a completed descriptor by index.
    pub fn remove(&mut self, idx: usize) -> ReduceDescriptor {
        self.entries.remove(idx)
    }

    /// Number of outstanding descriptors.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no reductions are outstanding (the signal-disable
    /// condition of Fig. 5).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Largest number of simultaneously outstanding descriptors.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Lifetime enqueue count.
    pub fn total_enqueued(&self) -> u64 {
        self.total_enqueued
    }

    /// Iterate over outstanding descriptors (diagnostics).
    pub fn iter(&self) -> impl Iterator<Item = &ReduceDescriptor> {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn desc(seq: u64, ctx: u32, children: &[Rank]) -> ReduceDescriptor {
        ReduceDescriptor {
            context: ctx,
            coll_seq: seq,
            root: 0,
            op: ReduceOp::Sum,
            dtype: Datatype::F64,
            acc: vec![0u8; 8],
            parent: Some(0),
            pending_children: children.to_vec(),
            call_req: None,
        }
    }

    #[test]
    fn complete_child_tracks_pending() {
        let mut d = desc(0, 1, &[3, 5, 9]);
        assert!(!d.is_complete());
        assert!(d.complete_child(5));
        assert!(!d.complete_child(5), "already completed");
        assert!(!d.complete_child(4), "never a child");
        assert!(d.complete_child(3));
        assert!(d.complete_child(9));
        assert!(d.is_complete());
    }

    #[test]
    fn oldest_descriptor_wins_the_sender_match() {
        // The §IV-D scenario: several back-to-back reductions, child 6
        // consistently late. Its messages must match instances in order.
        let mut q = DescriptorQueue::new();
        q.push(desc(0, 1, &[6]));
        q.push(desc(1, 1, &[6]));
        q.push(desc(2, 1, &[6]));
        let (idx, _) = q.find_for_sender(6, 1);
        assert_eq!(idx, Some(0));
        let d = q.remove(0);
        assert_eq!(d.coll_seq, 0);
        let (idx, _) = q.find_for_sender(6, 1);
        assert_eq!(q.get_mut(idx.unwrap()).coll_seq, 1);
    }

    #[test]
    fn sender_match_skips_descriptors_not_waiting_on_it() {
        let mut q = DescriptorQueue::new();
        q.push(desc(0, 1, &[2]));
        q.push(desc(1, 1, &[6]));
        let (idx, probed) = q.find_for_sender(6, 1);
        assert_eq!(idx, Some(1));
        assert_eq!(probed, 2);
    }

    #[test]
    fn context_isolates_communicators() {
        let mut q = DescriptorQueue::new();
        q.push(desc(0, 1, &[6]));
        let (idx, _) = q.find_for_sender(6, 2);
        assert_eq!(idx, None);
    }

    #[test]
    fn miss_probes_everything() {
        let mut q = DescriptorQueue::new();
        q.push(desc(0, 1, &[2]));
        q.push(desc(1, 1, &[3]));
        let (idx, probed) = q.find_for_sender(9, 1);
        assert_eq!(idx, None);
        assert_eq!(probed, 2);
    }

    #[test]
    fn high_water_and_totals() {
        let mut q = DescriptorQueue::new();
        q.push(desc(0, 1, &[2]));
        q.push(desc(1, 1, &[2]));
        q.remove(0);
        q.push(desc(2, 1, &[2]));
        assert_eq!(q.high_water(), 2);
        assert_eq!(q.total_enqueued(), 3);
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
    }
}
