//! Engine-level tests for the NIC-based reduction extension: packets are
//! consumed at the NIC, host CPU stays clean, results stay correct, and the
//! NIC strictly ignores anything but reduce traffic.

use abr_core::{AbConfig, AbEngine};
use abr_mpr::engine::{EngineConfig, MessageEngine};
use abr_mpr::request::Outcome;
use abr_mpr::testutil::Loopback;
use abr_mpr::types::{bytes_to_f64s, f64s_to_bytes, Datatype};
use abr_mpr::ReduceOp;
use bytes::Bytes;

fn nic_world(n: u32) -> Loopback<AbEngine> {
    let engines = (0..n)
        .map(|r| AbEngine::new(r, n, EngineConfig::default(), AbConfig::nic_offload()))
        .collect();
    let mut lb = Loopback::new(engines);
    lb.signal_dispatch = true;
    lb
}

fn reduce_call(
    lb: &mut Loopback<AbEngine>,
    rank: usize,
    root: u32,
    data: &[f64],
) -> abr_mpr::ReqId {
    let comm = lb.engines[rank].world();
    let req = lb.engines[rank].ireduce(
        &comm,
        root,
        ReduceOp::Sum,
        Datatype::F64,
        &f64s_to_bytes(data),
    );
    if !lb.engines[rank].test(req) && lb.engines[rank].bounded_block_hint(req).is_some() {
        lb.engines[rank].split_phase_exit(req);
    }
    req
}

#[test]
fn nic_consumes_late_children_without_host_involvement() {
    let n = 8u32;
    let mut lb = nic_world(n);
    let mut reqs = Vec::new();
    // Internal nodes and root post first; leaves are late.
    for r in [0usize, 2, 4, 6] {
        reqs.push((r, reduce_call(&mut lb, r, 0, &[r as f64])));
    }
    lb.run_to_quiescence(100);
    // Now the late leaves send; their contributions land at NIC level.
    for r in [1usize, 3, 5, 7] {
        reqs.push((r, reduce_call(&mut lb, r, 0, &[r as f64])));
    }
    lb.run_until_complete(&reqs, 5000);
    match lb.engines[0].take_outcome(reqs[0].1) {
        Some(Outcome::Data(d)) => {
            let expect: f64 = (0..n).map(f64::from).sum();
            assert_eq!(bytes_to_f64s(&d), vec![expect]);
        }
        other => panic!("{other:?}"),
    }
    assert!(
        lb.nic_consumed > 0,
        "the NIC must have consumed late children"
    );
    assert_eq!(lb.signals_fired, 0, "NIC offload never signals the host");
    let nic_children: u64 = lb.engines.iter().map(|e| e.ab_stats().nic_children).sum();
    assert!(
        nic_children >= 3,
        "internal nodes' children handled on NIC: {nic_children}"
    );
    for e in &lb.engines {
        assert!(e.descriptor_queue().is_empty());
        assert!(
            !e.signals_enabled(),
            "rank {}: signals should stay off",
            e.rank()
        );
    }
}

#[test]
fn nic_matches_results_of_host_bypass_and_baseline() {
    for n in [2u32, 4, 8, 16] {
        let run = |cfg: AbConfig| -> Vec<f64> {
            let engines = (0..n)
                .map(|r| AbEngine::new(r, n, EngineConfig::default(), cfg.clone()))
                .collect();
            let mut lb = Loopback::new(engines);
            lb.signal_dispatch = true;
            let reqs: Vec<_> = (0..n as usize)
                .rev()
                .map(|r| (r, reduce_call(&mut lb, r, 0, &[r as f64 * 0.5, 1.0])))
                .collect();
            lb.run_until_complete(&reqs, 10_000);
            let root_req = reqs.iter().find(|&&(r, _)| r == 0).unwrap().1;
            match lb.engines[0].take_outcome(root_req) {
                Some(Outcome::Data(d)) => bytes_to_f64s(&d),
                other => panic!("{other:?}"),
            }
        };
        let baseline = run(AbConfig::disabled());
        let host = run(AbConfig::default());
        let nic = run(AbConfig::nic_offload());
        assert_eq!(baseline, host, "n={n}");
        assert_eq!(baseline, nic, "n={n}");
    }
}

#[test]
fn nic_ignores_broadcast_and_point_to_point_traffic() {
    let n = 4u32;
    let mut lb = nic_world(n);
    let comm = lb.engines[0].world();
    // A split broadcast (Collective kind, TAG_BCAST) plus plain p2p.
    let payload = Bytes::from(vec![3u8; 16]);
    let mut reqs = Vec::new();
    for r in 0..n as usize {
        let data = (r == 0).then(|| payload.clone());
        reqs.push((r, lb.engines[r].ibcast_split(&comm, 0, data, 16)));
    }
    let s = lb.engines[1].isend(&comm, 2, 9, Bytes::from(vec![1u8]));
    let rcv = lb.engines[2].irecv(&comm, Some(1), abr_mpr::TagSel::Is(9), 8);
    reqs.push((1, s));
    reqs.push((2, rcv));
    lb.run_until_complete(&reqs, 5000);
    assert_eq!(
        lb.nic_consumed, 0,
        "the NIC firmware only understands reduce descriptors"
    );
    for (r, id) in &reqs[..n as usize] {
        match lb.engines[*r].take_outcome(*id) {
            Some(Outcome::Data(d)) => assert_eq!(d, payload),
            other => panic!("rank {r}: {other:?}"),
        }
    }
}

#[test]
fn nic_root_fallback_still_passes_to_host() {
    // The root runs the blocking fallback even in NIC mode: its children's
    // packets must reach the host path (no descriptor exists at the root).
    let mut lb = nic_world(2);
    let r0 = reduce_call(&mut lb, 0, 0, &[1.0]);
    let r1 = reduce_call(&mut lb, 1, 0, &[2.0]);
    lb.run_until_complete(&[(0, r0), (1, r1)], 500);
    match lb.engines[0].take_outcome(r0) {
        Some(Outcome::Data(d)) => assert_eq!(bytes_to_f64s(&d), vec![3.0]),
        other => panic!("{other:?}"),
    }
    assert_eq!(
        lb.nic_consumed, 0,
        "2 ranks: no internal nodes, no NIC work"
    );
}
