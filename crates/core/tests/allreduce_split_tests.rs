//! Tests for the split-phase allreduce (§II extension): a bypassed reduce
//! chained into a bypassed broadcast, completing at every rank with the
//! reduced data, driven by signals alone once posted.

use abr_core::{AbConfig, AbEngine};
use abr_mpr::engine::{EngineConfig, MessageEngine};
use abr_mpr::request::Outcome;
use abr_mpr::testutil::Loopback;
use abr_mpr::types::{bytes_to_f64s, f64s_to_bytes, Datatype};
use abr_mpr::ReduceOp;

fn ab_world(n: u32) -> Loopback<AbEngine> {
    let engines = (0..n)
        .map(|r| AbEngine::new(r, n, EngineConfig::default(), AbConfig::default()))
        .collect();
    let mut lb = Loopback::new(engines);
    lb.signal_dispatch = true;
    lb
}

fn post(lb: &mut Loopback<AbEngine>, rank: usize, vals: &[f64]) -> abr_mpr::ReqId {
    let comm = lb.engines[rank].world();
    lb.engines[rank].iallreduce_split(&comm, ReduceOp::Sum, Datatype::F64, &f64s_to_bytes(vals))
}

#[test]
fn split_allreduce_gives_everyone_the_sum() {
    for n in [2u32, 3, 4, 8, 12, 16] {
        let mut lb = ab_world(n);
        let reqs: Vec<_> = (0..n as usize)
            .map(|r| (r, post(&mut lb, r, &[r as f64, 1.0])))
            .collect();
        lb.run_until_complete(&reqs, 10_000);
        let expect0: f64 = (0..n).map(f64::from).sum();
        for (r, id) in reqs {
            match lb.engines[r].take_outcome(id) {
                Some(Outcome::Data(d)) => {
                    assert_eq!(bytes_to_f64s(&d), vec![expect0, n as f64], "n={n} rank={r}")
                }
                other => panic!("n={n} rank={r}: {other:?}"),
            }
        }
        for e in &lb.engines {
            assert!(e.descriptor_queue().is_empty());
            assert!(e.bcast_wait_queue().is_empty());
            assert!(!e.signals_enabled());
        }
    }
}

#[test]
fn split_allreduce_completes_without_explicit_polling() {
    // Post everywhere, then drive ONLY the network (signal dispatch): the
    // chains must advance through signal handlers at every rank.
    let n = 8u32;
    let mut lb = ab_world(n);
    let reqs: Vec<_> = (0..n as usize)
        .map(|r| (r, post(&mut lb, r, &[1.0])))
        .collect();
    for _ in 0..200 {
        lb.route_once();
        if reqs.iter().all(|&(r, id)| lb.engines[r].test(id)) {
            break;
        }
    }
    for (r, id) in reqs {
        match lb.engines[r].take_outcome(id) {
            Some(Outcome::Data(d)) => assert_eq!(bytes_to_f64s(&d), vec![n as f64], "rank {r}"),
            other => panic!("rank {r}: {other:?}"),
        }
    }
    let total_signals: u64 = lb
        .engines
        .iter()
        .map(|e| e.ab_stats().signals_handled)
        .sum();
    assert!(
        total_signals > 0,
        "the chain must have advanced via signals"
    );
}

#[test]
#[allow(clippy::needless_range_loop)] // rank used as value and index
fn back_to_back_split_allreduces_keep_instance_order() {
    let n = 8u32;
    let rounds = 4usize;
    let mut lb = ab_world(n);
    let mut per_rank: Vec<Vec<abr_mpr::ReqId>> = vec![Vec::new(); n as usize];
    let mut all = Vec::new();
    for k in 0..rounds {
        for r in 0..n as usize {
            let id = post(&mut lb, r, &[(k + 1) as f64]);
            per_rank[r].push(id);
            all.push((r, id));
        }
        lb.route_once();
    }
    lb.run_until_complete(&all, 20_000);
    for (r, ids) in per_rank.into_iter().enumerate() {
        for (k, id) in ids.into_iter().enumerate() {
            match lb.engines[r].take_outcome(id) {
                Some(Outcome::Data(d)) => assert_eq!(
                    bytes_to_f64s(&d),
                    vec![(k + 1) as f64 * n as f64],
                    "rank {r} round {k}"
                ),
                other => panic!("rank {r} round {k}: {other:?}"),
            }
        }
    }
}

#[test]
fn split_allreduce_matches_blocking_allreduce() {
    let n = 6u32;
    // Blocking reference.
    let mut lb = ab_world(n);
    let comm = lb.engines[0].world();
    let blocking: Vec<_> = (0..n as usize)
        .map(|r| {
            let data = f64s_to_bytes(&[r as f64 * 1.5, -2.0]);
            (
                r,
                lb.engines[r].iallreduce(&comm, ReduceOp::Sum, Datatype::F64, &data),
            )
        })
        .collect();
    lb.run_until_complete(&blocking, 10_000);
    let reference = bytes_to_f64s(&lb.expect_data(0, blocking[0].1));
    // Split version.
    let mut lb2 = ab_world(n);
    let split: Vec<_> = (0..n as usize)
        .map(|r| (r, post(&mut lb2, r, &[r as f64 * 1.5, -2.0])))
        .collect();
    lb2.run_until_complete(&split, 10_000);
    for (r, id) in split {
        match lb2.engines[r].take_outcome(id) {
            Some(Outcome::Data(d)) => assert_eq!(bytes_to_f64s(&d), reference, "rank {r}"),
            other => panic!("rank {r}: {other:?}"),
        }
    }
}

#[test]
fn split_allreduce_interleaves_with_other_collectives() {
    let n = 8u32;
    let mut lb = ab_world(n);
    let comm = lb.engines[0].world();
    let mut all = Vec::new();
    let mut allred = Vec::new();
    let mut red = Vec::new();
    for r in 0..n as usize {
        let a = post(&mut lb, r, &[2.0]);
        allred.push((r, a));
        all.push((r, a));
        // A plain bypassed reduce in between.
        let q = lb.engines[r].ireduce(
            &comm,
            0,
            ReduceOp::Max,
            Datatype::F64,
            &f64s_to_bytes(&[r as f64]),
        );
        if !lb.engines[r].test(q) && lb.engines[r].bounded_block_hint(q).is_some() {
            lb.engines[r].split_phase_exit(q);
        }
        if r == 0 {
            red.push((r, q));
        }
        all.push((r, q));
        // And a barrier.
        let b = lb.engines[r].ibarrier(&comm);
        all.push((r, b));
    }
    lb.run_until_complete(&all, 20_000);
    for (r, id) in allred {
        match lb.engines[r].take_outcome(id) {
            Some(Outcome::Data(d)) => {
                assert_eq!(bytes_to_f64s(&d), vec![2.0 * n as f64], "rank {r}")
            }
            other => panic!("rank {r}: {other:?}"),
        }
    }
    match lb.engines[0].take_outcome(red[0].1) {
        Some(Outcome::Data(d)) => assert_eq!(bytes_to_f64s(&d), vec![(n - 1) as f64]),
        other => panic!("{other:?}"),
    }
}
