//! Behavioural tests for application-bypass reduction over the loopback
//! harness: correctness, skew tolerance, signal economy and copy accounting.

use abr_core::{AbConfig, AbEngine, DelayPolicy};
use abr_mpr::engine::{EngineConfig, MessageEngine};
use abr_mpr::request::Outcome;
use abr_mpr::testutil::Loopback;
use abr_mpr::types::{bytes_to_f64s, f64s_to_bytes, Datatype};
use abr_mpr::ReduceOp;

fn ab_world(n: u32, config: AbConfig) -> Loopback<AbEngine> {
    let engines = (0..n)
        .map(|r| AbEngine::new(r, n, EngineConfig::default(), config.clone()))
        .collect();
    let mut lb = Loopback::new(engines);
    lb.signal_dispatch = true;
    lb
}

/// Post a reduce and, like the drivers do, immediately expire the bounded
/// block (delay policy `None`) so the call "returns".
fn reduce_call(
    lb: &mut Loopback<AbEngine>,
    rank: usize,
    root: u32,
    data: &[f64],
) -> abr_mpr::ReqId {
    let comm = lb.engines[rank].world();
    let req = lb.engines[rank].ireduce(
        &comm,
        root,
        ReduceOp::Sum,
        Datatype::F64,
        &f64s_to_bytes(data),
    );
    if !lb.engines[rank].test(req) && lb.engines[rank].bounded_block_hint(req).is_some() {
        lb.engines[rank].split_phase_exit(req);
    }
    req
}

fn check_sum_reduce(n: u32, root: u32, post_order: &[usize]) {
    let mut lb = ab_world(n, AbConfig::default());
    let mut reqs = vec![None; n as usize];
    for &r in post_order {
        reqs[r] = Some(reduce_call(&mut lb, r, root, &[r as f64, 1.0]));
        // Let traffic flow between postings: maximal skew realism.
        lb.route_once();
    }
    let reqs: Vec<_> = reqs
        .into_iter()
        .enumerate()
        .map(|(r, q)| (r, q.unwrap()))
        .collect();
    lb.run_until_complete(&reqs, 4000);
    let expect: f64 = (0..n).map(|r| r as f64).sum();
    for (r, id) in reqs {
        match lb.engines[r].take_outcome(id) {
            Some(Outcome::Data(d)) => {
                assert_eq!(r as u32, root);
                assert_eq!(bytes_to_f64s(&d), vec![expect, n as f64]);
            }
            Some(Outcome::Done) => assert_ne!(r as u32, root),
            other => panic!("rank {r}: {other:?}"),
        }
    }
}

#[test]
fn ab_reduce_matches_expected_sum_in_order() {
    for n in [2u32, 3, 4, 5, 8, 13, 16, 32] {
        let order: Vec<usize> = (0..n as usize).collect();
        check_sum_reduce(n, 0, &order);
    }
}

#[test]
fn ab_reduce_reverse_posting_order() {
    for n in [4u32, 8, 16] {
        let order: Vec<usize> = (0..n as usize).rev().collect();
        check_sum_reduce(n, 0, &order);
    }
}

#[test]
fn ab_reduce_nonzero_roots() {
    for root in [1u32, 3, 7] {
        let order: Vec<usize> = (0..8).collect();
        check_sum_reduce(8, root, &order);
    }
}

#[test]
fn internal_node_call_returns_before_late_children() {
    // The paper's Fig. 2 scenario: node 2 (internal, 4-node tree rooted at
    // 0) must not wait for late node 3.
    let mut lb = ab_world(4, AbConfig::default());
    // Nodes 0 (root), 1 (leaf), 2 (internal) arrive; node 3 is late.
    let r0 = reduce_call(&mut lb, 0, 0, &[0.0]);
    let r1 = reduce_call(&mut lb, 1, 0, &[1.0]);
    let r2 = reduce_call(&mut lb, 2, 0, &[2.0]);
    // Drive everything that can move without node 3.
    for _ in 0..20 {
        lb.route_once();
        for r in [0usize, 1, 2] {
            lb.engines[r].progress();
        }
    }
    // Node 2's *call* has returned (application bypass!) even though its
    // child 3 never showed up; the root is of course still blocked.
    assert!(
        lb.engines[2].test(r2),
        "internal node must not block on a late child"
    );
    assert!(lb.engines[1].test(r1), "leaf completes by sending");
    assert!(
        !lb.engines[0].test(r0),
        "root cannot complete without the subtree"
    );
    assert_eq!(lb.engines[2].descriptor_queue().len(), 1);
    assert!(
        lb.engines[2].signals_enabled(),
        "outstanding reduction needs signals"
    );
    // Now the late node arrives. Its message to node 2 must be handled by a
    // *signal*, with no application progress at node 2 at all.
    let r3 = reduce_call(&mut lb, 3, 0, &[3.0]);
    for _ in 0..20 {
        lb.route_once(); // dispatches signals
        lb.engines[0].progress(); // only the blocked root polls
        lb.engines[3].progress();
    }
    assert!(lb.engines[3].test(r3));
    match lb.engines[0].take_outcome(r0) {
        Some(Outcome::Data(d)) => assert_eq!(bytes_to_f64s(&d), vec![6.0]),
        other => panic!("root outcome {other:?}"),
    }
    let s = lb.engines[2].ab_stats();
    assert_eq!(
        s.async_children, 1,
        "the late child was processed asynchronously"
    );
    assert!(s.signals_handled >= 1);
    assert!(lb.engines[2].descriptor_queue().is_empty());
    assert!(
        !lb.engines[2].signals_enabled(),
        "signals disabled once drained"
    );
}

#[test]
fn early_messages_park_once_and_are_swept_by_the_call() {
    // Child posts long before the parent calls reduce: parent must find the
    // contribution on the AB unexpected queue during the synchronous phase.
    let mut lb = ab_world(4, AbConfig::default());
    let r3 = reduce_call(&mut lb, 3, 0, &[3.0]);
    let r1 = reduce_call(&mut lb, 1, 0, &[1.0]);
    for _ in 0..10 {
        lb.route_once();
        // Node 2 makes an unrelated MPICH library call, which triggers the
        // progress engine (Fig. 4 left entry): node 3's collective packet is
        // pre-processed, matches no descriptor, and is parked on the AB
        // unexpected queue with a single copy.
        lb.engines[2].progress();
    }
    assert!(!lb.engines[2].signals_enabled());
    assert_eq!(lb.engines[2].ab_unexpected_queue().len(), 1);
    let r2 = reduce_call(&mut lb, 2, 0, &[2.0]);
    let r0 = reduce_call(&mut lb, 0, 0, &[0.0]);
    lb.run_until_complete(&[(0, r0), (1, r1), (2, r2), (3, r3)], 2000);
    match lb.engines[0].take_outcome(r0) {
        Some(Outcome::Data(d)) => assert_eq!(bytes_to_f64s(&d), vec![6.0]),
        other => panic!("{other:?}"),
    }
    let s = lb.engines[2].ab_stats();
    assert_eq!(
        s.ab_unexpected_parked, 1,
        "node 3's early message parked once"
    );
    assert!(s.sync_children >= 1, "swept during the synchronous phase");
}

#[test]
fn consistently_late_child_across_back_to_back_reductions() {
    // §IV-D: several reductions outstanding toward the same late child;
    // each arriving message must match the *oldest* matching descriptor.
    let n = 8u32;
    let rounds = 4;
    let mut lb = ab_world(n, AbConfig::default());
    let mut all = Vec::new();
    let mut root_reqs = Vec::new();
    // Every rank but 5 (a leaf under 4's subtree... rank 5 is a child of 4)
    // posts `rounds` reduces back to back. Rank 5 posts nothing yet.
    for k in 0..rounds {
        for r in 0..n as usize {
            if r == 5 {
                continue;
            }
            let req = reduce_call(&mut lb, r, 0, &[(r as f64) * (k + 1) as f64]);
            if r == 0 {
                root_reqs.push(req);
            }
            all.push((r, req));
        }
        for _ in 0..5 {
            lb.route_once();
            for r in 0..n as usize {
                if r != 5 && r != 0 {
                    // Non-blocked ranks get occasional app-level progress.
                    lb.engines[r].progress();
                }
            }
        }
    }
    // Rank 4 (internal, parent of 5) should have descriptors piling up.
    assert_eq!(lb.engines[4].descriptor_queue().len(), rounds as usize);
    assert_eq!(
        lb.engines[4].descriptor_queue().high_water(),
        rounds as usize
    );
    // The late rank now posts its backlog.
    for k in 0..rounds {
        let req = reduce_call(&mut lb, 5, 0, &[5.0 * (k + 1) as f64]);
        all.push((5, req));
    }
    lb.run_until_complete(&all, 4000);
    let base: f64 = (0..n).map(|r| r as f64).sum();
    for (k, req) in root_reqs.into_iter().enumerate() {
        match lb.engines[0].take_outcome(req) {
            Some(Outcome::Data(d)) => {
                assert_eq!(bytes_to_f64s(&d), vec![base * (k + 1) as f64], "round {k}");
            }
            other => panic!("round {k}: {other:?}"),
        }
    }
    assert!(lb.engines[4].descriptor_queue().is_empty());
}

#[test]
fn fallback_decisions_are_recorded() {
    let mut lb = ab_world(8, AbConfig::default());
    let reqs: Vec<_> = (0..8usize)
        .map(|r| (r, reduce_call(&mut lb, r, 0, &[1.0; 4])))
        .collect();
    lb.run_until_complete(&reqs, 2000);
    // Tree rooted at 0, size 8: root = 0; leaves = 1,3,5,7; internal = 2,4,6.
    assert_eq!(lb.engines[0].ab_stats().fallback_root, 1);
    for leaf in [1usize, 3, 5, 7] {
        assert_eq!(lb.engines[leaf].ab_stats().fallback_leaf, 1, "rank {leaf}");
        assert_eq!(lb.engines[leaf].ab_stats().ab_reductions, 0);
    }
    for internal in [2usize, 4, 6] {
        assert_eq!(
            lb.engines[internal].ab_stats().ab_reductions,
            1,
            "rank {internal}"
        );
    }
}

#[test]
fn oversized_messages_fall_back_everywhere() {
    let n = 8u32;
    let elems = 4096; // 32 KiB > eager limit
    let mut lb = ab_world(n, AbConfig::default());
    let comm = lb.engines[0].world();
    let reqs: Vec<_> = (0..n as usize)
        .map(|r| {
            let req = lb.engines[r].ireduce(
                &comm,
                0,
                ReduceOp::Sum,
                Datatype::F64,
                &f64s_to_bytes(&vec![1.0; elems]),
            );
            (r, req)
        })
        .collect();
    lb.run_until_complete(&reqs, 10_000);
    match lb.engines[0].take_outcome(reqs[0].1) {
        Some(Outcome::Data(d)) => {
            assert!(bytes_to_f64s(&d).iter().all(|&x| x == n as f64));
        }
        other => panic!("{other:?}"),
    }
    for internal in [2usize, 4, 6] {
        let s = lb.engines[internal].ab_stats();
        assert_eq!(s.fallback_large, 1, "rank {internal}");
        assert_eq!(s.ab_reductions, 0);
    }
    for e in &lb.engines {
        assert!(e.inner().memory().is_balanced());
    }
}

#[test]
fn disabled_config_is_pure_baseline() {
    let mut lb = ab_world(8, AbConfig::disabled());
    let reqs: Vec<_> = (0..8usize)
        .map(|r| (r, reduce_call(&mut lb, r, 0, &[r as f64])))
        .collect();
    lb.run_until_complete(&reqs, 2000);
    assert_eq!(lb.signals_fired, 0, "baseline must never signal");
    for e in &lb.engines {
        let s = e.ab_stats();
        assert_eq!(s.ab_reductions, 0);
        assert_eq!(s.zero_copy_children, 0);
        assert!(e.descriptor_queue().is_empty());
    }
    match lb.engines[0].take_outcome(reqs[0].1) {
        Some(Outcome::Data(d)) => assert_eq!(bytes_to_f64s(&d), vec![28.0]),
        other => panic!("{other:?}"),
    }
}

#[test]
fn copy_savings_are_visible_in_stats() {
    let mut lb = ab_world(8, AbConfig::default());
    let reqs: Vec<_> = (0..8usize)
        .map(|r| (r, reduce_call(&mut lb, r, 0, &[r as f64; 32])))
        .collect();
    lb.run_until_complete(&reqs, 2000);
    let total_saved: u64 = lb.engines.iter().map(|e| e.ab_stats().copies_saved()).sum();
    let total_zero_copy: u64 = lb
        .engines
        .iter()
        .map(|e| e.ab_stats().zero_copy_children)
        .sum();
    // Internal nodes 2, 4, 6 have 1 + 2 + 1 = 4 children between them; each
    // child processed through bypass saves at least one copy.
    assert_eq!(
        total_zero_copy
            + lb.engines
                .iter()
                .map(|e| e.ab_stats().ab_unexpected_parked)
                .sum::<u64>(),
        4
    );
    assert!(total_saved >= 4);
}

#[test]
fn split_phase_root_completes_via_signals_only() {
    let n = 8u32;
    let mut lb = ab_world(n, AbConfig::default());
    let comm = lb.engines[0].world();
    // Root posts the split-phase reduce FIRST, then goes off to "compute":
    // we never call progress() on it again.
    let r0 = lb.engines[0].ireduce_split(
        &comm,
        0,
        ReduceOp::Sum,
        Datatype::F64,
        &f64s_to_bytes(&[0.0]),
    );
    assert!(!lb.engines[0].test(r0));
    assert!(
        lb.engines[0].signals_enabled(),
        "split root arms signals immediately"
    );
    let mut others = Vec::new();
    for r in 1..n as usize {
        others.push((r, reduce_call(&mut lb, r, 0, &[r as f64])));
    }
    // Drive only routing (signals) and the other ranks.
    for _ in 0..200 {
        lb.route_once();
        for &(r, _) in &others {
            lb.engines[r].progress();
        }
        if lb.engines[0].test(r0) {
            break;
        }
    }
    match lb.engines[0].take_outcome(r0) {
        Some(Outcome::Data(d)) => {
            let expect: f64 = (0..n).map(|r| r as f64).sum();
            assert_eq!(bytes_to_f64s(&d), vec![expect]);
        }
        other => panic!("split root outcome: {other:?}"),
    }
    assert!(lb.engines[0].ab_stats().signals_handled > 0);
    assert!(!lb.engines[0].signals_enabled());
}

#[test]
fn delay_policy_reports_bounded_block_budget() {
    let mut lb = ab_world(
        8,
        AbConfig {
            enabled: true,
            delay: DelayPolicy::PerProcess {
                us_per_process: 2.0,
            },
            nic_offload: false,
        },
    );
    let comm = lb.engines[2].world();
    // Internal node 2 with no children arrived: hint = 16us for 8 procs.
    let req = lb.engines[2].ireduce(
        &comm,
        0,
        ReduceOp::Sum,
        Datatype::F64,
        &f64s_to_bytes(&[1.0]),
    );
    assert!(!lb.engines[2].test(req));
    let hint = lb.engines[2].bounded_block_hint(req);
    assert_eq!(hint, Some(abr_des::SimDuration::from_us(16)));
    assert_eq!(lb.engines[2].ab_stats().exit_delays, 1);
    lb.engines[2].split_phase_exit(req);
    assert!(lb.engines[2].test(req));
    assert!(lb.engines[2].signals_enabled());
}

#[test]
fn ab_and_baseline_agree_on_results() {
    for n in [2u32, 5, 8, 16] {
        let run = |ab: bool| -> Vec<f64> {
            let cfg = if ab {
                AbConfig::default()
            } else {
                AbConfig::disabled()
            };
            let mut lb = ab_world(n, cfg);
            let reqs: Vec<_> = (0..n as usize)
                .rev()
                .map(|r| {
                    (
                        r,
                        reduce_call(&mut lb, r, 1 % n, &[r as f64 + 0.5, -(r as f64)]),
                    )
                })
                .collect();
            lb.run_until_complete(&reqs, 4000);
            let root = (1 % n) as usize;
            let (_, root_req) = *reqs.iter().find(|&&(r, _)| r == root).unwrap();
            match lb.engines[root].take_outcome(root_req) {
                Some(Outcome::Data(d)) => bytes_to_f64s(&d),
                other => panic!("{other:?}"),
            }
        };
        assert_eq!(run(true), run(false), "n={n}");
    }
}

#[test]
fn signals_disabled_at_rest() {
    let mut lb = ab_world(4, AbConfig::default());
    let reqs: Vec<_> = (0..4usize)
        .map(|r| (r, reduce_call(&mut lb, r, 0, &[1.0])))
        .collect();
    lb.run_until_complete(&reqs, 1000);
    for e in &lb.engines {
        assert!(!e.signals_enabled(), "rank {}: signals left on", e.rank());
        assert!(e.descriptor_queue().is_empty());
        assert!(e.ab_unexpected_queue().is_empty());
    }
}
