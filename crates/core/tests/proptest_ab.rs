//! Property tests for the application-bypass layer: result equivalence
//! under random posting orders and packet reorderings, queue hygiene, and
//! descriptor-matching correctness under overlapped instances.

use abr_core::{AbConfig, AbEngine, DelayPolicy};
use abr_mpr::engine::{EngineConfig, MessageEngine};
use abr_mpr::request::Outcome;
use abr_mpr::testutil::Loopback;
use abr_mpr::types::{bytes_to_f64s, f64s_to_bytes, Datatype};
use abr_mpr::ReduceOp;
use proptest::prelude::*;

fn ab_world(n: u32, config: AbConfig, shuffle: Option<u64>) -> Loopback<AbEngine> {
    let engines = (0..n)
        .map(|r| AbEngine::new(r, n, EngineConfig::default(), config.clone()))
        .collect();
    let mut lb = Loopback::new(engines);
    lb.signal_dispatch = true;
    lb.shuffle_seed = shuffle;
    lb
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Failure injection: arbitrarily slow links (whole per-pair batches
    /// held back for rounds at a time) must never change reduction results
    /// or leak bypass state — extreme lateness is the design's home turf.
    #[test]
    fn ab_survives_arbitrarily_slow_links(
        n in 2u32..12,
        net_seed in any::<u64>(),
        defer in 1u8..60,
        rounds in 1usize..4,
    ) {
        let mut lb = ab_world(n, AbConfig::default(), Some(net_seed));
        lb.defer_percent = defer;
        let mut all = Vec::new();
        let mut root_reqs = Vec::new();
        for k in 0..rounds {
            for r in (0..n as usize).rev() {
                let req = reduce_call(&mut lb, r, 0, &[(r + k) as f64]);
                if r == 0 {
                    root_reqs.push(req);
                }
                all.push((r, req));
            }
            lb.route_once();
        }
        lb.run_until_complete(&all, 30_000);
        for (k, req) in root_reqs.into_iter().enumerate() {
            let expect: f64 = (0..n as usize).map(|r| (r + k) as f64).sum();
            match lb.engines[0].take_outcome(req) {
                Some(Outcome::Data(d)) => prop_assert_eq!(bytes_to_f64s(&d), vec![expect]),
                other => return Err(TestCaseError::fail(format!("round {k}: {other:?}"))),
            }
        }
        prop_assert_eq!(lb.deferred_len(), 0, "all held-back packets eventually delivered");
        for e in &lb.engines {
            prop_assert!(e.descriptor_queue().is_empty());
            prop_assert!(e.ab_unexpected_queue().is_empty());
        }
    }
}

/// Post a reduce the way a delay-zero driver would.
fn reduce_call(
    lb: &mut Loopback<AbEngine>,
    rank: usize,
    root: u32,
    data: &[f64],
) -> abr_mpr::ReqId {
    let comm = lb.engines[rank].world();
    let req = lb.engines[rank].ireduce(
        &comm,
        root,
        ReduceOp::Sum,
        Datatype::F64,
        &f64s_to_bytes(data),
    );
    if !lb.engines[rank].test(req) && lb.engines[rank].bounded_block_hint(req).is_some() {
        lb.engines[rank].split_phase_exit(req);
    }
    req
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// For any size, root, posting permutation, element count and packet
    /// interleaving: the bypassed reduction equals the baseline bit for
    /// bit, and all bypass state drains to empty.
    #[test]
    fn ab_correct_under_random_order_and_reordering(
        n in 2u32..16,
        root_sel in 0u32..16,
        elems in 1usize..12,
        perm_seed in any::<u64>(),
        net_seed in any::<u64>(),
        rounds in 1usize..4,
    ) {
        let root = root_sel % n;
        // Deterministic permutation of posting order per round.
        let mut order: Vec<usize> = (0..n as usize).collect();
        let mut state = perm_seed | 1;
        let mut rand = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut lb = ab_world(n, AbConfig::default(), Some(net_seed));
        let mut all = Vec::new();
        let mut root_reqs = Vec::new();
        for round in 0..rounds {
            for i in (1..order.len()).rev() {
                order.swap(i, (rand() % (i as u64 + 1)) as usize);
            }
            for &r in &order {
                let data: Vec<f64> = (0..elems)
                    .map(|j| (r * 31 + j * 7 + round) as f64 * 0.25)
                    .collect();
                let req = reduce_call(&mut lb, r, root, &data);
                if r == root as usize {
                    root_reqs.push(req);
                }
                all.push((r, req));
                // Occasionally move traffic mid-round for extra skew.
                if rand() % 3 == 0 {
                    lb.route_once();
                    lb.progress_all();
                }
            }
        }
        lb.run_until_complete(&all, 20_000);
        for (round, req) in root_reqs.into_iter().enumerate() {
            let expect: Vec<f64> = (0..elems)
                .map(|j| {
                    (0..n as usize)
                        .map(|r| (r * 31 + j * 7 + round) as f64 * 0.25)
                        .sum()
                })
                .collect();
            match lb.engines[root as usize].take_outcome(req) {
                Some(Outcome::Data(d)) => {
                    let got = bytes_to_f64s(&d);
                    for (g, w) in got.iter().zip(&expect) {
                        prop_assert!((g - w).abs() < 1e-9, "round {round}: {g} vs {w}");
                    }
                }
                other => return Err(TestCaseError::fail(format!("round {round}: {other:?}"))),
            }
        }
        // All bypass state drained; signals off everywhere.
        for e in &lb.engines {
            prop_assert!(e.descriptor_queue().is_empty(), "rank {} leaked descriptors", e.rank());
            prop_assert!(e.ab_unexpected_queue().is_empty(), "rank {} leaked AB messages", e.rank());
            prop_assert!(!e.signals_enabled(), "rank {} left signals on", e.rank());
        }
    }

    /// The exit-delay policy never changes results, only costs.
    #[test]
    fn delay_policy_is_result_transparent(
        n in 2u32..10,
        delay_us in 0.0f64..300.0,
        net_seed in any::<u64>(),
    ) {
        let run = |cfg: AbConfig| -> Vec<f64> {
            let mut lb = ab_world(n, cfg, Some(net_seed));
            let reqs: Vec<_> = (0..n as usize)
                .rev()
                .map(|r| (r, reduce_call(&mut lb, r, 0, &[r as f64, 2.0 * r as f64])))
                .collect();
            lb.run_until_complete(&reqs, 10_000);
            match lb.engines[0].take_outcome(reqs.iter().find(|&&(r, _)| r == 0).unwrap().1) {
                Some(Outcome::Data(d)) => bytes_to_f64s(&d),
                other => panic!("{other:?}"),
            }
        };
        let none = run(AbConfig { enabled: true, delay: DelayPolicy::None, nic_offload: false });
        let delayed = run(AbConfig {
            enabled: true,
            delay: DelayPolicy::Fixed { us: delay_us },
            nic_offload: false,
        });
        prop_assert_eq!(none, delayed);
    }

    /// Split-phase and blocking bypass agree with each other for any mix of
    /// who-uses-which.
    #[test]
    fn split_and_blocking_interoperate(
        n in 3u32..12,
        split_mask in any::<u16>(),
        net_seed in any::<u64>(),
    ) {
        let mut lb = ab_world(n, AbConfig::default(), Some(net_seed));
        let comm = lb.engines[0].world();
        let mut reqs = Vec::new();
        for r in (0..n as usize).rev() {
            let data = f64s_to_bytes(&[(r + 1) as f64]);
            let use_split = split_mask & (1 << (r % 16)) != 0;
            let req = if use_split {
                AbEngine::ireduce_split(&mut lb.engines[r], &comm, 0, ReduceOp::Sum, Datatype::F64, &data)
            } else {
                reduce_call(&mut lb, r, 0, &[(r + 1) as f64])
            };
            reqs.push((r, req));
        }
        lb.run_until_complete(&reqs, 20_000);
        let root_req = reqs.iter().find(|&&(r, _)| r == 0).unwrap().1;
        let expect: f64 = (1..=n).map(f64::from).sum();
        match lb.engines[0].take_outcome(root_req) {
            Some(Outcome::Data(d)) => prop_assert_eq!(bytes_to_f64s(&d), vec![expect]),
            Some(Outcome::Done) => {
                // Root used the blocking path (mask bit off) — fine, the
                // reduction still completed; re-check via state hygiene.
            }
            other => return Err(TestCaseError::fail(format!("{other:?}"))),
        }
        for e in &lb.engines {
            prop_assert!(e.descriptor_queue().is_empty());
        }
    }
}
