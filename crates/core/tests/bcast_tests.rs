//! Tests for application-bypass broadcast (the ref. \[8\] companion system):
//! the call never blocks on an absent ancestor, forwarding cascades through
//! signal handlers, and results match the blocking broadcast.

use abr_core::{AbConfig, AbEngine};
use abr_mpr::engine::{EngineConfig, MessageEngine};
use abr_mpr::request::Outcome;
use abr_mpr::testutil::Loopback;
use abr_mpr::types::f64s_to_bytes;
use bytes::Bytes;

fn ab_world(n: u32) -> Loopback<AbEngine> {
    let engines = (0..n)
        .map(|r| AbEngine::new(r, n, EngineConfig::default(), AbConfig::default()))
        .collect();
    let mut lb = Loopback::new(engines);
    lb.signal_dispatch = true;
    lb
}

fn post_bcast(
    lb: &mut Loopback<AbEngine>,
    rank: usize,
    root: u32,
    payload: &Bytes,
) -> abr_mpr::ReqId {
    let comm = lb.engines[rank].world();
    let data = (rank as u32 == root).then(|| payload.clone());
    lb.engines[rank].ibcast_split(&comm, root, data, payload.len())
}

#[test]
fn split_bcast_delivers_to_everyone() {
    for n in [2u32, 3, 4, 8, 13, 16] {
        for root in [0u32, n - 1] {
            let mut lb = ab_world(n);
            let payload = Bytes::from(f64s_to_bytes(&[3.5, -1.25, 42.0]));
            let reqs: Vec<_> = (0..n as usize)
                .map(|r| (r, post_bcast(&mut lb, r, root, &payload)))
                .collect();
            lb.run_until_complete(&reqs, 6000);
            for (r, id) in reqs {
                match lb.engines[r].take_outcome(id) {
                    Some(Outcome::Data(d)) => assert_eq!(d, payload, "n={n} root={root} rank={r}"),
                    other => panic!("n={n} root={root} rank={r}: {other:?}"),
                }
            }
            for e in &lb.engines {
                assert!(e.bcast_wait_queue().is_empty());
                assert!(!e.signals_enabled());
            }
        }
    }
}

#[test]
fn interior_node_posts_before_root_and_completes_via_signal() {
    // The skew scenario bypass broadcast exists for: a subtree is ready
    // long before the root even starts. Nobody below the root may block.
    let n = 8u32;
    let mut lb = ab_world(n);
    let payload = Bytes::from(vec![7u8; 64]);
    // Every non-root posts first; the calls return immediately with waits
    // registered and signals armed.
    let mut reqs: Vec<_> = (1..n as usize)
        .map(|r| (r, post_bcast(&mut lb, r, 0, &payload)))
        .collect();
    lb.run_to_quiescence(100);
    for &(r, id) in &reqs {
        assert!(
            !lb.engines[r].test(id),
            "rank {r} cannot have data before the root sends"
        );
    }
    for r in 1..n as usize {
        if !abr_mpr::tree::is_leaf(r as u32, 0, n)
            || !abr_mpr::tree::children(r as u32, 0, n).is_empty()
        {
            // every non-root registered exactly one wait
            assert_eq!(lb.engines[r].bcast_wait_queue().len(), 1, "rank {r}");
        }
        assert!(lb.engines[r].signals_enabled(), "rank {r} must arm signals");
    }
    // The root finally shows up. From here on, nothing but routing (which
    // dispatches signals) happens — no rank ever calls progress again.
    let root_req = post_bcast(&mut lb, 0, 0, &payload);
    reqs.push((0, root_req));
    for _ in 0..50 {
        lb.route_once();
        if reqs.iter().all(|&(r, id)| lb.engines[r].test(id)) {
            break;
        }
    }
    for (r, id) in reqs {
        match lb.engines[r].take_outcome(id) {
            Some(Outcome::Data(d)) => assert_eq!(d, payload, "rank {r}"),
            other => panic!("rank {r}: {other:?}"),
        }
    }
    let async_bcasts: u64 = lb.engines.iter().map(|e| e.ab_stats().async_bcasts).sum();
    assert!(
        async_bcasts >= 3,
        "interior forwarding must run in signal handlers, got {async_bcasts}"
    );
}

#[test]
fn early_broadcast_data_parks_and_is_swept_by_the_call() {
    // Root broadcasts before a child has even posted: the payload parks on
    // the AB unexpected queue (one copy) and the later ibcast_split call
    // completes instantly from it.
    let n = 4u32;
    let mut lb = ab_world(n);
    let payload = Bytes::from(vec![9u8; 16]);
    let r0 = post_bcast(&mut lb, 0, 0, &payload);
    lb.run_to_quiescence(50);
    // Rank 1's data arrived early; rank 1 triggers progress via an
    // unrelated library call, parking it.
    lb.engines[1].progress();
    assert_eq!(lb.engines[1].ab_unexpected_queue().len(), 1);
    let r1 = post_bcast(&mut lb, 1, 0, &payload);
    assert!(
        lb.engines[1].test(r1),
        "parked data completes the call at post"
    );
    let r2 = post_bcast(&mut lb, 2, 0, &payload);
    let r3 = post_bcast(&mut lb, 3, 0, &payload);
    lb.run_until_complete(&[(0, r0), (1, r1), (2, r2), (3, r3)], 2000);
    for (r, id) in [(0usize, r0), (1, r1), (2, r2), (3, r3)] {
        match lb.engines[r].take_outcome(id) {
            Some(Outcome::Data(d)) => assert_eq!(d, payload),
            other => panic!("rank {r}: {other:?}"),
        }
    }
}

#[test]
#[allow(clippy::needless_range_loop)] // rank used as value and index
fn back_to_back_split_bcasts_stay_in_order() {
    let n = 8u32;
    let rounds = 5u8;
    let mut lb = ab_world(n);
    let mut all = Vec::new();
    let mut per_rank: Vec<Vec<abr_mpr::ReqId>> = vec![Vec::new(); n as usize];
    for k in 0..rounds {
        let payload = Bytes::from(vec![k; 8]);
        for r in 0..n as usize {
            let id = post_bcast(&mut lb, r, 0, &payload);
            all.push((r, id));
            per_rank[r].push(id);
        }
        lb.route_once();
    }
    lb.run_until_complete(&all, 8000);
    for (r, ids) in per_rank.into_iter().enumerate() {
        for (k, id) in ids.into_iter().enumerate() {
            match lb.engines[r].take_outcome(id) {
                Some(Outcome::Data(d)) => {
                    assert_eq!(d.as_ref(), &vec![k as u8; 8][..], "rank {r} round {k}")
                }
                other => panic!("rank {r} round {k}: {other:?}"),
            }
        }
    }
}

#[test]
fn mixed_split_bcast_and_ab_reduce_coexist() {
    // Reduce traffic flows up while broadcast traffic flows down, both
    // bypassed, on the same communicator — tags keep the instances apart.
    let n = 8u32;
    let mut lb = ab_world(n);
    let comm = lb.engines[0].world();
    let payload = Bytes::from(vec![5u8; 8]);
    let mut reqs = Vec::new();
    for r in (0..n as usize).rev() {
        let red = lb.engines[r].ireduce(
            &comm,
            0,
            abr_mpr::ReduceOp::Sum,
            abr_mpr::Datatype::F64,
            &f64s_to_bytes(&[r as f64]),
        );
        if !lb.engines[r].test(red) && lb.engines[r].bounded_block_hint(red).is_some() {
            lb.engines[r].split_phase_exit(red);
        }
        reqs.push((r, red));
        let bc = post_bcast(&mut lb, r, 0, &payload);
        reqs.push((r, bc));
        lb.route_once();
    }
    lb.run_until_complete(&reqs, 8000);
    // Root's reduce result is correct despite interleaved bcast packets.
    let (_, root_red) = reqs.iter().copied().find(|&(r, _)| r == 0).unwrap();
    match lb.engines[0].take_outcome(root_red) {
        Some(Outcome::Data(d)) => {
            let expect: f64 = (0..n).map(f64::from).sum();
            assert_eq!(abr_mpr::types::bytes_to_f64s(&d), vec![expect]);
        }
        other => panic!("{other:?}"),
    }
    for e in &lb.engines {
        assert!(e.descriptor_queue().is_empty());
        assert!(e.bcast_wait_queue().is_empty());
        assert!(e.ab_unexpected_queue().is_empty());
    }
}

#[test]
fn oversized_split_bcast_falls_back_to_blocking() {
    let n = 4u32;
    let mut lb = ab_world(n);
    let payload = Bytes::from(vec![1u8; 64 * 1024]); // > eager limit
    let reqs: Vec<_> = (0..n as usize)
        .map(|r| (r, post_bcast(&mut lb, r, 0, &payload)))
        .collect();
    lb.run_until_complete(&reqs, 20_000);
    for (r, id) in reqs {
        match lb.engines[r].take_outcome(id) {
            Some(Outcome::Data(d)) => assert_eq!(d.len(), payload.len(), "rank {r}"),
            other => panic!("rank {r}: {other:?}"),
        }
        assert_eq!(
            lb.engines[r].ab_stats().bcast_splits,
            0,
            "fallback must not count"
        );
        assert!(lb.engines[r].inner().memory().is_balanced());
    }
}
