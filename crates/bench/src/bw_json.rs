//! `BENCH_bw.json`: the large-message bandwidth figure record.
//!
//! The `bandwidth_figure` binary sweeps message sizes from 1 KiB up to
//! `ABR_MSG_BYTES` for blocking (nab) against split-phase bypass (ab)
//! runs on three collectives — binomial reduce, chain reduce, and the
//! dual-root doubly-pipelined allreduce — and records every point here:
//! message size, series, nab/ab wall time and delivered bandwidth, nab/ab
//! CPU, and the CPU factor of improvement. `peak_ab` names the series
//! with the highest bypass bandwidth at the largest size — the headline
//! "segmentation keeps large messages on the bypass path" claim in
//! machine-checkable form. The JSON is hand-rolled like
//! `BENCH_sweep.json`; the output path defaults to `BENCH_bw.json` and
//! can be overridden with `ABR_BW_JSON`.

use crate::sweep_json::FigureRecord;

/// One (message size, series) point of the bandwidth figure.
#[derive(Debug, Clone)]
pub struct BwPoint {
    /// Message size in bytes.
    pub msg_bytes: usize,
    /// Series label: `binomial`, `chain`, or `dual-root`.
    pub series: String,
    /// Blocking-mode mean post-to-completion wall time (µs).
    pub nab_wall_us: f64,
    /// Split-phase bypass mean post-to-completion wall time (µs).
    pub ab_wall_us: f64,
    /// Blocking-mode delivered bandwidth (MB/s, decimal).
    pub nab_bw_mbs: f64,
    /// Split-phase bypass delivered bandwidth (MB/s, decimal).
    pub ab_bw_mbs: f64,
    /// Blocking-mode mean per-iteration host CPU (µs).
    pub nab_cpu_us: f64,
    /// Split-phase bypass mean per-iteration host CPU (µs).
    pub ab_cpu_us: f64,
    /// CPU factor of improvement (nab / ab).
    pub foi: f64,
}

impl BwPoint {
    /// Delivered bandwidth for a payload completing in `wall_us`
    /// microseconds: bytes per µs, which is decimal MB/s.
    pub fn bandwidth_mbs(bytes: usize, wall_us: f64) -> f64 {
        bytes as f64 / wall_us.max(1e-9)
    }
}

/// The output path: `ABR_BW_JSON` or `BENCH_bw.json`.
///
/// # Panics
/// Panics on a set-but-empty `ABR_BW_JSON`.
pub fn out_path() -> String {
    abr_trace::parse_env("ABR_BW_JSON", parse_out_path)
        .unwrap_or_else(|| "BENCH_bw.json".to_string())
}

/// Validate an explicit `ABR_BW_JSON` value: any non-empty path.
pub fn parse_out_path(raw: &str) -> Result<String, String> {
    if raw.trim().is_empty() {
        Err("ABR_BW_JSON must be a non-empty output path".to_string())
    } else {
        Ok(raw.to_string())
    }
}

/// The series with the highest bypass bandwidth at the largest size.
pub fn peak_ab(points: &[BwPoint]) -> Option<&BwPoint> {
    let largest = points.iter().map(|p| p.msg_bytes).max()?;
    points
        .iter()
        .filter(|p| p.msg_bytes == largest)
        .max_by(|a, b| a.ab_bw_mbs.partial_cmp(&b.ab_bw_mbs).expect("finite"))
}

/// Render the summary document (schema `abr-bw-v1`).
pub fn render(window: usize, points: &[BwPoint], fig: &FigureRecord) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"abr-bw-v1\",\n");
    s.push_str(&format!("  \"segments\": {window},\n"));
    match peak_ab(points) {
        Some(b) => s.push_str(&format!(
            "  \"peak_ab\": {{\"msg_bytes\": {}, \"series\": \"{}\", \"ab_bw_mbs\": {:.2}}},\n",
            b.msg_bytes, b.series, b.ab_bw_mbs
        )),
        None => s.push_str("  \"peak_ab\": null,\n"),
    }
    s.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"msg_bytes\": {}, \"series\": \"{}\", \"nab_wall_us\": {:.2}, \
             \"ab_wall_us\": {:.2}, \"nab_bw_mbs\": {:.2}, \"ab_bw_mbs\": {:.2}, \
             \"nab_cpu_us\": {:.2}, \"ab_cpu_us\": {:.2}, \"foi\": {:.2}}}{}\n",
            p.msg_bytes,
            p.series,
            p.nab_wall_us,
            p.ab_wall_us,
            p.nab_bw_mbs,
            p.ab_bw_mbs,
            p.nab_cpu_us,
            p.ab_cpu_us,
            p.foi,
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str(&format!(
        "  \"figure\": {{\"name\": \"{}\", \"points\": {}, \"wall_ms\": {:.3}}}\n",
        fig.name, fig.points, fig.wall_ms
    ));
    s.push_str("}\n");
    s
}

/// Write the summary to [`out_path`]; prints a notice on success and a
/// warning (without failing the run) if the write is impossible.
pub fn write(window: usize, points: &[BwPoint], fig: &FigureRecord) {
    let path = out_path();
    match std::fs::write(&path, render(window, points, fig)) {
        Ok(()) => eprintln!("bandwidth figure record written to {path}"),
        Err(e) => eprintln!("warning: could not write {path}: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(bytes: usize, series: &str, ab_bw: f64) -> BwPoint {
        BwPoint {
            msg_bytes: bytes,
            series: series.to_string(),
            nab_wall_us: 100.0,
            ab_wall_us: 80.0,
            nab_bw_mbs: ab_bw / 2.0,
            ab_bw_mbs: ab_bw,
            nab_cpu_us: 90.0,
            ab_cpu_us: 30.0,
            foi: 3.0,
        }
    }

    #[test]
    fn render_is_valid_shape_and_picks_peak() {
        let points = vec![
            pt(1024, "binomial", 40.0),
            pt(65536, "chain", 120.0),
            pt(65536, "dual-root", 200.0),
        ];
        let fig = FigureRecord {
            name: "fig_bandwidth",
            points: 12,
            wall_ms: 7.0,
        };
        let s = render(8, &points, &fig);
        assert!(s.contains("\"schema\": \"abr-bw-v1\""));
        assert!(s.contains("\"segments\": 8"));
        // Peak is judged at the largest size only.
        assert!(s.contains("\"peak_ab\": {\"msg_bytes\": 65536, \"series\": \"dual-root\""));
        assert!(s.contains("\"foi\": 3.00"));
        assert_eq!(s.matches('{').count(), s.matches('}').count());
        assert_eq!(s.matches('[').count(), s.matches(']').count());
    }

    #[test]
    fn empty_points_render_null_peak() {
        let fig = FigureRecord {
            name: "fig_bandwidth",
            points: 0,
            wall_ms: 0.0,
        };
        let s = render(1, &[], &fig);
        assert!(s.contains("\"peak_ab\": null"));
    }

    #[test]
    fn bandwidth_guards_zero_wall() {
        assert!(BwPoint::bandwidth_mbs(1024, 0.0) > 0.0);
        let bw = BwPoint::bandwidth_mbs(2_000_000, 1000.0);
        assert!((bw - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn parse_out_path_rejects_empty() {
        assert_eq!(parse_out_path("x.json"), Ok("x.json".to_string()));
        assert!(parse_out_path(" ").unwrap_err().contains("ABR_BW_JSON"));
    }
}
