//! `BENCH_fabric.json`: the fabric-contention figure record.
//!
//! The `fabric_figure` binary sweeps ab-vs-nab CPU per reduction topology
//! on a contended fabric (4:1-oversubscribed fat-tree unless `ABR_FABRIC`
//! / `ABR_OVERSUB` say otherwise) and records every point here: rank
//! count, topology, nab/ab CPU, FoI, and the fabric's link-wait counters.
//! `best_nab` names the topology with the lowest blocking-mode CPU at the
//! largest size — the headline "placement-aware trees win under
//! contention" claim in machine-checkable form. The JSON is hand-rolled
//! like `BENCH_sweep.json`; the output path defaults to
//! `BENCH_fabric.json` and can be overridden with `ABR_FABRIC_JSON`.

use crate::sweep_json::FigureRecord;

/// One (size, topology) point of the fabric figure.
#[derive(Debug, Clone)]
pub struct FabricPoint {
    /// Cluster size (ranks).
    pub size: u32,
    /// Reduction topology label (`ABR_TOPO` syntax).
    pub topo: String,
    /// Blocking-mode mean per-reduction CPU (µs).
    pub nab_us: f64,
    /// Bypass-mode mean per-reduction CPU (µs).
    pub ab_us: f64,
    /// Factor of improvement (nab / ab).
    pub foi: f64,
    /// Packets that queued behind a busy link (nab + ab runs).
    pub link_waits: u64,
    /// Total queueing time on busy links (µs, nab + ab runs).
    pub link_wait_us: f64,
}

/// The output path: `ABR_FABRIC_JSON` or `BENCH_fabric.json`.
///
/// # Panics
/// Panics on a set-but-empty `ABR_FABRIC_JSON`.
pub fn out_path() -> String {
    abr_trace::parse_env("ABR_FABRIC_JSON", parse_out_path)
        .unwrap_or_else(|| "BENCH_fabric.json".to_string())
}

/// Validate an explicit `ABR_FABRIC_JSON` value: any non-empty path.
pub fn parse_out_path(raw: &str) -> Result<String, String> {
    if raw.trim().is_empty() {
        Err("ABR_FABRIC_JSON must be a non-empty output path".to_string())
    } else {
        Ok(raw.to_string())
    }
}

/// The topology with the lowest blocking-mode CPU at the largest size.
pub fn best_nab(points: &[FabricPoint]) -> Option<&FabricPoint> {
    let largest = points.iter().map(|p| p.size).max()?;
    points
        .iter()
        .filter(|p| p.size == largest)
        .min_by(|a, b| a.nab_us.partial_cmp(&b.nab_us).expect("finite"))
}

/// Render the summary document (schema `abr-fabric-v1`).
pub fn render(fabric: &str, points: &[FabricPoint], fig: &FigureRecord) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"abr-fabric-v1\",\n");
    s.push_str(&format!("  \"fabric\": \"{fabric}\",\n"));
    match best_nab(points) {
        Some(b) => s.push_str(&format!(
            "  \"best_nab\": {{\"size\": {}, \"topo\": \"{}\", \"nab_us\": {:.2}}},\n",
            b.size, b.topo, b.nab_us
        )),
        None => s.push_str("  \"best_nab\": null,\n"),
    }
    s.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"size\": {}, \"topo\": \"{}\", \"nab_us\": {:.2}, \"ab_us\": {:.2}, \
             \"foi\": {:.2}, \"link_waits\": {}, \"link_wait_us\": {:.1}}}{}\n",
            p.size,
            p.topo,
            p.nab_us,
            p.ab_us,
            p.foi,
            p.link_waits,
            p.link_wait_us,
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str(&format!(
        "  \"figure\": {{\"name\": \"{}\", \"points\": {}, \"wall_ms\": {:.3}}}\n",
        fig.name, fig.points, fig.wall_ms
    ));
    s.push_str("}\n");
    s
}

/// Write the summary to [`out_path`]; prints a notice on success and a
/// warning (without failing the run) if the write is impossible.
pub fn write(fabric: &str, points: &[FabricPoint], fig: &FigureRecord) {
    let path = out_path();
    match std::fs::write(&path, render(fabric, points, fig)) {
        Ok(()) => eprintln!("fabric figure record written to {path}"),
        Err(e) => eprintln!("warning: could not write {path}: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(size: u32, topo: &str, nab: f64) -> FabricPoint {
        FabricPoint {
            size,
            topo: topo.to_string(),
            nab_us: nab,
            ab_us: nab / 3.0,
            foi: 3.0,
            link_waits: 10,
            link_wait_us: 5.5,
        }
    }

    #[test]
    fn render_is_valid_shape_and_picks_best() {
        let points = vec![
            pt(512, "binomial", 50.0),
            pt(2048, "binomial", 90.0),
            pt(2048, "locality4x16:cyclic", 60.0),
        ];
        let fig = FigureRecord {
            name: "fig_fabric",
            points: 12,
            wall_ms: 7.0,
        };
        let s = render("fattree:4:cyclic", &points, &fig);
        assert!(s.contains("\"schema\": \"abr-fabric-v1\""));
        assert!(s.contains("\"fabric\": \"fattree:4:cyclic\""));
        // Best is judged at the largest size only.
        assert!(s.contains("\"best_nab\": {\"size\": 2048, \"topo\": \"locality4x16:cyclic\""));
        assert!(s.contains("\"link_waits\": 10"));
        assert_eq!(s.matches('{').count(), s.matches('}').count());
        assert_eq!(s.matches('[').count(), s.matches(']').count());
    }

    #[test]
    fn empty_points_render_null_best() {
        let fig = FigureRecord {
            name: "fig_fabric",
            points: 0,
            wall_ms: 0.0,
        };
        let s = render("flat", &[], &fig);
        assert!(s.contains("\"best_nab\": null"));
    }

    #[test]
    fn parse_out_path_rejects_empty() {
        assert_eq!(parse_out_path("x.json"), Ok("x.json".to_string()));
        assert!(parse_out_path(" ").unwrap_err().contains("ABR_FABRIC_JSON"));
    }
}
