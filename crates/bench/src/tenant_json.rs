//! `BENCH_tenant.json`: the multi-tenant saturation figure record.
//!
//! The `tenant_figure` binary sweeps offered load up a fixed ladder on a
//! fixed cluster (see `abr_cluster::tenant::saturation_config`): each
//! point runs the same seeded job mix once under busy-polling baseline
//! engines (nab) and once under application-bypass engines (ab), and
//! records aggregate reductions/sec, pooled p50/p99/p999 iteration
//! latency, and Jain fairness for both. The `headline` block pins the
//! figure's claim — the ab throughput advantage *widens* as load rises —
//! in machine-checkable form. The JSON is hand-rolled like
//! `BENCH_sweep.json`; the output path defaults to `BENCH_tenant.json`
//! and can be overridden with `ABR_TENANT_JSON`.

use crate::sweep_json::FigureRecord;

/// One offered-load point of the saturation sweep (both engine modes).
#[derive(Debug, Clone)]
pub struct TenantPoint {
    /// Offered-load factor (x-axis).
    pub load: f64,
    /// Co-scheduled jobs at this point.
    pub jobs: usize,
    /// Total ranks across the mix.
    pub ranks: usize,
    /// Baseline aggregate throughput (reductions/sec).
    pub nab_red_s: f64,
    /// Bypass aggregate throughput (reductions/sec).
    pub ab_red_s: f64,
    /// Baseline pooled iteration-latency percentiles (µs).
    pub nab_p50_us: f64,
    /// Baseline p99 (µs).
    pub nab_p99_us: f64,
    /// Baseline p999 (µs).
    pub nab_p999_us: f64,
    /// Bypass pooled iteration-latency percentiles (µs).
    pub ab_p50_us: f64,
    /// Bypass p99 (µs).
    pub ab_p99_us: f64,
    /// Bypass p999 (µs).
    pub ab_p999_us: f64,
    /// Baseline Jain fairness over per-job throughput.
    pub nab_fairness: f64,
    /// Bypass Jain fairness over per-job throughput.
    pub ab_fairness: f64,
}

impl TenantPoint {
    /// The bypass throughput advantage at this point (ab / nab).
    pub fn advantage(&self) -> f64 {
        if self.nab_red_s <= 0.0 {
            return 0.0;
        }
        self.ab_red_s / self.nab_red_s
    }
}

/// The output path: `ABR_TENANT_JSON` or `BENCH_tenant.json`.
///
/// # Panics
/// Panics on a set-but-empty `ABR_TENANT_JSON`.
pub fn out_path() -> String {
    abr_trace::parse_env("ABR_TENANT_JSON", parse_out_path)
        .unwrap_or_else(|| "BENCH_tenant.json".to_string())
}

/// Validate an explicit `ABR_TENANT_JSON` value: any non-empty path.
pub fn parse_out_path(raw: &str) -> Result<String, String> {
    if raw.trim().is_empty() {
        Err("ABR_TENANT_JSON must be a non-empty output path".to_string())
    } else {
        Ok(raw.to_string())
    }
}

/// The figure's claim over a sweep: the ab advantage at the relaxed end,
/// at the saturated end, and whether it widened. `None` for sweeps with
/// fewer than two points.
pub fn headline(points: &[TenantPoint]) -> Option<(f64, f64, bool)> {
    if points.len() < 2 {
        return None;
    }
    let lo = points.first()?.advantage();
    let hi = points.last()?.advantage();
    Some((lo, hi, hi > lo))
}

/// Render the summary document (schema `abr-tenant-v1`).
pub fn render(
    seed: u64,
    base_jobs: usize,
    slots: usize,
    points: &[TenantPoint],
    fig: &FigureRecord,
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"abr-tenant-v1\",\n");
    s.push_str(&format!("  \"seed\": {seed},\n"));
    s.push_str(&format!("  \"base_jobs\": {base_jobs},\n"));
    s.push_str(&format!("  \"slots\": {slots},\n"));
    match headline(points) {
        Some((lo, hi, widening)) => s.push_str(&format!(
            "  \"headline\": {{\"adv_relaxed\": {lo:.3}, \"adv_saturated\": {hi:.3}, \
             \"widening\": {widening}}},\n"
        )),
        None => s.push_str("  \"headline\": null,\n"),
    }
    s.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"load\": {}, \"jobs\": {}, \"ranks\": {}, \"nab_red_s\": {:.1}, \
             \"ab_red_s\": {:.1}, \"advantage\": {:.3}, \"nab_p50_us\": {:.1}, \
             \"nab_p99_us\": {:.1}, \"nab_p999_us\": {:.1}, \"ab_p50_us\": {:.1}, \
             \"ab_p99_us\": {:.1}, \"ab_p999_us\": {:.1}, \"nab_fairness\": {:.4}, \
             \"ab_fairness\": {:.4}}}{}\n",
            p.load,
            p.jobs,
            p.ranks,
            p.nab_red_s,
            p.ab_red_s,
            p.advantage(),
            p.nab_p50_us,
            p.nab_p99_us,
            p.nab_p999_us,
            p.ab_p50_us,
            p.ab_p99_us,
            p.ab_p999_us,
            p.nab_fairness,
            p.ab_fairness,
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    s.push_str(&format!(
        "  \"figure\": {{\"name\": \"{}\", \"points\": {}, \"wall_ms\": {:.3}}}\n",
        fig.name, fig.points, fig.wall_ms
    ));
    s.push_str("}\n");
    s
}

/// Write the summary to [`out_path`]; prints a notice on success and a
/// warning (without failing the run) if the write is impossible.
pub fn write(
    seed: u64,
    base_jobs: usize,
    slots: usize,
    points: &[TenantPoint],
    fig: &FigureRecord,
) {
    let path = out_path();
    match std::fs::write(&path, render(seed, base_jobs, slots, points, fig)) {
        Ok(()) => eprintln!("tenant figure record written to {path}"),
        Err(e) => eprintln!("warning: could not write {path}: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(load: f64, nab: f64, ab: f64) -> TenantPoint {
        TenantPoint {
            load,
            jobs: (2.0 * load) as usize,
            ranks: (20.0 * load) as usize,
            nab_red_s: nab,
            ab_red_s: ab,
            nab_p50_us: 400.0,
            nab_p99_us: 900.0,
            nab_p999_us: 1200.0,
            ab_p50_us: 200.0,
            ab_p99_us: 350.0,
            ab_p999_us: 500.0,
            nab_fairness: 0.97,
            ab_fairness: 0.98,
        }
    }

    #[test]
    fn render_is_valid_shape_with_widening_headline() {
        let points = vec![pt(1.0, 2000.0, 2020.0), pt(8.0, 30000.0, 62000.0)];
        let fig = FigureRecord {
            name: "fig_tenant",
            points: 4,
            wall_ms: 11.0,
        };
        let s = render(17, 2, 4, &points, &fig);
        assert!(s.contains("\"schema\": \"abr-tenant-v1\""));
        assert!(s.contains("\"widening\": true"));
        assert!(s.contains("\"adv_relaxed\": 1.010"));
        assert!(s.contains("\"advantage\": 2.067"));
        assert_eq!(s.matches('{').count(), s.matches('}').count());
        assert_eq!(s.matches('[').count(), s.matches(']').count());
        abr_trace::validate_json(&s).expect("tenant record must be valid JSON");
    }

    #[test]
    fn single_point_sweeps_render_null_headline() {
        let fig = FigureRecord {
            name: "fig_tenant",
            points: 1,
            wall_ms: 1.0,
        };
        let s = render(17, 2, 4, &[pt(1.0, 10.0, 10.0)], &fig);
        assert!(s.contains("\"headline\": null"));
    }

    #[test]
    fn advantage_guards_zero_baseline() {
        assert_eq!(pt(1.0, 0.0, 10.0).advantage(), 0.0);
        let p = pt(1.0, 10.0, 25.0);
        assert!((p.advantage() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn parse_out_path_rejects_empty() {
        assert_eq!(parse_out_path("t.json"), Ok("t.json".to_string()));
        assert!(parse_out_path("  ")
            .unwrap_err()
            .contains("ABR_TENANT_JSON"));
    }
}
