//! `BENCH_sweep.json`: wall-clock records for figure sweeps.
//!
//! The figure binaries time each figure's sweep and write one JSON file
//! summarizing the run: worker count, iteration count, and a
//! `{name, points, wall_ms}` record per figure. The series themselves are
//! deterministic at any worker count (see [`abr_cluster::sweep`]), so this
//! file is the place to look for the *throughput* effect of `ABR_JOBS`.
//!
//! The output path defaults to `BENCH_sweep.json` in the current directory
//! and can be overridden with the `ABR_SWEEP_JSON` environment variable.
//! The JSON is hand-rolled (no serializer dependency); all strings written
//! are compile-time figure names, so no escaping is needed.

use abr_cluster::report::Table;
use abr_cluster::sweep::points_run;
use std::time::Instant;

/// Wall-clock record for one figure's sweep.
#[derive(Debug, Clone)]
pub struct FigureRecord {
    /// Figure name, e.g. `fig6`.
    pub name: &'static str,
    /// Simulation points the sweep evaluated.
    pub points: u64,
    /// Wall-clock time for the whole figure (ms).
    pub wall_ms: f64,
}

/// Run `f`, returning its tables plus a timing record attributing the
/// sweep points it executed.
pub fn timed_figure(
    name: &'static str,
    f: impl FnOnce() -> Vec<Table>,
) -> (Vec<Table>, FigureRecord) {
    let points_before = points_run();
    let t0 = Instant::now();
    let tables = f();
    let record = FigureRecord {
        name,
        points: points_run() - points_before,
        wall_ms: t0.elapsed().as_secs_f64() * 1e3,
    };
    (tables, record)
}

/// The output path: `ABR_SWEEP_JSON` or `BENCH_sweep.json`.
///
/// # Panics
/// Panics on a set-but-empty `ABR_SWEEP_JSON` — an empty path would make the
/// write fail after the whole sweep has already run.
pub fn out_path() -> String {
    abr_trace::parse_env("ABR_SWEEP_JSON", parse_out_path)
        .unwrap_or_else(|| "BENCH_sweep.json".to_string())
}

/// Validate an explicit `ABR_SWEEP_JSON` value: any non-empty path.
pub fn parse_out_path(raw: &str) -> Result<String, String> {
    if raw.trim().is_empty() {
        Err("ABR_SWEEP_JSON must be a non-empty output path".to_string())
    } else {
        Ok(raw.to_string())
    }
}

/// Render the summary JSON document.
pub fn render(jobs: usize, iters: u64, records: &[FigureRecord]) -> String {
    let total_points: u64 = records.iter().map(|r| r.points).sum();
    let total_ms: f64 = records.iter().map(|r| r.wall_ms).sum();
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"abr-sweep-v1\",\n");
    s.push_str(&format!("  \"jobs\": {jobs},\n"));
    s.push_str(&format!("  \"iters\": {iters},\n"));
    s.push_str(&format!("  \"total_points\": {total_points},\n"));
    s.push_str(&format!("  \"total_wall_ms\": {total_ms:.3},\n"));
    s.push_str("  \"figures\": [\n");
    for (i, r) in records.iter().enumerate() {
        let comma = if i + 1 < records.len() { "," } else { "" };
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"points\": {}, \"wall_ms\": {:.3}}}{comma}\n",
            r.name, r.points, r.wall_ms
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Write the summary to [`out_path`]; prints a one-line notice on success
/// and a warning (without failing the run) if the write is impossible.
pub fn write(jobs: usize, iters: u64, records: &[FigureRecord]) {
    let path = out_path();
    match std::fs::write(&path, render(jobs, iters, records)) {
        Ok(()) => eprintln!("sweep timings written to {path}"),
        Err(e) => eprintln!("warning: could not write {path}: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_is_valid_shape() {
        let records = vec![
            FigureRecord {
                name: "fig6",
                points: 66,
                wall_ms: 12.5,
            },
            FigureRecord {
                name: "fig7",
                points: 60,
                wall_ms: 8.25,
            },
        ];
        let s = render(4, 300, &records);
        assert!(s.contains("\"jobs\": 4"));
        assert!(s.contains("\"total_points\": 126"));
        assert!(s.contains("\"name\": \"fig6\""));
        assert!(s.contains("\"wall_ms\": 8.250}"));
        assert_eq!(s.matches('{').count(), s.matches('}').count());
        // Exactly one trailing-comma-free list.
        assert!(!s.contains(",\n  ]"));
    }

    #[test]
    fn parse_out_path_rejects_empty() {
        assert_eq!(parse_out_path("out.json"), Ok("out.json".to_string()));
        for bad in ["", "   "] {
            let err = parse_out_path(bad).unwrap_err();
            assert!(err.contains("ABR_SWEEP_JSON"), "{bad:?}: {err}");
        }
    }

    #[test]
    fn timed_figure_attributes_points() {
        use abr_cluster::sweep::Sweep;
        let (tables, rec) = timed_figure("probe", || {
            Sweep::with_jobs(1).map(&[1u8, 2], |&x| x);
            Vec::new()
        });
        assert!(tables.is_empty());
        assert_eq!(rec.name, "probe");
        assert!(rec.points >= 2);
        assert!(rec.wall_ms >= 0.0);
    }
}
