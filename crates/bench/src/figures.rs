//! Per-figure data generation.
//!
//! Every figure is a *sweep*: a flat list of independent config points
//! (each a complete, seeded simulation) evaluated via
//! [`abr_cluster::sweep::Sweep`], then assembled into tables in a fixed
//! order. Points run in parallel when `ABR_JOBS` (or the core count)
//! allows; because every point is a pure function of its config, the
//! emitted tables are bit-identical at any worker count.

use crate::bw_json::BwPoint;
use crate::fabric_json::FabricPoint;
use crate::tenant_json::TenantPoint;
use abr_cluster::microbench::{AppBenchConfig, BenchColl, CpuUtilConfig, LatencyConfig, Mode};
use abr_cluster::node::ClusterSpec;
use abr_cluster::report::{f2, ratio, Table};
use abr_cluster::sweep::{RunOut, RunSpec, Sweep};
use abr_cluster::tenant::{run_tenant, saturation_config, TenantConfig};
use abr_cluster::{FaultPlan, RelStats};
use abr_core::DelayPolicy;
use abr_fabric::{FabricSpec, PlacementPolicy};
use abr_gm::cost::CostModel;
use abr_mpr::topology::TopologyKind;

const ELEMS: [usize; 3] = [4, 32, 128];
const NODE_SWEEP: [u32; 5] = [2, 4, 8, 16, 32];

fn ab_mode() -> Mode {
    Mode::Bypass(DelayPolicy::None)
}

fn sweep() -> Sweep {
    Sweep::from_env()
}

fn cpu_spec(cluster: ClusterSpec, elems: usize, skew: u64, iters: u64, mode: Mode) -> RunSpec {
    RunSpec::Cpu(CpuUtilConfig {
        elems,
        max_skew_us: skew,
        iters,
        mode,
        ..CpuUtilConfig::new(cluster, mode)
    })
}

fn lat_spec(cluster: ClusterSpec, elems: usize, iters: u64, mode: Mode) -> RunSpec {
    RunSpec::Latency(LatencyConfig {
        elems,
        iters,
        mode,
        ..LatencyConfig::new(cluster, mode)
    })
}

fn mean_cpu(out: &RunOut) -> f64 {
    out.cpu().mean_cpu_us
}

fn mean_latency(out: &RunOut) -> f64 {
    out.latency().mean_latency_us
}

/// Fig. 6: average CPU utilization (a) and factor of improvement (b) for 32
/// nodes, skew 0..1000 µs, 4/32/128-element double-word messages.
pub fn fig6(iters: u64) -> Vec<Table> {
    let skews: Vec<u64> = (0..=1000).step_by(100).collect();
    let mut specs = Vec::new();
    for &skew in &skews {
        for mode in [Mode::Baseline, ab_mode()] {
            for &e in &ELEMS {
                specs.push(cpu_spec(
                    ClusterSpec::heterogeneous_32(),
                    e,
                    skew,
                    iters,
                    mode,
                ));
            }
        }
    }
    let out = sweep().run_points(&specs);
    let mut t_util = Table::new(
        "Fig 6a: Average CPU utilization vs max skew (32 nodes, us)",
        &[
            "skew_us", "nab-4", "nab-32", "nab-128", "ab-4", "ab-32", "ab-128",
        ],
    );
    let mut t_foi = Table::new(
        "Fig 6b: Factor of improvement vs max skew (32 nodes)",
        &["skew_us", "foi-4", "foi-32", "foi-128"],
    );
    for (row, &skew) in skews.iter().enumerate() {
        let cells = &out[row * 6..row * 6 + 6];
        let nab: Vec<f64> = cells[..3].iter().map(mean_cpu).collect();
        let ab: Vec<f64> = cells[3..].iter().map(mean_cpu).collect();
        t_util.row(vec![
            skew.to_string(),
            f2(nab[0]),
            f2(nab[1]),
            f2(nab[2]),
            f2(ab[0]),
            f2(ab[1]),
            f2(ab[2]),
        ]);
        t_foi.row(vec![
            skew.to_string(),
            ratio(nab[0], ab[0]),
            ratio(nab[1], ab[1]),
            ratio(nab[2], ab[2]),
        ]);
    }
    vec![t_util, t_foi]
}

/// Fig. 7: CPU utilization (a) and factor of improvement (b) vs node count
/// at 1000 µs maximum skew.
pub fn fig7(iters: u64) -> Vec<Table> {
    node_sweep_tables(iters, 1000, "Fig 7a", "Fig 7b", "maximal (1000us) skew")
}

/// Fig. 8: CPU utilization (a) and factor of improvement (b) vs node count
/// with **no** injected skew (natural skew only).
pub fn fig8(iters: u64) -> Vec<Table> {
    node_sweep_tables(iters, 0, "Fig 8a", "Fig 8b", "no injected skew")
}

fn node_sweep_tables(iters: u64, skew: u64, a_name: &str, b_name: &str, what: &str) -> Vec<Table> {
    let mut specs = Vec::new();
    for &n in &NODE_SWEEP {
        for mode in [Mode::Baseline, ab_mode()] {
            for &e in &ELEMS {
                specs.push(cpu_spec(
                    ClusterSpec::heterogeneous(n),
                    e,
                    skew,
                    iters,
                    mode,
                ));
            }
        }
    }
    let out = sweep().run_points(&specs);
    let mut t_util = Table::new(
        format!("{a_name}: Average CPU utilization vs nodes ({what}, us)"),
        &[
            "nodes", "nab-4", "nab-32", "nab-128", "ab-4", "ab-32", "ab-128",
        ],
    );
    let mut t_foi = Table::new(
        format!("{b_name}: Factor of improvement vs nodes ({what})"),
        &["nodes", "foi-4", "foi-32", "foi-128"],
    );
    for (row, &n) in NODE_SWEEP.iter().enumerate() {
        let cells = &out[row * 6..row * 6 + 6];
        let nab: Vec<f64> = cells[..3].iter().map(mean_cpu).collect();
        let ab: Vec<f64> = cells[3..].iter().map(mean_cpu).collect();
        t_util.row(vec![
            n.to_string(),
            f2(nab[0]),
            f2(nab[1]),
            f2(nab[2]),
            f2(ab[0]),
            f2(ab[1]),
            f2(ab[2]),
        ]);
        t_foi.row(vec![
            n.to_string(),
            ratio(nab[0], ab[0]),
            ratio(nab[1], ab[1]),
            ratio(nab[2], ab[2]),
        ]);
    }
    vec![t_util, t_foi]
}

/// Fig. 9: reduction latency vs node count without skew, single-element
/// messages: (a) the heterogeneous 32-node cluster, (b) the homogeneous
/// 16-node 700-MHz cluster.
pub fn fig9(iters: u64) -> Vec<Table> {
    const HOM_SWEEP: [u32; 4] = [2, 4, 8, 16];
    let mut specs = Vec::new();
    for &n in &NODE_SWEEP {
        specs.push(lat_spec(
            ClusterSpec::heterogeneous(n),
            1,
            iters,
            Mode::Baseline,
        ));
        specs.push(lat_spec(ClusterSpec::heterogeneous(n), 1, iters, ab_mode()));
    }
    for &n in &HOM_SWEEP {
        specs.push(lat_spec(
            ClusterSpec::homogeneous_700(n),
            1,
            iters,
            Mode::Baseline,
        ));
        specs.push(lat_spec(
            ClusterSpec::homogeneous_700(n),
            1,
            iters,
            ab_mode(),
        ));
    }
    let out = sweep().run_points(&specs);
    let mut t_het = Table::new(
        "Fig 9a: Latency vs nodes, heterogeneous cluster (1 elem, us)",
        &["nodes", "nab", "ab"],
    );
    for (row, &n) in NODE_SWEEP.iter().enumerate() {
        let nab = mean_latency(&out[row * 2]);
        let ab = mean_latency(&out[row * 2 + 1]);
        t_het.row(vec![n.to_string(), f2(nab), f2(ab)]);
    }
    let mut t_hom = Table::new(
        "Fig 9b: Latency vs nodes, homogeneous 700-MHz cluster (1 elem, us)",
        &["nodes", "nab", "ab"],
    );
    let base = NODE_SWEEP.len() * 2;
    for (row, &n) in HOM_SWEEP.iter().enumerate() {
        let nab = mean_latency(&out[base + row * 2]);
        let ab = mean_latency(&out[base + row * 2 + 1]);
        t_hom.row(vec![n.to_string(), f2(nab), f2(ab)]);
    }
    vec![t_het, t_hom]
}

/// Fig. 10: reduction latency vs message size (1..128 double words) on the
/// 32-node heterogeneous cluster, no skew.
pub fn fig10(iters: u64) -> Vec<Table> {
    const SIZES: [usize; 8] = [1, 2, 4, 8, 16, 32, 64, 128];
    let mut specs = Vec::new();
    for &e in &SIZES {
        specs.push(lat_spec(
            ClusterSpec::heterogeneous_32(),
            e,
            iters,
            Mode::Baseline,
        ));
        specs.push(lat_spec(
            ClusterSpec::heterogeneous_32(),
            e,
            iters,
            ab_mode(),
        ));
    }
    let out = sweep().run_points(&specs);
    let mut t = Table::new(
        "Fig 10: Latency vs message size (32 nodes, us)",
        &["elems", "nab", "ab", "ab-nab"],
    );
    for (row, &e) in SIZES.iter().enumerate() {
        let nab = mean_latency(&out[row * 2]);
        let ab = mean_latency(&out[row * 2 + 1]);
        t.row(vec![e.to_string(), f2(nab), f2(ab), f2(ab - nab)]);
    }
    vec![t]
}

/// Ablation: the §IV-E exit-delay policy — signals taken and CPU cost as
/// the delay grows, at moderate skew.
pub fn ablation_delay(iters: u64) -> Vec<Table> {
    let cluster = ClusterSpec::heterogeneous(16);
    let policies: Vec<(String, DelayPolicy)> = vec![
        ("none".into(), DelayPolicy::None),
        ("fixed-50us".into(), DelayPolicy::Fixed { us: 50.0 }),
        ("fixed-250us".into(), DelayPolicy::Fixed { us: 250.0 }),
        (
            "per-proc-2us".into(),
            DelayPolicy::PerProcess {
                us_per_process: 2.0,
            },
        ),
        (
            "per-proc-15us".into(),
            DelayPolicy::PerProcess {
                us_per_process: 15.0,
            },
        ),
        (
            "per-level-20us".into(),
            DelayPolicy::PerTreeLevel { us_per_level: 20.0 },
        ),
    ];
    let mut specs = vec![cpu_spec(cluster.clone(), 4, 200, iters, Mode::Baseline)];
    for &(_, p) in &policies {
        specs.push(cpu_spec(cluster.clone(), 4, 200, iters, Mode::Bypass(p)));
    }
    let out = sweep().run_points(&specs);
    let nab = out[0].cpu();
    let mut t = Table::new(
        "Ablation: exit-delay policy (16 nodes, 200us max skew, 4 elems)",
        &[
            "policy",
            "delay_us@16",
            "mean_cpu_us",
            "signals",
            "foi_vs_nab",
        ],
    );
    for (i, (name, p)) in policies.into_iter().enumerate() {
        let r = out[i + 1].cpu();
        t.row(vec![
            name,
            f2(p.budget(16).as_us_f64()),
            f2(r.mean_cpu_us),
            r.signals.to_string(),
            ratio(nab.mean_cpu_us, r.mean_cpu_us),
        ]);
    }
    vec![t]
}

/// Ablation: sensitivity of the factor of improvement to the signal cost
/// (the interrupt-vs-poll trade at the heart of the design).
pub fn ablation_signal_cost(iters: u64) -> Vec<Table> {
    const SIGNAL_US: [f64; 6] = [1.0, 2.5, 5.5, 11.0, 22.0, 44.0];
    let mut specs = Vec::new();
    for &sig in &SIGNAL_US {
        let cost = CostModel {
            signal_delivery_us: sig * 0.8,
            signal_handler_entry_us: sig * 0.2,
            ..CostModel::default()
        };
        let cluster = ClusterSpec::heterogeneous_32().with_cost(cost);
        specs.push(cpu_spec(cluster.clone(), 4, 1000, iters, Mode::Baseline));
        specs.push(cpu_spec(cluster, 4, 1000, iters, ab_mode()));
    }
    let out = sweep().run_points(&specs);
    let mut t = Table::new(
        "Ablation: signal-cost sensitivity (32 nodes, 1000us skew, 4 elems)",
        &["signal_us", "nab_cpu_us", "ab_cpu_us", "foi"],
    );
    for (row, &sig) in SIGNAL_US.iter().enumerate() {
        let nab = mean_cpu(&out[row * 2]);
        let ab = mean_cpu(&out[row * 2 + 1]);
        t.row(vec![f2(sig), f2(nab), f2(ab), ratio(nab, ab)]);
    }
    vec![t]
}

/// Ablation: the copy-count claims of §V (50% fewer copies for unexpected
/// messages, 100% for expected/late) plus the split-phase extension.
pub fn ablation_copies(iters: u64) -> Vec<Table> {
    let cluster = ClusterSpec::heterogeneous(16);
    let modes = [Mode::Baseline, ab_mode(), Mode::SplitPhase];
    let specs: Vec<RunSpec> = modes
        .iter()
        .map(|&mode| cpu_spec(cluster.clone(), 32, 300, iters, mode))
        .collect();
    let out = sweep().run_points(&specs);
    let mut t = Table::new(
        "Copy accounting and split-phase (16 nodes, 300us skew, 32 elems)",
        &[
            "mode",
            "mean_cpu_us",
            "copies",
            "copy_bytes",
            "copies_saved",
            "signals",
        ],
    );
    for (mode, out) in modes.iter().zip(&out) {
        let r = out.cpu();
        let get = |k: &str| {
            r.counters
                .iter()
                .find(|(n, _)| *n == k)
                .map(|&(_, v)| v)
                .unwrap_or(0)
        };
        t.row(vec![
            mode.label().to_string(),
            f2(r.mean_cpu_us),
            get("copies").to_string(),
            get("copy_bytes").to_string(),
            get("copies_saved").to_string(),
            r.signals.to_string(),
        ]);
    }
    vec![t]
}

/// Ablation: the §VII NIC-based reduction extension — how much host CPU the
/// NIC absorbs, and where the slow LANai arithmetic starts to hurt latency.
pub fn ablation_nic(iters: u64) -> Vec<Table> {
    const SIZES: [usize; 5] = [1, 8, 32, 128, 512];
    let cluster = ClusterSpec::heterogeneous(16);
    let modes = [Mode::Baseline, ab_mode(), Mode::NicBypass];
    let mut specs: Vec<RunSpec> = modes
        .iter()
        .map(|&mode| cpu_spec(cluster.clone(), 4, 500, iters, mode))
        .collect();
    for &e in &SIZES {
        for mode in [Mode::Baseline, ab_mode(), Mode::NicBypass] {
            specs.push(lat_spec(ClusterSpec::heterogeneous_32(), e, iters, mode));
        }
    }
    let out = sweep().run_points(&specs);
    let mut t = Table::new(
        "Ablation: NIC-based reduction, CPU (16 nodes, 500us max skew, 4 elems)",
        &["mode", "host_cpu_us", "nic_us_total", "signals"],
    );
    for (mode, out) in modes.iter().zip(&out) {
        let r = out.cpu();
        t.row(vec![
            mode.label().to_string(),
            f2(r.mean_cpu_us),
            f2(r.nic_us_total),
            r.signals.to_string(),
        ]);
    }
    let mut t2 = Table::new(
        "Ablation: NIC-based reduction, latency vs message size (32 nodes, us)",
        &["elems", "nab", "ab", "ab-nic"],
    );
    for (row, &e) in SIZES.iter().enumerate() {
        let cells = &out[modes.len() + row * 3..modes.len() + row * 3 + 3];
        t2.row(vec![
            e.to_string(),
            f2(mean_latency(&cells[0])),
            f2(mean_latency(&cells[1])),
            f2(mean_latency(&cells[2])),
        ]);
    }
    vec![t, t2]
}

/// Ablation: application-bypass *broadcast* (the ref. \[8\] companion
/// system) — a skewed root stalls the blocking broadcast's whole tree;
/// bypass frees it.
pub fn ablation_bcast(iters: u64) -> Vec<Table> {
    const SKEWS: [u64; 4] = [0, 250, 500, 1000];
    let mut specs = Vec::new();
    for &skew in &SKEWS {
        let base = CpuUtilConfig {
            elems: 4,
            max_skew_us: skew,
            iters,
            ..CpuUtilConfig::new(ClusterSpec::heterogeneous(16), Mode::Baseline)
        };
        specs.push(RunSpec::Bcast(base.clone()));
        specs.push(RunSpec::Bcast(CpuUtilConfig {
            mode: ab_mode(),
            ..base
        }));
    }
    let out = sweep().run_points(&specs);
    let mut t = Table::new(
        "Ablation: application-bypass broadcast (16 nodes, 4 elems)",
        &["skew_us", "blocking_us", "bypass_us", "foi", "signals"],
    );
    for (row, &skew) in SKEWS.iter().enumerate() {
        let blocking = out[row * 2].cpu();
        let bypass = out[row * 2 + 1].cpu();
        t.row(vec![
            skew.to_string(),
            f2(blocking.mean_cpu_us),
            f2(bypass.mean_cpu_us),
            ratio(blocking.mean_cpu_us, bypass.mean_cpu_us),
            bypass.signals.to_string(),
        ]);
    }
    vec![t]
}

/// Ablation: §VII's first future-work item — "evaluate the performance of
/// application-bypass operations on large-scale clusters" — taken beyond
/// the paper's 32-node testbed.
pub fn ablation_scale(iters: u64) -> Vec<Table> {
    const NODES: [u32; 4] = [32, 64, 128, 256];
    let mut specs = Vec::new();
    for &n in &NODES {
        for mode in [Mode::Baseline, ab_mode(), Mode::SplitPhase] {
            specs.push(cpu_spec(
                ClusterSpec::heterogeneous(n),
                4,
                1000,
                iters,
                mode,
            ));
        }
    }
    let out = sweep().run_points(&specs);
    let mut t = Table::new(
        "Ablation: scaling beyond the testbed (1000us max skew, 4 elems)",
        &[
            "nodes",
            "nab_us",
            "ab_us",
            "foi",
            "ab_split_us",
            "foi_split",
        ],
    );
    for (row, &n) in NODES.iter().enumerate() {
        let nab = out[row * 3].cpu();
        let ab = out[row * 3 + 1].cpu();
        let split = out[row * 3 + 2].cpu();
        t.row(vec![
            n.to_string(),
            f2(nab.mean_cpu_us),
            f2(ab.mean_cpu_us),
            ratio(nab.mean_cpu_us, ab.mean_cpu_us),
            f2(split.mean_cpu_us),
            ratio(nab.mean_cpu_us, split.mean_cpu_us),
        ]);
    }
    vec![t]
}

/// Ablation: §VII's second future-work item — an application-based
/// evaluation. A bulk-synchronous app (imbalanced compute + per-sweep
/// residual reduction, no barriers) measured by *time-to-solution*.
pub fn ablation_app(iters: u64) -> Vec<Table> {
    const CASES: [(u32, f64); 4] = [(8, 0.5), (8, 2.0), (32, 0.5), (32, 2.0)];
    let sweeps = iters.clamp(20, 200);
    let mut specs = Vec::new();
    for &(n, imb) in &CASES {
        let base = AppBenchConfig {
            sweeps,
            imbalance: imb,
            ..AppBenchConfig::new(ClusterSpec::heterogeneous(n), Mode::Baseline)
        };
        specs.push(RunSpec::App(base.clone()));
        specs.push(RunSpec::App(AppBenchConfig {
            mode: ab_mode(),
            ..base.clone()
        }));
        specs.push(RunSpec::App(AppBenchConfig {
            mode: Mode::SplitPhase,
            ..base
        }));
    }
    let out = sweep().run_points(&specs);
    let mut t = Table::new(
        "Ablation: application benchmark — 50 imbalanced sweeps, no barriers",
        &[
            "nodes",
            "imbalance",
            "nab_makespan",
            "ab_makespan",
            "split_makespan",
            "nab_cpu",
            "ab_cpu",
            "split_cpu",
        ],
    );
    for (row, &(n, imb)) in CASES.iter().enumerate() {
        let nab = out[row * 3].app();
        let ab = out[row * 3 + 1].app();
        let split = out[row * 3 + 2].app();
        t.row(vec![
            n.to_string(),
            format!("{imb:.1}"),
            f2(nab.makespan_us),
            f2(ab.makespan_us),
            f2(split.makespan_us),
            f2(nab.runtime_cpu_us),
            f2(ab.runtime_cpu_us),
            f2(split.runtime_cpu_us),
        ]);
    }
    vec![t]
}

/// Beyond the paper: CPU utilization and latency as the injected
/// drop+duplicate rate rises (32 nodes, reliable delivery on). The bypass
/// advantage should survive loss — retransmissions are absorbed by the
/// reliability layer below both modes — and the rel counters confirm the
/// injected schedule was actually exercised.
pub fn fig_loss(iters: u64) -> Vec<Table> {
    const LOSS: [f64; 5] = [0.0, 0.001, 0.005, 0.01, 0.02];
    let mut specs = Vec::new();
    for (i, &p) in LOSS.iter().enumerate() {
        let plan = if p == 0.0 {
            FaultPlan::none()
        } else {
            FaultPlan::uniform_loss(0xAB5EED ^ i as u64, p)
        };
        for mode in [Mode::Baseline, ab_mode()] {
            specs.push(RunSpec::Cpu(CpuUtilConfig {
                elems: 4,
                max_skew_us: 200,
                iters,
                mode,
                faults: plan.clone(),
                ..CpuUtilConfig::new(ClusterSpec::heterogeneous_32(), mode)
            }));
            specs.push(RunSpec::Latency(LatencyConfig {
                elems: 4,
                iters,
                mode,
                faults: plan.clone(),
                ..LatencyConfig::new(ClusterSpec::heterogeneous_32(), mode)
            }));
        }
    }
    let out = sweep().run_points(&specs);
    let mut t = Table::new(
        "Loss sweep: CPU utilization and latency vs drop+dup rate (32 nodes, 200us skew, 4 elems)",
        &[
            "loss_pct", "nab_cpu", "ab_cpu", "foi", "nab_lat", "ab_lat", "nab_retx", "ab_retx",
            "dups",
        ],
    );
    for (row, &p) in LOSS.iter().enumerate() {
        let cells = &out[row * 4..row * 4 + 4];
        let nab_cpu = cells[0].cpu();
        let ab_cpu = cells[2].cpu();
        let nab_rel = rel_of(&cells[0]);
        let ab_rel = rel_of(&cells[2]);
        t.row(vec![
            format!("{:.1}", p * 100.0),
            f2(nab_cpu.mean_cpu_us),
            f2(ab_cpu.mean_cpu_us),
            ratio(nab_cpu.mean_cpu_us, ab_cpu.mean_cpu_us),
            f2(mean_latency(&cells[1])),
            f2(mean_latency(&cells[3])),
            nab_rel.retransmissions.to_string(),
            ab_rel.retransmissions.to_string(),
            (nab_rel.duplicates_suppressed + ab_rel.duplicates_suppressed).to_string(),
        ]);
    }
    vec![t]
}

/// Beyond the paper: CPU-time factor of improvement per reduction
/// topology as skew rises (32 nodes, 32 elems). The schedule layer makes
/// the tree family a config axis, so the bypass advantage can be compared
/// across binomial, 4-nomial, chain and flat trees: chain trees make
/// every non-leaf rank an internal node (bypass helps most), flat trees
/// have no internal nodes at all (bypass has nothing to skip).
pub fn fig_topology(iters: u64) -> Vec<Table> {
    const TOPOS: [TopologyKind; 4] = [
        TopologyKind::Binomial,
        TopologyKind::Knomial(4),
        TopologyKind::Chain,
        TopologyKind::Flat,
    ];
    let skews: Vec<u64> = (0..=1000).step_by(250).collect();
    let mut specs = Vec::new();
    for &skew in &skews {
        for mode in [Mode::Baseline, ab_mode()] {
            for &topo in &TOPOS {
                specs.push(cpu_spec(
                    ClusterSpec::heterogeneous_32().with_topology(topo),
                    32,
                    skew,
                    iters,
                    mode,
                ));
            }
        }
    }
    let out = sweep().run_points(&specs);
    let cols: Vec<String> = std::iter::once("skew_us".to_string())
        .chain(TOPOS.iter().map(|t| format!("nab-{t}")))
        .chain(TOPOS.iter().map(|t| format!("ab-{t}")))
        .collect();
    let mut t_util = Table::new(
        "Topology sweep: Average CPU utilization vs max skew per tree family (32 nodes, 32 elems, us)",
        &cols.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    let foi_cols: Vec<String> = std::iter::once("skew_us".to_string())
        .chain(TOPOS.iter().map(|t| format!("foi-{t}")))
        .collect();
    let mut t_foi = Table::new(
        "Topology sweep: Factor of improvement vs max skew per tree family (32 nodes, 32 elems)",
        &foi_cols.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    let w = TOPOS.len();
    for (row, &skew) in skews.iter().enumerate() {
        let cells = &out[row * 2 * w..(row + 1) * 2 * w];
        let nab: Vec<f64> = cells[..w].iter().map(mean_cpu).collect();
        let ab: Vec<f64> = cells[w..].iter().map(mean_cpu).collect();
        let mut util_row = vec![skew.to_string()];
        util_row.extend(nab.iter().map(|&v| f2(v)));
        util_row.extend(ab.iter().map(|&v| f2(v)));
        t_util.row(util_row);
        let mut foi_row = vec![skew.to_string()];
        foi_row.extend((0..w).map(|i| ratio(nab[i], ab[i])));
        t_foi.row(foi_row);
    }
    vec![t_util, t_foi]
}

/// The scale figure: ab-vs-nab factor of improvement from the paper's
/// 32-node testbed up to 65,536 ranks, on two tree families. Per-size
/// iteration counts shrink as the cluster grows (a 64k-rank dissemination
/// barrier is ~1M packets per iteration); the FoI converges in a couple of
/// iterations because every rank × iteration contributes a sample.
/// `ABR_SCALE_MAX` caps the largest size (CI smoke uses 1,024).
pub fn fig_scale(iters: u64) -> Vec<Table> {
    const SIZES: [u32; 5] = [32, 256, 1024, 8192, 65_536];
    const TOPOS: [TopologyKind; 2] = [TopologyKind::Binomial, TopologyKind::Knomial(4)];
    let max = crate::scale_max();
    let sizes: Vec<u32> = SIZES.into_iter().filter(|&n| n <= max).collect();
    let mut specs = Vec::new();
    for &n in &sizes {
        let it = scale_iters(iters, n);
        for &topo in &TOPOS {
            for mode in [Mode::Baseline, ab_mode()] {
                specs.push(cpu_spec(
                    ClusterSpec::heterogeneous(n).with_topology(topo),
                    4,
                    1000,
                    it,
                    mode,
                ));
            }
        }
    }
    let out = sweep().run_points(&specs);
    let cols: Vec<String> = std::iter::once("nodes".to_string())
        .chain(
            TOPOS
                .iter()
                .flat_map(|t| [format!("nab-{t}"), format!("ab-{t}"), format!("foi-{t}")]),
        )
        .collect();
    let mut t = Table::new(
        "Scale sweep: CPU utilization and factor of improvement vs cluster size (1000us max skew, 4 elems, us)",
        &cols.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    for (row, &n) in sizes.iter().enumerate() {
        let cells = &out[row * 4..row * 4 + 4];
        let mut r = vec![n.to_string()];
        for ti in 0..TOPOS.len() {
            let nab = mean_cpu(&cells[ti * 2]);
            let ab = mean_cpu(&cells[ti * 2 + 1]);
            r.push(f2(nab));
            r.push(f2(ab));
            r.push(ratio(nab, ab));
        }
        t.row(r);
    }
    vec![t]
}

/// Iterations for one scale-figure size: shrink with the cluster so the
/// event count per point stays bounded, never below 2.
fn scale_iters(iters: u64, n: u32) -> u64 {
    iters.min((131_072 / n as u64).max(2))
}

/// The fabric the fabric figure sweeps: `ABR_FABRIC` when set, otherwise
/// the 4:1-oversubscribed fat-tree (`ABR_OVERSUB` still applies to the
/// default).
pub fn fabric_for_figure() -> FabricSpec {
    FabricSpec::from_env()
        .unwrap_or_else(|| FabricSpec::fat_tree(abr_fabric::spec::oversub_from_env()))
}

/// The topology contenders: placement-oblivious binomial against the two
/// placement-aware families, with the locality tree shaped to the fabric
/// under test.
fn fabric_topos(fabric: &FabricSpec) -> [TopologyKind; 3] {
    [
        TopologyKind::Binomial,
        TopologyKind::Bine,
        TopologyKind::Locality {
            ranks_per_node: fabric.ranks_per_node,
            nodes_per_pod: fabric.nodes_per_pod(),
            cyclic: fabric.placement == PlacementPolicy::Cyclic,
        },
    ]
}

/// The fabric figure: ab-vs-nab CPU and factor of improvement per
/// reduction topology on a *contended* fabric (see [`fabric_for_figure`]).
/// On the oversubscribed fat-tree the placement-oblivious binomial tree
/// pays for its cross-pod edges in uplink queueing, which the blocking
/// engine spins through; the Bine and locality-greedy trees keep more
/// edges inside a node or pod and shed that wait. `ABR_SCALE_MAX` caps the
/// largest size (CI smoke uses a small cap).
pub fn fig_fabric(iters: u64) -> Vec<Table> {
    fig_fabric_data(iters).0
}

/// [`fig_fabric`] plus the per-point records for `BENCH_fabric.json`.
pub fn fig_fabric_data(iters: u64) -> (Vec<Table>, Vec<FabricPoint>) {
    const SIZES: [u32; 3] = [512, 2048, 8192];
    let fabric = fabric_for_figure();
    let topos = fabric_topos(&fabric);
    let max = crate::scale_max();
    let mut sizes: Vec<u32> = SIZES.into_iter().filter(|&n| n <= max).collect();
    if sizes.is_empty() {
        sizes.push(max);
    }
    let mut specs = Vec::new();
    for &n in &sizes {
        let it = scale_iters(iters, n);
        for &topo in &topos {
            for mode in [Mode::Baseline, ab_mode()] {
                specs.push(cpu_spec(
                    ClusterSpec::heterogeneous(n)
                        .with_topology(topo)
                        .with_fabric(fabric.clone()),
                    32,
                    200,
                    it,
                    mode,
                ));
            }
        }
    }
    let out = sweep().run_points(&specs);
    let cols: Vec<String> = std::iter::once("nodes".to_string())
        .chain(
            topos
                .iter()
                .flat_map(|t| [format!("nab-{t}"), format!("ab-{t}"), format!("foi-{t}")]),
        )
        .collect();
    let mut t = Table::new(
        format!(
            "Fabric sweep [{}]: CPU utilization and factor of improvement vs cluster size (200us max skew, 32 elems, us)",
            fabric.label()
        ),
        &cols.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    let wait_cols: Vec<String> = std::iter::once("nodes".to_string())
        .chain(
            topos
                .iter()
                .flat_map(|t| [format!("waits-{t}"), format!("wait_us-{t}")]),
        )
        .collect();
    let mut t_wait = Table::new(
        format!(
            "Fabric sweep [{}]: packets queued on busy links and total queueing time (nab+ab)",
            fabric.label()
        ),
        &wait_cols.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    let mut points = Vec::new();
    let w = topos.len();
    for (row, &n) in sizes.iter().enumerate() {
        let cells = &out[row * 2 * w..(row + 1) * 2 * w];
        let mut r = vec![n.to_string()];
        let mut wr = vec![n.to_string()];
        for (ti, topo) in topos.iter().enumerate() {
            let nab = cells[ti * 2].cpu();
            let ab = cells[ti * 2 + 1].cpu();
            r.push(f2(nab.mean_cpu_us));
            r.push(f2(ab.mean_cpu_us));
            r.push(ratio(nab.mean_cpu_us, ab.mean_cpu_us));
            let waits = nab.link_waits + ab.link_waits;
            let wait_us = nab.link_wait_us + ab.link_wait_us;
            wr.push(waits.to_string());
            wr.push(f2(wait_us));
            points.push(FabricPoint {
                size: n,
                topo: topo.to_string(),
                nab_us: nab.mean_cpu_us,
                ab_us: ab.mean_cpu_us,
                foi: nab.mean_cpu_us / ab.mean_cpu_us.max(1e-9),
                link_waits: waits,
                link_wait_us: wait_us,
            });
        }
        t.row(r);
        t_wait.row(wr);
    }
    (vec![t, t_wait], points)
}

/// The series the bandwidth figure compares: two reduce-tree families
/// plus the dual-root doubly-pipelined allreduce (which builds its own
/// chain pair internally; the topology field only shapes the label-free
/// fallbacks there).
const BW_SERIES: [(&str, TopologyKind, BenchColl); 3] = [
    ("binomial", TopologyKind::Binomial, BenchColl::Reduce),
    ("chain", TopologyKind::Chain, BenchColl::Reduce),
    ("dual-root", TopologyKind::Chain, BenchColl::DualAllreduce),
];

/// Ranks in the bandwidth sweep: small on purpose — the figure varies the
/// message, not the cluster, and 64-MiB chains over 8 ranks already run
/// thousands of segment reduces per iteration.
const BW_RANKS: u32 = 8;

/// The segmentation pipeline window the bandwidth figure runs under:
/// `ABR_SEGMENTS` when set (including an explicit `1` to watch the
/// unsegmented rendezvous path), otherwise `8` — unlike the paper
/// figures, this sweep exists to show the pipeline, so the knob's
/// "off by default" convention is inverted here.
pub fn bandwidth_window() -> usize {
    if std::env::var_os("ABR_SEGMENTS").is_some() {
        abr_cluster::node::segments_from_env()
    } else {
        8
    }
}

/// Iterations for one bandwidth-figure size: shrink with the payload so
/// the event count per point stays bounded, never below 2.
fn bw_iters(iters: u64, bytes: usize) -> u64 {
    iters.min((4_194_304 / bytes as u64).max(2))
}

/// The message sizes the bandwidth figure sweeps: powers of four from
/// 1 KiB up to `ABR_MSG_BYTES` (the cap itself is appended when it is not
/// already a sweep point, so CI smoke caps land on the exact cap).
fn bw_sizes() -> Vec<usize> {
    let cap = crate::msg_bytes();
    let mut sizes: Vec<usize> = (0..)
        .map(|i| 1024usize << (2 * i))
        .take_while(|&b| b <= cap)
        .collect();
    if sizes.last() != Some(&cap) {
        sizes.push(cap);
    }
    sizes
}

/// The bandwidth figure: delivered bandwidth and CPU factor of
/// improvement vs message size (1 KiB → `ABR_MSG_BYTES`), blocking (nab)
/// against split-phase bypass (ab), on binomial/chain reduces and the
/// dual-root allreduce.
pub fn fig_bandwidth(iters: u64) -> Vec<Table> {
    fig_bandwidth_data(iters).0
}

/// [`fig_bandwidth`] plus the per-point records for `BENCH_bw.json`.
///
/// Skew, jitter, and the catch-up margin are all zeroed so the recorded
/// post-to-completion wall time is the collective alone: bandwidth is
/// `bytes / mean_wall_us` and the FoI is the usual blocking-vs-bypass CPU
/// ratio. Both modes run the same Lowery–Langou segment plan (the window
/// from [`bandwidth_window`]); what differs is who drives it — the
/// blocking engine spins through every segment, the split-phase bypass
/// engine folds them in handlers.
pub fn fig_bandwidth_data(iters: u64) -> (Vec<Table>, Vec<BwPoint>) {
    let window = bandwidth_window();
    let sizes = bw_sizes();
    let mut specs = Vec::new();
    for &bytes in &sizes {
        let it = bw_iters(iters, bytes);
        for &(_, topo, coll) in &BW_SERIES {
            for mode in [Mode::Baseline, Mode::SplitPhase] {
                specs.push(RunSpec::Cpu(CpuUtilConfig {
                    elems: (bytes / 8).max(1),
                    max_skew_us: 0,
                    natural_jitter_us: 0,
                    catchup_margin_us: 0,
                    iters: it,
                    coll,
                    record_wall: true,
                    ..CpuUtilConfig::new(
                        ClusterSpec::heterogeneous(BW_RANKS)
                            .with_topology(topo)
                            .with_segments(window),
                        mode,
                    )
                }));
            }
        }
    }
    let out = sweep().run_points(&specs);
    let bw_cols: Vec<String> = std::iter::once("bytes".to_string())
        .chain(
            BW_SERIES
                .iter()
                .flat_map(|(s, _, _)| [format!("nab-{s}"), format!("ab-{s}")]),
        )
        .collect();
    let mut t_bw = Table::new(
        format!("Bandwidth vs message size ({BW_RANKS} ranks, window {window}, MB/s)"),
        &bw_cols.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    let foi_cols: Vec<String> = std::iter::once("bytes".to_string())
        .chain(BW_SERIES.iter().map(|(s, _, _)| format!("foi-{s}")))
        .collect();
    let mut t_foi = Table::new(
        format!("CPU factor of improvement vs message size ({BW_RANKS} ranks, window {window})"),
        &foi_cols.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    let mut points = Vec::new();
    let w = BW_SERIES.len();
    for (row, &bytes) in sizes.iter().enumerate() {
        let cells = &out[row * 2 * w..(row + 1) * 2 * w];
        let mut bw_row = vec![bytes.to_string()];
        let mut foi_row = vec![bytes.to_string()];
        for (si, (series, _, _)) in BW_SERIES.iter().enumerate() {
            let nab = cells[si * 2].cpu();
            let ab = cells[si * 2 + 1].cpu();
            let nab_bw = BwPoint::bandwidth_mbs(bytes, nab.mean_wall_us);
            let ab_bw = BwPoint::bandwidth_mbs(bytes, ab.mean_wall_us);
            bw_row.push(f2(nab_bw));
            bw_row.push(f2(ab_bw));
            foi_row.push(ratio(nab.mean_cpu_us, ab.mean_cpu_us));
            points.push(BwPoint {
                msg_bytes: bytes,
                series: series.to_string(),
                nab_wall_us: nab.mean_wall_us,
                ab_wall_us: ab.mean_wall_us,
                nab_bw_mbs: nab_bw,
                ab_bw_mbs: ab_bw,
                nab_cpu_us: nab.mean_cpu_us,
                ab_cpu_us: ab.mean_cpu_us,
                foi: nab.mean_cpu_us / ab.mean_cpu_us.max(1e-9),
            });
        }
        t_bw.row(bw_row);
        t_foi.row(foi_row);
    }
    (vec![t_bw, t_foi], points)
}

/// One sweep point per mode under an explicit [`FaultPlan`] (the
/// `ABR_FAULTS` path of the `loss_figure` binary), with the full
/// reliability-counter breakdown.
pub fn custom_fault_tables(iters: u64, plan: &FaultPlan) -> Vec<Table> {
    let mut specs = Vec::new();
    for mode in [Mode::Baseline, ab_mode()] {
        specs.push(RunSpec::Cpu(CpuUtilConfig {
            elems: 4,
            max_skew_us: 200,
            iters,
            mode,
            faults: plan.clone(),
            ..CpuUtilConfig::new(ClusterSpec::heterogeneous_32(), mode)
        }));
        specs.push(RunSpec::Latency(LatencyConfig {
            elems: 4,
            iters,
            mode,
            faults: plan.clone(),
            ..LatencyConfig::new(ClusterSpec::heterogeneous_32(), mode)
        }));
    }
    let out = sweep().run_points(&specs);
    let mut t = Table::new(
        format!(
            "Custom fault plan (seed {}, {} rule(s)) on 32 nodes, 200us skew, 4 elems",
            plan.seed,
            plan.rules.len()
        ),
        &[
            "mode", "cpu_us", "lat_us", "sent", "retx", "dups", "buffered", "dead",
        ],
    );
    for (i, mode) in [Mode::Baseline, ab_mode()].iter().enumerate() {
        let cpu = out[i * 2].cpu();
        let rel = rel_of(&out[i * 2]);
        t.row(vec![
            mode.label().to_string(),
            f2(cpu.mean_cpu_us),
            f2(mean_latency(&out[i * 2 + 1])),
            rel.data_sent.to_string(),
            rel.retransmissions.to_string(),
            rel.duplicates_suppressed.to_string(),
            rel.out_of_order_buffered.to_string(),
            rel.links_dead.to_string(),
        ]);
    }
    vec![t]
}

fn rel_of(out: &RunOut) -> RelStats {
    out.cpu().rel.unwrap_or_default()
}

/// Seed of the tenant figure's job mixes.
pub const TENANT_SEED: u64 = 17;

/// The tenant figure's offered-load ladder.
pub const TENANT_LADDER: [f64; 5] = [1.0, 2.0, 4.0, 6.0, 8.0];

/// The knobs and per-point results of one tenant saturation sweep.
pub struct TenantFigure {
    /// Jobs co-scheduled at load 1 (`ABR_TENANT_JOBS`, default 2).
    pub base_jobs: usize,
    /// Ranks one node hosts at saturation (`ABR_TENANT_SLOTS`, default 4).
    pub slots: usize,
    /// One entry per ladder point, both engine modes folded in.
    pub points: Vec<TenantPoint>,
}

/// The multi-tenant saturation figure: offered load swept up a fixed
/// ladder on a fixed cluster, each point running the same seeded job mix
/// under busy-polling baseline engines and under application-bypass
/// engines (see `abr_cluster::tenant::saturation_config`). `ABR_TENANT_LOAD`
/// caps the ladder (the cluster is sized for the capped top, so the last
/// point is always the saturated one).
pub fn fig_tenant_data() -> (Vec<Table>, TenantFigure) {
    let base_jobs = abr_jobs::tenant_jobs_from_env().unwrap_or(2);
    let slots = abr_jobs::tenant_slots_from_env().unwrap_or(4);
    let cap = abr_jobs::tenant_load_from_env().unwrap_or(*TENANT_LADDER.last().expect("ladder"));
    let mut ladder: Vec<f64> = TENANT_LADDER
        .iter()
        .copied()
        .filter(|&l| l <= cap)
        .collect();
    if ladder.is_empty() {
        // A cap below the ladder bottom still sweeps that single point.
        ladder.push(cap);
    }
    let max_load = *ladder.last().expect("ladder is non-empty");
    let configs: Vec<TenantConfig> = ladder
        .iter()
        .flat_map(|&load| {
            [false, true]
                .map(|ab| saturation_config(TENANT_SEED, base_jobs, load, max_load, slots, ab))
        })
        .collect();
    let results = sweep().map(&configs, run_tenant);
    let points: Vec<TenantPoint> = ladder
        .iter()
        .enumerate()
        .map(|(i, &load)| {
            let (nab, ab) = (&results[2 * i], &results[2 * i + 1]);
            TenantPoint {
                load,
                jobs: configs[2 * i].mix.jobs.len(),
                ranks: configs[2 * i].mix.total_ranks(),
                nab_red_s: nab.reductions_per_sec,
                ab_red_s: ab.reductions_per_sec,
                nab_p50_us: nab.latency.p50,
                nab_p99_us: nab.latency.p99,
                nab_p999_us: nab.latency.p999,
                ab_p50_us: ab.latency.p50,
                ab_p99_us: ab.latency.p99,
                ab_p999_us: ab.latency.p999,
                nab_fairness: nab.fairness,
                ab_fairness: ab.fairness,
            }
        })
        .collect();

    let mut t_thru = Table::new(
        "fig_tenant (a): aggregate service throughput vs offered load",
        &[
            "load",
            "jobs",
            "ranks",
            "nab red/s",
            "ab red/s",
            "ab advantage",
        ],
    );
    let mut t_tail = Table::new(
        "fig_tenant (b): pooled iteration-latency tails and Jain fairness",
        &[
            "load", "nab p50", "nab p99", "nab p999", "ab p50", "ab p99", "ab p999", "nab fair",
            "ab fair",
        ],
    );
    for p in &points {
        t_thru.row(vec![
            f2(p.load),
            p.jobs.to_string(),
            p.ranks.to_string(),
            format!("{:.0}", p.nab_red_s),
            format!("{:.0}", p.ab_red_s),
            ratio(p.ab_red_s, p.nab_red_s),
        ]);
        t_tail.row(vec![
            f2(p.load),
            format!("{:.0}", p.nab_p50_us),
            format!("{:.0}", p.nab_p99_us),
            format!("{:.0}", p.nab_p999_us),
            format!("{:.0}", p.ab_p50_us),
            format!("{:.0}", p.ab_p99_us),
            format!("{:.0}", p.ab_p999_us),
            format!("{:.3}", p.nab_fairness),
            format!("{:.3}", p.ab_fairness),
        ]);
    }
    (
        vec![t_thru, t_tail],
        TenantFigure {
            base_jobs,
            slots,
            points,
        },
    )
}

/// Print a set of tables.
pub fn print_all(tables: &[Table]) {
    for t in tables {
        t.print();
        println!();
    }
}
