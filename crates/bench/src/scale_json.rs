//! `BENCH_scale.json`: DES throughput at scale, before and after the
//! arena/registry refactor.
//!
//! The `scale_figure` binary times the baseline-engine CPU-utilization
//! workload twice at the same rank count — once emulating the pre-refactor
//! driver (boxed programs, per-engine schedule builds, `shared_schedules =
//! false`) and once on the modern path — and records both runs plus the
//! speedup here. The JSON is hand-rolled like `BENCH_sweep.json`; the
//! output path defaults to `BENCH_scale.json` and can be overridden with
//! the `ABR_SCALE_JSON` environment variable.

use crate::sweep_json::FigureRecord;
use abr_cluster::microbench::ScaleRunResult;

/// The output path: `ABR_SCALE_JSON` or `BENCH_scale.json`.
///
/// # Panics
/// Panics on a set-but-empty `ABR_SCALE_JSON`.
pub fn out_path() -> String {
    abr_trace::parse_env("ABR_SCALE_JSON", parse_out_path)
        .unwrap_or_else(|| "BENCH_scale.json".to_string())
}

/// Validate an explicit `ABR_SCALE_JSON` value: any non-empty path.
pub fn parse_out_path(raw: &str) -> Result<String, String> {
    if raw.trim().is_empty() {
        Err("ABR_SCALE_JSON must be a non-empty output path".to_string())
    } else {
        Ok(raw.to_string())
    }
}

fn run_json(label: &str, r: &ScaleRunResult, indent: &str) -> String {
    format!(
        "{indent}\"{label}\": {{\"ranks\": {}, \"events\": {}, \"wall_secs\": {:.3}, \
         \"events_per_sec\": {:.0}, \"makespan_us\": {:.1}, \"packets\": {}}}",
        r.ranks, r.events, r.wall_secs, r.events_per_sec, r.makespan_us, r.packets_delivered
    )
}

/// Render the summary document (schema `abr-scale-v1`).
pub fn render(
    scale_max: u32,
    legacy: &ScaleRunResult,
    modern: &ScaleRunResult,
    figure: &FigureRecord,
) -> String {
    let speedup = modern.events_per_sec / legacy.events_per_sec.max(1e-9);
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"abr-scale-v1\",\n");
    s.push_str(&format!("  \"scale_max\": {scale_max},\n"));
    s.push_str("  \"throughput\": {\n");
    s.push_str(&run_json("legacy", legacy, "    "));
    s.push_str(",\n");
    s.push_str(&run_json("modern", modern, "    "));
    s.push_str(",\n");
    s.push_str(&format!("    \"speedup\": {speedup:.2}\n"));
    s.push_str("  },\n");
    s.push_str(&format!(
        "  \"figure\": {{\"name\": \"{}\", \"points\": {}, \"wall_ms\": {:.3}}}\n",
        figure.name, figure.points, figure.wall_ms
    ));
    s.push_str("}\n");
    s
}

/// Write the summary to [`out_path`]; prints a notice on success and a
/// warning (without failing the run) if the write is impossible.
pub fn write(scale_max: u32, legacy: &ScaleRunResult, modern: &ScaleRunResult, fig: &FigureRecord) {
    let path = out_path();
    match std::fs::write(&path, render(scale_max, legacy, modern, fig)) {
        Ok(()) => eprintln!("scale throughput written to {path}"),
        Err(e) => eprintln!("warning: could not write {path}: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake(ranks: u32, eps: f64) -> ScaleRunResult {
        ScaleRunResult {
            ranks,
            events: 1_000,
            wall_secs: 1_000.0 / eps,
            events_per_sec: eps,
            makespan_us: 123.4,
            mean_cpu_us: 9.9,
            packets_delivered: 321,
        }
    }

    #[test]
    fn render_is_valid_shape() {
        let fig = FigureRecord {
            name: "fig_scale",
            points: 20,
            wall_ms: 55.0,
        };
        let s = render(65_536, &fake(8192, 100.0), &fake(8192, 900.0), &fig);
        assert!(s.contains("\"schema\": \"abr-scale-v1\""));
        assert!(s.contains("\"legacy\""));
        assert!(s.contains("\"modern\""));
        assert!(s.contains("\"speedup\": 9.00"));
        assert!(s.contains("\"name\": \"fig_scale\""));
        assert_eq!(s.matches('{').count(), s.matches('}').count());
    }

    #[test]
    fn parse_out_path_rejects_empty() {
        assert_eq!(parse_out_path("x.json"), Ok("x.json".to_string()));
        assert!(parse_out_path("  ").unwrap_err().contains("ABR_SCALE_JSON"));
    }
}
