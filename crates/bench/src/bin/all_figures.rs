//! Regenerate every figure in the paper plus the ablations, fanning each
//! figure's config points across `ABR_JOBS` workers (default: all cores),
//! and record per-figure wall-clock timings to `BENCH_sweep.json`.

use abr_bench::sweep_json;
use abr_cluster::report::Table;
use abr_cluster::sweep::jobs_from_env;

type Figure = (&'static str, fn(u64) -> Vec<Table>);

fn main() {
    let iters = abr_bench::iters();
    let figures: [Figure; 14] = [
        ("fig6", abr_bench::figures::fig6),
        ("fig7", abr_bench::figures::fig7),
        ("fig8", abr_bench::figures::fig8),
        ("fig9", abr_bench::figures::fig9),
        ("fig10", abr_bench::figures::fig10),
        ("ablation_delay", abr_bench::figures::ablation_delay),
        (
            "ablation_signal_cost",
            abr_bench::figures::ablation_signal_cost,
        ),
        ("ablation_copies", abr_bench::figures::ablation_copies),
        ("ablation_nic", abr_bench::figures::ablation_nic),
        ("ablation_bcast", abr_bench::figures::ablation_bcast),
        ("ablation_scale", abr_bench::figures::ablation_scale),
        ("ablation_app", abr_bench::figures::ablation_app),
        ("fig_loss", abr_bench::figures::fig_loss),
        ("fig_topology", abr_bench::figures::fig_topology),
    ];
    let mut records = Vec::new();
    for (name, f) in figures {
        let (tables, record) = sweep_json::timed_figure(name, || f(iters));
        println!("### {name}");
        abr_bench::figures::print_all(&tables);
        records.push(record);
    }
    sweep_json::write(jobs_from_env(), iters, &records);
}
