//! Regenerate every figure in the paper plus the ablations.

fn main() {
    let iters = abr_bench::iters();
    for (name, tables) in [
        ("fig6", abr_bench::figures::fig6(iters)),
        ("fig7", abr_bench::figures::fig7(iters)),
        ("fig8", abr_bench::figures::fig8(iters)),
        ("fig9", abr_bench::figures::fig9(iters)),
        ("fig10", abr_bench::figures::fig10(iters)),
        ("ablation_delay", abr_bench::figures::ablation_delay(iters)),
        ("ablation_signal_cost", abr_bench::figures::ablation_signal_cost(iters)),
        ("ablation_copies", abr_bench::figures::ablation_copies(iters)),
        ("ablation_nic", abr_bench::figures::ablation_nic(iters)),
        ("ablation_bcast", abr_bench::figures::ablation_bcast(iters)),
        ("ablation_scale", abr_bench::figures::ablation_scale(iters)),
        ("ablation_app", abr_bench::figures::ablation_app(iters)),
    ] {
        println!("### {name}");
        abr_bench::figures::print_all(&tables);
    }
}
