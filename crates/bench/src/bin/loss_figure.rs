//! Regenerate only the loss-sweep figure: ab vs nab degradation as the
//! injected drop+duplicate rate rises, with reliability-layer counters.
//!
//! With `ABR_FAULTS` set (inline rule spec or `@path` to a plan file), runs
//! that exact plan instead of the default loss ladder and prints the full
//! counter breakdown — the quickest way to eyeball a custom fault schedule.

use abr_bench::sweep_json;
use abr_cluster::sweep::jobs_from_env;
use abr_cluster::FaultPlan;

fn main() {
    let iters = abr_bench::iters();
    let plan = match FaultPlan::from_env() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let (tables, record) = match &plan {
        Some(plan) => sweep_json::timed_figure("custom_faults", || {
            abr_bench::figures::custom_fault_tables(iters, plan)
        }),
        None => sweep_json::timed_figure("fig_loss", || abr_bench::figures::fig_loss(iters)),
    };
    println!("### {}", record.name);
    abr_bench::figures::print_all(&tables);
    sweep_json::write(jobs_from_env(), iters, &[record]);
}
