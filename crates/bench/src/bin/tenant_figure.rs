//! Regenerate the multi-tenant saturation figure: aggregate service
//! throughput, pooled iteration-latency tails (p50/p99/p999), and Jain
//! fairness for application-bypass vs busy-polling engines as offered
//! load climbs a fixed ladder on a fixed cluster. The headline: the ab
//! throughput advantage widens with load, because saturated nodes are
//! full of blocked nab ranks busy-polling the CPUs their co-tenants need
//! while ab ranks sleep on NIC signals.
//!
//! Knobs: `ABR_TENANT_JOBS` sets the jobs co-scheduled at load 1 (each
//! ladder point runs `ceil(jobs × load)`), `ABR_TENANT_SLOTS` the ranks
//! one node hosts at saturation, `ABR_TENANT_LOAD` caps the offered-load
//! ladder (CI smoke uses a small cap), `ABR_TENANT_JSON` redirects the
//! JSON record.

use abr_bench::{figures, sweep_json, tenant_json};

fn main() {
    let mut fig = None;
    let (tables, record) = sweep_json::timed_figure("fig_tenant", || {
        let (tables, f) = figures::fig_tenant_data();
        fig = Some(f);
        tables
    });
    let fig = fig.expect("figure data populated by the closure");
    println!("### {}", record.name);
    figures::print_all(&tables);
    if let Some((lo, hi, widening)) = tenant_json::headline(&fig.points) {
        println!(
            "ab advantage: {lo:.2}x relaxed -> {hi:.2}x saturated ({})",
            if widening { "widening" } else { "NOT widening" }
        );
    }
    tenant_json::write(
        figures::TENANT_SEED,
        fig.base_jobs,
        fig.slots,
        &fig.points,
        &record,
    );
}
