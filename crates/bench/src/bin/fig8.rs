//! Regenerate Fig8 data series.

fn main() {
    abr_bench::figures::print_all(&abr_bench::figures::fig8(abr_bench::iters()));
}
