//! Regenerate Fig6 data series.

fn main() {
    abr_bench::figures::print_all(&abr_bench::figures::fig6(abr_bench::iters()));
}
