//! Run the ablation studies: exit-delay policy, signal-cost sensitivity,
//! copy accounting and the split-phase extension. Points fan out across
//! `ABR_JOBS` workers; timings land in `BENCH_sweep.json`.

use abr_bench::sweep_json;
use abr_cluster::report::Table;
use abr_cluster::sweep::jobs_from_env;

type Ablation = (&'static str, fn(u64) -> Vec<Table>);

fn main() {
    let iters = abr_bench::iters();
    let ablations: [Ablation; 7] = [
        ("ablation_delay", abr_bench::figures::ablation_delay),
        (
            "ablation_signal_cost",
            abr_bench::figures::ablation_signal_cost,
        ),
        ("ablation_copies", abr_bench::figures::ablation_copies),
        ("ablation_nic", abr_bench::figures::ablation_nic),
        ("ablation_bcast", abr_bench::figures::ablation_bcast),
        ("ablation_scale", abr_bench::figures::ablation_scale),
        ("ablation_app", abr_bench::figures::ablation_app),
    ];
    let mut records = Vec::new();
    for (name, f) in ablations {
        let (tables, record) = sweep_json::timed_figure(name, || f(iters));
        abr_bench::figures::print_all(&tables);
        records.push(record);
    }
    sweep_json::write(jobs_from_env(), iters, &records);
}
