//! Run the ablation studies: exit-delay policy, signal-cost sensitivity,
//! copy accounting and the split-phase extension.

fn main() {
    let iters = abr_bench::iters();
    abr_bench::figures::print_all(&abr_bench::figures::ablation_delay(iters));
    abr_bench::figures::print_all(&abr_bench::figures::ablation_signal_cost(iters));
    abr_bench::figures::print_all(&abr_bench::figures::ablation_copies(iters));
    abr_bench::figures::print_all(&abr_bench::figures::ablation_nic(iters));
    abr_bench::figures::print_all(&abr_bench::figures::ablation_bcast(iters));
    abr_bench::figures::print_all(&abr_bench::figures::ablation_scale(iters));
    abr_bench::figures::print_all(&abr_bench::figures::ablation_app(iters));
}
