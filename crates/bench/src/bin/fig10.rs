//! Regenerate Fig10 data series.

fn main() {
    abr_bench::figures::print_all(&abr_bench::figures::fig10(abr_bench::iters()));
}
