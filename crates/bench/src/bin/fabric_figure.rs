//! Regenerate the fabric-contention figure: ab-vs-nab CPU and factor of
//! improvement for binomial vs bine vs locality-greedy reduction trees on
//! a contended fabric (default: 4:1-oversubscribed fat-tree, cyclic
//! placement), 512–8192 ranks.
//!
//! Knobs: `ABR_FABRIC` picks the fabric (`fattree[:blocked|:cyclic]`,
//! `dragonfly[...]`; `flat` turns contention off), `ABR_OVERSUB` the
//! uplink oversubscription ratio, `ABR_SCALE_MAX` caps the largest
//! cluster (CI smoke uses a small cap), `ABR_FABRIC_JSON` redirects the
//! JSON record. Contended fabrics run on the sequential executor; setting
//! `ABR_DES_SHARDS` alongside one fails fast.

use abr_bench::{fabric_json, figures, sweep_json};

fn main() {
    let iters = abr_bench::iters();
    let fabric = figures::fabric_for_figure();
    let mut points = Vec::new();
    let (tables, record) = sweep_json::timed_figure("fig_fabric", || {
        let (tables, pts) = figures::fig_fabric_data(iters);
        points = pts;
        tables
    });
    println!("### {} [{}]", record.name, fabric.label());
    figures::print_all(&tables);
    if let Some(best) = fabric_json::best_nab(&points) {
        println!(
            "best blocking-mode topology at {} ranks: {} ({:.2} us)",
            best.size, best.topo, best.nab_us
        );
    }
    fabric_json::write(&fabric.label(), &points, &record);
}
