//! Regenerate Fig9 data series.

fn main() {
    abr_bench::figures::print_all(&abr_bench::figures::fig9(abr_bench::iters()));
}
