//! Regenerate the scale figure (ab vs nab factor of improvement from 32 up
//! to 65,536 ranks on two tree families) and measure DES throughput at
//! scale, before and after the arena/registry refactor.
//!
//! Knobs: `ABR_SCALE_MAX` caps the largest cluster (CI smoke uses 1,024),
//! `ABR_DES_SHARDS` runs the figure sweep on the parallel conservative
//! executor, `ABR_SCALE_JSON` redirects the throughput summary.

use abr_bench::{figures, scale_json, sweep_json};
use abr_cluster::microbench::{run_scale_bench, ScaleExec};

fn main() {
    let iters = abr_bench::iters();
    let max = abr_bench::scale_max();
    let (tables, record) = sweep_json::timed_figure("fig_scale", || figures::fig_scale(iters));
    println!("### {}", record.name);
    figures::print_all(&tables);

    // Throughput before/after at 8k ranks (or the ABR_SCALE_MAX cap): the
    // same workload, event for event, on the emulated pre-refactor driver
    // (boxed programs, per-engine schedule builds) and on the modern one.
    let ranks = 8_192.min(max);
    let legacy = run_scale_bench(ranks, 2, true, ScaleExec::Sequential);
    let modern = run_scale_bench(ranks, 2, false, ScaleExec::Sequential);
    let speedup = modern.events_per_sec / legacy.events_per_sec.max(1e-9);
    println!("### hot-path throughput at {ranks} ranks");
    println!(
        "legacy: {} events in {:.2}s = {:.0} events/sec",
        legacy.events, legacy.wall_secs, legacy.events_per_sec
    );
    println!(
        "modern: {} events in {:.2}s = {:.0} events/sec",
        modern.events, modern.wall_secs, modern.events_per_sec
    );
    println!("speedup: {speedup:.2}x");
    scale_json::write(max, &legacy, &modern, &record);
}
