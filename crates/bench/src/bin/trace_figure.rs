//! Traced Fig. 6-style data point: the seeded 32-rank skewed
//! CPU-utilization run, once per mode (`nab`, `ab`), with a tracer
//! recording every packet, CPU charge, wire segment, signal and phase.
//!
//! Outputs (paths configurable via `ABR_TRACE=chrome=...,report=...`):
//!
//! * a Chrome `trace_event` JSON of the bypass run — load it at
//!   `chrome://tracing` or <https://ui.perfetto.dev> to see the timeline;
//! * a per-rank CPU-attribution report for both modes, reconciled against
//!   the driver's own [`CpuMeter`](abr_des::CpuMeter) totals and the
//!   engines' `AbStats` counters.
//!
//! Tracing defaults **on** here (it is the entire point of this binary);
//! `ABR_ITERS` scales the run like every other figure target.

use abr_cluster::microbench::{run_cpu_util_traced, CpuUtilConfig, CpuUtilResult, Mode};
use abr_cluster::node::ClusterSpec;
use abr_core::DelayPolicy;
use abr_trace::{
    chrome_trace_json, cpu_attribution, validate_json, RingRecorder, Trace, TraceClock,
    TraceConfig, Tracer,
};
use std::sync::Arc;

const RANKS: u32 = 32;

fn traced_run(mode: Mode, iters: u64, capacity: usize) -> (CpuUtilResult, Trace) {
    let cfg = CpuUtilConfig {
        iters,
        ..CpuUtilConfig::new(ClusterSpec::heterogeneous_32(), mode)
    };
    let rec = RingRecorder::new(RANKS, capacity, TraceClock::Virtual, cfg.seed, 0);
    let res = run_cpu_util_traced(&cfg, Some(Arc::clone(&rec) as Arc<dyn Tracer>));
    (res, rec.snapshot())
}

/// Every CPU nanosecond in the trace must equal the meter totals the
/// driver reports — they are the same `charge()` calls, seen twice.
fn reconcile_cpu(label: &str, res: &CpuUtilResult, trace: &Trace) {
    assert_eq!(
        trace.dropped, 0,
        "{label}: ring overflow breaks reconciliation"
    );
    let attr = cpu_attribution(trace);
    for (rank, rc) in attr.per_rank.iter().enumerate() {
        let meter_us = [
            ("app", res.nodes[rank].cpu_app_us),
            ("poll", res.nodes[rank].cpu_poll_us),
            ("protocol", res.nodes[rank].cpu_protocol_us),
            ("signal", res.nodes[rank].cpu_signal_us),
            ("nic", res.nodes[rank].cpu_nic_us),
        ];
        for (bucket, us) in meter_us {
            let traced_us = rc.bucket_ns(bucket) as f64 / 1000.0;
            assert!(
                (traced_us - us).abs() < 1e-6,
                "{label} rank {rank} bucket {bucket}: trace says {traced_us} us, meter says {us} us"
            );
        }
    }
}

/// Each `handle_signal` call bumps `signals_handled` and emits exactly one
/// `signal-handler` phase entry, so the two counts must agree.
fn reconcile_signals(label: &str, res: &CpuUtilResult, trace: &Trace) {
    let handled: u64 = res
        .counters
        .iter()
        .find(|(k, _)| *k == "signals_handled")
        .map(|(_, v)| *v)
        .unwrap_or(0);
    let phases = trace
        .per_rank
        .iter()
        .flatten()
        .filter(|r| {
            matches!(r.event, abr_trace::TraceEvent::PhaseEnter { phase } if phase == "signal-handler")
        })
        .count() as u64;
    assert_eq!(
        phases, handled,
        "{label}: {phases} traced signal-handler phases vs {handled} in AbStats"
    );
}

fn main() {
    // Tracing on by default; `ABR_TRACE=...` still customises paths and
    // capacity, and an explicit `ABR_TRACE=0` turns the artifacts off
    // (`from_env` returns `None` both for "unset" and for "disabled", so
    // presence must be checked separately to honour the off switch).
    let tc = if std::env::var_os("ABR_TRACE").is_some() {
        TraceConfig::from_env()
    } else {
        Some(TraceConfig::default())
    };
    let Some(tc) = tc else {
        eprintln!("ABR_TRACE is disabled; trace_figure exists to trace — nothing to do");
        return;
    };
    let iters = abr_bench::iters();

    let (nab_res, nab_trace) = traced_run(Mode::Baseline, iters, tc.capacity);
    let (ab_res, ab_trace) = traced_run(Mode::Bypass(DelayPolicy::None), iters, tc.capacity);

    reconcile_cpu("nab", &nab_res, &nab_trace);
    reconcile_cpu("ab", &ab_res, &ab_trace);
    reconcile_signals("ab", &ab_res, &ab_trace);

    let json = chrome_trace_json(&ab_trace);
    validate_json(&json).expect("chrome trace must be valid JSON");
    if let Some(path) = &tc.chrome_path {
        std::fs::write(path, &json).expect("write chrome trace");
    }

    let mut report = String::new();
    for (label, res, trace) in [
        ("nab (blocking baseline)", &nab_res, &nab_trace),
        ("ab (application bypass)", &ab_res, &ab_trace),
    ] {
        report.push_str(&format!(
            "== {label}: 32 ranks, max skew 1000us, {iters} iters, mean {:.2} us/reduction ==\n",
            res.mean_cpu_us
        ));
        report.push_str(&cpu_attribution(trace).render());
        report.push('\n');
    }
    let foi = nab_res.mean_cpu_us / ab_res.mean_cpu_us;
    report.push_str(&format!(
        "mean per-reduction CPU: nab {:.2} us, ab {:.2} us, factor of improvement {:.1}x\n",
        nab_res.mean_cpu_us, ab_res.mean_cpu_us, foi
    ));
    if let Some(path) = &tc.report_path {
        std::fs::write(path, &report).expect("write CPU report");
    }

    println!("{report}");
    println!(
        "chrome trace: {} ({} events, {} bytes); report: {}",
        tc.chrome_path.as_deref().unwrap_or("<not written>"),
        ab_trace.len(),
        json.len(),
        tc.report_path.as_deref().unwrap_or("<not written>")
    );
    println!("reconciliation OK: trace CPU sums match meter totals on all {RANKS} ranks");
}
