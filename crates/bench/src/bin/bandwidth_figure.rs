//! Regenerate the bandwidth figure: delivered bandwidth and CPU factor
//! of improvement vs message size (1 KiB → 64 MiB) for blocking (nab)
//! against split-phase bypass (ab) runs of binomial/chain reduces and
//! the dual-root doubly-pipelined allreduce, on 8 ranks.
//!
//! Knobs: `ABR_MSG_BYTES` caps the largest message (CI smoke uses a
//! small cap), `ABR_SEGMENTS` overrides the pipeline window (default 8
//! *for this figure*; everywhere else the knob defaults to 1, i.e.
//! segmentation off), `ABR_BW_JSON` redirects the JSON record, and
//! `ABR_ITERS` scales iteration counts (large messages shrink them
//! automatically).

use abr_bench::{bw_json, figures, sweep_json};

fn main() {
    let iters = abr_bench::iters();
    let window = figures::bandwidth_window();
    let mut points = Vec::new();
    let (tables, record) = sweep_json::timed_figure("fig_bandwidth", || {
        let (tables, pts) = figures::fig_bandwidth_data(iters);
        points = pts;
        tables
    });
    println!("### {} [window {}]", record.name, window);
    figures::print_all(&tables);
    if let Some(peak) = bw_json::peak_ab(&points) {
        println!(
            "peak bypass bandwidth at {} bytes: {} ({:.2} MB/s)",
            peak.msg_bytes, peak.series, peak.ab_bw_mbs
        );
    }
    bw_json::write(window, &points, &record);
}
