//! Regenerate Fig. 7 (CPU utilization and factor of improvement vs nodes
//! at maximal skew).

fn main() {
    abr_bench::figures::print_all(&abr_bench::figures::fig7(abr_bench::iters()));
}
