//! Regenerate only the skew-vs-topology figure: CPU utilization and
//! factor of improvement per reduction-tree family (binomial, 4-nomial,
//! chain, flat) on the 32-node heterogeneous cluster.
//!
//! The figure sweeps the topology axis explicitly, so it ignores
//! `ABR_TOPO`; use that knob to steer the *other* figure binaries onto a
//! non-default tree.

fn main() {
    abr_bench::figures::print_all(&abr_bench::figures::fig_topology(abr_bench::iters()));
}
