//! `abr_bench` — figure regeneration and ablations.
//!
//! One function per figure in the paper's evaluation (§VI). Each returns
//! printable tables with the same series the paper plots; the `benches/`
//! targets (run by `cargo bench`) and the `src/bin/` binaries print them.
//!
//! Iteration counts default to a few hundred (the paper used 10,000 on real
//! hardware); override with the `ABR_ITERS` environment variable. Shapes —
//! who wins, by what factor, where the crossovers sit — are the
//! reproduction target, not absolute microseconds.

#![warn(missing_docs)]

pub mod bw_json;
pub mod fabric_json;
pub mod figures;
pub mod scale_json;
pub mod sweep_json;
pub mod tenant_json;

/// Iterations per configuration, from `ABR_ITERS` (default 300).
///
/// # Panics
/// Panics on a set-but-invalid `ABR_ITERS` (non-numeric or zero) — a typo'd
/// iteration count must not silently run the default.
pub fn iters() -> u64 {
    abr_trace::parse_env("ABR_ITERS", parse_iters).unwrap_or(300)
}

/// Parse an explicit `ABR_ITERS` value: a positive iteration count.
pub fn parse_iters(raw: &str) -> Result<u64, String> {
    match raw.trim().parse::<u64>() {
        Ok(0) => Err("ABR_ITERS must be a positive iteration count, got 0".to_string()),
        Ok(n) => Ok(n),
        Err(_) => Err(format!(
            "ABR_ITERS must be a positive iteration count, got {raw:?}"
        )),
    }
}

/// Largest cluster the scale figure sweeps, from `ABR_SCALE_MAX`
/// (default 65,536). CI caps this to keep the smoke run fast.
///
/// # Panics
/// Panics on a set-but-invalid `ABR_SCALE_MAX` (non-numeric or zero).
pub fn scale_max() -> u32 {
    abr_trace::parse_env("ABR_SCALE_MAX", parse_scale_max).unwrap_or(65_536)
}

/// Parse an explicit `ABR_SCALE_MAX` value: a positive rank count.
pub fn parse_scale_max(raw: &str) -> Result<u32, String> {
    match raw.trim().parse::<u32>() {
        Ok(0) => Err("ABR_SCALE_MAX must be a positive rank count, got 0".to_string()),
        Ok(n) => Ok(n),
        Err(_) => Err(format!(
            "ABR_SCALE_MAX must be a positive rank count, got {raw:?}"
        )),
    }
}

/// Largest message the bandwidth figure sweeps, in bytes, from
/// `ABR_MSG_BYTES` (default 64 MiB). CI caps this to keep the smoke run
/// fast.
///
/// # Panics
/// Panics on a set-but-invalid `ABR_MSG_BYTES` (non-numeric or zero).
pub fn msg_bytes() -> usize {
    abr_trace::parse_env("ABR_MSG_BYTES", parse_msg_bytes).unwrap_or(64 * 1024 * 1024)
}

/// Parse an explicit `ABR_MSG_BYTES` value: a positive byte count.
pub fn parse_msg_bytes(raw: &str) -> Result<usize, String> {
    match raw.trim().parse::<usize>() {
        Ok(0) => Err("ABR_MSG_BYTES must be a positive byte count, got 0".to_string()),
        Ok(n) => Ok(n),
        Err(_) => Err(format!(
            "ABR_MSG_BYTES must be a positive byte count, got {raw:?}"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_scale_max_accepts_positive_and_rejects_junk() {
        assert_eq!(parse_scale_max("65536"), Ok(65_536));
        assert_eq!(parse_scale_max(" 1024 "), Ok(1024));
        for bad in ["0", "", "big", "-1"] {
            let err = parse_scale_max(bad).unwrap_err();
            assert!(err.contains("ABR_SCALE_MAX"), "{bad:?}: {err}");
        }
    }

    #[test]
    fn parse_msg_bytes_accepts_positive_and_rejects_junk() {
        assert_eq!(parse_msg_bytes("67108864"), Ok(67_108_864));
        assert_eq!(parse_msg_bytes(" 1024 "), Ok(1024));
        for bad in ["0", "", "64M", "-1"] {
            let err = parse_msg_bytes(bad).unwrap_err();
            assert!(err.contains("ABR_MSG_BYTES"), "{bad:?}: {err}");
        }
    }

    #[test]
    fn parse_iters_accepts_positive_and_rejects_junk() {
        assert_eq!(parse_iters("300"), Ok(300));
        assert_eq!(parse_iters(" 40 "), Ok(40));
        for bad in ["0", "", "many", "-3", "1e3"] {
            let err = parse_iters(bad).unwrap_err();
            assert!(err.contains("ABR_ITERS"), "{bad}: {err}");
        }
    }
}
