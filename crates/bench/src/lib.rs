//! `abr_bench` — figure regeneration and ablations.
//!
//! One function per figure in the paper's evaluation (§VI). Each returns
//! printable tables with the same series the paper plots; the `benches/`
//! targets (run by `cargo bench`) and the `src/bin/` binaries print them.
//!
//! Iteration counts default to a few hundred (the paper used 10,000 on real
//! hardware); override with the `ABR_ITERS` environment variable. Shapes —
//! who wins, by what factor, where the crossovers sit — are the
//! reproduction target, not absolute microseconds.

#![warn(missing_docs)]

pub mod figures;
pub mod sweep_json;

/// Iterations per configuration, from `ABR_ITERS` (default 300).
pub fn iters() -> u64 {
    std::env::var("ABR_ITERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(300)
}
