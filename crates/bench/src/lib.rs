//! `abr_bench` — figure regeneration and ablations.
//!
//! One function per figure in the paper's evaluation (§VI). Each returns
//! printable tables with the same series the paper plots; the `benches/`
//! targets (run by `cargo bench`) and the `src/bin/` binaries print them.
//!
//! Iteration counts default to a few hundred (the paper used 10,000 on real
//! hardware); override with the `ABR_ITERS` environment variable. Shapes —
//! who wins, by what factor, where the crossovers sit — are the
//! reproduction target, not absolute microseconds.

#![warn(missing_docs)]

pub mod figures;
pub mod sweep_json;

/// Iterations per configuration, from `ABR_ITERS` (default 300).
///
/// # Panics
/// Panics on a set-but-invalid `ABR_ITERS` (non-numeric or zero) — a typo'd
/// iteration count must not silently run the default.
pub fn iters() -> u64 {
    abr_trace::parse_env("ABR_ITERS", parse_iters).unwrap_or(300)
}

/// Parse an explicit `ABR_ITERS` value: a positive iteration count.
pub fn parse_iters(raw: &str) -> Result<u64, String> {
    match raw.trim().parse::<u64>() {
        Ok(0) => Err("ABR_ITERS must be a positive iteration count, got 0".to_string()),
        Ok(n) => Ok(n),
        Err(_) => Err(format!(
            "ABR_ITERS must be a positive iteration count, got {raw:?}"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_iters_accepts_positive_and_rejects_junk() {
        assert_eq!(parse_iters("300"), Ok(300));
        assert_eq!(parse_iters(" 40 "), Ok(40));
        for bad in ["0", "", "many", "-3", "1e3"] {
            let err = parse_iters(bad).unwrap_err();
            assert!(err.contains("ABR_ITERS"), "{bad}: {err}");
        }
    }
}
