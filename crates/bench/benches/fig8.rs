//! `cargo bench` target regenerating the paper's Fig8 data series.
//! Iteration count via ABR_ITERS (default 300).

fn main() {
    abr_bench::figures::print_all(&abr_bench::figures::fig8(abr_bench::iters()));
}
