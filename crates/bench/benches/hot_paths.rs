//! Criterion microbenchmarks for the stack's hot paths: tree math, the
//! reduction operators, matching queues, the DES event queue, a full
//! engine-level reduction over the loopback, and one simulated
//! CPU-utilization iteration.

use abr_cluster::microbench::{run_cpu_util, run_scale_bench, CpuUtilConfig, Mode, ScaleExec};
use abr_cluster::node::ClusterSpec;
use abr_core::DelayPolicy;
use abr_des::{EventQueue, SimTime};
use abr_mpr::engine::{Action, EngineConfig};
use abr_mpr::matchq::{MsgKey, PostedQueue, PostedRecv, UnexpectedQueue};
use abr_mpr::op::ReduceOp;
use abr_mpr::testutil::{engines, Loopback};
use abr_mpr::topology::{ScheduleCache, TopologyKind};
use abr_mpr::tree;
use abr_mpr::types::{f64s_to_bytes, Datatype, TagSel};
use abr_mpr::ReqId;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_tree(c: &mut Criterion) {
    c.bench_function("tree/children_32x32", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for root in 0..32u32 {
                for rank in 0..32u32 {
                    acc += tree::children(black_box(rank), black_box(root), 32).len();
                }
            }
            acc
        })
    });
    // Same walk through a cached schedule: children_of returns a slice
    // into the CSR child array, so the inner loop is allocation-free —
    // compare against tree/children_32x32, which builds a Vec per call.
    c.bench_function("tree/sched_children_32x32", |b| {
        let mut cache = ScheduleCache::new(TopologyKind::Binomial);
        let scheds: Vec<_> = (0..32u32).map(|root| cache.get(root, 32)).collect();
        b.iter(|| {
            let mut acc = 0usize;
            for s in &scheds {
                for rank in 0..32u32 {
                    acc += s.children_of(black_box(rank)).len();
                }
            }
            acc
        })
    });
    c.bench_function("tree/parent_1k", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for rank in 0..1024u32 {
                acc = acc.wrapping_add(tree::parent(rank, 7, 1024).unwrap_or(0));
            }
            acc
        })
    });
}

fn bench_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("reduce_op");
    for elems in [4usize, 32, 128, 1024] {
        let rhs = f64s_to_bytes(&vec![1.5; elems]);
        g.bench_with_input(BenchmarkId::new("sum_f64", elems), &elems, |b, &n| {
            let mut acc = f64s_to_bytes(&vec![2.0; n]);
            b.iter(|| {
                ReduceOp::Sum
                    .apply(Datatype::F64, black_box(&mut acc), black_box(&rhs))
                    .unwrap()
            })
        });
    }
    g.finish();
}

fn bench_matchq(c: &mut Criterion) {
    // Deep exact matching: every take scans past all earlier-posted recvs
    // under the linear-scan implementation, so this is quadratic there and
    // linear with per-(tag, src) FIFO buckets.
    c.bench_function("matchq/post_and_match_512", |b| {
        b.iter(|| {
            let mut q = PostedQueue::new();
            for i in 0..512 {
                q.post(PostedRecv {
                    id: ReqId::from_raw(i),
                    src: Some(i as u32),
                    tag: TagSel::Is(i as i32),
                    context: 0,
                    capacity: 64,
                    expect_coll_seq: None,
                });
            }
            for i in (0..512).rev() {
                let hit = q.take_match(&MsgKey {
                    src: i as u32,
                    tag: i,
                    context: 0,
                });
                black_box(hit);
            }
        })
    });
    c.bench_function("matchq/unexpected_deep_512", |b| {
        b.iter(|| {
            let mut q = UnexpectedQueue::new();
            for i in 0..512u32 {
                q.push(abr_mpr::matchq::UnexpectedMsg {
                    src: i,
                    tag: i as i32,
                    context: 0,
                    kind: abr_gm::packet::PacketKind::Eager,
                    coll_seq: 0,
                    data: bytes::Bytes::new(),
                    msg_len: 0,
                });
            }
            for i in (0..512u32).rev() {
                black_box(q.take_match(Some(i), TagSel::Is(i as i32), 0));
            }
        })
    });
    // Wildcard receives must still honour global arrival order.
    c.bench_function("matchq/unexpected_wildcard_256", |b| {
        b.iter(|| {
            let mut q = UnexpectedQueue::new();
            for i in 0..256u32 {
                q.push(abr_mpr::matchq::UnexpectedMsg {
                    src: i,
                    tag: i as i32,
                    context: 0,
                    kind: abr_gm::packet::PacketKind::Eager,
                    coll_seq: 0,
                    data: bytes::Bytes::new(),
                    msg_len: 0,
                });
            }
            for _ in 0..256 {
                black_box(q.take_match(None, TagSel::Any, 0));
            }
        })
    });
    c.bench_function("matchq/post_and_match_64", |b| {
        b.iter(|| {
            let mut q = PostedQueue::new();
            for i in 0..64 {
                q.post(PostedRecv {
                    id: ReqId::from_raw(i),
                    src: Some(i as u32),
                    tag: TagSel::Is(i as i32),
                    context: 0,
                    capacity: 64,
                    expect_coll_seq: None,
                });
            }
            for i in (0..64).rev() {
                let hit = q.take_match(&MsgKey {
                    src: i as u32,
                    tag: i,
                    context: 0,
                });
                black_box(hit);
            }
        })
    });
    c.bench_function("matchq/unexpected_sweep_64", |b| {
        b.iter(|| {
            let mut q = UnexpectedQueue::new();
            for i in 0..64u32 {
                q.push(abr_mpr::matchq::UnexpectedMsg {
                    src: i,
                    tag: 5,
                    context: 0,
                    kind: abr_gm::packet::PacketKind::Eager,
                    coll_seq: 0,
                    data: bytes::Bytes::new(),
                    msg_len: 0,
                });
            }
            for i in 0..64u32 {
                black_box(q.take_match(Some(i), TagSel::Is(5), 0));
            }
        })
    });
}

fn bench_event_queue(c: &mut Criterion) {
    // Preemption churn: a fixed set of in-flight completions is repeatedly
    // cancelled and rescheduled, the pattern the cluster driver hits every
    // time a signal handler steals the CPU from a busy loop.
    c.bench_function("des/event_queue_cancel_churn", |b| {
        b.iter(|| {
            let mut q: EventQueue<u64> = EventQueue::new();
            let mut ids = Vec::with_capacity(256);
            for i in 0..256u64 {
                ids.push(q.schedule(SimTime::from_nanos(1_000 + i), i));
            }
            let mut t = 2_000u64;
            for round in 0..4_096u64 {
                let victim = (round % 256) as usize;
                q.cancel(ids[victim]);
                ids[victim] = q.schedule(SimTime::from_nanos(t), round);
                t += 3;
            }
            let mut acc = 0u64;
            while let Some(e) = q.pop() {
                acc = acc.wrapping_add(e.payload);
            }
            acc
        })
    });
    c.bench_function("des/event_queue_10k", |b| {
        b.iter(|| {
            let mut q: EventQueue<u64> = EventQueue::new();
            for i in 0..10_000u64 {
                q.schedule(SimTime::from_nanos((i * 7919) % 100_000), i);
            }
            let mut acc = 0u64;
            while let Some(e) = q.pop() {
                acc = acc.wrapping_add(e.payload);
            }
            acc
        })
    });
}

fn bench_loopback_reduce(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    g.sample_size(30);
    g.bench_function("loopback_reduce_16r_32e", |b| {
        b.iter(|| {
            let mut lb = Loopback::new(engines(16, EngineConfig::default()));
            let comm = lb.engines[0].world();
            let reqs: Vec<_> = (0..16usize)
                .map(|r| {
                    let data = f64s_to_bytes(&vec![r as f64; 32]);
                    (
                        r,
                        lb.engines[r].ireduce(&comm, 0, ReduceOp::Sum, Datatype::F64, &data),
                    )
                })
                .collect();
            lb.run_until_complete(&reqs, 2000);
            black_box(lb.engines[0].take_outcome(reqs[0].1))
        })
    });
    g.finish();
}

fn bench_drain_actions(c: &mut Criterion) {
    // Models the driver's per-progress-call action collection: every send
    // enqueues an action that the driver immediately drains into its own
    // working buffer.
    let mut g = c.benchmark_group("engine");
    g.bench_function("drain_actions_churn_64", |b| {
        let payload: bytes::Bytes = f64s_to_bytes(&[1.0; 4]).into();
        b.iter(|| {
            let mut lb = Loopback::new(engines(2, EngineConfig::default()));
            let comm = lb.engines[0].world();
            let mut out: Vec<Action> = Vec::new();
            let mut total = 0usize;
            for i in 0..64 {
                lb.engines[0].isend(&comm, 1, i, payload.clone());
                lb.engines[0].drain_actions_into(&mut out);
                total += out.len();
                out.clear();
            }
            total
        })
    });
    g.finish();
}

fn bench_simulated_iteration(c: &mut Criterion) {
    let mut g = c.benchmark_group("des_microbench");
    g.sample_size(10);
    for (label, mode) in [
        ("nab", Mode::Baseline),
        ("ab", Mode::Bypass(DelayPolicy::None)),
    ] {
        g.bench_function(format!("cpu_util_32n_20it_{label}"), |b| {
            b.iter(|| {
                let cfg = CpuUtilConfig {
                    iters: 20,
                    ..CpuUtilConfig::new(ClusterSpec::heterogeneous_32(), mode)
                };
                black_box(run_cpu_util(&cfg).mean_cpu_us)
            })
        });
    }
    g.finish();
}

fn bench_scale(c: &mut Criterion) {
    // Events/sec at scale, before and after the arena/registry refactor.
    // "legacy" emulates the pre-refactor driver (boxed programs, private
    // per-engine schedule caches); "modern" is the index-addressed arena
    // path with the shared schedule registry. Both simulate the identical
    // event stream — the gap is pure hot-path cost. The 8k before/after
    // that ISSUE acceptance tracks lives in `scale_figure` /
    // BENCH_scale.json; these smaller sizes keep `cargo bench` quick.
    let mut g = c.benchmark_group("des_scale");
    g.sample_size(10);
    for ranks in [256u32, 1024] {
        g.bench_function(format!("cpu_util_{ranks}n_legacy"), |b| {
            b.iter(|| black_box(run_scale_bench(ranks, 2, true, ScaleExec::Sequential)).events)
        });
        g.bench_function(format!("cpu_util_{ranks}n_modern"), |b| {
            b.iter(|| black_box(run_scale_bench(ranks, 2, false, ScaleExec::Sequential)).events)
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_tree,
    bench_ops,
    bench_matchq,
    bench_event_queue,
    bench_loopback_reduce,
    bench_drain_actions,
    bench_simulated_iteration,
    bench_scale
);
criterion_main!(benches);
