//! Determinism of the parallel sweep executor: the same spec list must
//! produce byte-identical results at any worker count, both at the
//! `run_points` level and through a full figure's rendered tables.

use abr_cluster::microbench::{AppBenchConfig, CpuUtilConfig, LatencyConfig, Mode};
use abr_cluster::node::ClusterSpec;
use abr_cluster::sweep::{RunSpec, Sweep};
use abr_core::DelayPolicy;

const ITERS: u64 = 8;

fn mixed_specs() -> Vec<RunSpec> {
    let mut specs = Vec::new();
    for &n in &[2u32, 4, 8] {
        for mode in [Mode::Baseline, Mode::Bypass(DelayPolicy::None)] {
            specs.push(RunSpec::Cpu(CpuUtilConfig {
                elems: 4,
                max_skew_us: 200,
                iters: ITERS,
                mode,
                ..CpuUtilConfig::new(ClusterSpec::heterogeneous(n), mode)
            }));
            specs.push(RunSpec::Latency(LatencyConfig {
                elems: 2,
                iters: ITERS,
                mode,
                ..LatencyConfig::new(ClusterSpec::heterogeneous(n), mode)
            }));
        }
        specs.push(RunSpec::Bcast(CpuUtilConfig {
            elems: 4,
            max_skew_us: 100,
            iters: ITERS,
            ..CpuUtilConfig::new(ClusterSpec::heterogeneous(n), Mode::Baseline)
        }));
        specs.push(RunSpec::App(AppBenchConfig {
            sweeps: 5,
            imbalance: 1.0,
            ..AppBenchConfig::new(ClusterSpec::heterogeneous(n), Mode::Baseline)
        }));
    }
    specs
}

/// `run_points` output is byte-identical (full Debug serialization,
/// covering every field of every result) at jobs = 1, 2, 8.
#[test]
fn run_points_identical_across_worker_counts() {
    let specs = mixed_specs();
    let seq = format!("{:?}", Sweep::with_jobs(1).run_points(&specs));
    for jobs in [2usize, 8] {
        let par = format!("{:?}", Sweep::with_jobs(jobs).run_points(&specs));
        assert_eq!(par, seq, "sweep output diverged at jobs={jobs}");
    }
}

/// A real figure renders byte-identical tables under different `ABR_JOBS`
/// settings. Env mutation is confined to this one test (its own process:
/// integration test binaries run tests in-process, but nothing else in
/// this file touches `ABR_JOBS`, and assertions run after each set).
#[test]
fn figure_tables_identical_across_abr_jobs() {
    let render = |jobs: &str| -> String {
        std::env::set_var("ABR_JOBS", jobs);
        let tables = abr_bench::figures::fig9(4);
        std::env::remove_var("ABR_JOBS");
        tables
            .iter()
            .map(|t| t.render())
            .collect::<Vec<_>>()
            .join("\n")
    };
    let seq = render("1");
    let par2 = render("2");
    let par8 = render("8");
    assert!(!seq.is_empty());
    assert_eq!(seq, par2, "fig9 tables diverged at ABR_JOBS=2");
    assert_eq!(seq, par8, "fig9 tables diverged at ABR_JOBS=8");
}
