//! Structured tracing for the application-bypass reduction stack.
//!
//! The paper's argument is about *where CPU time goes* during a skewed
//! reduction; aggregate counters (`AbStats`, `CpuMeter`) say how much,
//! but not when or why. This crate records *typed, timestamped events*
//! from the hot paths of every other crate in the workspace — packet
//! life-cycle, NIC/wire cost charges, host-signal decisions, engine
//! state and reduction-phase transitions, fault verdicts — into
//! lock-free per-rank ring buffers, and exports them as a Chrome
//! `trace_event` timeline plus a per-rank CPU-attribution report.
//!
//! # Zero cost when disabled
//!
//! Instrumented components hold a [`TraceHandle`]; the default handle
//! is disabled and every `emit` is a single `None` branch. No recorder
//! is ever allocated unless `ABR_TRACE` (or an explicit
//! [`TraceConfig`]) turns tracing on, so benchmark output is
//! byte-identical with tracing off — the same cost-neutrality contract
//! `FaultPlan::none()` follows.
//!
//! # Module map
//!
//! | module | contents |
//! |--------|----------|
//! | [`event`] | [`TraceEvent`] taxonomy and the stamped [`TraceRecord`] |
//! | [`ring`] | wait-free write-once [`EventRing`] (one per rank) |
//! | [`recorder`] | [`Tracer`] trait, [`RingRecorder`], [`TraceHandle`], drained [`Trace`] |
//! | [`chrome`] | Chrome `trace_event` JSON exporter + mini JSON validator |
//! | [`report`] | per-rank CPU-attribution report ([`cpu_attribution`]) |
//! | [`mod@env`] | `ABR_TRACE` parsing ([`TraceConfig`]) and the shared fail-fast [`parse_env`] helper |
//!
//! # End-to-end example
//!
//! ```
//! use abr_trace::{chrome_trace_json, cpu_attribution, RingRecorder, TraceClock, TraceEvent};
//!
//! // One recorder per run: 2 ranks, 1024-event rings, DES clock.
//! let rec = RingRecorder::new(2, 1024, TraceClock::Virtual, 0xC0FFEE, 0);
//!
//! // The event loop publishes virtual time; components emit through
//! // per-rank handles.
//! rec.set_now_ns(10_000);
//! let h0 = rec.handle_for(0);
//! h0.emit(TraceEvent::PhaseEnter { phase: "reduce-sync" });
//! h0.emit(TraceEvent::PacketSend { dst: 1, kind: "coll", bytes: 256 });
//! h0.emit(TraceEvent::CpuCharge { bucket: "protocol", nanos: 2_000 });
//! rec.set_now_ns(14_000);
//! h0.emit(TraceEvent::PhaseExit { phase: "reduce-sync" });
//!
//! let trace = rec.snapshot();
//! assert_eq!(trace.per_rank[0].len(), 4);
//! let json = chrome_trace_json(&trace);
//! assert!(abr_trace::validate_json(&json).is_ok());
//! let report = cpu_attribution(&trace);
//! assert_eq!(report.per_rank[0].bucket_ns("protocol"), 2_000);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_op_in_unsafe_fn)]

pub mod chrome;
pub mod env;
pub mod event;
pub mod recorder;
pub mod report;
pub mod ring;

pub use chrome::{chrome_trace_json, validate_json};
pub use env::{parse_env, TraceConfig};
pub use event::{TraceEvent, TraceRecord};
pub use recorder::{RingRecorder, Trace, TraceClock, TraceHandle, Tracer};
pub use report::{cpu_attribution, CpuAttribution, RankCpu};
pub use ring::EventRing;
