//! `ABR_TRACE` configuration and the shared fail-fast env-var helper.
//!
//! Every `ABR_*` knob in the workspace follows the same contract: an
//! unset variable means "use the default"; a set-but-invalid value
//! aborts immediately with a message that names the variable, instead
//! of silently falling back and producing a misleading benchmark run.
//! [`parse_env`] centralizes that contract so each binary stops
//! re-implementing it.

use std::env::VarError;

/// Read `name` from the environment and parse it fail-fast.
///
/// Returns `None` when the variable is unset. When it is set, `parse`
/// must accept the raw string or return an error message *naming the
/// variable*; any error (or a non-unicode value) panics, so a typo in a
/// benchmark invocation can never degrade into a silent default.
///
/// # Examples
///
/// ```
/// use abr_trace::parse_env;
///
/// std::env::set_var("DOCTEST_ABR_KNOB", "41");
/// let v: Option<u32> = parse_env("DOCTEST_ABR_KNOB", |raw| {
///     raw.parse().map_err(|_| format!("DOCTEST_ABR_KNOB must be a number, got {raw:?}"))
/// });
/// assert_eq!(v, Some(41));
/// std::env::remove_var("DOCTEST_ABR_KNOB");
/// assert_eq!(parse_env("DOCTEST_ABR_KNOB", |_| Ok(0u32)), None);
/// ```
pub fn parse_env<T>(
    name: &'static str,
    parse: impl FnOnce(&str) -> Result<T, String>,
) -> Option<T> {
    match std::env::var(name) {
        Ok(raw) => match parse(&raw) {
            Ok(v) => Some(v),
            Err(e) => panic!("{e}"),
        },
        Err(VarError::NotPresent) => None,
        Err(VarError::NotUnicode(_)) => panic!("{name} is set but is not valid unicode"),
    }
}

/// Parsed `ABR_TRACE` configuration.
///
/// Syntax (comma-separated `key[=value]`, case-sensitive):
///
/// | value                | meaning                                          |
/// |----------------------|--------------------------------------------------|
/// | `0` / `off` / `false`| tracing disabled (same as unset)                 |
/// | `1` / `on` / `true`  | tracing on with default outputs                  |
/// | `chrome[=PATH]`      | write Chrome trace JSON (default `TRACE_events.json`) |
/// | `report[=PATH]`      | write the CPU-attribution table (default `TRACE_cpu.txt`) |
/// | `cap=N`              | per-rank ring capacity in events (default 65536) |
///
/// `chrome`/`report`/`cap` keys imply tracing on and may be combined:
/// `ABR_TRACE=chrome=run.json,cap=200000`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceConfig {
    /// Where to write Chrome `trace_event` JSON, if anywhere.
    pub chrome_path: Option<String>,
    /// Where to write the CPU-attribution report, if anywhere.
    pub report_path: Option<String>,
    /// Per-rank ring capacity in events.
    pub capacity: usize,
}

impl Default for TraceConfig {
    /// Tracing on, both exporters at their default paths, 65536-event
    /// rings.
    fn default() -> Self {
        TraceConfig {
            chrome_path: Some("TRACE_events.json".to_string()),
            report_path: Some("TRACE_cpu.txt".to_string()),
            capacity: 1 << 16,
        }
    }
}

impl TraceConfig {
    /// Parse an `ABR_TRACE` value. `Ok(None)` means explicitly
    /// disabled; errors name `ABR_TRACE` per the fail-fast contract.
    ///
    /// # Examples
    ///
    /// ```
    /// use abr_trace::TraceConfig;
    ///
    /// assert_eq!(TraceConfig::parse("off").unwrap(), None);
    /// let cfg = TraceConfig::parse("chrome=run.json,cap=1000").unwrap().unwrap();
    /// assert_eq!(cfg.chrome_path.as_deref(), Some("run.json"));
    /// assert_eq!(cfg.report_path, None);
    /// assert_eq!(cfg.capacity, 1000);
    /// assert!(TraceConfig::parse("cap=zero").unwrap_err().contains("ABR_TRACE"));
    /// ```
    pub fn parse(raw: &str) -> Result<Option<TraceConfig>, String> {
        let raw = raw.trim();
        match raw {
            "" => {
                return Err(
                    "ABR_TRACE is set but empty; use 1/on, 0/off, or key=value settings"
                        .to_string(),
                )
            }
            "0" | "off" | "false" => return Ok(None),
            "1" | "on" | "true" => return Ok(Some(TraceConfig::default())),
            _ => {}
        }
        let mut cfg = TraceConfig {
            chrome_path: None,
            report_path: None,
            capacity: 1 << 16,
        };
        for part in raw.split(',') {
            let part = part.trim();
            let (key, val) = match part.split_once('=') {
                Some((k, v)) => (k.trim(), Some(v.trim())),
                None => (part, None),
            };
            match key {
                "chrome" => {
                    cfg.chrome_path = Some(
                        val.filter(|v| !v.is_empty())
                            .unwrap_or("TRACE_events.json")
                            .to_string(),
                    );
                }
                "report" => {
                    cfg.report_path = Some(
                        val.filter(|v| !v.is_empty())
                            .unwrap_or("TRACE_cpu.txt")
                            .to_string(),
                    );
                }
                "cap" => {
                    let v =
                        val.ok_or_else(|| format!("ABR_TRACE: cap needs a value, got {part:?}"))?;
                    let n: usize = v.parse().map_err(|_| {
                        format!("ABR_TRACE: cap must be a positive event count, got {v:?}")
                    })?;
                    if n == 0 {
                        return Err("ABR_TRACE: cap must be at least 1".to_string());
                    }
                    cfg.capacity = n;
                }
                _ => {
                    return Err(format!(
                        "ABR_TRACE: unknown setting {key:?} (expected chrome[=PATH], report[=PATH], or cap=N)"
                    ));
                }
            }
        }
        Ok(Some(cfg))
    }

    /// Read `ABR_TRACE` from the environment. `None` when unset or
    /// explicitly disabled; panics (naming the variable) on an invalid
    /// value.
    pub fn from_env() -> Option<TraceConfig> {
        parse_env("ABR_TRACE", TraceConfig::parse).flatten()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn on_off_shorthands() {
        for on in ["1", "on", "true"] {
            assert_eq!(
                TraceConfig::parse(on).unwrap(),
                Some(TraceConfig::default())
            );
        }
        for off in ["0", "off", "false"] {
            assert_eq!(TraceConfig::parse(off).unwrap(), None);
        }
    }

    #[test]
    fn keys_compose_and_default_paths_fill_in() {
        let cfg = TraceConfig::parse("chrome,report=cpu.txt,cap=42")
            .unwrap()
            .unwrap();
        assert_eq!(cfg.chrome_path.as_deref(), Some("TRACE_events.json"));
        assert_eq!(cfg.report_path.as_deref(), Some("cpu.txt"));
        assert_eq!(cfg.capacity, 42);
    }

    #[test]
    fn errors_name_the_variable() {
        for bad in ["", "cap=0", "cap=x", "cap", "bogus", "chrome=a,whee"] {
            let err = TraceConfig::parse(bad).unwrap_err();
            assert!(
                err.contains("ABR_TRACE"),
                "error for {bad:?} must name ABR_TRACE: {err}"
            );
        }
    }
}
