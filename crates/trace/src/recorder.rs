//! The [`Tracer`] trait, the per-rank ring-buffer recorder, and the
//! cheap cloneable [`TraceHandle`] threaded through instrumented code.

use crate::event::{TraceEvent, TraceRecord};
use crate::ring::EventRing;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Which clock stamps recorded events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceClock {
    /// Virtual nanoseconds maintained by the DES event loop (the queue
    /// publishes its clock via [`Tracer::set_now_ns`]).
    Virtual,
    /// Wall-clock nanoseconds since the recorder was created (live
    /// threaded runtime).
    Wall,
}

impl TraceClock {
    /// Stable label used in exporter metadata.
    pub fn label(&self) -> &'static str {
        match self {
            TraceClock::Virtual => "virtual",
            TraceClock::Wall => "wall",
        }
    }
}

/// Sink for trace events. Implemented by [`RingRecorder`]; test code
/// can supply its own collector.
///
/// All methods take `&self`: tracers are shared across ranks and, in
/// the live runtime, across threads.
pub trait Tracer: Send + Sync {
    /// Record one event on behalf of `rank`, stamping it with the
    /// tracer's current clock.
    fn record(&self, rank: u32, event: TraceEvent);

    /// Publish the current virtual time. The DES event loop calls this
    /// as it dispatches each event; wall-clock tracers ignore it.
    fn set_now_ns(&self, _now_ns: u64) {}
}

/// Lock-free per-rank ring-buffer recorder: one [`EventRing`] per rank,
/// a shared clock, and run identity (seed, attempt) for exporters.
///
/// Rings are allocated **lazily**, on a rank's first recorded event: a
/// recorder sized for 65,536 ranks costs one pointer-sized slot per rank
/// until a rank actually traces something. Combined with the disabled
/// [`TraceHandle`] fast path this means a 64k-rank simulation with
/// tracing off (or on, but quiet) allocates no ring memory at all.
///
/// # Examples
///
/// ```
/// use abr_trace::{RingRecorder, TraceClock, TraceEvent};
///
/// let rec = RingRecorder::new(2, 64, TraceClock::Virtual, 0xC0FFEE, 0);
/// rec.set_now_ns(1_000);
/// rec.handle_for(1).emit(TraceEvent::Signal { outcome: "raised" });
/// let trace = rec.snapshot();
/// assert_eq!(trace.per_rank[1].len(), 1);
/// assert_eq!(trace.per_rank[1][0].t_ns, 1_000);
/// assert_eq!(trace.seed, 0xC0FFEE);
/// ```
pub struct RingRecorder {
    seed: u64,
    attempt: u32,
    clock: TraceClock,
    now_ns: AtomicU64,
    wall_origin: Instant,
    capacity: usize,
    rings: Vec<OnceLock<EventRing>>,
    job_of: OnceLock<Vec<u32>>,
}

impl RingRecorder {
    /// Create a recorder for `ranks` ranks with `capacity` slots per
    /// rank, stamped with the given clock and run identity.
    pub fn new(
        ranks: u32,
        capacity: usize,
        clock: TraceClock,
        seed: u64,
        attempt: u32,
    ) -> Arc<Self> {
        Arc::new(RingRecorder {
            seed,
            attempt,
            clock,
            now_ns: AtomicU64::new(0),
            wall_origin: Instant::now(),
            capacity,
            rings: (0..ranks).map(|_| OnceLock::new()).collect(),
            job_of: OnceLock::new(),
        })
    }

    /// Install a rank → job map so every subsequent record is stamped
    /// with the emitting rank's job. Multi-tenant drivers call this once
    /// right after construction; single-job runs never do, leaving
    /// `job` at 0 everywhere and [`Trace::has_jobs`] false (so exporters
    /// keep their legacy single-tenant layout). A second install is
    /// ignored — the map is write-once like the rings.
    pub fn set_job_map(&self, job_of: Vec<u32>) {
        assert_eq!(
            job_of.len(),
            self.rings.len(),
            "job map must cover every rank"
        );
        let _ = self.job_of.set(job_of);
    }

    /// How many ranks have materialized a ring so far (diagnostic for the
    /// lazy-allocation guarantee).
    pub fn allocated_rings(&self) -> usize {
        self.rings.iter().filter(|c| c.get().is_some()).count()
    }

    /// A handle that emits into this recorder on behalf of `rank`.
    pub fn handle_for(self: &Arc<Self>, rank: u32) -> TraceHandle {
        TraceHandle {
            tracer: Some(self.clone() as Arc<dyn Tracer>),
            rank,
        }
    }

    /// A rank-agnostic handle (rank 0); components that know the rank
    /// per event use [`TraceHandle::emit_for`].
    pub fn handle(self: &Arc<Self>) -> TraceHandle {
        self.handle_for(0)
    }

    /// Publish the current virtual time (inherent twin of
    /// [`Tracer::set_now_ns`] so callers holding an `Arc<RingRecorder>`
    /// don't need the trait in scope).
    pub fn set_now_ns(&self, now_ns: u64) {
        self.now_ns.store(now_ns, Ordering::Relaxed);
    }

    fn now(&self) -> u64 {
        match self.clock {
            TraceClock::Virtual => self.now_ns.load(Ordering::Relaxed),
            TraceClock::Wall => self.wall_origin.elapsed().as_nanos() as u64,
        }
    }

    /// Drain a copy of everything recorded so far.
    pub fn snapshot(&self) -> Trace {
        Trace {
            seed: self.seed,
            attempt: self.attempt,
            clock: self.clock,
            has_jobs: self.job_of.get().is_some(),
            dropped: self
                .rings
                .iter()
                .filter_map(|c| c.get())
                .map(|r| r.dropped())
                .sum(),
            per_rank: self
                .rings
                .iter()
                .map(|c| c.get().map(|r| r.snapshot()).unwrap_or_default())
                .collect(),
        }
    }
}

impl Tracer for RingRecorder {
    fn record(&self, rank: u32, event: TraceEvent) {
        if let Some(cell) = self.rings.get(rank as usize) {
            let ring = cell.get_or_init(|| EventRing::new(self.capacity));
            let job = self
                .job_of
                .get()
                .map_or(0, |m| m.get(rank as usize).copied().unwrap_or(0));
            ring.push(TraceRecord {
                t_ns: self.now(),
                rank,
                job,
                event,
            });
        }
    }

    fn set_now_ns(&self, now_ns: u64) {
        RingRecorder::set_now_ns(self, now_ns);
    }
}

/// Cheap cloneable handle held by instrumented components.
///
/// A disabled handle (the [`Default`]) makes every `emit` a single
/// branch on a `None` — this is the zero-cost-when-disabled guarantee:
/// with `ABR_TRACE` unset no recorder exists and the instrumented hot
/// paths do no other work.
///
/// # Examples
///
/// ```
/// use abr_trace::{TraceHandle, TraceEvent};
///
/// let off = TraceHandle::default();
/// assert!(!off.is_enabled());
/// off.emit(TraceEvent::PhaseEnter { phase: "reduce-sync" }); // no-op
/// ```
#[derive(Clone, Default)]
pub struct TraceHandle {
    tracer: Option<Arc<dyn Tracer>>,
    rank: u32,
}

impl TraceHandle {
    /// A handle wrapping any [`Tracer`], emitting on behalf of `rank`.
    pub fn new(tracer: Arc<dyn Tracer>, rank: u32) -> Self {
        TraceHandle {
            tracer: Some(tracer),
            rank,
        }
    }

    /// Whether events emitted through this handle are recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.tracer.is_some()
    }

    /// Emit one event on behalf of this handle's rank.
    #[inline]
    pub fn emit(&self, event: TraceEvent) {
        if let Some(t) = &self.tracer {
            t.record(self.rank, event);
        }
    }

    /// Emit one event on behalf of an explicit rank (used by shared
    /// components such as the network model).
    #[inline]
    pub fn emit_for(&self, rank: u32, event: TraceEvent) {
        if let Some(t) = &self.tracer {
            t.record(rank, event);
        }
    }

    /// Publish the current virtual time to the underlying tracer.
    #[inline]
    pub fn set_now_ns(&self, now_ns: u64) {
        if let Some(t) = &self.tracer {
            t.set_now_ns(now_ns);
        }
    }

    /// A copy of this handle bound to a different rank.
    pub fn for_rank(&self, rank: u32) -> TraceHandle {
        TraceHandle {
            tracer: self.tracer.clone(),
            rank,
        }
    }

    /// The rank this handle emits on behalf of.
    pub fn rank(&self) -> u32 {
        self.rank
    }
}

impl std::fmt::Debug for TraceHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceHandle")
            .field("enabled", &self.is_enabled())
            .field("rank", &self.rank)
            .finish()
    }
}

impl PartialEq for TraceHandle {
    /// Handles compare by identity of the underlying tracer (or both
    /// disabled) plus rank — enough for config-struct equality checks.
    fn eq(&self, other: &Self) -> bool {
        let same_sink = match (&self.tracer, &other.tracer) {
            (None, None) => true,
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        };
        same_sink && self.rank == other.rank
    }
}

/// A drained trace: per-rank event streams plus run identity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// Seed the traced run was driven by.
    pub seed: u64,
    /// Fault-replay attempt number (0 when faults are off).
    pub attempt: u32,
    /// Clock that stamped `t_ns` on every record.
    pub clock: TraceClock,
    /// Events recorded per rank, in emission order.
    pub per_rank: Vec<Vec<TraceRecord>>,
    /// Records rejected because a ring filled up.
    pub dropped: u64,
    /// True when the recorder had a job map installed
    /// ([`RingRecorder::set_job_map`]): records carry meaningful `job`
    /// ids and exporters should group lanes per job.
    pub has_jobs: bool,
}

impl Trace {
    /// Total number of recorded events across all ranks.
    pub fn len(&self) -> usize {
        self.per_rank.iter().map(Vec::len).sum()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The deterministic event skeleton: per rank, the ordered list of
    /// engine-level sends and, per source, the ordered list of engine
    /// deliveries. These orders are fixed by the seed and fault plan,
    /// not by scheduling, so a DES run and a live run of the same
    /// workload produce identical skeletons (the basis of the DES↔live
    /// trace-equivalence test).
    ///
    /// Timing-dependent events (cost charges, wire segments, signal
    /// outcomes, retransmit timing) are deliberately excluded.
    pub fn skeleton(&self) -> Vec<String> {
        let mut out = Vec::with_capacity(self.per_rank.len());
        for (rank, recs) in self.per_rank.iter().enumerate() {
            let mut sends = String::new();
            // Per-source delivery order is FIFO on every path; order
            // *across* sources is scheduling-dependent in the live
            // runtime, so group receives by source rank.
            let mut recv_by_src: std::collections::BTreeMap<u32, String> =
                std::collections::BTreeMap::new();
            for r in recs {
                match r.event {
                    TraceEvent::PacketSend { dst, kind, bytes } => {
                        sends.push_str(&format!(" ->{dst}:{kind}:{bytes}"));
                    }
                    TraceEvent::PacketRecv { src, kind, bytes } => {
                        recv_by_src
                            .entry(src)
                            .or_default()
                            .push_str(&format!(" {kind}:{bytes}"));
                    }
                    _ => {}
                }
            }
            let mut line = format!("rank {rank}: send{sends}");
            for (src, seq) in recv_by_src {
                line.push_str(&format!(" | recv<-{src}{seq}"));
            }
            out.push(line);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rings_allocate_lazily_per_rank() {
        // A recorder sized for a 64k-rank cluster must not allocate any
        // ring storage until a rank records something.
        let rec = RingRecorder::new(65_536, 1024, TraceClock::Virtual, 1, 0);
        assert_eq!(rec.allocated_rings(), 0);
        rec.handle_for(42)
            .emit(TraceEvent::Signal { outcome: "raised" });
        rec.handle_for(42)
            .emit(TraceEvent::Signal { outcome: "raised" });
        rec.handle_for(65_535)
            .emit(TraceEvent::Signal { outcome: "raised" });
        assert_eq!(rec.allocated_rings(), 2);
        let trace = rec.snapshot();
        assert_eq!(trace.per_rank.len(), 65_536);
        assert_eq!(trace.per_rank[42].len(), 2);
        assert_eq!(trace.per_rank[65_535].len(), 1);
        assert_eq!(trace.per_rank[0].len(), 0);
        assert_eq!(trace.dropped, 0);
    }

    #[test]
    fn out_of_range_rank_is_ignored() {
        let rec = RingRecorder::new(2, 8, TraceClock::Virtual, 1, 0);
        rec.handle_for(7)
            .emit(TraceEvent::Signal { outcome: "raised" });
        assert_eq!(rec.allocated_rings(), 0);
        assert!(rec.snapshot().is_empty());
    }
}
