//! Chrome `trace_event` JSON exporter.
//!
//! Emits the JSON-object form of the [trace event format] consumed by
//! `chrome://tracing` and [Perfetto](https://ui.perfetto.dev): a
//! `traceEvents` array plus run metadata under `otherData`. Each rank
//! becomes a process (`pid`); within a rank, events are grouped into
//! named thread lanes by category (state, cpu, packets, wire, signals,
//! faults). Timestamps are microseconds with nanosecond precision in
//! the fractional digits.
//!
//! The JSON is hand-rolled — the workspace builds offline with no
//! serializer dependency — and every label is a `&'static str` chosen
//! by instrumentation code, so no string escaping is required.
//!
//! [trace event format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::event::TraceEvent;
use crate::recorder::Trace;
use std::fmt::Write as _;

/// Timeline lane (Chrome `tid`) for an event category.
fn lane(ev: &TraceEvent) -> (u32, &'static str) {
    match ev.category() {
        "state" => (0, "state"),
        "cpu" => (1, "cpu"),
        "packet" => (2, "packets"),
        "wire" => (3, "wire"),
        "signal" => (4, "signals"),
        "fault" => (5, "faults"),
        _ => (6, "other"),
    }
}

/// Microsecond timestamp with the nanosecond remainder as fraction.
fn ts_us(t_ns: u64) -> String {
    format!("{}.{:03}", t_ns / 1_000, t_ns % 1_000)
}

fn push_event(out: &mut String, pid: u32, tid: u32, t_ns: u64, ev: &TraceEvent) {
    let cat = ev.category();
    let (ph, name, dur, args) = match *ev {
        TraceEvent::PhaseEnter { phase } => ("B", phase, None, String::new()),
        TraceEvent::PhaseExit { phase } => ("E", phase, None, String::new()),
        TraceEvent::SegPhaseEnter { phase, seg } => ("B", phase, None, format!("\"seg\":{seg}")),
        TraceEvent::SegPhaseExit { phase, seg } => ("E", phase, None, format!("\"seg\":{seg}")),
        TraceEvent::CpuCharge { bucket, nanos } => {
            ("X", bucket, Some(nanos), format!("\"nanos\":{nanos}"))
        }
        TraceEvent::WireSegment {
            dst,
            segment,
            nanos,
        } => (
            "X",
            segment,
            Some(nanos),
            format!("\"dst\":{dst},\"nanos\":{nanos}"),
        ),
        TraceEvent::LinkWait { link, wait_ns } => (
            "X",
            "link-wait",
            Some(wait_ns),
            format!("\"link\":{link},\"wait_ns\":{wait_ns}"),
        ),
        TraceEvent::PacketSend { dst, kind, bytes } => (
            "i",
            "send",
            None,
            format!("\"dst\":{dst},\"kind\":\"{kind}\",\"bytes\":{bytes}"),
        ),
        TraceEvent::PacketRecv { src, kind, bytes } => (
            "i",
            "recv",
            None,
            format!("\"src\":{src},\"kind\":\"{kind}\",\"bytes\":{bytes}"),
        ),
        TraceEvent::PacketDrop { dst, kind } => (
            "i",
            "drop",
            None,
            format!("\"dst\":{dst},\"kind\":\"{kind}\""),
        ),
        TraceEvent::Retransmit { peer, seq } => (
            "i",
            "retransmit",
            None,
            format!("\"peer\":{peer},\"seq\":{seq}"),
        ),
        TraceEvent::Signal { outcome } => ("i", outcome, None, String::new()),
        TraceEvent::EngineState { state } => ("i", state, None, String::new()),
        TraceEvent::FaultVerdict {
            dst,
            copies,
            extra_delay_ns,
        } => (
            "i",
            "verdict",
            None,
            format!("\"dst\":{dst},\"copies\":{copies},\"extra_delay_ns\":{extra_delay_ns}"),
        ),
        TraceEvent::MatchOutcome { queue, outcome } => {
            ("i", outcome, None, format!("\"queue\":\"{queue}\""))
        }
    };
    // Complete ("X") events span [t - dur, t]: charges are recorded
    // when the cost lands, so backdate the start.
    let ts = match dur {
        Some(d) => ts_us(t_ns.saturating_sub(d)),
        None => ts_us(t_ns),
    };
    let _ = write!(out, "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"{ph}\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts}");
    if let Some(d) = dur {
        let _ = write!(out, ",\"dur\":{}", ts_us(d));
    }
    if ph == "i" {
        out.push_str(",\"s\":\"t\"");
    }
    if !args.is_empty() {
        let _ = write!(out, ",\"args\":{{{args}}}");
    }
    out.push('}');
}

/// Render a drained [`Trace`] as Chrome `trace_event` JSON.
///
/// Single-tenant traces (the default) map each rank to a process
/// (`pid = rank`) with category lanes as threads. When the trace was
/// recorded with a job map installed ([`Trace::has_jobs`]), the layout
/// switches to one process **per job** (`pid = job`, named `"job {j}"`)
/// with `tid = rank * 8 + lane` so every rank keeps its own lane group
/// inside its job's process — co-scheduled jobs render side by side.
///
/// # Examples
///
/// ```
/// use abr_trace::{chrome_trace_json, validate_json, RingRecorder, TraceClock, TraceEvent};
///
/// let rec = RingRecorder::new(1, 16, TraceClock::Virtual, 7, 0);
/// rec.set_now_ns(2_500);
/// rec.handle_for(0).emit(TraceEvent::PacketSend { dst: 1, kind: "coll", bytes: 64 });
/// let json = chrome_trace_json(&rec.snapshot());
/// validate_json(&json).expect("exporter emits well-formed JSON");
/// assert!(json.contains("\"traceEvents\""));
/// assert!(json.contains("\"ts\":2.500"));
/// ```
pub fn chrome_trace_json(trace: &Trace) -> String {
    let mut out = String::with_capacity(256 + trace.len() * 96);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    let mut jobs_named: std::collections::BTreeSet<u32> = std::collections::BTreeSet::new();
    for (rank, recs) in trace.per_rank.iter().enumerate() {
        if recs.is_empty() {
            continue;
        }
        // Single-tenant: pid = rank, tid = lane. Multi-tenant: pid =
        // job, tid = rank * 8 + lane (8 > the 7 lane ids, so lane
        // groups of distinct ranks never collide within a job).
        let rank = rank as u32;
        let job = recs[0].job;
        let pid = if trace.has_jobs { job } else { rank };
        if !first {
            out.push(',');
        }
        first = false;
        // Process + thread-name metadata so chrome://tracing labels lanes.
        if trace.has_jobs {
            if jobs_named.insert(job) {
                let _ = write!(
                    out,
                    "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"args\":{{\"name\":\"job {job}\"}}}},"
                );
            }
            let _ = write!(
                out,
                "{{\"name\":\"process_sort_index\",\"ph\":\"M\",\"pid\":{pid},\"args\":{{\"sort_index\":{job}}}}}"
            );
        } else {
            let _ = write!(
                out,
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"args\":{{\"name\":\"rank {pid}\"}}}}"
            );
        }
        let mut lanes_seen = [false; 7];
        for r in recs {
            let (lane_id, lane_name) = lane(&r.event);
            let tid = if trace.has_jobs {
                rank * 8 + lane_id
            } else {
                lane_id
            };
            if !lanes_seen[lane_id as usize] {
                lanes_seen[lane_id as usize] = true;
                if trace.has_jobs {
                    let _ = write!(
                        out,
                        ",{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"args\":{{\"name\":\"rank {rank} {lane_name}\"}}}}"
                    );
                } else {
                    let _ = write!(
                        out,
                        ",{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"args\":{{\"name\":\"{lane_name}\"}}}}"
                    );
                }
            }
            out.push(',');
            push_event(&mut out, pid, tid, r.t_ns, &r.event);
        }
    }
    let _ = write!(
        out,
        "],\"displayTimeUnit\":\"ns\",\"otherData\":{{\"seed\":{},\"attempt\":{},\"clock\":\"{}\",\"dropped\":{}}}}}",
        trace.seed,
        trace.attempt,
        trace.clock.label(),
        trace.dropped
    );
    out
}

/// Validate that `s` is one well-formed JSON value (recursive-descent
/// checker; no parse tree is built). Used by tests and `trace_figure`
/// to guarantee the exporter's output loads in `chrome://tracing`.
///
/// # Examples
///
/// ```
/// use abr_trace::validate_json;
///
/// assert!(validate_json("{\"a\":[1,2.5,true,null,\"x\"]}").is_ok());
/// assert!(validate_json("{\"a\":}").is_err());
/// assert!(validate_json("{} trailing").is_err());
/// ```
pub fn validate_json(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut i = 0usize;
    skip_ws(b, &mut i);
    value(b, &mut i)?;
    skip_ws(b, &mut i);
    if i != b.len() {
        return Err(format!("trailing data at byte {i}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], i: &mut usize) {
    while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
        *i += 1;
    }
}

fn value(b: &[u8], i: &mut usize) -> Result<(), String> {
    match b.get(*i) {
        Some(b'{') => object(b, i),
        Some(b'[') => array(b, i),
        Some(b'"') => string(b, i),
        Some(b't') => literal(b, i, "true"),
        Some(b'f') => literal(b, i, "false"),
        Some(b'n') => literal(b, i, "null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, i),
        _ => Err(format!("expected a JSON value at byte {i}", i = *i)),
    }
}

fn object(b: &[u8], i: &mut usize) -> Result<(), String> {
    *i += 1; // '{'
    skip_ws(b, i);
    if b.get(*i) == Some(&b'}') {
        *i += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, i);
        string(b, i)?;
        skip_ws(b, i);
        if b.get(*i) != Some(&b':') {
            return Err(format!("expected ':' at byte {i}", i = *i));
        }
        *i += 1;
        skip_ws(b, i);
        value(b, i)?;
        skip_ws(b, i);
        match b.get(*i) {
            Some(b',') => *i += 1,
            Some(b'}') => {
                *i += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {i}", i = *i)),
        }
    }
}

fn array(b: &[u8], i: &mut usize) -> Result<(), String> {
    *i += 1; // '['
    skip_ws(b, i);
    if b.get(*i) == Some(&b']') {
        *i += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, i);
        value(b, i)?;
        skip_ws(b, i);
        match b.get(*i) {
            Some(b',') => *i += 1,
            Some(b']') => {
                *i += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {i}", i = *i)),
        }
    }
}

fn literal(b: &[u8], i: &mut usize, word: &str) -> Result<(), String> {
    if b[*i..].starts_with(word.as_bytes()) {
        *i += word.len();
        Ok(())
    } else {
        Err(format!("malformed literal at byte {i}", i = *i))
    }
}

fn string(b: &[u8], i: &mut usize) -> Result<(), String> {
    if b.get(*i) != Some(&b'"') {
        return Err(format!("expected '\"' at byte {i}", i = *i));
    }
    *i += 1;
    while let Some(&c) = b.get(*i) {
        match c {
            b'"' => {
                *i += 1;
                return Ok(());
            }
            b'\\' => *i += 2,
            _ => *i += 1,
        }
    }
    Err("unterminated string".into())
}

fn number(b: &[u8], i: &mut usize) -> Result<(), String> {
    if b.get(*i) == Some(&b'-') {
        *i += 1;
    }
    let digits = |b: &[u8], i: &mut usize| {
        let start = *i;
        while b.get(*i).is_some_and(|c| c.is_ascii_digit()) {
            *i += 1;
        }
        *i > start
    };
    if !digits(b, i) {
        return Err(format!("malformed number at byte {i}", i = *i));
    }
    if b.get(*i) == Some(&b'.') {
        *i += 1;
        if !digits(b, i) {
            return Err(format!("malformed number fraction at byte {i}", i = *i));
        }
    }
    if matches!(b.get(*i), Some(b'e') | Some(b'E')) {
        *i += 1;
        if matches!(b.get(*i), Some(b'+') | Some(b'-')) {
            *i += 1;
        }
        if !digits(b, i) {
            return Err(format!("malformed number exponent at byte {i}", i = *i));
        }
    }
    Ok(())
}
