//! Per-rank CPU-time attribution report.
//!
//! Folds every [`TraceEvent::CpuCharge`] in a drained trace into
//! per-rank bucket totals — the paper's Figure-style per-node CPU
//! metric decomposed into poll / compute / signal-handler time. Totals
//! are exact integer nanosecond sums of the same charges the
//! simulator's `CpuMeter` accumulates, so the report reconciles with
//! the existing counters by construction.

use crate::event::TraceEvent;
use crate::recorder::Trace;
use std::fmt::Write as _;

/// Canonical bucket display order (labels from `abr_des::CpuCategory`);
/// unknown labels sort after these, alphabetically.
const BUCKET_ORDER: [&str; 5] = ["app", "poll", "protocol", "signal", "nic"];

/// CPU time for one rank, decomposed by attribution bucket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankCpu {
    /// The rank.
    pub rank: u32,
    /// `(bucket label, nanoseconds)` in canonical bucket order.
    pub buckets: Vec<(&'static str, u64)>,
}

impl RankCpu {
    /// Nanoseconds attributed to `bucket` (0 when absent).
    pub fn bucket_ns(&self, bucket: &str) -> u64 {
        self.buckets
            .iter()
            .find(|(b, _)| *b == bucket)
            .map_or(0, |(_, n)| *n)
    }

    /// Host CPU nanoseconds: every bucket except `"nic"`, which is
    /// offload-engine time and excluded from host totals exactly as
    /// `CpuWindow::host_total` excludes it.
    pub fn host_ns(&self) -> u64 {
        self.buckets
            .iter()
            .filter(|(b, _)| *b != "nic")
            .map(|(_, n)| *n)
            .sum()
    }

    /// Total nanoseconds across all buckets, NIC included.
    pub fn total_ns(&self) -> u64 {
        self.buckets.iter().map(|(_, n)| *n).sum()
    }
}

/// The full attribution report: one [`RankCpu`] per rank that charged
/// anything, plus the trace's drop counter (a non-zero drop count means
/// totals are lower bounds).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CpuAttribution {
    /// Per-rank decompositions, ascending by rank.
    pub per_rank: Vec<RankCpu>,
    /// Ring-buffer drops in the source trace.
    pub dropped: u64,
}

impl CpuAttribution {
    /// Bucket labels present anywhere in the report, canonical order.
    pub fn bucket_labels(&self) -> Vec<&'static str> {
        let mut labels: Vec<&'static str> = Vec::new();
        for r in &self.per_rank {
            for (b, _) in &r.buckets {
                if !labels.contains(b) {
                    labels.push(b);
                }
            }
        }
        labels.sort_by_key(|b| {
            BUCKET_ORDER
                .iter()
                .position(|k| k == b)
                .map_or((BUCKET_ORDER.len(), *b), |i| (i, ""))
        });
        labels
    }

    /// Render a fixed-width text table, one row per rank plus a sum
    /// row, all values in microseconds with nanosecond precision.
    pub fn render(&self) -> String {
        let labels = self.bucket_labels();
        let mut out = String::new();
        let _ = write!(out, "{:>5}", "rank");
        for l in &labels {
            let _ = write!(out, " {l:>14}");
        }
        let _ = writeln!(out, " {:>14} {:>14}", "host_us", "total_us");
        let us = |ns: u64| format!("{}.{:03}", ns / 1_000, ns % 1_000);
        let mut sums = vec![0u64; labels.len()];
        let (mut host_sum, mut total_sum) = (0u64, 0u64);
        for r in &self.per_rank {
            let _ = write!(out, "{:>5}", r.rank);
            for (i, l) in labels.iter().enumerate() {
                let ns = r.bucket_ns(l);
                sums[i] += ns;
                let _ = write!(out, " {:>14}", us(ns));
            }
            host_sum += r.host_ns();
            total_sum += r.total_ns();
            let _ = writeln!(out, " {:>14} {:>14}", us(r.host_ns()), us(r.total_ns()));
        }
        let _ = write!(out, "{:>5}", "sum");
        for s in &sums {
            let _ = write!(out, " {:>14}", us(*s));
        }
        let _ = writeln!(out, " {:>14} {:>14}", us(host_sum), us(total_sum));
        if self.dropped > 0 {
            let _ = writeln!(
                out,
                "warning: {} events dropped (ring full); totals are lower bounds",
                self.dropped
            );
        }
        out
    }
}

/// Fold a drained trace into the per-rank CPU-attribution report.
///
/// # Examples
///
/// ```
/// use abr_trace::{cpu_attribution, RingRecorder, TraceClock, TraceEvent};
///
/// let rec = RingRecorder::new(1, 16, TraceClock::Virtual, 1, 0);
/// let h = rec.handle_for(0);
/// h.emit(TraceEvent::CpuCharge { bucket: "poll", nanos: 1_500 });
/// h.emit(TraceEvent::CpuCharge { bucket: "poll", nanos: 500 });
/// h.emit(TraceEvent::CpuCharge { bucket: "nic", nanos: 9_000 });
/// let report = cpu_attribution(&rec.snapshot());
/// assert_eq!(report.per_rank[0].bucket_ns("poll"), 2_000);
/// assert_eq!(report.per_rank[0].host_ns(), 2_000); // nic excluded
/// assert_eq!(report.per_rank[0].total_ns(), 11_000);
/// ```
pub fn cpu_attribution(trace: &Trace) -> CpuAttribution {
    let mut per_rank = Vec::new();
    for (rank, recs) in trace.per_rank.iter().enumerate() {
        let mut buckets: Vec<(&'static str, u64)> = Vec::new();
        for r in recs {
            if let TraceEvent::CpuCharge { bucket, nanos } = r.event {
                match buckets.iter_mut().find(|(b, _)| *b == bucket) {
                    Some((_, n)) => *n += nanos,
                    None => buckets.push((bucket, nanos)),
                }
            }
        }
        if buckets.is_empty() {
            continue;
        }
        buckets.sort_by_key(|(b, _)| {
            BUCKET_ORDER
                .iter()
                .position(|k| k == b)
                .map_or((BUCKET_ORDER.len(), *b), |i| (i, ""))
        });
        per_rank.push(RankCpu {
            rank: rank as u32,
            buckets,
        });
    }
    CpuAttribution {
        per_rank,
        dropped: trace.dropped,
    }
}
