//! Lock-free bounded ring used for per-rank event recording.
//!
//! Design: a fixed slab of write-once slots plus an atomic claim
//! counter. A writer claims a slot index with a relaxed `fetch_add`;
//! claims past the end bump a `dropped` counter instead of wrapping, so
//! there is no slot reuse and therefore no ABA or torn-read hazard —
//! the structure is wait-free for writers. Each slot is published with
//! a release store to its `ready` flag after the payload write; readers
//! acquire-load the flag before touching the payload, which is the only
//! `unsafe` in the crate.
//!
//! Overflow policy is drop-newest: once the ring fills, later events
//! are counted but not stored. Exporters surface the dropped count so a
//! truncated trace is never mistaken for a complete one.

use crate::event::TraceRecord;
use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

/// One write-once slot: payload cell plus publication flag.
struct Slot {
    ready: AtomicBool,
    rec: UnsafeCell<MaybeUninit<TraceRecord>>,
}

/// A bounded, wait-free, write-once event ring for a single rank.
///
/// Multiple threads may push concurrently (the live runtime has an
/// application thread and a dispatcher thread per rank); snapshotting
/// is safe at any time and sees every slot published before the
/// snapshot began.
pub struct EventRing {
    slots: Box<[Slot]>,
    /// Next slot index to claim; may exceed `slots.len()` (drops).
    next: AtomicUsize,
    dropped: AtomicU64,
}

// SAFETY: slots are written at most once, by the unique thread that
// claimed the index from `next`, and only read after an acquire load of
// `ready` observes the release store that followed the write.
unsafe impl Sync for EventRing {}
unsafe impl Send for EventRing {}

impl EventRing {
    /// Create a ring with room for `capacity` records.
    pub fn new(capacity: usize) -> Self {
        let slots = (0..capacity)
            .map(|_| Slot {
                ready: AtomicBool::new(false),
                rec: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        EventRing {
            slots,
            next: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Record one event; wait-free. Returns `false` if the ring was
    /// full and the record was counted as dropped instead.
    pub fn push(&self, rec: TraceRecord) -> bool {
        let i = self.next.fetch_add(1, Ordering::Relaxed);
        if i >= self.slots.len() {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        let slot = &self.slots[i];
        // SAFETY: index `i` was claimed exclusively by this thread via
        // fetch_add, so no other thread writes this cell; readers wait
        // for the release store below.
        unsafe { (*slot.rec.get()).write(rec) };
        slot.ready.store(true, Ordering::Release);
        true
    }

    /// Number of records rejected because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Copy out every published record, in claim order.
    pub fn snapshot(&self) -> Vec<TraceRecord> {
        let claimed = self.next.load(Ordering::Acquire).min(self.slots.len());
        let mut out = Vec::with_capacity(claimed);
        for slot in &self.slots[..claimed] {
            if slot.ready.load(Ordering::Acquire) {
                // SAFETY: the acquire load above synchronizes with the
                // release store in `push`, after which the cell holds a
                // fully initialized record that is never written again.
                out.push(unsafe { (*slot.rec.get()).assume_init() });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEvent;

    fn rec(t: u64) -> TraceRecord {
        TraceRecord {
            t_ns: t,
            rank: 0,
            job: 0,
            event: TraceEvent::Signal { outcome: "raised" },
        }
    }

    #[test]
    fn push_snapshot_roundtrip() {
        let r = EventRing::new(4);
        for t in 0..3 {
            assert!(r.push(rec(t)));
        }
        let snap = r.snapshot();
        assert_eq!(snap.len(), 3);
        assert_eq!(snap[2].t_ns, 2);
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn overflow_drops_newest_and_counts() {
        let r = EventRing::new(2);
        assert!(r.push(rec(0)));
        assert!(r.push(rec(1)));
        assert!(!r.push(rec(2)));
        assert!(!r.push(rec(3)));
        assert_eq!(r.snapshot().len(), 2);
        assert_eq!(r.dropped(), 2);
    }

    #[test]
    fn concurrent_writers_lose_nothing_under_capacity() {
        let r = std::sync::Arc::new(EventRing::new(4096));
        let mut joins = Vec::new();
        for _ in 0..4 {
            let r = r.clone();
            joins.push(std::thread::spawn(move || {
                for t in 0..1000 {
                    r.push(rec(t));
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(r.snapshot().len(), 4000);
        assert_eq!(r.dropped(), 0);
    }
}
