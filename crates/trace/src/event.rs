//! Typed trace events and the record wrapper that stamps them.
//!
//! Events deliberately use only primitive fields (`u32` ranks, `u64`
//! nanoseconds, `&'static str` labels) so that every crate in the
//! workspace can depend on `abr_trace` without `abr_trace` depending on
//! any of them.

/// One typed observation from an instrumented hot path.
///
/// Variants mirror the taxonomy in DESIGN.md §"Observability": packet
/// life-cycle, cost charges, signal decisions, engine/protocol state,
/// and fault verdicts. Every payload is `Copy` so recording never
/// allocates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// The message engine queued a packet for transmission.
    ///
    /// Emitted at the engine layer (shared by the DES and live
    /// drivers), so per-rank send order is deterministic for a given
    /// seed and fault plan.
    PacketSend {
        /// Destination rank.
        dst: u32,
        /// Protocol packet kind label (e.g. `"coll"`, `"eager"`).
        kind: &'static str,
        /// Payload size in bytes.
        bytes: u32,
    },
    /// The message engine accepted a packet from the network.
    PacketRecv {
        /// Source rank.
        src: u32,
        /// Protocol packet kind label.
        kind: &'static str,
        /// Payload size in bytes.
        bytes: u32,
    },
    /// The fault injector dropped a packet on the wire.
    PacketDrop {
        /// Destination rank the packet would have reached.
        dst: u32,
        /// Protocol packet kind label.
        kind: &'static str,
    },
    /// The reliability layer re-sent an unacknowledged packet.
    Retransmit {
        /// Peer rank the retransmission targets.
        peer: u32,
        /// Per-link reliability sequence number being re-sent.
        seq: u64,
    },
    /// Host CPU time charged to an attribution bucket.
    ///
    /// Bucket labels follow `abr_des::CpuCategory`: `"app"`, `"poll"`,
    /// `"protocol"`, `"signal"`, `"nic"`.
    CpuCharge {
        /// Attribution bucket label.
        bucket: &'static str,
        /// Charge size in nanoseconds.
        nanos: u64,
    },
    /// One segment of the NIC/wire delivery pipeline (source PCI DMA,
    /// source NIC serialization, wire, destination NIC, destination
    /// PCI DMA).
    WireSegment {
        /// Destination rank of the packet in flight.
        dst: u32,
        /// Pipeline segment label (`"src-pci"`, `"src-nic"`, `"wire"`,
        /// `"dst-nic"`, `"dst-pci"`).
        segment: &'static str,
        /// Segment duration in nanoseconds.
        nanos: u64,
    },
    /// A packet queued behind earlier traffic on a shared fabric link
    /// (oversubscribed uplink, router port). Emitted by the contended
    /// fabric model in `abr_fabric`; absent on the flat crossbar.
    LinkWait {
        /// Fabric-assigned link id the packet serialized on.
        link: u32,
        /// Time spent queued behind the link's busy clock, nanoseconds.
        wait_ns: u64,
    },
    /// A host-signal decision on packet arrival: raised, or suppressed
    /// with a reason.
    Signal {
        /// `"raised"`, `"suppressed-disabled"`, `"suppressed-kind"`, or
        /// `"suppressed-progress"`.
        outcome: &'static str,
    },
    /// Driver-level node execution state transition.
    EngineState {
        /// `"busy"`, `"blocked"`, or `"done"`.
        state: &'static str,
    },
    /// Entered a named protocol phase (paired with [`TraceEvent::PhaseExit`]).
    PhaseEnter {
        /// Phase label (e.g. `"reduce-sync"`, `"signal-handler"`).
        phase: &'static str,
    },
    /// Left a named protocol phase.
    PhaseExit {
        /// Phase label matching the corresponding enter event.
        phase: &'static str,
    },
    /// Entered a named protocol phase on behalf of one segment of a
    /// segmented (pipelined) collective. Same bracket semantics as
    /// [`TraceEvent::PhaseEnter`], with the segment index attached so
    /// timeline views can show the pipeline's segments overlapping.
    SegPhaseEnter {
        /// Phase label (e.g. `"seg-reduce"`).
        phase: &'static str,
        /// Zero-based segment index within the collective.
        seg: u32,
    },
    /// Left a named per-segment protocol phase.
    SegPhaseExit {
        /// Phase label matching the corresponding enter event.
        phase: &'static str,
        /// Zero-based segment index within the collective.
        seg: u32,
    },
    /// Fault-plan verdict for one wire transmission.
    FaultVerdict {
        /// Destination rank of the judged packet.
        dst: u32,
        /// Copies to deliver (0 = drop, 1 = clean, 2+ = duplicate).
        copies: u32,
        /// Extra injected latency in nanoseconds.
        extra_delay_ns: u64,
    },
    /// Match-queue probe outcome in the rendezvous/matching layer.
    MatchOutcome {
        /// Queue probed: `"posted"` or `"unexpected"`.
        queue: &'static str,
        /// `"hit"` or `"miss"`.
        outcome: &'static str,
    },
}

impl TraceEvent {
    /// Short category label used by exporters to group events into
    /// timeline lanes.
    pub fn category(&self) -> &'static str {
        match self {
            TraceEvent::PacketSend { .. }
            | TraceEvent::PacketRecv { .. }
            | TraceEvent::PacketDrop { .. }
            | TraceEvent::Retransmit { .. } => "packet",
            TraceEvent::CpuCharge { .. } => "cpu",
            TraceEvent::WireSegment { .. } | TraceEvent::LinkWait { .. } => "wire",
            TraceEvent::Signal { .. } => "signal",
            TraceEvent::EngineState { .. }
            | TraceEvent::PhaseEnter { .. }
            | TraceEvent::PhaseExit { .. }
            | TraceEvent::SegPhaseEnter { .. }
            | TraceEvent::SegPhaseExit { .. } => "state",
            TraceEvent::FaultVerdict { .. } => "fault",
            TraceEvent::MatchOutcome { .. } => "match",
        }
    }
}

/// A recorded event stamped with time and the emitting rank.
///
/// `t_ns` is virtual nanoseconds under the DES clock or wall
/// nanoseconds since run start under the live clock; the owning
/// [`crate::Trace`] says which (plus the run's seed and attempt).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Timestamp in nanoseconds (virtual or wall; see [`crate::TraceClock`]).
    pub t_ns: u64,
    /// Rank that emitted the event.
    pub rank: u32,
    /// Job the emitting rank belongs to. Always 0 unless a job map was
    /// installed on the recorder ([`crate::RingRecorder::set_job_map`]);
    /// multi-tenant drivers install one so exporters can group lanes
    /// per job.
    pub job: u32,
    /// The event payload.
    pub event: TraceEvent,
}
