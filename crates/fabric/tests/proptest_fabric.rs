//! Property tests for the fabric layer.
//!
//! * Every contended fabric (fat-tree and dragonfly, any oversubscription,
//!   either placement, non-power-of-two rank counts included) routes every
//!   cross-node rank pair over a non-empty, loop-free link path whose ids
//!   are in range, and same-node pairs bypass the fabric entirely.
//! * The flat fabric is byte-identical to the legacy [`Network`] on
//!   arbitrary packet sequences — not just equal delivery times but equal
//!   carried-traffic counters, so swapping the driver's network type
//!   cannot perturb any existing figure.

use abr_des::SimTime;
use abr_fabric::{FabricNetwork, FabricSpec, PlacementPolicy};
use abr_gm::nic::LinkCost;
use abr_gm::packet::{NodeId, PacketHeader, PacketKind};
use abr_gm::{CostModel, Network, NodeHw, Packet};
use bytes::Bytes;
use proptest::prelude::*;

fn packet(src: u32, dst: u32, len: usize) -> Packet {
    Packet::new(
        PacketHeader {
            src: NodeId(src),
            dst: NodeId(dst),
            kind: PacketKind::Eager,
            context: 0,
            tag: 0,
            coll_seq: 0,
            coll_root: 0,
            msg_len: len as u32,
            wire_seq: 0,
            rel_seq: 0,
        },
        Bytes::from(vec![0u8; len]),
    )
}

fn spec_strategy() -> impl Strategy<Value = FabricSpec> {
    ((0u32..2), (1u32..9), (0u32..2)).prop_map(|(kind, oversub, placement)| {
        let mut s = if kind == 0 {
            FabricSpec::fat_tree(f64::from(oversub))
        } else {
            FabricSpec::dragonfly(f64::from(oversub))
        };
        s.placement = if placement == 0 {
            PlacementPolicy::Blocked
        } else {
            PlacementPolicy::Cyclic
        };
        s
    })
}

proptest! {
    /// Routes exist for every cross-node pair, are loop-free (no link id
    /// repeats), stay inside the link table, and have at least one switch
    /// hop; same-node pairs have no route (they bypass the fabric).
    #[test]
    fn every_pair_routes_loop_free(
        spec in spec_strategy(),
        n in 2u32..260,
    ) {
        let fab = FabricNetwork::new(CostModel::default(), spec, n);
        let links_total = fab.num_links() as u32;
        prop_assert!(links_total > 0);
        for s in 0..n {
            for d in 0..n {
                if s == d {
                    continue;
                }
                let (ns, nd) = (fab.node_of(s).unwrap(), fab.node_of(d).unwrap());
                match fab.route_of(s, d) {
                    None => prop_assert_eq!(ns, nd, "missing route {s}->{d}"),
                    Some((links, hops)) => {
                        prop_assert!(ns != nd);
                        prop_assert!(!links.is_empty());
                        prop_assert!(hops >= 1);
                        let mut seen = links.clone();
                        seen.sort_unstable();
                        seen.dedup();
                        prop_assert_eq!(seen.len(), links.len(),
                            "route {}->{} revisits a link: {:?}", s, d, links);
                        for &l in &links {
                            prop_assert!(l < links_total, "link {l} out of range");
                        }
                    }
                }
            }
        }
    }

    /// Routing is symmetric in length: the reverse path has the same hop
    /// count and link count (paths themselves differ — up/down links are
    /// distinct ids).
    #[test]
    fn reverse_routes_have_equal_length(
        spec in spec_strategy(),
        n in 2u32..200,
    ) {
        let fab = FabricNetwork::new(CostModel::default(), spec, n);
        for s in 0..n.min(40) {
            for d in 0..n {
                if let Some((fwd, h_fwd)) = fab.route_of(s, d) {
                    let (rev, h_rev) = fab.route_of(d, s).expect("reverse route");
                    prop_assert_eq!(h_fwd, h_rev);
                    prop_assert_eq!(fwd.len(), rev.len());
                }
            }
        }
    }

    /// The flat fabric is indistinguishable from the legacy network on an
    /// arbitrary interleaving of packets: same delivery times, same
    /// counters. This is the bit-identity guarantee every committed
    /// figure relies on.
    #[test]
    fn flat_fabric_matches_legacy_on_random_sequences(
        seq in prop::collection::vec(
            ((0u32..64), (0u32..64), (0usize..9000), (0u64..5000)), 1..120),
    ) {
        let hws = [NodeHw::p3_700(), NodeHw::p3_1000(), NodeHw::p3_1000_l92()];
        let mut legacy = Network::new(CostModel::default());
        let mut fab = FabricNetwork::flat(CostModel::default(), 64);
        prop_assert!(fab.is_flat());
        let mut t = SimTime::ZERO;
        for (i, &(s, d, len, advance_us)) in seq.iter().enumerate() {
            t += abr_des::SimDuration::from_us(advance_us);
            let p = packet(s, d, len);
            let src = &hws[(s % 3) as usize];
            let dst = &hws[(d % 3) as usize];
            prop_assert_eq!(
                legacy.delivery_time(t, src, dst, &p),
                fab.delivery_time(t, src, dst, &p),
                "flat fabric diverged at step {}", i
            );
        }
        prop_assert_eq!(legacy.packets_carried(), fab.packets_carried());
        prop_assert_eq!(legacy.bytes_carried(), fab.bytes_carried());
        prop_assert_eq!(fab.link_waits(), 0);
        prop_assert_eq!(
            legacy.min_delivery_delay(&hws),
            fab.min_delivery_delay(&hws)
        );
    }
}
