//! The contended delivery-time model: static routing over the fabric
//! graph plus per-link busy-until serialization.
//!
//! [`FabricNetwork`] wraps the legacy [`Network`] and implements
//! [`LinkCost`]. With a [`FabricKind::Flat`] spec it forwards every call
//! to the wrapped model, so flat-fabric runs are bit-identical to the
//! pre-fabric driver by construction. Contended kinds keep the endpoint
//! pipeline (source PCI+NIC injection serialization, destination NIC+PCI,
//! per-(src,dst) FIFO floors) and replace the single ideal wire with the
//! routed path:
//!
//! * each link `l` on the route has a capacity factor `cap[l]` in units
//!   of host-link bandwidth; crossing it takes
//!   `bytes * wire_per_byte_us / cap[l]`,
//! * a link is busy until its previous packet clears: `start =
//!   max(t, busy[l]); busy[l] = start + xfer` — concurrent packets on a
//!   shared link serialize, and the waits are counted (and traced as
//!   [`TraceEvent::LinkWait`] when tracing is on),
//! * every traversed switch adds the cost model's `switch_us`.
//!
//! Same-node pairs never enter the fabric: they are charged exactly the
//! flat formula, which also makes the flat model's
//! [`Network::min_delivery_delay`] a valid lower bound (and therefore a
//! safe conservative lookahead) for every contended route — each route
//! crosses at least one full-rate link's worth of serialization and one
//! switch.
//!
//! Link clocks are global, order-sensitive state. The DES driver refuses
//! to combine a contended fabric with the sharded executor rather than
//! let per-shard clocks drift (see `run_auto` in `abr_cluster`).

use crate::spec::{FabricKind, FabricSpec, Placement};
use abr_des::{FxHashMap, SimDuration, SimTime};
use abr_gm::nic::LinkCost;
use abr_gm::{CostModel, Network, NodeHw, Packet};
use abr_trace::TraceEvent;

/// Same bound as `abr_gm::nic`: past this many FIFO-floor entries, dead
/// floors (at or below the send-time watermark) are pruned.
const FLOOR_PRUNE_LIMIT: usize = 65_536;

/// The routed switch/link graph shared by both contended kinds.
///
/// Links are identified by dense ids; `cap[id]` is the link's bandwidth
/// in host-link units (an oversubscribed uplink aggregating `m` members
/// gets `m / oversub`).
#[derive(Debug, Clone)]
struct Topo {
    kind: FabricKind,
    nodes_per_switch: u32,
    switches_per_pod: u32,
    num_nodes: u32,
    num_switches: u32,
    cap: Vec<f64>,
}

impl Topo {
    fn new(spec: &FabricSpec, num_nodes: u32) -> Topo {
        let s = spec.nodes_per_switch;
        let p = spec.switches_per_pod;
        let num_switches = num_nodes.div_ceil(s);
        let num_pods = num_switches.div_ceil(p);
        let mut cap = Vec::new();
        // Host links: one up + one down per node, full rate.
        cap.resize(2 * num_nodes as usize, 1.0);
        match spec.kind {
            FabricKind::Flat => unreachable!("flat fabrics build no graph"),
            FabricKind::FatTree => {
                // Edge→aggregation uplinks aggregate the switch's nodes;
                // pod→core uplinks aggregate the pod's nodes.
                let edge = f64::from(s) / spec.oversub;
                let pod = f64::from(s * p) / spec.oversub;
                cap.resize(cap.len() + 2 * num_switches as usize, edge);
                cap.resize(cap.len() + 2 * num_pods as usize, pod);
            }
            FabricKind::Dragonfly => {
                // One local channel per router (full rate per member
                // node), one global up/down pair per group.
                let local = f64::from(s);
                let global = f64::from(s * p) / spec.oversub;
                cap.resize(cap.len() + num_switches as usize, local);
                cap.resize(cap.len() + 2 * num_pods as usize, global);
            }
        }
        Topo {
            kind: spec.kind,
            nodes_per_switch: s,
            switches_per_pod: p,
            num_nodes,
            num_switches,
            cap,
        }
    }

    fn host_up(&self, node: u32) -> u32 {
        2 * node
    }

    fn host_down(&self, node: u32) -> u32 {
        2 * node + 1
    }

    /// Fat-tree edge uplink / dragonfly local channel base.
    fn mid_base(&self) -> u32 {
        2 * self.num_nodes
    }

    fn top_base(&self) -> u32 {
        match self.kind {
            FabricKind::FatTree => self.mid_base() + 2 * self.num_switches,
            FabricKind::Dragonfly => self.mid_base() + self.num_switches,
            FabricKind::Flat => unreachable!(),
        }
    }

    /// Static route between two distinct nodes: the traversed link ids
    /// (in order) pushed into `out`, returning the number of switch hops.
    fn route(&self, src_node: u32, dst_node: u32, out: &mut Vec<u32>) -> u32 {
        debug_assert_ne!(src_node, dst_node, "same-node pairs bypass the fabric");
        let s = self.nodes_per_switch;
        let p = self.switches_per_pod;
        let (es, ed) = (src_node / s, dst_node / s);
        out.push(self.host_up(src_node));
        let hops = match self.kind {
            FabricKind::Flat => unreachable!(),
            FabricKind::FatTree => {
                if es == ed {
                    1
                } else {
                    let (ps, pd) = (es / p, ed / p);
                    out.push(self.mid_base() + 2 * es); // edge uplink
                    if ps != pd {
                        out.push(self.top_base() + 2 * ps); // pod→core
                        out.push(self.top_base() + 2 * pd + 1); // core→pod
                    }
                    out.push(self.mid_base() + 2 * ed + 1); // agg→edge
                    if ps == pd {
                        3
                    } else {
                        5
                    }
                }
            }
            FabricKind::Dragonfly => {
                if es == ed {
                    1
                } else {
                    let (gs, gd) = (es / p, ed / p);
                    out.push(self.mid_base() + es); // source router local
                    if gs != gd {
                        out.push(self.top_base() + 2 * gs); // global out
                        out.push(self.top_base() + 2 * gd + 1); // global in
                    }
                    out.push(self.mid_base() + ed); // dest router local
                    if gs == gd {
                        2
                    } else {
                        3
                    }
                }
            }
        };
        out.push(self.host_down(dst_node));
        hops
    }
}

/// Contended per-run state: link clocks plus the endpoint serialization
/// maps the flat model would otherwise keep.
#[derive(Debug, Clone)]
struct Contended {
    place: Placement,
    topo: Topo,
    /// Per-link busy-until clock.
    busy: Vec<SimTime>,
    /// Source-NIC injection free times (same semantics as the flat model).
    tx_free: FxHashMap<u32, SimTime>,
    /// Per-(src,dst) FIFO delivery floors.
    floors: FxHashMap<(u32, u32), SimTime>,
    watermark: SimTime,
    route_buf: Vec<u32>,
    link_waits: u64,
    link_wait_ns: u64,
    floors_pruned: u64,
}

/// A fabric-aware [`LinkCost`] model.
///
/// Flat kind: pure delegation to the wrapped [`Network`]. Contended
/// kinds: routed, link-serialized delivery as described in the module
/// docs.
#[derive(Debug, Clone)]
pub struct FabricNetwork {
    inner: Network,
    spec: FabricSpec,
    n_ranks: u32,
    contended: Option<Contended>,
}

impl FabricNetwork {
    /// Build a fabric for `n_ranks` ranks over the given cost model.
    pub fn new(cost: CostModel, spec: FabricSpec, n_ranks: u32) -> Self {
        let contended = if spec.is_flat() {
            None
        } else {
            let place = Placement::new(spec.placement, n_ranks.max(1), spec.ranks_per_node);
            let topo = Topo::new(&spec, place.num_nodes());
            let busy = vec![SimTime::ZERO; topo.cap.len()];
            Some(Contended {
                place,
                topo,
                busy,
                tx_free: FxHashMap::default(),
                floors: FxHashMap::default(),
                watermark: SimTime::ZERO,
                route_buf: Vec::with_capacity(8),
                link_waits: 0,
                link_wait_ns: 0,
                floors_pruned: 0,
            })
        };
        FabricNetwork {
            inner: Network::new(cost),
            spec,
            n_ranks,
            contended,
        }
    }

    /// A flat (legacy-identical) fabric.
    pub fn flat(cost: CostModel, n_ranks: u32) -> Self {
        FabricNetwork::new(cost, FabricSpec::flat(), n_ranks)
    }

    /// True when every call delegates to the legacy crossbar model.
    pub fn is_flat(&self) -> bool {
        self.contended.is_none()
    }

    /// The configured spec.
    pub fn spec(&self) -> &FabricSpec {
        &self.spec
    }

    /// The cost model in use.
    pub fn cost(&self) -> &CostModel {
        self.inner.cost()
    }

    /// Install a tracer; contended runs additionally emit
    /// [`TraceEvent::LinkWait`] through it.
    pub fn set_tracer(&mut self, trace: abr_trace::TraceHandle) {
        self.inner.set_tracer(trace);
    }

    /// Packets carried so far (all kinds).
    pub fn packets_carried(&self) -> u64 {
        self.inner.packets_carried()
    }

    /// Wire bytes carried so far (all kinds).
    pub fn bytes_carried(&self) -> u64 {
        self.inner.bytes_carried()
    }

    /// Live FIFO-floor entries across the flat and contended maps.
    pub fn floor_entries(&self) -> usize {
        self.inner.floor_entries()
            + self
                .contended
                .as_ref()
                .map_or(0, |c| c.floors.len() + c.tx_free.len())
    }

    /// Dead FIFO floors reclaimed by watermark pruning so far.
    pub fn floors_pruned(&self) -> u64 {
        self.inner.floors_pruned() + self.contended.as_ref().map_or(0, |c| c.floors_pruned)
    }

    /// Times a packet queued behind a busy fabric link.
    pub fn link_waits(&self) -> u64 {
        self.contended.as_ref().map_or(0, |c| c.link_waits)
    }

    /// Total time spent queued on fabric links, microseconds.
    pub fn link_wait_us(&self) -> f64 {
        self.contended.as_ref().map_or(0, |c| c.link_wait_ns) as f64 / 1_000.0
    }

    /// Total fabric links (0 for flat).
    pub fn num_links(&self) -> usize {
        self.contended.as_ref().map_or(0, |c| c.topo.cap.len())
    }

    /// The static route between two ranks: traversed link ids plus
    /// switch-hop count. `None` for flat fabrics or same-node pairs
    /// (which bypass the fabric entirely).
    pub fn route_of(&self, src_rank: u32, dst_rank: u32) -> Option<(Vec<u32>, u32)> {
        let c = self.contended.as_ref()?;
        let (ns, nd) = (c.place.node_of(src_rank), c.place.node_of(dst_rank));
        if ns == nd {
            return None;
        }
        let mut links = Vec::with_capacity(8);
        let hops = c.topo.route(ns, nd, &mut links);
        Some((links, hops))
    }

    /// The node hosting `rank` (placement map), if contended.
    pub fn node_of(&self, rank: u32) -> Option<u32> {
        self.contended.as_ref().map(|c| c.place.node_of(rank))
    }

    /// A fresh network with the same cost model and spec but no
    /// accumulated serialization state (used when splitting a run into
    /// per-shard networks).
    pub fn fresh_like(&self) -> FabricNetwork {
        FabricNetwork::new(self.inner.cost().clone(), self.spec.clone(), self.n_ranks)
    }

    /// Fold another fabric's state into this one (counters sum, clocks
    /// and floors take per-key maxima). Only flat fabrics are ever
    /// merged in practice — the driver rejects sharding for contended
    /// kinds — but the merge is total for safety.
    pub fn absorb(&mut self, other: &FabricNetwork) {
        self.inner.absorb(&other.inner);
        if let (Some(a), Some(b)) = (self.contended.as_mut(), other.contended.as_ref()) {
            for (x, y) in a.busy.iter_mut().zip(&b.busy) {
                *x = (*x).max(*y);
            }
            for (&k, &v) in &b.floors {
                let e = a.floors.entry(k).or_insert(v);
                *e = (*e).max(v);
            }
            for (&k, &v) in &b.tx_free {
                let e = a.tx_free.entry(k).or_insert(v);
                *e = (*e).max(v);
            }
            a.watermark = a.watermark.max(b.watermark);
            a.link_waits += b.link_waits;
            a.link_wait_ns += b.link_wait_ns;
            a.floors_pruned += b.floors_pruned;
        }
    }
}

impl LinkCost for FabricNetwork {
    fn delivery_time(
        &mut self,
        sent_at: SimTime,
        src: &NodeHw,
        dst: &NodeHw,
        packet: &Packet,
    ) -> SimTime {
        let FabricNetwork {
            inner, contended, ..
        } = self;
        let Some(c) = contended.as_mut() else {
            return inner.delivery_time(sent_at, src, dst, packet);
        };
        let src_id = packet.header.src.0;
        let dst_id = packet.header.dst.0;
        let (src_node, dst_node) = (c.place.node_of(src_id), c.place.node_of(dst_id));

        // Source NIC injection serializes exactly as on the flat model.
        let tx = inner.tx_time(src, packet);
        let tx_start = sent_at.max(c.tx_free.get(&src_id).copied().unwrap_or(SimTime::ZERO));
        let tx_done = tx_start + tx;
        c.tx_free.insert(src_id, tx_done);

        let cost = inner.cost();
        let bytes = packet.wire_bytes() as f64;
        let nominal = if src_node == dst_node {
            // Same node: no fabric links; charge the flat path verbatim
            // (one switch, one uncontended wire, endpoint pipelines).
            tx_done + (inner.delivery_delay(src, dst, packet) - tx)
        } else {
            c.route_buf.clear();
            let mut links = std::mem::take(&mut c.route_buf);
            let hops = c.topo.route(src_node, dst_node, &mut links);
            let mut t = tx_done;
            for &link in &links {
                let ready = c.busy[link as usize];
                if ready > t {
                    let wait = ready - t;
                    c.link_waits += 1;
                    c.link_wait_ns += wait.as_nanos();
                    if inner.tracer().is_enabled() {
                        inner.tracer().emit_for(
                            src_id,
                            TraceEvent::LinkWait {
                                link,
                                wait_ns: wait.as_nanos(),
                            },
                        );
                    }
                    t = ready;
                }
                let xfer = SimDuration::from_us_f64(
                    cost.wire_per_byte_us * bytes / c.topo.cap[link as usize],
                );
                t += xfer;
                c.busy[link as usize] = t;
            }
            c.route_buf = links;
            // Per-switch forwarding latency plus the receive-side
            // endpoint pipeline (destination NIC + PCI), same constants
            // as the flat model.
            let dst_nic = cost.nic_per_packet_us * dst.lanai.per_packet_scale();
            let dst_pci = cost.pci_per_byte_us * dst.pci.per_byte_scale() * bytes;
            t + SimDuration::from_us_f64(cost.switch_us * f64::from(hops) + dst_nic + dst_pci)
        };

        // GM's per-(src,dst) FIFO guarantee.
        let key = (src_id, dst_id);
        let floor = c.floors.get(&key).copied().unwrap_or(SimTime::ZERO);
        let arrival = nominal.max(floor);
        c.floors.insert(key, arrival);
        c.watermark = c.watermark.max(sent_at);
        if c.floors.len() > FLOOR_PRUNE_LIMIT {
            let wm = c.watermark;
            let before = c.floors.len();
            c.floors.retain(|_, v| *v > wm);
            c.floors_pruned += (before - c.floors.len()) as u64;
        }
        if c.tx_free.len() > FLOOR_PRUNE_LIMIT {
            let wm = c.watermark;
            c.tx_free.retain(|_, v| *v > wm);
        }
        inner.record_carried(packet.wire_bytes() as u64);
        arrival
    }

    fn min_delivery_delay(&self, hws: &[NodeHw]) -> SimDuration {
        // The flat bound is a strict lower bound for every contended
        // route too: each route serializes at least `bytes` at host
        // rate and crosses at least one switch, and contention and
        // extra hops only add.
        self.inner.min_delivery_delay(hws)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abr_gm::packet::{NodeId, PacketHeader, PacketKind};
    use bytes::Bytes;

    fn packet(src: u32, dst: u32, len: usize) -> Packet {
        Packet::new(
            PacketHeader {
                src: NodeId(src),
                dst: NodeId(dst),
                kind: PacketKind::Eager,
                context: 0,
                tag: 0,
                coll_seq: 0,
                coll_root: 0,
                msg_len: len as u32,
                wire_seq: 0,
                rel_seq: 0,
            },
            Bytes::from(vec![0u8; len]),
        )
    }

    #[test]
    fn flat_fabric_is_bit_identical_to_legacy_network() {
        let hw = NodeHw::p3_700();
        let mut legacy = Network::new(CostModel::default());
        let mut fab = FabricNetwork::flat(CostModel::default(), 64);
        for i in 0..200u32 {
            let (s, d, len) = (i % 7, (i * 3 + 1) % 13, (i as usize * 97) % 4096);
            let t = SimTime::from_us(u64::from(i) * 3);
            let p = packet(s, d, len);
            assert_eq!(
                legacy.delivery_time(t, &hw, &hw, &p),
                fab.delivery_time(t, &hw, &hw, &p),
                "flat fabric diverged from legacy at step {i}"
            );
        }
        assert_eq!(legacy.packets_carried(), fab.packets_carried());
        assert_eq!(legacy.bytes_carried(), fab.bytes_carried());
    }

    #[test]
    fn shared_uplink_serializes_concurrent_packets() {
        // 4:1 fat-tree, blocked placement: ranks 0..4 on node 0, ranks
        // 16..20 on node 4 — same pod, different edge switches, so both
        // flows cross the source edge uplink... pick cross-pod peers to
        // guarantee shared pod uplinks instead.
        let mut spec = FabricSpec::fat_tree(4.0);
        spec.placement = crate::PlacementPolicy::Blocked;
        let n = 512u32;
        let mut fab = FabricNetwork::new(CostModel::default(), spec.clone(), n);
        let mut quiet = FabricNetwork::new(CostModel::default(), spec, n);
        let hw = NodeHw::p3_700();
        let t0 = SimTime::from_us(10);
        // Two different sources on the same edge switch send cross-pod
        // at the same instant: they share the edge uplink.
        let a = fab.delivery_time(t0, &hw, &hw, &packet(0, 256, 4096));
        let b = fab.delivery_time(t0, &hw, &hw, &packet(4, 260, 4096));
        // The same second flow alone (no competing first flow) is faster.
        let b_alone = quiet.delivery_time(t0, &hw, &hw, &packet(4, 260, 4096));
        assert!(
            b > b_alone,
            "no serialization on the shared uplink: {b:?} vs {b_alone:?}"
        );
        assert!(fab.link_waits() > 0);
        assert!(fab.link_wait_us() > 0.0);
        let _ = a;
    }

    #[test]
    fn contended_delivery_is_deterministic() {
        let spec = FabricSpec::fat_tree(4.0);
        let hw = NodeHw::p3_700();
        let run = || {
            let mut fab = FabricNetwork::new(CostModel::default(), spec.clone(), 1024);
            let mut out = Vec::new();
            for i in 0..500u32 {
                let p = packet(i % 101, (i * 7 + 3) % 1024, (i as usize * 53) % 2048);
                out.push(fab.delivery_time(SimTime::from_us(u64::from(i)), &hw, &hw, &p));
            }
            (out, fab.link_waits(), fab.link_wait_us())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn min_delivery_delay_bounds_contended_routes() {
        let spec = FabricSpec::fat_tree(4.0);
        let mut fab = FabricNetwork::new(CostModel::default(), spec, 4096);
        let hws = [NodeHw::p3_700(), NodeHw::p3_1000()];
        let bound = fab.min_delivery_delay(&hws);
        assert!(!bound.is_zero());
        for i in 0..400u32 {
            let t0 = SimTime::from_us(100 + u64::from(i));
            let p = packet(i % 97, (i * 11 + 5) % 4096, (i as usize * 31) % 8192);
            let hw = hws[(i % 2) as usize];
            let arrive = fab.delivery_time(t0, &hw, &hws[((i + 1) % 2) as usize], &p);
            assert!(arrive >= t0 + bound, "lookahead bound violated at {i}");
        }
    }

    #[test]
    fn oversubscription_slows_cross_fabric_traffic() {
        let hw = NodeHw::p3_700();
        let t0 = SimTime::ZERO;
        let time_with = |oversub: f64| {
            let mut fab = FabricNetwork::new(
                CostModel::default(),
                {
                    let mut s = FabricSpec::fat_tree(oversub);
                    s.placement = crate::PlacementPolicy::Blocked;
                    s
                },
                512,
            );
            // A burst of cross-pod packets from the ranks of one edge
            // switch: all share that switch's uplink.
            let mut last = SimTime::ZERO;
            for r in 0..16u32 {
                last = last.max(fab.delivery_time(t0, &hw, &hw, &packet(r, 400 + r, 4096)));
            }
            last
        };
        assert!(
            time_with(8.0) > time_with(1.0),
            "an 8:1 fabric should be slower than full bisection"
        );
    }
}
