//! Fabric shape, oversubscription, and rank placement.
//!
//! A [`FabricSpec`] is pure configuration: it says which switch/link
//! graph to build and how ranks map onto nodes, but holds no simulation
//! state. The knobs mirror the rest of the workspace's env-var style:
//!
//! * `ABR_FABRIC` — `flat` (default), `fattree[:blocked|:cyclic]` or
//!   `dragonfly[:blocked|:cyclic]`. Contended kinds default to *cyclic*
//!   placement (round-robin over nodes, what a batch scheduler handing
//!   out one slot per node produces); `flat` ignores placement.
//! * `ABR_OVERSUB` — uplink oversubscription ratio (default `4`): edge
//!   and pod/group uplinks carry `members / ABR_OVERSUB` host-links
//!   worth of bandwidth.

use abr_trace::parse_env;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which switch/link graph the fabric builds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FabricKind {
    /// The legacy ideal crossbar: no shared links, no contention. A
    /// [`crate::FabricNetwork`] of this kind delegates every call to the
    /// wrapped [`abr_gm::Network`] and is bit-identical to it.
    Flat,
    /// Three-level fat-tree: nodes under edge switches, edge switches in
    /// pods under aggregation, pods joined through a core layer. Uplinks
    /// are oversubscribed by [`FabricSpec::oversub`].
    FatTree,
    /// Two-level dragonfly: nodes under routers, routers in
    /// all-to-all-connected groups, groups joined by global links.
    Dragonfly,
}

/// How ranks are laid out over nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PlacementPolicy {
    /// Consecutive ranks fill a node before moving on: node = rank / R.
    Blocked,
    /// Round-robin over nodes: node = rank mod num_nodes. This is what a
    /// scheduler allocating one slot per node in rank order produces,
    /// and it is the default for contended fabrics because it makes
    /// rank distance meaningless as a locality signal — the regime
    /// where placement-aware trees matter.
    Cyclic,
}

impl fmt::Display for PlacementPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PlacementPolicy::Blocked => "blocked",
            PlacementPolicy::Cyclic => "cyclic",
        })
    }
}

/// Full fabric configuration: graph kind, oversubscription, placement,
/// and the (fixed-radix) shape parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FabricSpec {
    /// Which graph to build.
    pub kind: FabricKind,
    /// Rank→node layout policy (ignored by [`FabricKind::Flat`]).
    pub placement: PlacementPolicy,
    /// Uplink oversubscription ratio (≥ 1; 1 = full bisection).
    pub oversub: f64,
    /// Ranks packed per node (the testbed's one-process-per-CPU slot
    /// count; 4 mirrors the quad-SMP flavour).
    pub ranks_per_node: u32,
    /// Nodes per edge switch (fat-tree) or per router (dragonfly).
    pub nodes_per_switch: u32,
    /// Edge switches per pod (fat-tree) or routers per group (dragonfly).
    pub switches_per_pod: u32,
}

impl FabricSpec {
    /// The ideal crossbar (no contention model at all).
    pub fn flat() -> Self {
        FabricSpec {
            kind: FabricKind::Flat,
            placement: PlacementPolicy::Blocked,
            oversub: 1.0,
            ranks_per_node: 4,
            nodes_per_switch: 4,
            switches_per_pod: 4,
        }
    }

    /// A fat-tree with the given oversubscription ratio, cyclic placement.
    pub fn fat_tree(oversub: f64) -> Self {
        FabricSpec {
            kind: FabricKind::FatTree,
            placement: PlacementPolicy::Cyclic,
            oversub,
            ..FabricSpec::flat()
        }
    }

    /// A dragonfly with the given oversubscription ratio, cyclic placement.
    pub fn dragonfly(oversub: f64) -> Self {
        FabricSpec {
            kind: FabricKind::Dragonfly,
            placement: PlacementPolicy::Cyclic,
            oversub,
            switches_per_pod: 8,
            ..FabricSpec::flat()
        }
    }

    /// True for the contention-free crossbar.
    pub fn is_flat(&self) -> bool {
        self.kind == FabricKind::Flat
    }

    /// Nodes per pod (fat-tree) / per group (dragonfly) — the grouping
    /// the locality-greedy topology should respect.
    pub fn nodes_per_pod(&self) -> u32 {
        self.nodes_per_switch * self.switches_per_pod
    }

    /// Parse an `ABR_FABRIC` value: `flat`, `fattree`, `fat-tree` or
    /// `dragonfly`, with an optional `:blocked` / `:cyclic` placement
    /// suffix. `oversub` seeds the contended kinds' ratio.
    pub fn parse(raw: &str, oversub: f64) -> Result<FabricSpec, String> {
        let (kind_str, placement) = match raw.split_once(':') {
            None => (raw, None),
            Some((k, "blocked")) => (k, Some(PlacementPolicy::Blocked)),
            Some((k, "cyclic")) => (k, Some(PlacementPolicy::Cyclic)),
            Some((_, p)) => {
                return Err(format!(
                    "ABR_FABRIC placement suffix must be 'blocked' or 'cyclic', got {p:?}"
                ))
            }
        };
        let mut spec = match kind_str {
            "flat" => FabricSpec::flat(),
            "fattree" | "fat-tree" => FabricSpec::fat_tree(oversub),
            "dragonfly" => FabricSpec::dragonfly(oversub),
            other => {
                return Err(format!(
                    "ABR_FABRIC must be flat, fattree or dragonfly \
                     (optionally ':blocked'/':cyclic'), got {other:?}"
                ))
            }
        };
        if let Some(p) = placement {
            spec.placement = p;
        }
        Ok(spec)
    }

    /// Read `ABR_FABRIC` / `ABR_OVERSUB`; `None` when `ABR_FABRIC` is
    /// unset. Panics (fail fast, naming the variable) on malformed
    /// values.
    pub fn from_env() -> Option<FabricSpec> {
        let oversub = oversub_from_env();
        parse_env("ABR_FABRIC", |raw| FabricSpec::parse(raw, oversub))
    }

    /// [`FabricSpec::from_env`], defaulting to the flat crossbar.
    pub fn from_env_or_flat() -> FabricSpec {
        FabricSpec::from_env().unwrap_or_else(FabricSpec::flat)
    }

    /// Short label for tables and JSON records, e.g. `fattree:4:cyclic`.
    pub fn label(&self) -> String {
        match self.kind {
            FabricKind::Flat => "flat".to_string(),
            FabricKind::FatTree => format!("fattree:{}:{}", self.oversub, self.placement),
            FabricKind::Dragonfly => format!("dragonfly:{}:{}", self.oversub, self.placement),
        }
    }
}

/// Read `ABR_OVERSUB` (default 4.0, must be ≥ 1).
pub fn oversub_from_env() -> f64 {
    parse_env("ABR_OVERSUB", |raw| {
        let v: f64 = raw
            .parse()
            .map_err(|_| format!("ABR_OVERSUB must be a number, got {raw:?}"))?;
        if v >= 1.0 {
            Ok(v)
        } else {
            Err(format!("ABR_OVERSUB must be >= 1, got {v}"))
        }
    })
    .unwrap_or(4.0)
}

/// A concrete rank→node map for one cluster size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    policy: PlacementPolicy,
    n_ranks: u32,
    ranks_per_node: u32,
    num_nodes: u32,
}

impl Placement {
    /// Lay `n_ranks` ranks over nodes of `ranks_per_node` slots each.
    pub fn new(policy: PlacementPolicy, n_ranks: u32, ranks_per_node: u32) -> Self {
        assert!(n_ranks > 0, "placement needs at least one rank");
        assert!(ranks_per_node > 0, "nodes need at least one slot");
        let num_nodes = n_ranks.div_ceil(ranks_per_node);
        Placement {
            policy,
            n_ranks,
            ranks_per_node,
            num_nodes,
        }
    }

    /// Number of occupied nodes.
    pub fn num_nodes(&self) -> u32 {
        self.num_nodes
    }

    /// Ranks being placed.
    pub fn n_ranks(&self) -> u32 {
        self.n_ranks
    }

    /// The node hosting `rank`.
    pub fn node_of(&self, rank: u32) -> u32 {
        debug_assert!(rank < self.n_ranks);
        match self.policy {
            PlacementPolicy::Blocked => rank / self.ranks_per_node,
            PlacementPolicy::Cyclic => rank % self.num_nodes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_and_rejects() {
        assert!(FabricSpec::parse("flat", 4.0).unwrap().is_flat());
        let ft = FabricSpec::parse("fattree", 2.0).unwrap();
        assert_eq!(ft.kind, FabricKind::FatTree);
        assert_eq!(ft.oversub, 2.0);
        assert_eq!(ft.placement, PlacementPolicy::Cyclic);
        let ftb = FabricSpec::parse("fat-tree:blocked", 4.0).unwrap();
        assert_eq!(ftb.placement, PlacementPolicy::Blocked);
        let df = FabricSpec::parse("dragonfly:cyclic", 4.0).unwrap();
        assert_eq!(df.kind, FabricKind::Dragonfly);
        assert!(FabricSpec::parse("mesh", 4.0).is_err());
        assert!(FabricSpec::parse("fattree:diagonal", 4.0).is_err());
    }

    #[test]
    fn placement_maps_every_rank_to_a_valid_node() {
        for n in [1u32, 5, 64, 130] {
            for policy in [PlacementPolicy::Blocked, PlacementPolicy::Cyclic] {
                let p = Placement::new(policy, n, 4);
                let mut seen_nodes = vec![0u32; p.num_nodes() as usize];
                for r in 0..n {
                    let node = p.node_of(r);
                    assert!(node < p.num_nodes());
                    seen_nodes[node as usize] += 1;
                }
                // No node is oversubscribed beyond its slot count.
                for &c in &seen_nodes {
                    assert!(c <= 4, "node hosts {c} ranks with 4 slots");
                }
            }
        }
    }

    #[test]
    fn blocked_and_cyclic_differ_beyond_one_node() {
        let b = Placement::new(PlacementPolicy::Blocked, 16, 4);
        let c = Placement::new(PlacementPolicy::Cyclic, 16, 4);
        assert_eq!(b.node_of(1), 0);
        assert_eq!(c.node_of(1), 1);
        assert_eq!(b.node_of(5), 1);
        assert_eq!(c.node_of(5), 1);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(FabricSpec::flat().label(), "flat");
        assert_eq!(FabricSpec::fat_tree(4.0).label(), "fattree:4:cyclic");
        assert_eq!(FabricSpec::dragonfly(2.0).label(), "dragonfly:2:cyclic");
    }
}
