//! `abr_fabric` — contended interconnect fabrics for the DES driver.
//!
//! Every result before this crate ran on `abr_gm::nic::Network`: one ideal
//! cut-through crossbar where a packet's delivery time depends only on the
//! two endpoints, never on other traffic. Real clusters are built from
//! switches and links, and collective performance is lost to shared,
//! oversubscribed uplinks. This crate models that loss while keeping the
//! flat crossbar available (and bit-identical) as a degenerate case:
//!
//! * [`spec`] — [`FabricSpec`]: which fabric ([`FabricKind::Flat`],
//!   [`FabricKind::FatTree`], [`FabricKind::Dragonfly`]), the
//!   oversubscription ratio, and the rank→node [`PlacementPolicy`]
//!   (blocked or cyclic/round-robin), parsed from `ABR_FABRIC` /
//!   `ABR_OVERSUB`,
//! * [`net`] — [`FabricNetwork`]: an [`abr_gm::LinkCost`] implementation
//!   that statically routes each packet over the fabric graph and
//!   serializes concurrent packets on shared links via per-link
//!   busy-until clocks. With [`FabricKind::Flat`] every call is delegated
//!   verbatim to the wrapped [`abr_gm::Network`], so flat-fabric runs
//!   reproduce the legacy model bit-for-bit by construction.
//!
//! Contention is deterministic but order-sensitive: link clocks are
//! global state, so the contended kinds require the sequential DES
//! executor (the driver rejects `ABR_DES_SHARDS` combined with a
//! contended `ABR_FABRIC` instead of silently computing different
//! arrival times per shard count).

#![deny(missing_docs)]

pub mod net;
pub mod spec;

pub use net::FabricNetwork;
pub use spec::{FabricKind, FabricSpec, Placement, PlacementPolicy};
