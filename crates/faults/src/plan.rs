//! Seeded, fully deterministic fault schedules.
//!
//! A [`FaultPlan`] is a list of rules, each scoped to a set of links, packet
//! kinds, an optional virtual-time window, and optionally a single per-link
//! transmission attempt. Every fault decision is a *pure function* of
//! `(seed, rule index, src, dst, attempt)`: the injector derives a fresh
//! [`StreamRng`] stream per decision, so the schedule replays identically in
//! the discrete-event driver and the live threaded driver — the per-link
//! attempt counters advance the same way in both because the protocol sends
//! the same packet sequence over each link.

use abr_des::StreamRng;
use abr_gm::{Packet, PacketKind};
use abr_trace::{TraceEvent, TraceHandle};
use std::collections::HashMap;

/// Link selector for a fault rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkSel {
    /// Every (src, dst) pair.
    Any,
    /// Packets sent by this node.
    From(u32),
    /// Packets addressed to this node.
    To(u32),
    /// One directed link.
    Between(u32, u32),
}

impl LinkSel {
    /// True if the rule applies to the directed link `src -> dst`.
    pub fn matches(self, src: u32, dst: u32) -> bool {
        match self {
            LinkSel::Any => true,
            LinkSel::From(s) => s == src,
            LinkSel::To(d) => d == dst,
            LinkSel::Between(s, d) => s == src && d == dst,
        }
    }
}

/// Packet-kind selector for a fault rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KindSel {
    /// Every packet kind.
    Any,
    /// Only the application-bypass collective kind.
    Collective,
    /// Only plain eager data.
    Eager,
    /// Rendezvous control and data packets.
    Rendezvous,
    /// Only reliability acknowledgements.
    Ack,
}

impl KindSel {
    /// True if the rule applies to `kind`.
    pub fn matches(self, kind: PacketKind) -> bool {
        match self {
            KindSel::Any => true,
            KindSel::Collective => kind == PacketKind::Collective,
            KindSel::Eager => kind == PacketKind::Eager,
            KindSel::Rendezvous => matches!(
                kind,
                PacketKind::RendezvousRts | PacketKind::RendezvousCts | PacketKind::RendezvousData
            ),
            KindSel::Ack => kind == PacketKind::Ack,
        }
    }
}

/// What a matching rule does to a packet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Lose the packet with probability `p`.
    Drop {
        /// Per-packet loss probability in `[0, 1]`.
        p: f64,
    },
    /// Transmit one extra copy with probability `p` (a NIC-level duplicate:
    /// both copies carry the same reliability sequence number).
    Duplicate {
        /// Per-packet duplication probability in `[0, 1]`.
        p: f64,
    },
    /// Add `extra_ns` of one-way latency with probability `p`. Because the
    /// reliability layer re-orders delivery, a large enough delay *is* the
    /// reorder fault: the delayed packet overtakes nothing, but later
    /// packets overtake it on the wire.
    Delay {
        /// Per-packet delay probability in `[0, 1]`.
        p: f64,
        /// Extra one-way latency in nanoseconds.
        extra_ns: u64,
    },
    /// Stall the sender's NIC with probability `p`: this packet and every
    /// later packet from the same source accrue `stall_ns` of extra lag
    /// (a monotone firmware hiccup, order-preserving per source).
    NicStall {
        /// Per-packet stall probability in `[0, 1]`.
        p: f64,
        /// Stall length in nanoseconds, accumulated into the source's lag.
        stall_ns: u64,
    },
}

impl FaultKind {
    fn probability(self) -> f64 {
        match self {
            FaultKind::Drop { p }
            | FaultKind::Duplicate { p }
            | FaultKind::Delay { p, .. }
            | FaultKind::NicStall { p, .. } => p,
        }
    }
}

/// One scoped fault rule.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultRule {
    /// Which links the rule applies to.
    pub link: LinkSel,
    /// Which packet kinds the rule applies to.
    pub kinds: KindSel,
    /// Optional virtual-time window `[lo_ns, hi_ns)`. Window rules only
    /// match when the driver knows virtual time (the DES passes it; the
    /// live driver passes `None`, so cross-driver plans must be window-free).
    pub window: Option<(u64, u64)>,
    /// Restrict the rule to one specific per-link transmission attempt
    /// (0-based), for deterministic targeted scenarios such as "drop the
    /// first data packet on link 2 -> 0". `None` applies to every attempt.
    pub attempt: Option<u64>,
    /// The fault to inject.
    pub fault: FaultKind,
}

impl FaultRule {
    fn matches(&self, pkt: &Packet, now_ns: Option<u64>, attempt: u64) -> bool {
        if !self.link.matches(pkt.header.src.0, pkt.header.dst.0) {
            return false;
        }
        if !self.kinds.matches(pkt.header.kind) {
            return false;
        }
        if let Some(want) = self.attempt {
            if want != attempt {
                return false;
            }
        }
        match (self.window, now_ns) {
            (None, _) => true,
            (Some((lo, hi)), Some(now)) => lo <= now && now < hi,
            (Some(_), None) => false,
        }
    }
}

/// A seeded, deterministic fault schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Root seed for every probabilistic decision.
    pub seed: u64,
    /// Rules, evaluated in order for every transmission.
    pub rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// The empty plan: no faults, and the drivers bypass the reliability
    /// layer entirely (cost-neutral with the pre-fault code paths).
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            rules: Vec::new(),
        }
    }

    /// True if this plan injects nothing.
    pub fn is_none(&self) -> bool {
        self.rules.is_empty()
    }

    /// A uniform lossy-link plan: drop with probability `p` and duplicate
    /// with probability `p` on every link and packet kind.
    pub fn uniform_loss(seed: u64, p: f64) -> Self {
        FaultPlan {
            seed,
            rules: vec![
                FaultRule {
                    link: LinkSel::Any,
                    kinds: KindSel::Any,
                    window: None,
                    attempt: None,
                    fault: FaultKind::Drop { p },
                },
                FaultRule {
                    link: LinkSel::Any,
                    kinds: KindSel::Any,
                    window: None,
                    attempt: None,
                    fault: FaultKind::Duplicate { p },
                },
            ],
        }
    }

    /// Parse a scenario string, e.g.
    /// `"seed=42; drop p=0.01; dup p=0.005 from=3; delay p=0.02 extra_us=50 kind=coll"`.
    ///
    /// Clauses are `;`- or newline-separated. The first word of a clause is
    /// the fault (`drop`, `dup`, `delay`, `stall`) or the special clause
    /// `seed=N`. Remaining words are `key=value` pairs: `p`, `extra_us`,
    /// `stall_us`, `from`, `to`, `between=SRC-DST`, `kind`
    /// (`any|coll|eager|rndv|ack`), `window_us=LO..HI`, `attempt=N`.
    /// Blank clauses and `#` comments are ignored.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::none();
        for raw in spec.split([';', '\n']) {
            let clause = raw.split('#').next().unwrap_or("").trim();
            if clause.is_empty() {
                continue;
            }
            let mut words = clause.split_whitespace();
            let head = words.next().expect("non-empty clause has a first word");
            if let Some(seed) = head.strip_prefix("seed=") {
                plan.seed = seed
                    .parse()
                    .map_err(|_| format!("fault plan: bad seed {seed:?}"))?;
                continue;
            }
            let mut p = None;
            let mut extra_us = None;
            let mut stall_us = None;
            let mut link = LinkSel::Any;
            let mut kinds = KindSel::Any;
            let mut window = None;
            let mut attempt = None;
            for word in words {
                let (key, value) = word
                    .split_once('=')
                    .ok_or_else(|| format!("fault plan: expected key=value, got {word:?}"))?;
                let bad = || format!("fault plan: bad value for {key}: {value:?}");
                match key {
                    "p" => p = Some(value.parse::<f64>().map_err(|_| bad())?),
                    "extra_us" => extra_us = Some(value.parse::<f64>().map_err(|_| bad())?),
                    "stall_us" => stall_us = Some(value.parse::<f64>().map_err(|_| bad())?),
                    "from" => link = LinkSel::From(value.parse().map_err(|_| bad())?),
                    "to" => link = LinkSel::To(value.parse().map_err(|_| bad())?),
                    "between" => {
                        let (s, d) = value.split_once('-').ok_or_else(|| {
                            format!("fault plan: between wants SRC-DST, got {value:?}")
                        })?;
                        link = LinkSel::Between(
                            s.parse().map_err(|_| bad())?,
                            d.parse().map_err(|_| bad())?,
                        );
                    }
                    "kind" => {
                        kinds = match value {
                            "any" => KindSel::Any,
                            "coll" => KindSel::Collective,
                            "eager" => KindSel::Eager,
                            "rndv" => KindSel::Rendezvous,
                            "ack" => KindSel::Ack,
                            other => return Err(format!("fault plan: unknown kind {other:?}")),
                        }
                    }
                    "window_us" => {
                        let (lo, hi) = value.split_once("..").ok_or_else(|| {
                            format!("fault plan: window_us wants LO..HI, got {value:?}")
                        })?;
                        let lo: u64 = lo.parse().map_err(|_| bad())?;
                        let hi: u64 = hi.parse().map_err(|_| bad())?;
                        window = Some((lo * 1_000, hi * 1_000));
                    }
                    "attempt" => attempt = Some(value.parse().map_err(|_| bad())?),
                    other => return Err(format!("fault plan: unknown key {other:?}")),
                }
            }
            let us_to_ns = |us: f64| (us * 1_000.0).round().max(0.0) as u64;
            let fault = match head {
                "drop" => FaultKind::Drop {
                    p: p.unwrap_or(1.0),
                },
                "dup" => FaultKind::Duplicate {
                    p: p.unwrap_or(1.0),
                },
                "delay" => FaultKind::Delay {
                    p: p.unwrap_or(1.0),
                    extra_ns: us_to_ns(extra_us.ok_or("fault plan: delay needs extra_us=..")?),
                },
                "stall" => FaultKind::NicStall {
                    p: p.unwrap_or(1.0),
                    stall_ns: us_to_ns(stall_us.ok_or("fault plan: stall needs stall_us=..")?),
                },
                other => return Err(format!("fault plan: unknown fault {other:?}")),
            };
            plan.rules.push(FaultRule {
                link,
                kinds,
                window,
                attempt,
                fault,
            });
        }
        Ok(plan)
    }

    /// Read a plan from the `ABR_FAULTS` environment variable: either an
    /// inline scenario string or `@path` naming a scenario file. Returns
    /// `Ok(None)` when the variable is unset and an error (naming the
    /// variable) for anything invalid — never a silent fallback.
    pub fn from_env() -> Result<Option<FaultPlan>, String> {
        let raw = match std::env::var("ABR_FAULTS") {
            Err(std::env::VarError::NotPresent) => return Ok(None),
            Err(e) => return Err(format!("ABR_FAULTS is not valid unicode: {e}")),
            Ok(s) => s,
        };
        let spec = if let Some(path) = raw.strip_prefix('@') {
            std::fs::read_to_string(path)
                .map_err(|e| format!("ABR_FAULTS names unreadable file {path:?}: {e}"))?
        } else {
            raw
        };
        FaultPlan::parse(&spec)
            .map(Some)
            .map_err(|e| format!("ABR_FAULTS is invalid: {e}"))
    }
}

/// The injector's verdict for one transmission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Verdict {
    /// Copies to put on the wire: 0 = dropped, 1 = normal, 2+ = duplicated.
    pub copies: u32,
    /// Extra one-way latency (nanoseconds) applied to every copy, including
    /// the sender's accumulated NIC-stall lag.
    pub extra_delay_ns: u64,
}

impl Verdict {
    /// The verdict of the empty plan: one copy, no delay.
    pub fn clean() -> Self {
        Verdict {
            copies: 1,
            extra_delay_ns: 0,
        }
    }
}

/// Counters describing what the injector actually did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InjectStats {
    /// Transmissions evaluated.
    pub transmissions: u64,
    /// Packets dropped.
    pub dropped: u64,
    /// Extra copies created.
    pub duplicated: u64,
    /// Packets given extra delay (excluding pure stall lag).
    pub delayed: u64,
    /// NIC stalls triggered.
    pub stalls: u64,
}

/// Evaluates a [`FaultPlan`] against a stream of transmissions.
///
/// The injector is the only stateful piece: per-link attempt counters and
/// per-source stall lag. Both advance identically in the DES and live
/// drivers, so one seed yields one schedule everywhere.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    root: StreamRng,
    attempts: HashMap<(u32, u32), u64>,
    stall_ns: HashMap<u32, u64>,
    stats: InjectStats,
    trace: TraceHandle,
}

/// Label mixed into every per-decision stream derivation.
const DECISION_LABEL: u64 = 0xFA17;

impl FaultInjector {
    /// Build an injector for a plan.
    pub fn new(plan: FaultPlan) -> Self {
        let root = StreamRng::root(plan.seed);
        FaultInjector {
            plan,
            root,
            attempts: HashMap::new(),
            stall_ns: HashMap::new(),
            stats: InjectStats::default(),
            trace: TraceHandle::default(),
        }
    }

    /// Install a tracer; non-clean verdicts emit [`TraceEvent::FaultVerdict`]
    /// (and [`TraceEvent::PacketDrop`] when the packet is dropped) stamped
    /// with the sender's rank.
    pub fn set_tracer(&mut self, trace: TraceHandle) {
        self.trace = trace;
    }

    /// Decide the fate of one transmission. `now_ns` is virtual time when
    /// the caller knows it (DES); the live driver passes `None`.
    pub fn decide(&mut self, pkt: &Packet, now_ns: Option<u64>) -> Verdict {
        let src = pkt.header.src.0;
        let dst = pkt.header.dst.0;
        let attempt = {
            let a = self.attempts.entry((src, dst)).or_insert(0);
            let v = *a;
            *a += 1;
            v
        };
        self.stats.transmissions += 1;
        let mut dropped = false;
        let mut extra_copies = 0u32;
        let mut extra_delay_ns = 0u64;
        for (i, rule) in self.plan.rules.iter().enumerate() {
            if !rule.matches(pkt, now_ns, attempt) {
                continue;
            }
            let p = rule.fault.probability();
            let hit = p >= 1.0
                || self
                    .root
                    .derive(&[DECISION_LABEL, i as u64, src as u64, dst as u64, attempt])
                    .chance(p);
            if !hit {
                continue;
            }
            match rule.fault {
                FaultKind::Drop { .. } => dropped = true,
                FaultKind::Duplicate { .. } => extra_copies += 1,
                FaultKind::Delay { extra_ns, .. } => {
                    extra_delay_ns += extra_ns;
                    self.stats.delayed += 1;
                }
                FaultKind::NicStall { stall_ns, .. } => {
                    *self.stall_ns.entry(src).or_insert(0) += stall_ns;
                    self.stats.stalls += 1;
                }
            }
        }
        let copies = if dropped { 0 } else { 1 + extra_copies };
        if dropped {
            self.stats.dropped += 1;
        }
        self.stats.duplicated += u64::from(if dropped { 0 } else { extra_copies });
        let verdict = Verdict {
            copies,
            extra_delay_ns: extra_delay_ns + self.stall_ns.get(&src).copied().unwrap_or(0),
        };
        if verdict != Verdict::clean() {
            self.trace.emit_for(
                src,
                TraceEvent::FaultVerdict {
                    dst,
                    copies: verdict.copies,
                    extra_delay_ns: verdict.extra_delay_ns,
                },
            );
            if verdict.copies == 0 {
                self.trace.emit_for(
                    src,
                    TraceEvent::PacketDrop {
                        dst,
                        kind: pkt.header.kind.label(),
                    },
                );
            }
        }
        verdict
    }

    /// What the injector has done so far.
    pub fn stats(&self) -> InjectStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abr_gm::{NodeId, PacketHeader};
    use bytes::Bytes;

    fn pkt(src: u32, dst: u32, kind: PacketKind) -> Packet {
        Packet::new(
            PacketHeader {
                src: NodeId(src),
                dst: NodeId(dst),
                kind,
                context: 1,
                tag: 0,
                coll_seq: 0,
                coll_root: 0,
                msg_len: 0,
                wire_seq: 0,
                rel_seq: 0,
            },
            Bytes::new(),
        )
    }

    #[test]
    fn empty_plan_is_clean() {
        let mut inj = FaultInjector::new(FaultPlan::none());
        for i in 0..100 {
            assert_eq!(
                inj.decide(&pkt(i % 4, (i + 1) % 4, PacketKind::Eager), Some(0)),
                Verdict::clean()
            );
        }
        assert_eq!(inj.stats().dropped, 0);
    }

    #[test]
    fn decisions_replay_identically() {
        let plan = FaultPlan::uniform_loss(7, 0.3);
        let run = || {
            let mut inj = FaultInjector::new(plan.clone());
            (0..200)
                .map(|i| inj.decide(&pkt(i % 3, 3, PacketKind::Collective), Some(i as u64)))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn decisions_are_independent_of_wall_time_knowledge() {
        // Window-free plans must decide identically whether or not the
        // caller knows virtual time (the DES/live equivalence requirement).
        let plan = FaultPlan::uniform_loss(9, 0.5);
        let mut a = FaultInjector::new(plan.clone());
        let mut b = FaultInjector::new(plan);
        for i in 0..100 {
            let p = pkt(0, 1, PacketKind::Eager);
            assert_eq!(a.decide(&p, Some(i * 1000)), b.decide(&p, None));
        }
    }

    #[test]
    fn targeted_attempt_rule_hits_exactly_once() {
        let plan = FaultPlan {
            seed: 1,
            rules: vec![FaultRule {
                link: LinkSel::Between(2, 0),
                kinds: KindSel::Any,
                window: None,
                attempt: Some(1),
                fault: FaultKind::Drop { p: 1.0 },
            }],
        };
        let mut inj = FaultInjector::new(plan);
        let hits: Vec<u32> = (0..5)
            .map(|_| inj.decide(&pkt(2, 0, PacketKind::Eager), None).copies)
            .collect();
        assert_eq!(hits, vec![1, 0, 1, 1, 1]);
        // Other links are untouched by the targeted rule.
        assert_eq!(inj.decide(&pkt(0, 2, PacketKind::Eager), None).copies, 1);
    }

    #[test]
    fn window_rules_need_virtual_time() {
        let plan = FaultPlan {
            seed: 1,
            rules: vec![FaultRule {
                link: LinkSel::Any,
                kinds: KindSel::Any,
                window: Some((1_000, 2_000)),
                attempt: None,
                fault: FaultKind::Drop { p: 1.0 },
            }],
        };
        let mut inj = FaultInjector::new(plan);
        assert_eq!(
            inj.decide(&pkt(0, 1, PacketKind::Eager), Some(500)).copies,
            1
        );
        assert_eq!(
            inj.decide(&pkt(0, 1, PacketKind::Eager), Some(1_500))
                .copies,
            0
        );
        assert_eq!(
            inj.decide(&pkt(0, 1, PacketKind::Eager), Some(2_000))
                .copies,
            1
        );
        assert_eq!(inj.decide(&pkt(0, 1, PacketKind::Eager), None).copies, 1);
    }

    #[test]
    fn nic_stall_accumulates_per_source() {
        let plan = FaultPlan {
            seed: 1,
            rules: vec![FaultRule {
                link: LinkSel::From(3),
                kinds: KindSel::Any,
                window: None,
                attempt: Some(0),
                fault: FaultKind::NicStall {
                    p: 1.0,
                    stall_ns: 500,
                },
            }],
        };
        let mut inj = FaultInjector::new(plan);
        assert_eq!(
            inj.decide(&pkt(3, 0, PacketKind::Eager), None)
                .extra_delay_ns,
            500
        );
        // Attempt counters are per directed link, so the first packet on
        // 3 -> 1 triggers a second stall; the lag is per *source* and sums.
        assert_eq!(
            inj.decide(&pkt(3, 1, PacketKind::Eager), None)
                .extra_delay_ns,
            1000
        );
        // Attempt 1 on 3 -> 0 no longer matches, but the accumulated source
        // lag still applies to every later packet from node 3.
        assert_eq!(
            inj.decide(&pkt(3, 0, PacketKind::Eager), None)
                .extra_delay_ns,
            1000
        );
        // Other sources are unaffected.
        assert_eq!(
            inj.decide(&pkt(2, 0, PacketKind::Eager), None)
                .extra_delay_ns,
            0
        );
    }

    #[test]
    fn kind_selector_scopes_rules() {
        let plan = FaultPlan {
            seed: 1,
            rules: vec![FaultRule {
                link: LinkSel::Any,
                kinds: KindSel::Collective,
                window: None,
                attempt: None,
                fault: FaultKind::Drop { p: 1.0 },
            }],
        };
        let mut inj = FaultInjector::new(plan);
        assert_eq!(inj.decide(&pkt(0, 1, PacketKind::Eager), None).copies, 1);
        assert_eq!(
            inj.decide(&pkt(0, 1, PacketKind::Collective), None).copies,
            0
        );
    }

    #[test]
    fn parse_round_trips_the_readme_example() {
        let plan = FaultPlan::parse(
            "seed=42; drop p=0.01; dup p=0.005 from=3; delay p=0.02 extra_us=50 kind=coll; \
             stall stall_us=200 between=1-0 attempt=2; drop window_us=10..20",
        )
        .unwrap();
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.rules.len(), 5);
        assert_eq!(plan.rules[0].fault, FaultKind::Drop { p: 0.01 });
        assert_eq!(plan.rules[1].link, LinkSel::From(3));
        assert_eq!(
            plan.rules[2].fault,
            FaultKind::Delay {
                p: 0.02,
                extra_ns: 50_000
            }
        );
        assert_eq!(plan.rules[2].kinds, KindSel::Collective);
        assert_eq!(plan.rules[3].link, LinkSel::Between(1, 0));
        assert_eq!(plan.rules[3].attempt, Some(2));
        assert_eq!(plan.rules[4].window, Some((10_000, 20_000)));
    }

    #[test]
    fn parse_rejects_junk_with_a_reason() {
        for bad in [
            "warp p=0.1",
            "drop q=0.1",
            "drop p=abc",
            "delay p=0.1",
            "seed=xyz",
            "drop between=1",
            "drop window_us=5",
        ] {
            let err = FaultPlan::parse(bad).unwrap_err();
            assert!(err.starts_with("fault plan:"), "{bad}: {err}");
        }
    }

    #[test]
    fn parse_ignores_comments_and_blanks() {
        let plan =
            FaultPlan::parse("# lossy scenario\n\nseed=5\ndrop p=0.5 # tail comment\n").unwrap();
        assert_eq!(plan.seed, 5);
        assert_eq!(plan.rules.len(), 1);
    }
}
