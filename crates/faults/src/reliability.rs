//! A GM-level reliable-delivery protocol, implemented sans-I/O.
//!
//! One [`NodeReliability`] instance sits between a node's engine and its
//! transport. It never performs I/O and never reads a clock: every entry
//! point takes `now_ns` (virtual nanoseconds in the DES, wall nanoseconds
//! since an epoch in the live driver) and appends [`RelEvent`]s describing
//! what the driver should do. The DES and live drivers therefore share this
//! exact implementation, which is what makes the cross-driver equivalence
//! tests meaningful.
//!
//! The protocol is the classic cumulative-ack scheme:
//!
//! * every data packet on a link carries a per-link sequence number
//!   (`rel_seq`, starting at 1; 0 marks traffic outside the protocol),
//! * the receiver delivers strictly in sequence order, buffering
//!   out-of-order arrivals and acking cumulatively (the ack's `rel_seq`
//!   field carries the highest contiguous sequence received),
//! * the sender retransmits the oldest unacked packet on timeout with
//!   exponential backoff, and escalates to [`RelEvent::LinkDead`] when the
//!   retry budget is exhausted.
//!
//! Because delivery is re-ordered back into sequence order, the layer also
//! *re-stamps* `wire_seq` on delivery from a per-peer monotone counter, so
//! the engines' FIFO-transport assertion keeps holding under faults.

use abr_gm::{NodeId, Packet, PacketHeader, PacketKind};
use abr_trace::{TraceEvent, TraceHandle};
use bytes::Bytes;
use std::collections::{BTreeMap, HashMap, VecDeque};

/// Timing and budget knobs for the reliability layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RelConfig {
    /// Initial retransmission timeout in nanoseconds.
    pub rto_ns: u64,
    /// Multiplier applied to the timeout after every retransmission.
    pub backoff: u32,
    /// Consecutive retransmissions of one packet before the link is
    /// declared dead.
    pub max_retries: u32,
}

impl RelConfig {
    /// Defaults tuned for virtual time in the DES: 500 us initial RTO.
    pub fn sim_default() -> Self {
        RelConfig {
            rto_ns: 500_000,
            backoff: 2,
            max_retries: 10,
        }
    }

    /// Defaults tuned for wall time in the live threaded driver. The RTO is
    /// deliberately generous (200 ms) so scheduler noise cannot produce
    /// spurious retransmissions that would diverge from the DES schedule.
    pub fn live_default() -> Self {
        RelConfig {
            rto_ns: 200_000_000,
            backoff: 2,
            max_retries: 10,
        }
    }
}

/// An instruction from the reliability layer back to its driver.
#[derive(Debug, Clone, PartialEq)]
pub enum RelEvent {
    /// Hand this packet to the local engine (in-sequence, deduplicated,
    /// `wire_seq` re-stamped).
    Deliver(Packet),
    /// Put this packet on the wire (an ack, or a retransmission).
    Transmit(Packet),
    /// The retry budget for `peer` is exhausted; the link is dead.
    LinkDead {
        /// The unreachable peer.
        peer: u32,
    },
}

/// Monotone counters for one node's reliability layer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RelStats {
    /// Data packets first-transmitted through the layer.
    pub data_sent: u64,
    /// Retransmissions put on the wire (total, counting repeats).
    pub retransmissions: u64,
    /// Distinct packets retransmitted at least once. This is the
    /// cross-driver comparable count: wall-clock jitter can repeat a
    /// retransmission but never changes which packets needed one.
    pub distinct_retransmitted: u64,
    /// Incoming duplicates suppressed before the engine saw them.
    pub duplicates_suppressed: u64,
    /// Out-of-order arrivals parked in the resequencing buffer.
    pub out_of_order_buffered: u64,
    /// Acks transmitted.
    pub acks_sent: u64,
    /// Acks received.
    pub acks_received: u64,
    /// Links declared dead.
    pub links_dead: u64,
}

impl RelStats {
    /// Elementwise sum, for aggregating across a cluster.
    pub fn merge(&mut self, other: &RelStats) {
        self.data_sent += other.data_sent;
        self.retransmissions += other.retransmissions;
        self.distinct_retransmitted += other.distinct_retransmitted;
        self.duplicates_suppressed += other.duplicates_suppressed;
        self.out_of_order_buffered += other.out_of_order_buffered;
        self.acks_sent += other.acks_sent;
        self.acks_received += other.acks_received;
        self.links_dead += other.links_dead;
    }
}

#[derive(Debug)]
struct TxPeer {
    next_seq: u64,
    unacked: VecDeque<(u64, Packet)>,
    /// Absolute deadline for the oldest unacked packet; `u64::MAX` when idle.
    deadline_ns: u64,
    cur_rto_ns: u64,
    retries: u32,
    head_retransmitted: bool,
    dead: bool,
}

impl TxPeer {
    fn new() -> Self {
        TxPeer {
            next_seq: 1,
            unacked: VecDeque::new(),
            deadline_ns: u64::MAX,
            cur_rto_ns: 0,
            retries: 0,
            head_retransmitted: false,
            dead: false,
        }
    }
}

#[derive(Debug)]
struct RxPeer {
    /// Highest contiguous sequence delivered to the engine.
    cum: u64,
    /// Out-of-order arrivals keyed by sequence.
    buffer: BTreeMap<u64, Packet>,
    /// Re-stamped `wire_seq` counter for in-order delivery.
    deliver_seq: u64,
}

impl RxPeer {
    fn new() -> Self {
        RxPeer {
            cum: 0,
            buffer: BTreeMap::new(),
            deliver_seq: 0,
        }
    }
}

/// Per-node reliable-delivery state: one TX window per destination peer and
/// one resequencing window per source peer.
#[derive(Debug)]
pub struct NodeReliability {
    rank: u32,
    cfg: RelConfig,
    tx: HashMap<u32, TxPeer>,
    rx: HashMap<u32, RxPeer>,
    stats: RelStats,
    trace: TraceHandle,
}

impl NodeReliability {
    /// Fresh state for node `rank`.
    pub fn new(rank: u32, cfg: RelConfig) -> Self {
        NodeReliability {
            rank,
            cfg,
            tx: HashMap::new(),
            rx: HashMap::new(),
            stats: RelStats::default(),
            trace: TraceHandle::default(),
        }
    }

    /// Install a tracer; every timer-driven retransmission emits
    /// [`TraceEvent::Retransmit`] stamped with this node's rank.
    pub fn set_tracer(&mut self, trace: TraceHandle) {
        self.trace = trace;
    }

    /// Counters so far.
    pub fn stats(&self) -> RelStats {
        self.stats
    }

    /// Register an outgoing data packet: stamps its `rel_seq`, buffers a
    /// copy for retransmission, arms the timer. Returns the stamped packet
    /// for the driver to transmit.
    pub fn on_send(&mut self, mut pkt: Packet, now_ns: u64) -> Packet {
        debug_assert_eq!(pkt.header.src.0, self.rank, "sending from the wrong node");
        debug_assert!(pkt.header.kind != PacketKind::Ack, "acks are not reliable");
        let peer = self.tx.entry(pkt.header.dst.0).or_insert_with(TxPeer::new);
        let seq = peer.next_seq;
        peer.next_seq += 1;
        pkt.header.rel_seq = seq;
        if peer.unacked.is_empty() {
            peer.cur_rto_ns = self.cfg.rto_ns;
            peer.deadline_ns = now_ns + self.cfg.rto_ns;
            peer.retries = 0;
            peer.head_retransmitted = false;
        }
        peer.unacked.push_back((seq, pkt.clone()));
        self.stats.data_sent += 1;
        pkt
    }

    /// Process an arriving packet (data or ack). In-sequence data comes back
    /// as [`RelEvent::Deliver`] (plus anything it unblocks from the
    /// resequencing buffer); every data arrival also produces a cumulative
    /// ack to transmit.
    pub fn on_receive(&mut self, pkt: Packet, now_ns: u64, out: &mut Vec<RelEvent>) {
        debug_assert_eq!(pkt.header.dst.0, self.rank, "delivered to the wrong node");
        if pkt.header.kind == PacketKind::Ack {
            self.on_ack(pkt.header.src.0, pkt.header.rel_seq, now_ns);
            return;
        }
        debug_assert!(pkt.header.rel_seq != 0, "reliable data without a rel_seq");
        let src = pkt.header.src.0;
        let rx = self.rx.entry(src).or_insert_with(RxPeer::new);
        let s = pkt.header.rel_seq;
        if s <= rx.cum {
            self.stats.duplicates_suppressed += 1;
        } else if s == rx.cum + 1 {
            rx.cum = s;
            let mut ready = vec![pkt];
            while let Some(p) = rx.buffer.remove(&(rx.cum + 1)) {
                rx.cum += 1;
                ready.push(p);
            }
            for mut p in ready {
                p.header.wire_seq = rx.deliver_seq;
                rx.deliver_seq += 1;
                out.push(RelEvent::Deliver(p));
            }
        } else {
            // A gap: park the packet and (re-)ack the contiguous prefix so
            // the sender's timer state stays honest.
            if rx.buffer.insert(s, pkt).is_some() {
                self.stats.duplicates_suppressed += 1;
            } else {
                self.stats.out_of_order_buffered += 1;
            }
        }
        let cum = self.rx[&src].cum;
        out.push(RelEvent::Transmit(self.ack_packet(src, cum)));
        self.stats.acks_sent += 1;
    }

    fn on_ack(&mut self, peer_id: u32, cum: u64, now_ns: u64) {
        self.stats.acks_received += 1;
        let Some(peer) = self.tx.get_mut(&peer_id) else {
            return;
        };
        let mut advanced = false;
        while peer.unacked.front().is_some_and(|&(seq, _)| seq <= cum) {
            peer.unacked.pop_front();
            advanced = true;
        }
        if advanced {
            peer.retries = 0;
            peer.head_retransmitted = false;
            peer.cur_rto_ns = self.cfg.rto_ns;
            peer.deadline_ns = if peer.unacked.is_empty() {
                u64::MAX
            } else {
                now_ns + self.cfg.rto_ns
            };
        }
    }

    /// Fire retransmission timers: every peer whose oldest unacked packet
    /// has passed its deadline gets one retransmission (with backoff), or a
    /// [`RelEvent::LinkDead`] once the retry budget is spent.
    pub fn on_tick(&mut self, now_ns: u64, out: &mut Vec<RelEvent>) {
        // Sorted iteration: HashMap order is instance-random, and the order
        // retransmissions hit the wire must replay deterministically.
        let mut peers: Vec<u32> = self.tx.keys().copied().collect();
        peers.sort_unstable();
        for peer_id in peers {
            let peer = self.tx.get_mut(&peer_id).expect("key came from the map");
            if peer.dead || peer.unacked.is_empty() || now_ns < peer.deadline_ns {
                continue;
            }
            if peer.retries >= self.cfg.max_retries {
                peer.dead = true;
                peer.deadline_ns = u64::MAX;
                self.stats.links_dead += 1;
                out.push(RelEvent::LinkDead { peer: peer_id });
                continue;
            }
            let (seq, pkt) = peer.unacked.front().expect("checked non-empty");
            self.trace.emit(TraceEvent::Retransmit {
                peer: peer_id,
                seq: *seq,
            });
            out.push(RelEvent::Transmit(pkt.clone()));
            self.stats.retransmissions += 1;
            if !peer.head_retransmitted {
                peer.head_retransmitted = true;
                self.stats.distinct_retransmitted += 1;
            }
            peer.retries += 1;
            peer.cur_rto_ns = peer.cur_rto_ns.saturating_mul(u64::from(self.cfg.backoff));
            peer.deadline_ns = now_ns + peer.cur_rto_ns;
        }
    }

    /// The earliest retransmission deadline across peers, if any timer is
    /// armed. Drivers schedule their next tick here.
    pub fn next_deadline(&self) -> Option<u64> {
        self.tx
            .values()
            .filter(|p| !p.dead && !p.unacked.is_empty())
            .map(|p| p.deadline_ns)
            .min()
    }

    /// One-line human-readable dump of every peer's TX/RX window, for
    /// debugging stuck runs (see the live driver's hang watchdog).
    pub fn debug_summary(&self) -> String {
        let mut s = format!("rank {}:", self.rank);
        let mut tx: Vec<_> = self.tx.iter().collect();
        tx.sort_by_key(|(id, _)| **id);
        for (id, p) in tx {
            if !p.unacked.is_empty() || p.dead {
                s.push_str(&format!(
                    " tx->{id}[unacked={} next={} dl={} retries={} dead={}]",
                    p.unacked.len(),
                    p.next_seq,
                    p.deadline_ns,
                    p.retries,
                    p.dead
                ));
            }
        }
        let mut rx: Vec<_> = self.rx.iter().collect();
        rx.sort_by_key(|(id, _)| **id);
        for (id, p) in rx {
            if !p.buffer.is_empty() {
                s.push_str(&format!(
                    " rx<-{id}[cum={} buffered={}]",
                    p.cum,
                    p.buffer.len()
                ));
            }
        }
        s
    }

    fn ack_packet(&self, peer: u32, cum: u64) -> Packet {
        Packet::new(
            PacketHeader {
                src: NodeId(self.rank),
                dst: NodeId(peer),
                kind: PacketKind::Ack,
                context: 0,
                tag: 0,
                coll_seq: 0,
                coll_root: 0,
                msg_len: 0,
                wire_seq: 0,
                rel_seq: cum,
            },
            Bytes::new(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(src: u32, dst: u32, tag: i32) -> Packet {
        Packet::new(
            PacketHeader {
                src: NodeId(src),
                dst: NodeId(dst),
                kind: PacketKind::Eager,
                context: 1,
                tag,
                coll_seq: 0,
                coll_root: 0,
                msg_len: 0,
                wire_seq: 0,
                rel_seq: 0,
            },
            Bytes::new(),
        )
    }

    fn delivered_tags(out: &[RelEvent]) -> Vec<i32> {
        out.iter()
            .filter_map(|e| match e {
                RelEvent::Deliver(p) => Some(p.header.tag),
                _ => None,
            })
            .collect()
    }

    fn cfg() -> RelConfig {
        RelConfig {
            rto_ns: 1_000,
            backoff: 2,
            max_retries: 3,
        }
    }

    #[test]
    fn in_order_traffic_flows_and_acks() {
        let mut tx = NodeReliability::new(0, cfg());
        let mut rx = NodeReliability::new(1, cfg());
        let mut out = Vec::new();
        for tag in 0..5 {
            let p = tx.on_send(data(0, 1, tag), 0);
            assert_eq!(p.header.rel_seq, tag as u64 + 1);
            rx.on_receive(p, 10, &mut out);
        }
        assert_eq!(delivered_tags(&out), vec![0, 1, 2, 3, 4]);
        // Feed the acks back; the sender's window drains and timers disarm.
        for e in out {
            if let RelEvent::Transmit(ack) = e {
                tx.on_receive(ack, 20, &mut Vec::new());
            }
        }
        assert_eq!(tx.next_deadline(), None);
        assert_eq!(rx.stats().duplicates_suppressed, 0);
    }

    #[test]
    fn delivery_restamps_wire_seq_monotonically() {
        let mut tx = NodeReliability::new(0, cfg());
        let mut rx = NodeReliability::new(1, cfg());
        let a = tx.on_send(data(0, 1, 0), 0);
        let b = tx.on_send(data(0, 1, 1), 0);
        let mut out = Vec::new();
        rx.on_receive(b, 10, &mut out); // arrives first (reordered)
        assert!(delivered_tags(&out).is_empty(), "gap must not deliver");
        rx.on_receive(a, 11, &mut out);
        let seqs: Vec<u64> = out
            .iter()
            .filter_map(|e| match e {
                RelEvent::Deliver(p) => Some(p.header.wire_seq),
                _ => None,
            })
            .collect();
        assert_eq!(delivered_tags(&out), vec![0, 1]);
        assert_eq!(seqs, vec![0, 1], "wire_seq re-stamped in delivery order");
        assert_eq!(rx.stats().out_of_order_buffered, 1);
    }

    #[test]
    fn duplicates_are_suppressed_and_reacked() {
        let mut tx = NodeReliability::new(0, cfg());
        let mut rx = NodeReliability::new(1, cfg());
        let p = tx.on_send(data(0, 1, 7), 0);
        let mut out = Vec::new();
        rx.on_receive(p.clone(), 10, &mut out);
        rx.on_receive(p, 11, &mut out);
        assert_eq!(delivered_tags(&out), vec![7], "delivered exactly once");
        assert_eq!(rx.stats().duplicates_suppressed, 1);
        // The duplicate still produced a (cumulative) ack.
        assert_eq!(rx.stats().acks_sent, 2);
    }

    #[test]
    fn timeout_retransmits_with_backoff_then_declares_link_dead() {
        let mut tx = NodeReliability::new(0, cfg());
        let _ = tx.on_send(data(0, 1, 0), 0);
        let mut now = 0;
        let mut retransmits = 0;
        let mut dead = false;
        for _ in 0..10 {
            now = tx.next_deadline().unwrap_or(now + 1);
            let mut out = Vec::new();
            tx.on_tick(now, &mut out);
            for e in out {
                match e {
                    RelEvent::Transmit(p) => {
                        assert_eq!(p.header.rel_seq, 1);
                        retransmits += 1;
                    }
                    RelEvent::LinkDead { peer } => {
                        assert_eq!(peer, 1);
                        dead = true;
                    }
                    RelEvent::Deliver(_) => panic!("tick cannot deliver"),
                }
            }
            if dead {
                break;
            }
        }
        assert_eq!(retransmits, 3, "retry budget bounds retransmissions");
        assert!(dead, "budget exhaustion escalates to LinkDead");
        assert_eq!(tx.next_deadline(), None, "dead links disarm their timer");
        assert_eq!(tx.stats().distinct_retransmitted, 1);
        assert_eq!(tx.stats().retransmissions, 3);
    }

    #[test]
    fn backoff_doubles_the_deadline_gap() {
        let mut tx = NodeReliability::new(0, cfg());
        let _ = tx.on_send(data(0, 1, 0), 0);
        let d1 = tx.next_deadline().unwrap();
        assert_eq!(d1, 1_000);
        tx.on_tick(d1, &mut Vec::new());
        let d2 = tx.next_deadline().unwrap();
        assert_eq!(d2 - d1, 2_000, "second RTO doubled");
        tx.on_tick(d2, &mut Vec::new());
        let d3 = tx.next_deadline().unwrap();
        assert_eq!(d3 - d2, 4_000, "third RTO doubled again");
    }

    #[test]
    fn ack_resets_the_retry_budget_for_the_next_packet() {
        let mut tx = NodeReliability::new(0, cfg());
        let _ = tx.on_send(data(0, 1, 0), 0);
        let _ = tx.on_send(data(0, 1, 1), 0);
        // First packet needs two retransmissions before its ack arrives.
        let mut out = Vec::new();
        tx.on_tick(1_000, &mut out);
        tx.on_tick(3_000, &mut out);
        assert_eq!(tx.stats().retransmissions, 2);
        let mut rx = NodeReliability::new(1, cfg());
        let mut acks = Vec::new();
        rx.on_receive(
            out.iter()
                .find_map(|e| match e {
                    RelEvent::Transmit(p) => Some(p.clone()),
                    _ => None,
                })
                .unwrap(),
            3_500,
            &mut acks,
        );
        let ack = acks
            .iter()
            .find_map(|e| match e {
                RelEvent::Transmit(p) => Some(p.clone()),
                _ => None,
            })
            .unwrap();
        tx.on_receive(ack, 4_000, &mut Vec::new());
        // The second packet now heads the window with a fresh RTO and budget.
        assert_eq!(tx.next_deadline(), Some(4_000 + 1_000));
        let mut out2 = Vec::new();
        tx.on_tick(5_000, &mut out2);
        assert_eq!(tx.stats().distinct_retransmitted, 2);
    }

    #[test]
    fn stats_merge_sums_elementwise() {
        let mut a = RelStats {
            data_sent: 1,
            acks_sent: 2,
            ..Default::default()
        };
        let b = RelStats {
            data_sent: 3,
            duplicates_suppressed: 4,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.data_sent, 4);
        assert_eq!(a.acks_sent, 2);
        assert_eq!(a.duplicates_suppressed, 4);
    }
}
