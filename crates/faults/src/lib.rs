//! `abr_faults` — deterministic fault injection and reliable delivery.
//!
//! The paper's design (and our `abr_gm` substrate) silently assumes GM's
//! reliable, ordered delivery. This crate removes that assumption in a
//! controlled way:
//!
//! * [`FaultPlan`] / [`FaultInjector`] — a seeded schedule of drop /
//!   duplicate / extra-delay / NIC-stall faults, scoped per-link,
//!   per-packet-kind, per-time-window, or to a single targeted transmission
//!   attempt. Every decision is a pure function of the seed, so the DES and
//!   live drivers replay the identical schedule.
//! * [`NodeReliability`] — a sans-I/O cumulative-ack protocol (per-link
//!   sequence numbers, timeout + exponential-backoff retransmission, retry
//!   budget with [`RelEvent::LinkDead`] escalation) shared verbatim by both
//!   drivers.
//!
//! With [`FaultPlan::none()`] the drivers bypass both pieces entirely, so
//! the fault layer is cost-neutral when unused.
//!
//! **Tracing**: with an [`abr_trace::TraceHandle`] installed, every
//! non-clean [`Verdict`] (and the drop it implies) and every timer-driven
//! retransmission is emitted as a trace event, so a fault schedule can be
//! read back off the timeline next to the packets it perturbed.

#![deny(missing_docs)]

pub mod plan;
pub mod reliability;

pub use plan::{
    FaultInjector, FaultKind, FaultPlan, FaultRule, InjectStats, KindSel, LinkSel, Verdict,
};
pub use reliability::{NodeReliability, RelConfig, RelEvent, RelStats};
