//! The per-rank sans-I/O protocol engine.
//!
//! The engine consumes two kinds of input — application calls (`isend`,
//! `irecv`, collectives) and packets [`Engine::deliver`]ed by the transport —
//! and produces [`Action`]s (packets to send, signal enable/disable
//! requests) plus CPU [`Charges`]. It never blocks, never looks at a clock
//! and never touches a socket: the drivers in `abr_cluster` own time and
//! I/O, which lets the identical protocol code run under the discrete-event
//! simulator and the live threaded runtime.
//!
//! [`Engine::progress`] is the MPICH communication progress engine of
//! Fig. 4 *without* the gray application-bypass boxes: dequeue incoming
//! messages, match them against posted receives or park them on the
//! unexpected queue, and advance any collective state machines. `abr_core`
//! adds the gray boxes by wrapping this type.

use crate::charge::Charges;
use crate::coll::{
    barrier_rounds, AllgatherPhase, AllgatherState, AllreducePhase, AllreduceState, BarrierState,
    BcastState, CollState, DualAllreduceState, DualHalf, DualSeg, GatherState, ReduceState,
    RsAllreduceState, RsPhase, ScatterState, SegReduceState,
};
use crate::comm::Communicator;
pub use crate::matchq::UnexpectedMsg;

use crate::matchq::{MsgKey, PostedQueue, PostedRecv, UnexpectedQueue};
use crate::op::ReduceOp;
use crate::request::{Outcome, RecvState, ReqId, Request, RequestBody, RndvSend};
use crate::topology::{shared_schedule, ScheduleCache, TopoSchedule, TopologyKind};
use crate::types::{coll_code, coll_tag, Datatype, MprError, Rank, TagSel};
use abr_des::meter::CpuCategory;
use abr_gm::cost::CostModel;
use abr_gm::memory::MemoryRegistry;
use abr_gm::packet::{NodeId, Packet, PacketHeader, PacketKind};
use abr_trace::{TraceEvent, TraceHandle};
use bytes::Bytes;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Outputs the driver must act on, in order.
#[derive(Debug, Clone)]
pub enum Action {
    /// Hand this packet to the NIC.
    Send(Packet),
    /// Enable NIC signal generation (application-bypass layer only).
    EnableSignals,
    /// Disable NIC signal generation.
    DisableSignals,
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// The machine cost model.
    pub cost: CostModel,
    /// Messages at or below this many payload bytes go eager; larger ones
    /// rendezvous. MPICH-over-GM used 16 KiB-class thresholds.
    pub eager_limit: usize,
    /// Optional pinned-memory budget for rendezvous transfers.
    pub memory_budget: Option<usize>,
    /// Payloads at or above this many bytes use the Rabenseifner
    /// (reduce-scatter + allgather) allreduce on power-of-two
    /// communicators — the bandwidth-optimal large-message algorithm.
    pub allreduce_rs_threshold: usize,
    /// Tree family for reduce/bcast/allreduce schedules. The binomial
    /// default reproduces MPICH (and the pre-schedule engine) exactly.
    pub topology: TopologyKind,
    /// Consult the process-global schedule registry (default) so all
    /// engines share one `TopoSchedule` per shape. `false` restores the
    /// pre-registry per-engine builds — `O(size)` memory and build time
    /// *per rank* — and exists for the scale benchmark's baseline.
    pub shared_schedules: bool,
    /// Pipeline window for segmented reductions (the `ABR_SEGMENTS` knob):
    /// the maximum number of message segments in flight per collective.
    /// `1` (the default) disables segmentation entirely — every reduce
    /// takes the legacy single-segment path, byte-identical to the
    /// pre-segmentation engine. Values `>= 2` split payloads larger than
    /// the Lowery–Langou optimal segment size
    /// ([`CostModel::optimal_segment_bytes`]) into pipelined segments.
    pub segments: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            cost: CostModel::default(),
            eager_limit: 16 * 1024,
            memory_budget: None,
            allreduce_rs_threshold: 2048,
            topology: TopologyKind::Binomial,
            shared_schedules: true,
            segments: 1,
        }
    }
}

/// Monotone counters describing what the engine has done; used by tests and
/// by the copy-accounting experiments.
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineStats {
    /// Eager(-class) packets sent (includes collective-kind sends).
    pub eager_sent: u64,
    /// Rendezvous transfers initiated.
    pub rndv_sent: u64,
    /// Packets processed by the progress engine.
    pub packets_processed: u64,
    /// Messages that matched a posted receive on arrival (one copy).
    pub posted_matched: u64,
    /// Messages parked on the unexpected queue on arrival (first copy).
    pub unexpected_enqueued: u64,
    /// Receives satisfied from the unexpected queue (second copy).
    pub unexpected_matched: u64,
    /// Host memory copies performed.
    pub copies: u64,
    /// Bytes moved by those copies.
    pub copy_bytes: u64,
    /// Progress-engine entries.
    pub polls: u64,
    /// Collectives completed.
    pub colls_completed: u64,
    /// Retransmitted duplicates dropped before matching (reliability layer
    /// active and a repeat `rel_seq` arrived).
    pub duplicates_suppressed: u64,
}

/// The per-rank protocol engine. See the module docs.
pub struct Engine {
    rank: Rank,
    size: u32,
    config: EngineConfig,
    rx: VecDeque<Packet>,
    posted: PostedQueue,
    unexpected: UnexpectedQueue,
    requests: HashMap<u64, Request>,
    next_req: u64,
    next_xfer: u64,
    actions: Vec<Action>,
    charges: Charges,
    coll_seqs: HashMap<u32, u64>,
    active_colls: Vec<ReqId>,
    pending_rndv_sends: HashMap<u64, ReqId>,
    pending_rndv_recvs: HashMap<u64, ReqId>,
    memory: MemoryRegistry,
    stats: EngineStats,
    reduce_packet_kind: PacketKind,
    derived_comms: u32,
    last_wire_seq: HashMap<Rank, u64>,
    /// Highest reliability sequence seen per source; duplicates at or below
    /// it are dropped before matching (idempotent duplicate suppression).
    last_rel_seq: HashMap<Rank, u64>,
    /// Schedules cached per `(root, size)`; collective instances share
    /// them via `Arc` so tree structure is computed once per shape.
    scheds: ScheduleCache,
    trace: TraceHandle,
    /// This engine's world communicator. Defaults to the classic world
    /// contexts; a multi-tenant harness rebinds it (via [`Engine::set_world`])
    /// to a per-job context pair so collective sequence numbers — keyed by
    /// `coll_context` in `coll_seqs` — live in per-job namespaces.
    world: Communicator,
}

/// Result of stepping one collective.
struct StepRes {
    progressed: bool,
    outcome: Option<Outcome>,
}

impl StepRes {
    fn pending(progressed: bool) -> Self {
        StepRes {
            progressed,
            outcome: None,
        }
    }
    fn done(outcome: Outcome) -> Self {
        StepRes {
            progressed: true,
            outcome: Some(outcome),
        }
    }
}

impl Engine {
    /// A fresh engine for `rank` of `size`.
    pub fn new(rank: Rank, size: u32, config: EngineConfig) -> Self {
        assert!(size >= 1 && rank < size, "rank {rank} outside 0..{size}");
        let memory = match config.memory_budget {
            Some(b) => MemoryRegistry::with_budget(b),
            None => MemoryRegistry::unbounded(),
        };
        let scheds = if config.shared_schedules {
            ScheduleCache::new(config.topology)
        } else {
            ScheduleCache::new_private(config.topology)
        };
        Engine {
            rank,
            size,
            config,
            rx: VecDeque::new(),
            posted: PostedQueue::new(),
            unexpected: UnexpectedQueue::new(),
            requests: HashMap::new(),
            next_req: 0,
            next_xfer: 0,
            actions: Vec::new(),
            charges: Charges::ZERO,
            coll_seqs: HashMap::new(),
            active_colls: Vec::new(),
            pending_rndv_sends: HashMap::new(),
            pending_rndv_recvs: HashMap::new(),
            memory,
            stats: EngineStats::default(),
            reduce_packet_kind: PacketKind::Eager,
            derived_comms: 0,
            last_wire_seq: HashMap::new(),
            last_rel_seq: HashMap::new(),
            scheds,
            trace: TraceHandle::default(),
            world: Communicator::world(size),
        }
    }

    /// The cached schedule for a collective rooted at `root` over `size`
    /// ranks, built on first use from the configured topology. The
    /// application-bypass layer uses the same cache, so descriptors and
    /// blocking collectives always agree on tree shape.
    pub fn schedule(&mut self, root: Rank, size: u32) -> std::sync::Arc<TopoSchedule> {
        self.scheds.get(root, size)
    }

    /// The configured tree family.
    pub fn topology(&self) -> TopologyKind {
        self.scheds.kind()
    }

    /// Emit engine-level trace events (packet sends/receives, collective
    /// phase transitions, match-queue outcomes) through `trace`. Also
    /// installs the handle into the match queues.
    pub fn set_tracer(&mut self, trace: TraceHandle) {
        self.posted.set_tracer(trace.clone());
        self.unexpected.set_tracer(trace.clone());
        self.trace = trace;
    }

    /// The engine's trace handle (the application-bypass wrapper emits
    /// through the same handle).
    pub fn tracer(&self) -> &TraceHandle {
        &self.trace
    }

    /// This engine's rank.
    pub fn rank(&self) -> Rank {
        self.rank
    }

    /// Communicator size.
    pub fn size(&self) -> u32 {
        self.size
    }

    /// The world communicator (per-job contexts under multi-tenancy).
    pub fn world(&self) -> Communicator {
        self.world
    }

    /// Rebind this engine's world communicator, e.g. to a per-job context
    /// pair from [`Communicator::job`] in a multi-tenant run. The size must
    /// match the engine's; `Communicator::job(0, size)` is the identity.
    pub fn set_world(&mut self, world: Communicator) {
        assert_eq!(world.size, self.size, "world communicator size mismatch");
        self.world = world;
    }

    /// Derive a fresh communicator (all ranks must call in the same order).
    pub fn create_comm(&mut self) -> Communicator {
        let c = Communicator::derived(self.derived_comms, self.size);
        self.derived_comms += 1;
        c
    }

    /// The cost model.
    pub fn cost(&self) -> &CostModel {
        &self.config.cost
    }

    /// The eager/rendezvous threshold in payload bytes.
    pub fn eager_limit(&self) -> usize {
        self.config.eager_limit
    }

    /// Configured segmentation pipeline window, clamped to at least 1.
    pub fn segment_window(&self) -> usize {
        self.config.segments.max(1)
    }

    /// Engine counters.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Pinned-memory registry (for audits).
    pub fn memory(&self) -> &MemoryRegistry {
        &self.memory
    }

    /// Set the packet kind used for reduction traffic. The application-
    /// bypass layer switches this to [`PacketKind::Collective`] so the
    /// destination NIC can raise signals (§V-A); the stock baseline keeps
    /// [`PacketKind::Eager`].
    pub fn set_reduce_packet_kind(&mut self, kind: PacketKind) {
        self.reduce_packet_kind = kind;
    }

    /// The packet kind reduction traffic currently uses.
    pub fn reduce_packet_kind(&self) -> PacketKind {
        self.reduce_packet_kind
    }

    /// Charge CPU work (the application-bypass wrapper also uses this).
    pub fn charge(&mut self, category: CpuCategory, d: abr_des::SimDuration) {
        self.charges.add(category, d);
    }

    /// Queue an action for the driver (the application-bypass wrapper uses
    /// this for signal toggles).
    pub fn push_action(&mut self, action: Action) {
        if let Action::Send(pkt) = &action {
            self.trace.emit(TraceEvent::PacketSend {
                dst: pkt.header.dst.0,
                kind: pkt.header.kind.label(),
                bytes: pkt.header.msg_len,
            });
        }
        self.actions.push(action);
    }

    /// Allocate the next collective sequence number for a context. Every
    /// rank calls collectives in the same order, so these agree cluster-wide
    /// and identify reduction *instances* (§IV-D).
    pub fn alloc_coll_seq(&mut self, coll_context: u32) -> u64 {
        let c = self.coll_seqs.entry(coll_context).or_insert(0);
        let seq = *c;
        *c += 1;
        seq
    }

    // ------------------------------------------------------------------
    // Driver interface
    // ------------------------------------------------------------------

    /// Deposit a packet in the NIC receive queue. Free: the host pays
    /// nothing until the progress engine dequeues it.
    pub fn deliver(&mut self, pkt: Packet) {
        debug_assert_eq!(pkt.header.dst, NodeId(self.rank), "misrouted packet");
        self.rx.push_back(pkt);
    }

    /// One pass of the progress engine, charging the poll-entry cost.
    /// Returns true if any message was processed or any state advanced.
    pub fn progress(&mut self) -> bool {
        self.stats.polls += 1;
        let poll = self.config.cost.poll();
        self.charge(CpuCategory::Polling, poll);
        self.crank()
    }

    /// The body of the progress engine without the poll-entry charge
    /// (shared with the application-bypass asynchronous handler).
    pub fn crank(&mut self) -> bool {
        let mut progressed = false;
        while let Some(pkt) = self.rx.pop_front() {
            self.process_packet(pkt);
            progressed = true;
        }
        while self.step_collectives() {
            progressed = true;
        }
        progressed
    }

    /// Drain queued actions.
    pub fn drain_actions(&mut self) -> Vec<Action> {
        std::mem::take(&mut self.actions)
    }

    /// Drain queued actions into `out`, preserving order.
    ///
    /// Unlike [`Engine::drain_actions`] this allocates nothing: the
    /// engine's internal buffer keeps its capacity, so a driver that calls
    /// this every progress step with a reused scratch vector stays
    /// allocation-free at steady state.
    pub fn drain_actions_into(&mut self, out: &mut Vec<Action>) {
        out.append(&mut self.actions);
    }

    /// Drain accumulated CPU charges.
    pub fn take_charges(&mut self) -> Charges {
        self.charges.take()
    }

    /// Merge previously taken charges back in (the application-bypass layer
    /// uses this to re-categorize work done inside a signal handler).
    pub fn merge_charges(&mut self, charges: Charges) {
        self.charges.merge(charges);
    }

    /// Allocate a request owned by an outer layer (application bypass). It
    /// tests incomplete until [`Engine::complete_shell`] is called.
    pub fn alloc_shell_req(&mut self) -> ReqId {
        let id = self.fresh_req();
        self.requests
            .insert(id.raw(), Request::new(RequestBody::SendEager));
        id
    }

    /// Complete a shell request with `outcome`.
    pub fn complete_shell(&mut self, req: ReqId, outcome: Outcome) {
        if let Some(r) = self.requests.get_mut(&req.raw()) {
            debug_assert!(r.outcome.is_none(), "shell request completed twice");
            r.outcome = Some(outcome);
        }
    }

    /// Sweep the MPICH unexpected queue for a message from `src` with `tag`
    /// in `context`. The split-phase root path uses this to fold in
    /// children that arrived before the descriptor existed. Charges the
    /// second copy exactly as a matching receive would.
    pub fn take_unexpected(
        &mut self,
        src: Option<Rank>,
        tag: TagSel,
        context: u32,
    ) -> Option<UnexpectedMsg> {
        let msg = self.unexpected.take_match(src, tag, context)?;
        self.stats.unexpected_matched += 1;
        let copy = self.config.cost.copy(msg.msg_len);
        self.charge(CpuCategory::Protocol, copy);
        self.note_copy(msg.msg_len);
        Some(msg)
    }

    /// True if undelivered packets sit in the receive queue.
    pub fn has_rx(&self) -> bool {
        !self.rx.is_empty()
    }

    // ------------------------------------------------------------------
    // Point-to-point
    // ------------------------------------------------------------------

    /// Non-blocking send on a communicator (eager or rendezvous by size).
    pub fn isend(&mut self, comm: &Communicator, dst: Rank, tag: i32, data: Bytes) -> ReqId {
        self.isend_with_kind(dst, tag, comm.pt2pt_context, data, PacketKind::Eager, 0, 0)
    }

    /// Non-blocking receive on a communicator.
    pub fn irecv(
        &mut self,
        comm: &Communicator,
        src: Option<Rank>,
        tag: TagSel,
        capacity: usize,
    ) -> ReqId {
        self.irecv_internal(src, tag, comm.pt2pt_context, capacity, None)
    }

    /// Send with full header control. `kind` selects eager-class
    /// (`Eager`/`Collective`) transmission for small payloads; payloads over
    /// the eager limit always go rendezvous regardless of `kind`.
    #[allow(clippy::too_many_arguments)] // mirrors the wire-header fields
    pub fn isend_with_kind(
        &mut self,
        dst: Rank,
        tag: i32,
        context: u32,
        data: Bytes,
        kind: PacketKind,
        coll_seq: u64,
        coll_root: Rank,
    ) -> ReqId {
        debug_assert!(
            dst < self.size,
            "send to rank {dst} outside 0..{}",
            self.size
        );
        let id = self.fresh_req();
        if data.len() <= self.config.eager_limit {
            // Eager: copy into the pre-pinned bounce buffer, hand to NIC,
            // locally complete immediately.
            let copy = self.config.cost.copy(data.len());
            self.charge(CpuCategory::Protocol, self.config.cost.eager_send_host());
            self.charge(CpuCategory::Protocol, copy);
            self.note_copy(data.len());
            let header = PacketHeader {
                src: NodeId(self.rank),
                dst: NodeId(dst),
                kind,
                context,
                tag,
                coll_seq,
                coll_root,
                msg_len: data.len() as u32,
                wire_seq: 0,
                rel_seq: 0,
            };
            self.push_action(Action::Send(Packet::new(header, data)));
            self.stats.eager_sent += 1;
            let mut req = Request::new(RequestBody::SendEager);
            req.outcome = Some(Outcome::Done);
            self.requests.insert(id.raw(), req);
        } else {
            // Rendezvous: pin in place, announce with an RTS, wait for CTS.
            let pin = self.config.cost.pin(data.len());
            self.charge(CpuCategory::Protocol, pin);
            self.charge(CpuCategory::Protocol, self.config.cost.rndv_control_host());
            let region = self
                .memory
                .register(data.len())
                .expect("pinned-memory budget exceeded on send");
            let xfer_id = self.fresh_xfer();
            let header = PacketHeader {
                src: NodeId(self.rank),
                dst: NodeId(dst),
                kind: PacketKind::RendezvousRts,
                context,
                tag,
                coll_seq: xfer_id,
                coll_root: 0,
                msg_len: data.len() as u32,
                wire_seq: 0,
                rel_seq: 0,
            };
            self.actions
                .push(Action::Send(Packet::new(header, Bytes::new())));
            self.stats.rndv_sent += 1;
            self.pending_rndv_sends.insert(xfer_id, id);
            self.requests.insert(
                id.raw(),
                Request::new(RequestBody::SendRndv(RndvSend {
                    dst,
                    xfer_id,
                    data,
                    region,
                    tag,
                    context,
                })),
            );
        }
        id
    }

    /// Receive with full control; `expect_coll_seq` adds the §IV-D debug
    /// cross-check for collective-internal receives.
    pub fn irecv_internal(
        &mut self,
        src: Option<Rank>,
        tag: TagSel,
        context: u32,
        capacity: usize,
        expect_coll_seq: Option<u64>,
    ) -> ReqId {
        let id = self.fresh_req();
        self.requests.insert(
            id.raw(),
            Request::new(RequestBody::Recv(RecvState::default())),
        );
        // MPI_Recv semantics: search the unexpected queue first (§III).
        self.charge(CpuCategory::Protocol, self.config.cost.matching());
        if let Some(msg) = self.unexpected.take_match(src, tag, context) {
            debug_assert!(
                // A parked RTS carries the rendezvous transfer id in this
                // field, not the collective sequence; skip the cross-check.
                msg.kind == PacketKind::RendezvousRts
                    || expect_coll_seq.is_none_or(|s| s == msg.coll_seq),
                "FIFO transport delivered collective instance {} where {} was expected",
                msg.coll_seq,
                expect_coll_seq.unwrap()
            );
            self.stats.unexpected_matched += 1;
            match msg.kind {
                PacketKind::RendezvousRts => {
                    if msg.msg_len > capacity {
                        self.fail_req(
                            id,
                            MprError::Truncation {
                                received: msg.msg_len,
                                capacity,
                            },
                        );
                    } else {
                        self.begin_rndv_recv(id, msg.src, msg.coll_seq, msg.msg_len, context);
                    }
                }
                _ => {
                    if msg.msg_len > capacity {
                        self.fail_req(
                            id,
                            MprError::Truncation {
                                received: msg.msg_len,
                                capacity,
                            },
                        );
                    } else {
                        // Second copy: unexpected buffer -> user buffer.
                        let copy = self.config.cost.copy(msg.msg_len);
                        self.charge(CpuCategory::Protocol, copy);
                        self.note_copy(msg.msg_len);
                        self.complete_recv(id, msg.data);
                    }
                }
            }
        } else {
            self.posted.post(PostedRecv {
                id,
                src,
                tag,
                context,
                capacity,
                expect_coll_seq,
            });
        }
        id
    }

    // ------------------------------------------------------------------
    // Collectives
    // ------------------------------------------------------------------

    /// Allocate `count` consecutive collective sequence numbers for a
    /// context, returning the first. Segmented collectives reserve one
    /// sequence per segment so every segment matches independently; all
    /// ranks compute the same segment count from shared configuration, so
    /// the block allocation agrees cluster-wide.
    pub fn alloc_seq_range(&mut self, coll_context: u32, count: usize) -> u64 {
        let c = self.coll_seqs.entry(coll_context).or_insert(0);
        let first = *c;
        *c += count as u64;
        first
    }

    /// Segment plan for a reduction of `len` bytes over the configured
    /// topology rooted at `root`: `(segment_count, segment_bytes)`.
    ///
    /// Returns `(1, len)` — no segmentation — unless the engine's pipeline
    /// window ([`EngineConfig::segments`]) is at least 2 *and* the payload
    /// splits into at least two segments at the Lowery–Langou optimal
    /// size. The application-bypass layer calls this before allocating
    /// sequence numbers so both layers agree on the count.
    pub fn segment_plan(
        &mut self,
        root: Rank,
        size: u32,
        len: usize,
        elem_bytes: usize,
    ) -> (usize, usize) {
        if self.config.segments <= 1 {
            return (1, len);
        }
        let depth = self.schedule(root, size).max_depth();
        self.plan_segments(len, elem_bytes, depth)
    }

    /// [`Engine::segment_plan`] for an explicit pipeline depth (the
    /// dual-root halves plan against their chain schedules, not the
    /// configured topology).
    pub fn plan_segments(&self, len: usize, elem_bytes: usize, depth: u32) -> (usize, usize) {
        if self.config.segments <= 1 || len <= elem_bytes.max(1) || depth == 0 {
            return (1, len);
        }
        let seg =
            self.config
                .cost
                .optimal_segment_bytes(len, depth, elem_bytes, self.config.eager_limit);
        let k = len.div_ceil(seg);
        if k < 2 {
            (1, len)
        } else {
            (k, seg)
        }
    }

    /// Post the default blocking binomial reduction (the `nab` baseline).
    /// `data` is this rank's contribution; the root's result is the
    /// request's [`Outcome::Data`].
    ///
    /// When segmentation is enabled and the payload is large enough
    /// ([`Engine::segment_plan`]), this becomes a segmented pipelined
    /// reduction instead; with the default single-segment window the
    /// legacy path runs unchanged.
    pub fn ireduce(
        &mut self,
        comm: &Communicator,
        root: Rank,
        op: ReduceOp,
        dtype: Datatype,
        data: &[u8],
    ) -> ReqId {
        comm.check_rank(root).expect("invalid root");
        let (k, seg_bytes) = self.segment_plan(root, comm.size, data.len(), dtype.size());
        if k <= 1 {
            let coll_seq = self.alloc_coll_seq(comm.coll_context);
            return self.ireduce_with_seq(comm, root, op, dtype, data, coll_seq);
        }
        let base_seq = self.alloc_seq_range(comm.coll_context, k);
        self.ireduce_segmented_with_seqs(comm, root, op, dtype, data, base_seq, k, seg_bytes)
    }

    /// As [`Engine::ireduce`] with an externally allocated sequence number
    /// (the application-bypass layer allocates before choosing a path).
    pub fn ireduce_with_seq(
        &mut self,
        comm: &Communicator,
        root: Rank,
        op: ReduceOp,
        dtype: Datatype,
        data: &[u8],
        coll_seq: u64,
    ) -> ReqId {
        let sched = self.schedule(root, comm.size);
        self.ireduce_with_seq_sched(comm, root, op, dtype, data, coll_seq, sched)
    }

    /// As [`Engine::ireduce_with_seq`] against an explicit schedule (the
    /// dual-root allreduce steps chain schedules regardless of the
    /// configured topology).
    #[allow(clippy::too_many_arguments)] // mirrors ireduce_with_seq + sched
    pub fn ireduce_with_seq_sched(
        &mut self,
        comm: &Communicator,
        root: Rank,
        op: ReduceOp,
        dtype: Datatype,
        data: &[u8],
        coll_seq: u64,
        sched: Arc<TopoSchedule>,
    ) -> ReqId {
        let state = ReduceState {
            context: comm.coll_context,
            root,
            size: comm.size,
            rank: self.rank,
            op,
            dtype,
            coll_seq,
            acc: data.to_vec(),
            sched,
            next_child: 0,
            child_recv: None,
            send_req: None,
            packet_kind: self.reduce_packet_kind,
        };
        self.post_coll(CollState::Reduce(state))
    }

    /// Post a segmented pipelined reduction: `k` segments of `seg_bytes`
    /// (the last may be shorter) on sequence numbers `base_seq..base_seq+k`,
    /// with at most [`EngineConfig::segments`] in flight at once. Public so
    /// the application-bypass fallback paths can reuse the pre-allocated
    /// sequence block.
    #[allow(clippy::too_many_arguments)] // mirrors ireduce + the segment plan
    pub fn ireduce_segmented_with_seqs(
        &mut self,
        comm: &Communicator,
        root: Rank,
        op: ReduceOp,
        dtype: Datatype,
        data: &[u8],
        base_seq: u64,
        k: usize,
        seg_bytes: usize,
    ) -> ReqId {
        debug_assert!(k >= 2 && seg_bytes >= 1);
        let sched = self.schedule(root, comm.size);
        let mut segs = Vec::with_capacity(k);
        for i in 0..k {
            let lo = i * seg_bytes;
            let hi = (lo + seg_bytes).min(data.len());
            segs.push(Some(ReduceState {
                context: comm.coll_context,
                root,
                size: comm.size,
                rank: self.rank,
                op,
                dtype,
                coll_seq: base_seq + i as u64,
                acc: data[lo..hi].to_vec(),
                sched: Arc::clone(&sched),
                next_child: 0,
                child_recv: None,
                send_req: None,
                packet_kind: self.reduce_packet_kind,
            }));
        }
        let state = SegReduceState {
            root,
            rank: self.rank,
            segs,
            started: 0,
            done: 0,
            window: self.config.segments.max(1),
            results: vec![None; k],
        };
        self.post_coll(CollState::SegReduce(state))
    }

    /// Post Träff's dual-root doubly-pipelined allreduce (PAPERS.md): the
    /// payload splits into two element-aligned halves reduced and
    /// broadcast over opposite-direction chains (half L toward rank 0,
    /// half H toward rank `size - 1`), each half segmented per
    /// [`Engine::segment_plan`] so segments of both halves interleave on
    /// every link. Falls back to the ordinary allreduce when the
    /// communicator or payload is too small to split.
    pub fn iallreduce_dual(
        &mut self,
        comm: &Communicator,
        op: ReduceOp,
        dtype: Datatype,
        data: &[u8],
    ) -> ReqId {
        let elem = dtype.size();
        let lo_len = data.len() / elem / 2 * elem;
        let hi_len = data.len() - lo_len;
        if comm.size < 2 || lo_len == 0 || hi_len == 0 {
            return self.iallreduce(comm, op, dtype, data);
        }
        let sched_l = shared_schedule(TopologyKind::Chain, 0, comm.size);
        let sched_h = shared_schedule(TopologyKind::ChainRev, comm.size - 1, comm.size);
        let (k_l, seg_l) = self.plan_segments(lo_len, elem, sched_l.max_depth());
        let (k_h, seg_h) = self.plan_segments(hi_len, elem, sched_h.max_depth());
        // Fixed allocation order [L reduce][L bcast][H reduce][H bcast]:
        // identical on every rank, so per-segment tags agree cluster-wide.
        let l_red = self.alloc_seq_range(comm.coll_context, k_l);
        let l_bc = self.alloc_seq_range(comm.coll_context, k_l);
        let h_red = self.alloc_seq_range(comm.coll_context, k_h);
        let h_bc = self.alloc_seq_range(comm.coll_context, k_h);
        let halves = [
            self.make_dual_half(
                comm, op, dtype, data, 0, lo_len, 0, sched_l, l_red, l_bc, seg_l,
            ),
            self.make_dual_half(
                comm,
                op,
                dtype,
                data,
                lo_len,
                hi_len,
                comm.size - 1,
                sched_h,
                h_red,
                h_bc,
                seg_h,
            ),
        ];
        let state = DualAllreduceState {
            context: comm.coll_context,
            size: comm.size,
            rank: self.rank,
            op,
            dtype,
            len: data.len(),
            halves,
            packet_kind: self.reduce_packet_kind,
        };
        self.post_coll(CollState::DualAllreduce(state))
    }

    /// Build one half of a dual-root allreduce: per-segment reduce states
    /// over `data[offset..offset + len]` stepping `sched`, none admitted to
    /// the pipeline yet.
    #[allow(clippy::too_many_arguments)] // one call site; plain plumbing
    fn make_dual_half(
        &mut self,
        comm: &Communicator,
        op: ReduceOp,
        dtype: Datatype,
        data: &[u8],
        offset: usize,
        len: usize,
        root: Rank,
        sched: Arc<TopoSchedule>,
        reduce_base_seq: u64,
        bcast_base_seq: u64,
        seg_bytes: usize,
    ) -> DualHalf {
        let k = len.div_ceil(seg_bytes);
        let mut segs = Vec::with_capacity(k);
        for i in 0..k {
            let lo = offset + i * seg_bytes;
            let hi = (lo + seg_bytes).min(offset + len);
            segs.push(DualSeg::Reduce(ReduceState {
                context: comm.coll_context,
                root,
                size: comm.size,
                rank: self.rank,
                op,
                dtype,
                coll_seq: reduce_base_seq + i as u64,
                acc: data[lo..hi].to_vec(),
                sched: Arc::clone(&sched),
                next_child: 0,
                child_recv: None,
                send_req: None,
                packet_kind: self.reduce_packet_kind,
            }));
        }
        DualHalf {
            offset,
            len,
            root,
            sched,
            reduce_base_seq,
            bcast_base_seq,
            seg_bytes,
            segs,
            started: 0,
            done: 0,
            window: self.config.segments.max(1),
            results: vec![None; k],
        }
    }

    /// Post a binomial broadcast. The root passes `Some(data)`; other ranks
    /// pass `None` and the expected length.
    pub fn ibcast(
        &mut self,
        comm: &Communicator,
        root: Rank,
        data: Option<Bytes>,
        len: usize,
    ) -> ReqId {
        let coll_seq = self.alloc_coll_seq(comm.coll_context);
        self.ibcast_with_seq(comm, root, data, len, coll_seq)
    }

    /// As [`Engine::ibcast`] with an externally allocated sequence number
    /// (the application-bypass broadcast allocates before choosing a path).
    pub fn ibcast_with_seq(
        &mut self,
        comm: &Communicator,
        root: Rank,
        data: Option<Bytes>,
        len: usize,
        coll_seq: u64,
    ) -> ReqId {
        comm.check_rank(root).expect("invalid root");
        debug_assert_eq!(
            self.rank == root,
            data.is_some(),
            "exactly the root supplies bcast data"
        );
        let state = self.make_bcast_state(comm, root, data, len, coll_seq);
        self.post_coll(CollState::Bcast(state))
    }

    /// As [`Engine::ibcast_with_seq`] against an explicit schedule (the
    /// application-bypass dual-root path broadcasts over chain schedules
    /// regardless of the configured topology).
    #[allow(clippy::too_many_arguments)] // mirrors ibcast_with_seq + sched
    pub fn ibcast_with_seq_sched(
        &mut self,
        comm: &Communicator,
        root: Rank,
        data: Option<Bytes>,
        len: usize,
        coll_seq: u64,
        sched: Arc<TopoSchedule>,
    ) -> ReqId {
        comm.check_rank(root).expect("invalid root");
        debug_assert_eq!(
            self.rank == root,
            data.is_some(),
            "exactly the root supplies bcast data"
        );
        let state = BcastState {
            context: comm.coll_context,
            root,
            size: comm.size,
            rank: self.rank,
            coll_seq,
            len,
            data,
            recv_req: None,
            sched,
            next_send: 0,
            send_reqs: Vec::new(),
        };
        self.post_coll(CollState::Bcast(state))
    }

    fn make_bcast_state(
        &mut self,
        comm: &Communicator,
        root: Rank,
        data: Option<Bytes>,
        len: usize,
        coll_seq: u64,
    ) -> BcastState {
        BcastState {
            context: comm.coll_context,
            root,
            size: comm.size,
            rank: self.rank,
            coll_seq,
            len,
            data,
            recv_req: None,
            sched: self.schedule(root, comm.size),
            next_send: 0,
            send_reqs: Vec::new(),
        }
    }

    /// Post a dissemination barrier.
    pub fn ibarrier(&mut self, comm: &Communicator) -> ReqId {
        let coll_seq = self.alloc_coll_seq(comm.coll_context);
        let state = BarrierState {
            context: comm.coll_context,
            size: comm.size,
            rank: self.rank,
            coll_seq,
            round: 0,
            recv_req: None,
        };
        self.post_coll(CollState::Barrier(state))
    }

    /// Post an allreduce (reduce to rank 0, then broadcast). Every rank's
    /// request completes with the reduced data.
    pub fn iallreduce(
        &mut self,
        comm: &Communicator,
        op: ReduceOp,
        dtype: Datatype,
        data: &[u8],
    ) -> ReqId {
        // Large messages on power-of-two communicators take the
        // Rabenseifner path; the segment split must land on element
        // boundaries.
        let elem = dtype.size();
        if comm.size.is_power_of_two()
            && comm.size >= 2
            && data.len() >= self.config.allreduce_rs_threshold
            && (data.len() / elem).is_multiple_of(comm.size as usize)
        {
            return self.iallreduce_rs(comm, op, dtype, data);
        }
        let reduce_seq = self.alloc_coll_seq(comm.coll_context);
        let _bcast_seq = self.alloc_coll_seq(comm.coll_context);
        let reduce = ReduceState {
            context: comm.coll_context,
            root: 0,
            size: comm.size,
            rank: self.rank,
            op,
            dtype,
            coll_seq: reduce_seq,
            acc: data.to_vec(),
            sched: self.schedule(0, comm.size),
            next_child: 0,
            child_recv: None,
            send_req: None,
            packet_kind: self.reduce_packet_kind,
        };
        let state = AllreduceState {
            phase: AllreducePhase::Reduce(reduce),
            op,
            dtype,
            len: data.len(),
        };
        self.post_coll(CollState::Allreduce(state))
    }

    /// Post a gather: every rank contributes `data` (equal length); the
    /// root's request completes with the rank-ordered concatenation.
    pub fn igather(&mut self, comm: &Communicator, root: Rank, data: &[u8]) -> ReqId {
        comm.check_rank(root).expect("invalid root");
        let coll_seq = self.alloc_coll_seq(comm.coll_context);
        let mut state = GatherState {
            context: comm.coll_context,
            root,
            size: comm.size,
            rank: self.rank,
            coll_seq,
            block: data.len(),
            chunks: Vec::new(),
            recvs: Vec::new(),
            send_req: None,
        };
        if self.rank == root {
            state.chunks = vec![None; comm.size as usize];
            state.chunks[self.rank as usize] = Some(Bytes::from(data.to_vec()));
            // Post the n-1 receives up front (MPICH's small-message linear
            // gather does the same with irecvs).
            for src in 0..comm.size {
                if src == root {
                    continue;
                }
                let req = self.irecv_internal(
                    Some(src),
                    TagSel::Is(coll_tag(coll_code::GATHER, coll_seq, 0)),
                    comm.coll_context,
                    data.len(),
                    Some(coll_seq),
                );
                state.recvs.push((req, src));
            }
        } else {
            let req = self.isend_with_kind(
                root,
                coll_tag(coll_code::GATHER, coll_seq, 0),
                comm.coll_context,
                Bytes::from(data.to_vec()),
                PacketKind::Eager,
                coll_seq,
                root,
            );
            state.send_req = Some(req);
        }
        self.post_coll(CollState::Gather(state))
    }

    /// Post a scatter: the root supplies `size * block` bytes; every rank's
    /// request completes with its own `block`-byte slice.
    pub fn iscatter(
        &mut self,
        comm: &Communicator,
        root: Rank,
        data: Option<&[u8]>,
        block: usize,
    ) -> ReqId {
        comm.check_rank(root).expect("invalid root");
        debug_assert_eq!(self.rank == root, data.is_some());
        let coll_seq = self.alloc_coll_seq(comm.coll_context);
        let mut state = ScatterState {
            context: comm.coll_context,
            root,
            rank: self.rank,
            coll_seq,
            recv_req: None,
            own: None,
            send_reqs: Vec::new(),
        };
        if self.rank == root {
            let data = data.expect("root supplies scatter data");
            assert_eq!(
                data.len(),
                block * comm.size as usize,
                "scatter buffer must be size*block bytes"
            );
            for dst in 0..comm.size {
                let chunk =
                    Bytes::from(data[dst as usize * block..(dst as usize + 1) * block].to_vec());
                if dst == root {
                    state.own = Some(chunk);
                } else {
                    let req = self.isend_with_kind(
                        dst,
                        coll_tag(coll_code::SCATTER, coll_seq, 0),
                        comm.coll_context,
                        chunk,
                        PacketKind::Eager,
                        coll_seq,
                        root,
                    );
                    state.send_reqs.push(req);
                }
            }
        } else {
            let req = self.irecv_internal(
                Some(root),
                TagSel::Is(coll_tag(coll_code::SCATTER, coll_seq, 0)),
                comm.coll_context,
                block,
                Some(coll_seq),
            );
            state.recv_req = Some(req);
        }
        self.post_coll(CollState::Scatter(state))
    }

    /// Post an allgather (gather to rank 0, then broadcast the assembled
    /// buffer). Every rank's request completes with all blocks in rank
    /// order.
    pub fn iallgather(&mut self, comm: &Communicator, data: &[u8]) -> ReqId {
        let gather_seq = self.alloc_coll_seq(comm.coll_context);
        let _bcast_seq = self.alloc_coll_seq(comm.coll_context);
        let mut gather = GatherState {
            context: comm.coll_context,
            root: 0,
            size: comm.size,
            rank: self.rank,
            coll_seq: gather_seq,
            block: data.len(),
            chunks: Vec::new(),
            recvs: Vec::new(),
            send_req: None,
        };
        if self.rank == 0 {
            gather.chunks = vec![None; comm.size as usize];
            gather.chunks[0] = Some(Bytes::from(data.to_vec()));
            for src in 1..comm.size {
                let req = self.irecv_internal(
                    Some(src),
                    TagSel::Is(coll_tag(coll_code::GATHER, gather_seq, 0)),
                    comm.coll_context,
                    data.len(),
                    Some(gather_seq),
                );
                gather.recvs.push((req, src));
            }
        } else {
            let req = self.isend_with_kind(
                0,
                coll_tag(coll_code::GATHER, gather_seq, 0),
                comm.coll_context,
                Bytes::from(data.to_vec()),
                PacketKind::Eager,
                gather_seq,
                0,
            );
            gather.send_req = Some(req);
        }
        let state = AllgatherState {
            phase: AllgatherPhase::Gather(gather),
            total_len: data.len() * comm.size as usize,
        };
        self.post_coll(CollState::Allgather(state))
    }

    /// Rabenseifner allreduce: recursive-halving reduce-scatter, then
    /// recursive-doubling allgather. Bandwidth ~2x better than
    /// reduce+broadcast for large payloads.
    fn iallreduce_rs(
        &mut self,
        comm: &Communicator,
        op: ReduceOp,
        dtype: Datatype,
        data: &[u8],
    ) -> ReqId {
        let coll_seq = self.alloc_coll_seq(comm.coll_context);
        let mut state = RsAllreduceState {
            context: comm.coll_context,
            size: comm.size,
            rank: self.rank,
            op,
            dtype,
            coll_seq,
            buf: data.to_vec(),
            phase: RsPhase::ReduceScatter {
                dist: comm.size / 2,
            },
            offset: 0,
            seglen: data.len(),
            send_req: None,
            recv_req: None,
        };
        self.rs_start_exchange(&mut state);
        self.post_coll(CollState::RsAllreduce(state))
    }

    /// Begin the exchange for the current RS/AG round: figure out which
    /// half goes to the partner, post the send and the receive.
    fn rs_start_exchange(&mut self, s: &mut RsAllreduceState) {
        match s.phase {
            RsPhase::ReduceScatter { dist } => {
                let partner = s.rank ^ dist;
                let half = s.seglen / 2;
                // Lower-rank keeps the lower half; the upper half belongs
                // to the partner (and vice versa).
                let (keep_off, send_off) = if s.rank < partner {
                    (s.offset, s.offset + half)
                } else {
                    (s.offset + half, s.offset)
                };
                let payload = Bytes::from(s.buf[send_off..send_off + half].to_vec());
                let send = self.isend_with_kind(
                    partner,
                    coll_tag(coll_code::RS, s.coll_seq, 0),
                    s.context,
                    payload,
                    PacketKind::Eager,
                    s.coll_seq,
                    0,
                );
                let recv = self.irecv_internal(
                    Some(partner),
                    TagSel::Is(coll_tag(coll_code::RS, s.coll_seq, 0)),
                    s.context,
                    half,
                    Some(s.coll_seq),
                );
                s.send_req = Some(send);
                s.recv_req = Some(recv);
                s.offset = keep_off;
                s.seglen = half;
            }
            RsPhase::Allgather { dist } => {
                let partner = s.rank ^ dist;
                let payload = Bytes::from(s.buf[s.offset..s.offset + s.seglen].to_vec());
                let send = self.isend_with_kind(
                    partner,
                    coll_tag(coll_code::RS, s.coll_seq, 0),
                    s.context,
                    payload,
                    PacketKind::Eager,
                    s.coll_seq,
                    0,
                );
                let recv = self.irecv_internal(
                    Some(partner),
                    TagSel::Is(coll_tag(coll_code::RS, s.coll_seq, 0)),
                    s.context,
                    s.seglen,
                    Some(s.coll_seq),
                );
                s.send_req = Some(send);
                s.recv_req = Some(recv);
            }
        }
    }

    fn step_rs_allreduce(&mut self, s: &mut RsAllreduceState) -> StepRes {
        let mut progressed = false;
        loop {
            // Wait out the outstanding exchange.
            if let Some(r) = s.send_req {
                match self.poll_sub(r) {
                    Some(Outcome::Done) => {
                        s.send_req = None;
                        progressed = true;
                    }
                    Some(Outcome::Failed(e)) => return StepRes::done(Outcome::Failed(e)),
                    Some(Outcome::Data(_)) | None => return StepRes::pending(progressed),
                }
            }
            let Some(r) = s.recv_req else {
                unreachable!("exchange always posts both sides");
            };
            let incoming = match self.poll_sub(r) {
                Some(Outcome::Data(d)) => d,
                Some(Outcome::Failed(e)) => return StepRes::done(Outcome::Failed(e)),
                Some(Outcome::Done) | None => return StepRes::pending(progressed),
            };
            s.recv_req = None;
            progressed = true;
            match s.phase {
                RsPhase::ReduceScatter { dist } => {
                    // Fold the partner's copy of my kept half into the buf.
                    let elems = s.dtype.count(s.seglen);
                    let op_cost = self.config.cost.reduce_op(elems);
                    self.charge(CpuCategory::Protocol, op_cost);
                    let dst = &mut s.buf[s.offset..s.offset + s.seglen];
                    if let Err(e) = s.op.apply(s.dtype, dst, &incoming) {
                        return StepRes::done(Outcome::Failed(e));
                    }
                    if dist > 1 {
                        s.phase = RsPhase::ReduceScatter { dist: dist / 2 };
                    } else {
                        s.phase = RsPhase::Allgather { dist: 1 };
                    }
                }
                RsPhase::Allgather { dist } => {
                    // The partner's segment is the sibling half: it sits at
                    // the mirrored offset; union doubles the segment.
                    let partner = s.rank ^ dist;
                    let partner_off = if s.rank < partner {
                        s.offset + s.seglen
                    } else {
                        s.offset - s.seglen
                    };
                    let copy = self.config.cost.copy(incoming.len());
                    self.charge(CpuCategory::Protocol, copy);
                    self.note_copy(incoming.len());
                    s.buf[partner_off..partner_off + s.seglen].copy_from_slice(&incoming);
                    s.offset = s.offset.min(partner_off);
                    s.seglen *= 2;
                    if dist * 2 < s.size {
                        s.phase = RsPhase::Allgather { dist: dist * 2 };
                    } else {
                        debug_assert_eq!(s.seglen, s.buf.len());
                        return StepRes::done(Outcome::Data(Bytes::from(std::mem::take(
                            &mut s.buf,
                        ))));
                    }
                }
            }
            self.rs_start_exchange(s);
        }
    }

    fn post_coll(&mut self, state: CollState) -> ReqId {
        let id = self.fresh_req();
        self.trace.emit(TraceEvent::PhaseEnter {
            phase: state.name(),
        });
        self.requests
            .insert(id.raw(), Request::new(RequestBody::Coll(Box::new(state))));
        self.active_colls.push(id);
        // Step immediately: leaves can often send right away, and a
        // single-rank collective completes synchronously.
        self.step_one_coll(id);
        id
    }

    // ------------------------------------------------------------------
    // Request inspection
    // ------------------------------------------------------------------

    /// True once `req` has completed. Unknown (already taken/freed) requests
    /// read as complete.
    pub fn test(&self, req: ReqId) -> bool {
        self.requests
            .get(&req.raw())
            .is_none_or(|r| r.is_complete())
    }

    /// Take the outcome of a completed request, freeing it. `None` while
    /// still pending.
    pub fn take_outcome(&mut self, req: ReqId) -> Option<Outcome> {
        let complete = self
            .requests
            .get(&req.raw())
            .is_some_and(|r| r.is_complete());
        if !complete {
            return None;
        }
        let r = self.requests.remove(&req.raw()).unwrap();
        self.active_colls.retain(|&c| c != req);
        r.outcome
    }

    /// Outstanding request count (leak detection in tests).
    pub fn live_requests(&self) -> usize {
        self.requests.len()
    }

    // ------------------------------------------------------------------
    // Packet processing (Fig. 4, white boxes)
    // ------------------------------------------------------------------

    fn process_packet(&mut self, pkt: Packet) {
        let src = pkt.header.src.0;
        // Idempotence under retransmission: when the reliability layer is
        // active (rel_seq != 0) a duplicate that slipped past it must not
        // reach matching, or a retransmitted contribution would be reduced
        // twice. Checked before the FIFO assert — a duplicate is a repeat,
        // not an ordering violation.
        if pkt.header.rel_seq != 0 {
            let last = self.last_rel_seq.entry(src).or_insert(0);
            if pkt.header.rel_seq <= *last {
                self.stats.duplicates_suppressed += 1;
                return;
            }
            *last = pkt.header.rel_seq;
        }
        self.stats.packets_processed += 1;
        self.trace.emit(TraceEvent::PacketRecv {
            src,
            kind: pkt.header.kind.label(),
            bytes: pkt.header.msg_len,
        });
        // GM delivers in order per (src, dst); assert it.
        if let Some(prev) = self.last_wire_seq.insert(src, pkt.header.wire_seq) {
            debug_assert!(
                pkt.header.wire_seq > prev,
                "transport violated FIFO from {src}: {} after {prev}",
                pkt.header.wire_seq
            );
        }
        match pkt.header.kind {
            PacketKind::Eager | PacketKind::Collective => self.process_eager_class(pkt),
            PacketKind::RendezvousRts => self.process_rts(pkt),
            PacketKind::RendezvousCts => self.process_cts(pkt),
            PacketKind::RendezvousData => self.process_rndv_data(pkt),
            PacketKind::Ack => {
                debug_assert!(false, "reliability acks must be consumed by the transport");
            }
        }
    }

    fn process_eager_class(&mut self, pkt: Packet) {
        self.charge(CpuCategory::Protocol, self.config.cost.matching());
        let key = MsgKey {
            src: pkt.header.src.0,
            tag: pkt.header.tag,
            context: pkt.header.context,
        };
        if let Some(p) = self.posted.take_match(&key) {
            debug_assert!(
                p.expect_coll_seq.is_none_or(|s| s == pkt.header.coll_seq),
                "collective instance mismatch on posted receive"
            );
            if pkt.payload.len() > p.capacity {
                self.fail_req(
                    p.id,
                    MprError::Truncation {
                        received: pkt.payload.len(),
                        capacity: p.capacity,
                    },
                );
            } else {
                // Expected message: one copy, packet buffer -> user buffer.
                let copy = self.config.cost.copy(pkt.payload.len());
                self.charge(CpuCategory::Protocol, copy);
                self.note_copy(pkt.payload.len());
                self.stats.posted_matched += 1;
                self.complete_recv(p.id, pkt.payload);
            }
        } else {
            // Unexpected: first copy, packet buffer -> temporary buffer.
            let copy = self.config.cost.copy(pkt.payload.len());
            self.charge(CpuCategory::Protocol, copy);
            self.note_copy(pkt.payload.len());
            self.stats.unexpected_enqueued += 1;
            self.unexpected.push(UnexpectedMsg {
                src: pkt.header.src.0,
                tag: pkt.header.tag,
                context: pkt.header.context,
                kind: pkt.header.kind,
                coll_seq: pkt.header.coll_seq,
                data: pkt.payload,
                msg_len: pkt.header.msg_len as usize,
            });
        }
    }

    fn process_rts(&mut self, pkt: Packet) {
        self.charge(CpuCategory::Protocol, self.config.cost.matching());
        let key = MsgKey {
            src: pkt.header.src.0,
            tag: pkt.header.tag,
            context: pkt.header.context,
        };
        let xfer_id = pkt.header.coll_seq;
        if let Some(p) = self.posted.take_match(&key) {
            self.stats.posted_matched += 1;
            if pkt.header.msg_len as usize > p.capacity {
                self.fail_req(
                    p.id,
                    MprError::Truncation {
                        received: pkt.header.msg_len as usize,
                        capacity: p.capacity,
                    },
                );
                return;
            }
            self.begin_rndv_recv(
                p.id,
                pkt.header.src.0,
                xfer_id,
                pkt.header.msg_len as usize,
                pkt.header.context,
            );
        } else {
            self.stats.unexpected_enqueued += 1;
            // An RTS parks header-only: no payload copy happens until DATA.
            self.unexpected.push(UnexpectedMsg {
                src: pkt.header.src.0,
                tag: pkt.header.tag,
                context: pkt.header.context,
                kind: PacketKind::RendezvousRts,
                coll_seq: xfer_id,
                data: Bytes::new(),
                msg_len: pkt.header.msg_len as usize,
            });
        }
    }

    /// Receiver side: pin the destination and answer with a CTS.
    fn begin_rndv_recv(
        &mut self,
        req: ReqId,
        src: Rank,
        xfer_id: u64,
        msg_len: usize,
        context: u32,
    ) {
        let pin = self.config.cost.pin(msg_len);
        self.charge(CpuCategory::Protocol, pin);
        self.charge(CpuCategory::Protocol, self.config.cost.rndv_control_host());
        let region = self
            .memory
            .register(msg_len)
            .expect("pinned-memory budget exceeded on receive");
        if let Some(Request {
            body: RequestBody::Recv(rs),
            ..
        }) = self.requests.get_mut(&req.raw())
        {
            rs.region = Some(region);
        }
        self.pending_rndv_recvs.insert(xfer_id, req);
        let header = PacketHeader {
            src: NodeId(self.rank),
            dst: NodeId(src),
            kind: PacketKind::RendezvousCts,
            context,
            tag: 0,
            coll_seq: xfer_id,
            coll_root: 0,
            msg_len: msg_len as u32,
            wire_seq: 0,
            rel_seq: 0,
        };
        self.actions
            .push(Action::Send(Packet::new(header, Bytes::new())));
    }

    fn process_cts(&mut self, pkt: Packet) {
        let xfer_id = pkt.header.coll_seq;
        let Some(req) = self.pending_rndv_sends.remove(&xfer_id) else {
            debug_assert!(false, "CTS for unknown transfer {xfer_id}");
            return;
        };
        let Some(Request {
            body: RequestBody::SendRndv(rs),
            ..
        }) = self.requests.get_mut(&req.raw())
        else {
            debug_assert!(false, "CTS target is not a rendezvous send");
            return;
        };
        // DMA straight from the pinned user buffer: no host copy.
        let data = std::mem::take(&mut rs.data);
        let header = PacketHeader {
            src: NodeId(self.rank),
            dst: NodeId(rs.dst),
            kind: PacketKind::RendezvousData,
            context: rs.context,
            tag: rs.tag,
            coll_seq: xfer_id,
            coll_root: 0,
            msg_len: data.len() as u32,
            wire_seq: 0,
            rel_seq: 0,
        };
        let region = rs.region;
        self.charge(CpuCategory::Protocol, self.config.cost.rndv_control_host());
        self.push_action(Action::Send(Packet::new(header, data)));
        let unpin = self.config.cost.unpin();
        self.charge(CpuCategory::Protocol, unpin);
        self.memory
            .deregister(region)
            .expect("send region vanished");
        if let Some(r) = self.requests.get_mut(&req.raw()) {
            r.outcome = Some(Outcome::Done);
        }
    }

    fn process_rndv_data(&mut self, pkt: Packet) {
        let xfer_id = pkt.header.coll_seq;
        let Some(req) = self.pending_rndv_recvs.remove(&xfer_id) else {
            debug_assert!(false, "DATA for unknown transfer {xfer_id}");
            return;
        };
        let region = match self.requests.get_mut(&req.raw()) {
            Some(Request {
                body: RequestBody::Recv(rs),
                ..
            }) => rs.region.take(),
            _ => None,
        };
        if let Some(region) = region {
            let unpin = self.config.cost.unpin();
            self.charge(CpuCategory::Protocol, unpin);
            self.memory
                .deregister(region)
                .expect("recv region vanished");
        }
        // DMA landed in the pinned user buffer: zero host copies.
        self.complete_recv(req, pkt.payload);
    }

    fn complete_recv(&mut self, req: ReqId, data: Bytes) {
        if let Some(r) = self.requests.get_mut(&req.raw()) {
            if let RequestBody::Recv(rs) = &mut r.body {
                rs.data = Some(data.clone());
            }
            r.outcome = Some(Outcome::Data(data));
        }
    }

    fn fail_req(&mut self, req: ReqId, err: MprError) {
        if let Some(r) = self.requests.get_mut(&req.raw()) {
            r.outcome = Some(Outcome::Failed(err));
        }
    }

    fn note_copy(&mut self, bytes: usize) {
        self.stats.copies += 1;
        self.stats.copy_bytes += bytes as u64;
    }

    fn fresh_req(&mut self) -> ReqId {
        let id = ReqId::from_raw(self.next_req);
        self.next_req += 1;
        id
    }

    fn fresh_xfer(&mut self) -> u64 {
        // Globally unique: high bits are the rank.
        let id = ((self.rank as u64) << 40) | self.next_xfer;
        self.next_xfer += 1;
        id
    }

    // ------------------------------------------------------------------
    // Collective stepping
    // ------------------------------------------------------------------

    fn step_collectives(&mut self) -> bool {
        let mut progressed = false;
        let ids: Vec<ReqId> = self.active_colls.clone();
        for id in ids {
            progressed |= self.step_one_coll(id);
        }
        progressed
    }

    fn step_one_coll(&mut self, id: ReqId) -> bool {
        let Some(mut req) = self.requests.remove(&id.raw()) else {
            return false;
        };
        let mut progressed = false;
        if req.outcome.is_none() {
            if let RequestBody::Coll(state) = &mut req.body {
                let res = match &mut **state {
                    CollState::Reduce(s) => self.step_reduce(s),
                    CollState::Bcast(s) => self.step_bcast(s),
                    CollState::Barrier(s) => self.step_barrier(s),
                    CollState::Allreduce(s) => self.step_allreduce(s),
                    CollState::Gather(s) => self.step_gather(s),
                    CollState::Scatter(s) => self.step_scatter(s),
                    CollState::Allgather(s) => self.step_allgather(s),
                    CollState::RsAllreduce(s) => self.step_rs_allreduce(s),
                    CollState::SegReduce(s) => self.step_seg_reduce(s),
                    CollState::DualAllreduce(s) => self.step_dual_allreduce(s),
                };
                progressed = res.progressed;
                if let Some(outcome) = res.outcome {
                    req.outcome = Some(outcome);
                    self.stats.colls_completed += 1;
                    self.active_colls.retain(|&c| c != id);
                    if let RequestBody::Coll(state) = &req.body {
                        self.trace.emit(TraceEvent::PhaseExit {
                            phase: state.name(),
                        });
                    }
                }
            }
        }
        self.requests.insert(id.raw(), req);
        progressed
    }

    /// Poll a sub-request; if complete, free it and return the outcome.
    fn poll_sub(&mut self, req: ReqId) -> Option<Outcome> {
        let done = self
            .requests
            .get(&req.raw())
            .is_some_and(|r| r.is_complete());
        if !done {
            return None;
        }
        self.requests.remove(&req.raw()).unwrap().outcome
    }

    fn step_reduce(&mut self, s: &mut ReduceState) -> StepRes {
        let mut progressed = false;
        loop {
            // Drain the outstanding child receive, if any.
            if let Some(r) = s.child_recv {
                match self.poll_sub(r) {
                    Some(Outcome::Data(d)) => {
                        let op_cost = self.config.cost.reduce_op(s.dtype.count(s.acc.len()));
                        self.charge(CpuCategory::Protocol, op_cost);
                        if let Err(e) = s.op.apply(s.dtype, &mut s.acc, &d) {
                            return StepRes::done(Outcome::Failed(e));
                        }
                        s.child_recv = None;
                        s.next_child += 1;
                        progressed = true;
                        continue;
                    }
                    Some(Outcome::Failed(e)) => return StepRes::done(Outcome::Failed(e)),
                    Some(Outcome::Done) | None => return StepRes::pending(progressed),
                }
            }
            // Wait out the send to the parent.
            if let Some(r) = s.send_req {
                return match self.poll_sub(r) {
                    Some(Outcome::Done) => StepRes::done(Outcome::Done),
                    Some(Outcome::Failed(e)) => StepRes::done(Outcome::Failed(e)),
                    Some(Outcome::Data(_)) | None => StepRes::pending(progressed),
                };
            }
            // Advance the schedule: one blocking child receive at a time in
            // wait order (the MPICH mask loop when the schedule is
            // binomial), then the send to the parent.
            if let Some(&child) = s.sched.children_of(s.rank).get(s.next_child) {
                let req = self.irecv_internal(
                    Some(child),
                    TagSel::Is(coll_tag(coll_code::REDUCE, s.coll_seq, 0)),
                    s.context,
                    s.acc.len(),
                    Some(s.coll_seq),
                );
                s.child_recv = Some(req);
                progressed = true;
                continue;
            }
            if let Some(parent) = s.sched.parent_of(s.rank) {
                let req = self.isend_with_kind(
                    parent,
                    coll_tag(coll_code::REDUCE, s.coll_seq, 0),
                    s.context,
                    Bytes::from(s.acc.clone()),
                    s.packet_kind,
                    s.coll_seq,
                    s.root,
                );
                s.send_req = Some(req);
                progressed = true;
                continue;
            }
            // Root with all children folded in.
            return StepRes::done(Outcome::Data(Bytes::from(std::mem::take(&mut s.acc))));
        }
    }

    fn step_bcast(&mut self, s: &mut BcastState) -> StepRes {
        let mut progressed = false;
        if s.data.is_none() {
            if s.recv_req.is_none() {
                let parent = s
                    .sched
                    .parent_of(s.rank)
                    .expect("non-root bcast rank has a parent");
                let req = self.irecv_internal(
                    Some(parent),
                    TagSel::Is(coll_tag(coll_code::BCAST, s.coll_seq, 0)),
                    s.context,
                    s.len,
                    Some(s.coll_seq),
                );
                s.recv_req = Some(req);
                progressed = true;
            }
            let r = s.recv_req.unwrap();
            match self.poll_sub(r) {
                Some(Outcome::Data(d)) => {
                    s.data = Some(d);
                    s.recv_req = None;
                    progressed = true;
                }
                Some(Outcome::Failed(e)) => return StepRes::done(Outcome::Failed(e)),
                Some(Outcome::Done) | None => return StepRes::pending(progressed),
            }
        }
        // Have the data: issue sends to children in schedule order.
        let data = s.data.clone().expect("data present past receive phase");
        while let Some(&child) = s.sched.children_of(s.rank).get(s.next_send) {
            s.next_send += 1;
            let req = self.isend_with_kind(
                child,
                coll_tag(coll_code::BCAST, s.coll_seq, 0),
                s.context,
                data.clone(),
                PacketKind::Eager,
                s.coll_seq,
                s.root,
            );
            s.send_reqs.push(req);
            progressed = true;
        }
        // Collect completed sends (eager completes instantly; rendezvous
        // may straggle).
        let mut pending = Vec::new();
        for req in s.send_reqs.drain(..) {
            match self.poll_sub(req) {
                Some(Outcome::Done) => progressed = true,
                Some(Outcome::Failed(e)) => return StepRes::done(Outcome::Failed(e)),
                Some(Outcome::Data(_)) => unreachable!("send completed with data"),
                None => pending.push(req),
            }
        }
        s.send_reqs = pending;
        if s.send_reqs.is_empty() {
            StepRes::done(Outcome::Data(data))
        } else {
            StepRes::pending(progressed)
        }
    }

    fn step_barrier(&mut self, s: &mut BarrierState) -> StepRes {
        let rounds = barrier_rounds(s.size);
        let mut progressed = false;
        loop {
            if s.round >= rounds {
                return StepRes::done(Outcome::Done);
            }
            if s.recv_req.is_none() {
                let dist = 1u32 << s.round;
                let to = (s.rank + dist) % s.size;
                let tag = coll_tag(coll_code::BARRIER, s.coll_seq, s.round as u8);
                let send = self.isend_with_kind(
                    to,
                    tag,
                    s.context,
                    Bytes::new(),
                    PacketKind::Eager,
                    s.coll_seq,
                    0,
                );
                // Zero-byte eager sends complete at post.
                let done = self.poll_sub(send);
                debug_assert!(matches!(done, Some(Outcome::Done)));
                let from = (s.rank + s.size - dist) % s.size;
                let req = self.irecv_internal(
                    Some(from),
                    TagSel::Is(tag),
                    s.context,
                    0,
                    Some(s.coll_seq),
                );
                s.recv_req = Some(req);
                progressed = true;
            }
            let r = s.recv_req.unwrap();
            match self.poll_sub(r) {
                Some(Outcome::Data(_)) => {
                    s.recv_req = None;
                    s.round += 1;
                    progressed = true;
                }
                Some(Outcome::Failed(e)) => return StepRes::done(Outcome::Failed(e)),
                Some(Outcome::Done) | None => return StepRes::pending(progressed),
            }
        }
    }

    fn step_gather(&mut self, s: &mut GatherState) -> StepRes {
        let mut progressed = false;
        if s.rank != s.root {
            if let Some(r) = s.send_req {
                return match self.poll_sub(r) {
                    Some(Outcome::Done) => StepRes::done(Outcome::Done),
                    Some(Outcome::Failed(e)) => StepRes::done(Outcome::Failed(e)),
                    Some(Outcome::Data(_)) | None => StepRes::pending(false),
                };
            }
            return StepRes::done(Outcome::Done);
        }
        // Root: collect outstanding receives.
        let mut pending = Vec::new();
        for (req, src) in s.recvs.drain(..) {
            match self.poll_sub(req) {
                Some(Outcome::Data(d)) => {
                    let copy = self.config.cost.copy(d.len());
                    self.charge(CpuCategory::Protocol, copy);
                    self.note_copy(d.len());
                    s.chunks[src as usize] = Some(d);
                    progressed = true;
                }
                Some(Outcome::Failed(e)) => return StepRes::done(Outcome::Failed(e)),
                Some(Outcome::Done) | None => pending.push((req, src)),
            }
        }
        s.recvs = pending;
        if s.recvs.is_empty() {
            let mut out = Vec::with_capacity(s.block * s.size as usize);
            for c in s.chunks.iter_mut() {
                out.extend_from_slice(&c.take().expect("every block present"));
            }
            return StepRes::done(Outcome::Data(Bytes::from(out)));
        }
        StepRes::pending(progressed)
    }

    fn step_scatter(&mut self, s: &mut ScatterState) -> StepRes {
        if s.rank == s.root {
            let mut pending = Vec::new();
            let mut progressed = false;
            for req in s.send_reqs.drain(..) {
                match self.poll_sub(req) {
                    Some(Outcome::Done) => progressed = true,
                    Some(Outcome::Failed(e)) => return StepRes::done(Outcome::Failed(e)),
                    Some(Outcome::Data(_)) | None => pending.push(req),
                }
            }
            s.send_reqs = pending;
            if s.send_reqs.is_empty() {
                let own = s.own.take().expect("root keeps its own block");
                return StepRes::done(Outcome::Data(own));
            }
            return StepRes::pending(progressed);
        }
        let r = s.recv_req.expect("non-root posted a receive");
        match self.poll_sub(r) {
            Some(Outcome::Data(d)) => StepRes::done(Outcome::Data(d)),
            Some(Outcome::Failed(e)) => StepRes::done(Outcome::Failed(e)),
            Some(Outcome::Done) | None => StepRes::pending(false),
        }
    }

    fn step_allgather(&mut self, s: &mut AllgatherState) -> StepRes {
        loop {
            match &mut s.phase {
                AllgatherPhase::Gather(g) => {
                    let res = self.step_gather(g);
                    match res.outcome {
                        Some(Outcome::Data(d)) => {
                            let comm_like = Communicator {
                                pt2pt_context: 0,
                                coll_context: g.context,
                                size: g.size,
                            };
                            let bcast_seq = g.coll_seq + 1; // pre-allocated
                            let state = self.make_bcast_state(
                                &comm_like,
                                0,
                                Some(d),
                                s.total_len,
                                bcast_seq,
                            );
                            s.phase = AllgatherPhase::Bcast(state);
                            continue;
                        }
                        Some(Outcome::Done) => {
                            let comm_like = Communicator {
                                pt2pt_context: 0,
                                coll_context: g.context,
                                size: g.size,
                            };
                            let bcast_seq = g.coll_seq + 1;
                            let state =
                                self.make_bcast_state(&comm_like, 0, None, s.total_len, bcast_seq);
                            s.phase = AllgatherPhase::Bcast(state);
                            continue;
                        }
                        Some(Outcome::Failed(e)) => return StepRes::done(Outcome::Failed(e)),
                        None => return StepRes::pending(res.progressed),
                    }
                }
                AllgatherPhase::Bcast(b) => return self.step_bcast(b),
            }
        }
    }

    fn step_seg_reduce(&mut self, s: &mut SegReduceState) -> StepRes {
        let k = s.segs.len();
        let mut progressed = false;
        loop {
            // Admit segments while the window has room: active (started and
            // not yet done) segments may not exceed the window.
            while s.started - s.done < s.window && s.started < k {
                self.trace.emit(TraceEvent::SegPhaseEnter {
                    phase: "seg-reduce",
                    seg: s.started as u32,
                });
                s.started += 1;
                progressed = true;
            }
            let mut advanced = false;
            for i in 0..s.started {
                let Some(seg) = &mut s.segs[i] else { continue };
                let res = self.step_reduce(seg);
                progressed |= res.progressed;
                match res.outcome {
                    Some(Outcome::Data(d)) => {
                        s.results[i] = Some(d);
                    }
                    Some(Outcome::Done) => {}
                    Some(Outcome::Failed(e)) => return StepRes::done(Outcome::Failed(e)),
                    None => continue,
                }
                s.segs[i] = None;
                s.done += 1;
                self.trace.emit(TraceEvent::SegPhaseExit {
                    phase: "seg-reduce",
                    seg: i as u32,
                });
                advanced = true;
            }
            if s.done == k {
                if s.rank == s.root {
                    let total = s.results.iter().map(|r| r.as_ref().unwrap().len()).sum();
                    let mut out = Vec::with_capacity(total);
                    for r in s.results.iter_mut() {
                        out.extend_from_slice(&r.take().expect("root segment has data"));
                    }
                    return StepRes::done(Outcome::Data(Bytes::from(out)));
                }
                return StepRes::done(Outcome::Done);
            }
            // A completion may have opened window room; loop until quiescent.
            if !advanced {
                return StepRes::pending(progressed);
            }
        }
    }

    fn step_dual_allreduce(&mut self, s: &mut DualAllreduceState) -> StepRes {
        let mut progressed = false;
        loop {
            let mut advanced = false;
            for half in s.halves.iter_mut() {
                let k = half.segs.len();
                while half.started - half.done < half.window && half.started < k {
                    self.trace.emit(TraceEvent::SegPhaseEnter {
                        phase: "dual-allreduce",
                        seg: half.started as u32,
                    });
                    half.started += 1;
                    progressed = true;
                }
                for i in 0..half.started {
                    // Step whichever phase segment i is in; the borrow of
                    // the segment ends before the slot is overwritten.
                    let step = match &mut half.segs[i] {
                        DualSeg::Reduce(r) => Some((true, self.step_reduce(r))),
                        DualSeg::Bcast(b) => Some((false, self.step_bcast(b))),
                        DualSeg::Done => None,
                    };
                    let Some((reducing, res)) = step else {
                        continue;
                    };
                    progressed |= res.progressed;
                    match (reducing, res.outcome) {
                        (_, Some(Outcome::Failed(e))) => return StepRes::done(Outcome::Failed(e)),
                        (_, None) => {}
                        // Reduce finished: chain into the segment's
                        // broadcast down the same schedule. The half root
                        // completes with the data and seeds the broadcast;
                        // everyone else awaits it from their parent.
                        (true, Some(outcome)) => {
                            let data = match outcome {
                                Outcome::Data(d) => Some(d),
                                _ => None,
                            };
                            let seg_len = match &data {
                                Some(d) => d.len(),
                                None => half.seg_bytes.min(half.len - i * half.seg_bytes),
                            };
                            half.segs[i] = DualSeg::Bcast(BcastState {
                                context: s.context,
                                root: half.root,
                                size: s.size,
                                rank: s.rank,
                                coll_seq: half.bcast_base_seq + i as u64,
                                len: seg_len,
                                data,
                                recv_req: None,
                                sched: Arc::clone(&half.sched),
                                next_send: 0,
                                send_reqs: Vec::new(),
                            });
                            advanced = true;
                        }
                        (false, Some(Outcome::Data(d))) => {
                            half.results[i] = Some(d);
                            half.segs[i] = DualSeg::Done;
                            half.done += 1;
                            self.trace.emit(TraceEvent::SegPhaseExit {
                                phase: "dual-allreduce",
                                seg: i as u32,
                            });
                            advanced = true;
                        }
                        (false, Some(Outcome::Done)) => {
                            unreachable!("bcast completes with data")
                        }
                    }
                }
            }
            if s.halves.iter().all(|h| h.done == h.segs.len()) {
                // Assemble both halves in payload order; every rank gets
                // the full reduced buffer (allreduce semantics).
                let mut out = Vec::with_capacity(s.len);
                for half in s.halves.iter_mut() {
                    for r in half.results.iter_mut() {
                        out.extend_from_slice(&r.take().expect("segment broadcast everywhere"));
                    }
                }
                debug_assert_eq!(out.len(), s.len);
                return StepRes::done(Outcome::Data(Bytes::from(out)));
            }
            if !advanced {
                return StepRes::pending(progressed);
            }
        }
    }

    fn step_allreduce(&mut self, s: &mut AllreduceState) -> StepRes {
        loop {
            match &mut s.phase {
                AllreducePhase::Reduce(r) => {
                    let res = self.step_reduce(r);
                    match res.outcome {
                        Some(Outcome::Data(d)) => {
                            // Rank 0 finished the reduce and owns the result.
                            let comm_like = Communicator {
                                pt2pt_context: 0,
                                coll_context: r.context,
                                size: r.size,
                            };
                            let bcast_seq = r.coll_seq + 1; // pre-allocated in iallreduce
                            let state =
                                self.make_bcast_state(&comm_like, 0, Some(d), s.len, bcast_seq);
                            s.phase = AllreducePhase::Bcast(state);
                            continue;
                        }
                        Some(Outcome::Done) => {
                            // Non-root finished its part of the reduce.
                            let comm_like = Communicator {
                                pt2pt_context: 0,
                                coll_context: r.context,
                                size: r.size,
                            };
                            let bcast_seq = r.coll_seq + 1;
                            let state =
                                self.make_bcast_state(&comm_like, 0, None, s.len, bcast_seq);
                            s.phase = AllreducePhase::Bcast(state);
                            continue;
                        }
                        Some(Outcome::Failed(e)) => return StepRes::done(Outcome::Failed(e)),
                        None => return StepRes::pending(res.progressed),
                    }
                }
                AllreducePhase::Bcast(b) => return self.step_bcast(b),
            }
        }
    }
}

/// The uniform surface drivers and benchmarks program against; implemented
/// by [`Engine`] (baseline) and by `abr_core::AbEngine` (application
/// bypass).
pub trait MessageEngine {
    /// This rank.
    fn rank(&self) -> Rank;
    /// Communicator size.
    fn size(&self) -> u32;
    /// The world communicator.
    fn world(&self) -> Communicator;
    /// Deposit an arriving packet (no CPU charge).
    fn deliver(&mut self, pkt: Packet);
    /// Install a trace handle; engine-level events (packet sends and
    /// receives, collective phase transitions, match outcomes) flow
    /// through it. The default is a no-op so minimal engines need not
    /// care.
    fn set_tracer(&mut self, _trace: TraceHandle) {}
    /// One progress-engine pass (charges poll cost).
    fn progress(&mut self) -> bool;
    /// The NIC raised a signal: run asynchronous processing. The baseline
    /// engine just makes progress (it never enables signals).
    fn handle_signal(&mut self) -> bool;
    /// Drain pending actions.
    fn drain_actions(&mut self) -> Vec<Action>;
    /// Drain pending actions into `out`, preserving order. Implementations
    /// should forward to an allocation-free append; the default falls back
    /// to [`MessageEngine::drain_actions`].
    fn drain_actions_into(&mut self, out: &mut Vec<Action>) {
        out.append(&mut self.drain_actions());
    }
    /// Drain accumulated CPU charges.
    fn take_charges(&mut self) -> Charges;
    /// Has the request completed?
    fn test(&self, req: ReqId) -> bool;
    /// Take a completed request's outcome.
    fn take_outcome(&mut self, req: ReqId) -> Option<Outcome>;
    /// Non-blocking send.
    fn isend(&mut self, comm: &Communicator, dst: Rank, tag: i32, data: Bytes) -> ReqId;
    /// Non-blocking receive.
    fn irecv(&mut self, comm: &Communicator, src: Option<Rank>, tag: TagSel, cap: usize) -> ReqId;
    /// Reduction to `root`.
    fn ireduce(
        &mut self,
        comm: &Communicator,
        root: Rank,
        op: ReduceOp,
        dtype: Datatype,
        data: &[u8],
    ) -> ReqId;
    /// Broadcast from `root`.
    fn ibcast(&mut self, comm: &Communicator, root: Rank, data: Option<Bytes>, len: usize)
        -> ReqId;
    /// Barrier.
    fn ibarrier(&mut self, comm: &Communicator) -> ReqId;
    /// Allreduce.
    fn iallreduce(
        &mut self,
        comm: &Communicator,
        op: ReduceOp,
        dtype: Datatype,
        data: &[u8],
    ) -> ReqId;
    /// Dual-root doubly-pipelined allreduce (Träff, PAPERS.md). The
    /// default is the ordinary allreduce so minimal engines stay correct;
    /// [`Engine`] and the application-bypass wrapper run the real
    /// two-chain pipeline.
    fn iallreduce_dual(
        &mut self,
        comm: &Communicator,
        op: ReduceOp,
        dtype: Datatype,
        data: &[u8],
    ) -> ReqId {
        self.iallreduce(comm, op, dtype, data)
    }
    /// Split-phase reduction (the paper's §II/§VII extension). The default
    /// is the ordinary reduction, so baselines remain comparable: callers
    /// that `WaitSplit` immediately observe blocking semantics either way.
    fn ireduce_split(
        &mut self,
        comm: &Communicator,
        root: Rank,
        op: ReduceOp,
        dtype: Datatype,
        data: &[u8],
    ) -> ReqId {
        self.ireduce(comm, root, op, dtype, data)
    }
    /// Split-phase dual-root allreduce. The default is the blocking-style
    /// dual-root algorithm (itself defaulting to the plain allreduce), so
    /// baseline engines remain comparable under `WaitSplit`.
    fn iallreduce_dual_split(
        &mut self,
        comm: &Communicator,
        op: ReduceOp,
        dtype: Datatype,
        data: &[u8],
    ) -> ReqId {
        self.iallreduce_dual(comm, op, dtype, data)
    }
    /// True if unprocessed packets could produce asynchronous work when
    /// signals are enabled (used by drivers to synthesize the "enable
    /// signals with work already queued" edge).
    fn has_pending_signal_work(&self) -> bool;
    /// True when an *unbounded* blocking wait on this engine parks the
    /// host CPU instead of busy-polling: signal-driven progress completes
    /// the operation and wakes the caller, so the core is free for
    /// co-located work in the meantime. The baseline returns `false` —
    /// its only progress path is the caller's poll loop, so a blocked
    /// rank must spin. Multi-tenant drivers use this to decide whether a
    /// blocked rank burns a CPU its node neighbours need.
    fn sleeps_when_blocked(&self) -> bool {
        false
    }
    /// Implementation-defined counters for reports.
    fn counters(&self) -> Vec<(&'static str, u64)>;
    /// Blocking-call semantics for `req`: `None` means the caller must poll
    /// until completion (ordinary MPI blocking semantics); `Some(d)` means
    /// poll for at most `d` more and then call
    /// [`MessageEngine::split_phase_exit`] — the §IV-E bounded exit delay of
    /// an application-bypass reduction.
    fn bounded_block_hint(&self, req: ReqId) -> Option<abr_des::SimDuration> {
        let _ = req;
        None
    }
    /// The bounded block expired: let the blocking call return, delegating
    /// the rest of the operation to asynchronous processing.
    fn split_phase_exit(&mut self, req: ReqId) {
        let _ = req;
    }
    /// Split-phase broadcast (the ref. \[8\] companion extension). The
    /// default is the ordinary blocking broadcast.
    fn ibcast_split(
        &mut self,
        comm: &Communicator,
        root: Rank,
        data: Option<Bytes>,
        len: usize,
    ) -> ReqId {
        self.ibcast(comm, root, data, len)
    }
    /// NIC-side pre-processing at packet arrival (the §VII NIC-based
    /// reduction extension). Called by the driver *in NIC context* before
    /// host delivery; return `Some(pkt)` to deliver to the host as usual or
    /// `None` if the NIC consumed the packet. Costs charged during this
    /// call under [`CpuCategory::NicOffload`] occupy the NIC processor, not
    /// the host. The default NIC does no reduction processing.
    fn nic_preprocess(&mut self, pkt: Packet) -> Option<Packet> {
        Some(pkt)
    }
}

impl MessageEngine for Engine {
    fn rank(&self) -> Rank {
        Engine::rank(self)
    }
    fn size(&self) -> u32 {
        Engine::size(self)
    }
    fn world(&self) -> Communicator {
        Engine::world(self)
    }
    fn deliver(&mut self, pkt: Packet) {
        Engine::deliver(self, pkt)
    }
    fn set_tracer(&mut self, trace: TraceHandle) {
        Engine::set_tracer(self, trace)
    }
    fn progress(&mut self) -> bool {
        Engine::progress(self)
    }
    fn handle_signal(&mut self) -> bool {
        // The baseline never enables signals; treat a stray signal as a
        // progress opportunity.
        Engine::progress(self)
    }
    fn drain_actions(&mut self) -> Vec<Action> {
        Engine::drain_actions(self)
    }
    fn drain_actions_into(&mut self, out: &mut Vec<Action>) {
        Engine::drain_actions_into(self, out)
    }
    fn take_charges(&mut self) -> Charges {
        Engine::take_charges(self)
    }
    fn test(&self, req: ReqId) -> bool {
        Engine::test(self, req)
    }
    fn take_outcome(&mut self, req: ReqId) -> Option<Outcome> {
        Engine::take_outcome(self, req)
    }
    fn isend(&mut self, comm: &Communicator, dst: Rank, tag: i32, data: Bytes) -> ReqId {
        Engine::isend(self, comm, dst, tag, data)
    }
    fn irecv(&mut self, comm: &Communicator, src: Option<Rank>, tag: TagSel, cap: usize) -> ReqId {
        Engine::irecv(self, comm, src, tag, cap)
    }
    fn ireduce(
        &mut self,
        comm: &Communicator,
        root: Rank,
        op: ReduceOp,
        dtype: Datatype,
        data: &[u8],
    ) -> ReqId {
        Engine::ireduce(self, comm, root, op, dtype, data)
    }
    fn ibcast(
        &mut self,
        comm: &Communicator,
        root: Rank,
        data: Option<Bytes>,
        len: usize,
    ) -> ReqId {
        Engine::ibcast(self, comm, root, data, len)
    }
    fn ibarrier(&mut self, comm: &Communicator) -> ReqId {
        Engine::ibarrier(self, comm)
    }
    fn iallreduce(
        &mut self,
        comm: &Communicator,
        op: ReduceOp,
        dtype: Datatype,
        data: &[u8],
    ) -> ReqId {
        Engine::iallreduce(self, comm, op, dtype, data)
    }
    fn iallreduce_dual(
        &mut self,
        comm: &Communicator,
        op: ReduceOp,
        dtype: Datatype,
        data: &[u8],
    ) -> ReqId {
        Engine::iallreduce_dual(self, comm, op, dtype, data)
    }
    fn has_pending_signal_work(&self) -> bool {
        false
    }
    fn counters(&self) -> Vec<(&'static str, u64)> {
        let s = self.stats();
        vec![
            ("eager_sent", s.eager_sent),
            ("rndv_sent", s.rndv_sent),
            ("packets_processed", s.packets_processed),
            ("posted_matched", s.posted_matched),
            ("unexpected_enqueued", s.unexpected_enqueued),
            ("unexpected_matched", s.unexpected_matched),
            ("copies", s.copies),
            ("copy_bytes", s.copy_bytes),
            ("polls", s.polls),
            ("colls_completed", s.colls_completed),
            ("duplicates_suppressed", s.duplicates_suppressed),
        ]
    }
}
