//! Non-blocking request handles.
//!
//! Every operation — point-to-point or collective — is posted as a request
//! and driven to completion by the progress engine. "Blocking" MPI calls
//! are realized by the *driver* polling [`crate::Engine::progress`] until
//! the request tests complete, which is exactly how the default MPICH
//! implementation burns CPU while waiting (and what application bypass
//! avoids for internal tree nodes).

use crate::coll::CollState;
use crate::types::MprError;
use bytes::Bytes;

/// An opaque request handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ReqId(u64);

impl ReqId {
    /// Construct from a raw id (used by the engine and by tests).
    pub const fn from_raw(raw: u64) -> Self {
        ReqId(raw)
    }

    /// The raw id.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

/// What a completed request yields.
#[derive(Debug, Clone)]
pub enum Outcome {
    /// Completed with no payload (sends, barrier, non-root reduce).
    Done,
    /// Completed with payload (receives, root reduce, bcast, allreduce).
    Data(Bytes),
    /// Completed with an error.
    Failed(MprError),
}

/// The state of one request inside the engine.
#[derive(Debug)]
pub enum RequestBody {
    /// An eager-mode send (completes as soon as the bounce copy is made).
    SendEager,
    /// A rendezvous send awaiting its clear-to-send.
    SendRndv(RndvSend),
    /// A receive (posted, or already satisfied).
    Recv(RecvState),
    /// A collective operation state machine (boxed: the segmented and
    /// dual-root states dwarf the point-to-point variants).
    Coll(Box<CollState>),
}

/// Rendezvous-send bookkeeping.
#[derive(Debug)]
pub struct RndvSend {
    /// Destination rank.
    pub dst: u32,
    /// Transfer id carried in the RTS/CTS/DATA headers.
    pub xfer_id: u64,
    /// The payload, held until the CTS arrives.
    pub data: Bytes,
    /// Pinned-region handle for the in-place source buffer.
    pub region: abr_gm::memory::RegionId,
    /// Message tag (for the DATA header).
    pub tag: i32,
    /// Context id.
    pub context: u32,
}

/// Receive-side state.
#[derive(Debug, Default)]
pub struct RecvState {
    /// Payload, once the message lands.
    pub data: Option<Bytes>,
    /// Pinned region while a rendezvous transfer is in flight.
    pub region: Option<abr_gm::memory::RegionId>,
}

/// A request record: body plus completion outcome.
#[derive(Debug)]
pub struct Request {
    /// Operation state.
    pub body: RequestBody,
    /// Set when complete.
    pub outcome: Option<Outcome>,
}

impl Request {
    /// A fresh pending request.
    pub fn new(body: RequestBody) -> Self {
        Request {
            body,
            outcome: None,
        }
    }

    /// True once the operation finished (successfully or not).
    pub fn is_complete(&self) -> bool {
        self.outcome.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn req_id_roundtrip() {
        let id = ReqId::from_raw(42);
        assert_eq!(id.raw(), 42);
        assert_eq!(id, ReqId::from_raw(42));
        assert_ne!(id, ReqId::from_raw(43));
    }

    #[test]
    fn fresh_request_is_pending() {
        let r = Request::new(RequestBody::SendEager);
        assert!(!r.is_complete());
    }

    #[test]
    fn outcome_completes_request() {
        let mut r = Request::new(RequestBody::Recv(RecvState::default()));
        r.outcome = Some(Outcome::Done);
        assert!(r.is_complete());
    }
}
