//! A zero-latency loopback harness for protocol tests.
//!
//! Shuttles `Action::Send` packets between a set of engines until
//! quiescence, with no notion of time. Used by this crate's tests and by
//! `abr_core`'s; the *timed* drivers live in `abr_cluster`.

use crate::engine::{Action, MessageEngine};
use crate::request::Outcome;
use crate::ReqId;
use abr_gm::packet::Packet;
use std::collections::HashMap;

/// A loopback network connecting `N` engines.
pub struct Loopback<E: MessageEngine> {
    /// The engines, indexed by rank.
    pub engines: Vec<E>,
    wire_seq: HashMap<(u32, u32), u64>,
    /// Signal-enabled state per rank, mirroring `Action::EnableSignals`.
    pub signals_enabled: Vec<bool>,
    /// Deliver packets through `handle_signal` when the destination has
    /// signals enabled and the packet is of the collective kind (emulating
    /// the NIC). When false, packets just sit until someone progresses.
    pub signal_dispatch: bool,
    /// Count of signals dispatched.
    pub signals_fired: u64,
    /// When set, each routing batch is delivered in a pseudo-random
    /// cross-pair interleaving (per-(src,dst) order is preserved, as GM
    /// guarantees) — chaos testing for ordering assumptions.
    pub shuffle_seed: Option<u64>,
    shuffle_state: u64,
    /// When > 0, each (src,dst) pair's batch may be *held back* for a round
    /// with this probability (percent), modelling arbitrarily slow links —
    /// per-pair order still holds. Requires `shuffle_seed`.
    pub defer_percent: u8,
    deferred: Vec<Packet>,
    /// Packets consumed by NIC-side pre-processing (never reached a host).
    pub nic_consumed: u64,
}

impl<E: MessageEngine> Loopback<E> {
    /// Wrap a set of engines (index = rank).
    pub fn new(engines: Vec<E>) -> Self {
        let n = engines.len();
        Loopback {
            engines,
            wire_seq: HashMap::new(),
            signals_enabled: vec![false; n],
            signal_dispatch: false,
            signals_fired: 0,
            shuffle_seed: None,
            shuffle_state: 0,
            defer_percent: 0,
            deferred: Vec::new(),
            nic_consumed: 0,
        }
    }

    /// Interleave a batch of packets pseudo-randomly while preserving each
    /// (src, dst) pair's relative order.
    fn shuffle_batch(&mut self, batch: Vec<Packet>) -> Vec<Packet> {
        let Some(seed) = self.shuffle_seed else {
            debug_assert_eq!(self.defer_percent, 0, "deferral requires a shuffle seed");
            return batch;
        };
        // Prepend anything held back from earlier rounds so per-pair FIFO
        // holds across deferrals.
        let mut batch = batch;
        if !self.deferred.is_empty() {
            let mut all = std::mem::take(&mut self.deferred);
            all.extend(batch);
            batch = all;
        }
        let mut state = seed ^ self.shuffle_state ^ 0x9E37_79B9_7F4A_7C15;
        self.shuffle_state = self.shuffle_state.wrapping_add(1);
        let mut rand = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        // Group per ordered pair, then riffle the group fronts randomly.
        let mut groups: Vec<((u32, u32), std::collections::VecDeque<Packet>)> = Vec::new();
        for p in batch {
            let key = (p.header.src.0, p.header.dst.0);
            match groups.iter_mut().find(|(k, _)| *k == key) {
                Some((_, g)) => g.push_back(p),
                None => {
                    let mut g = std::collections::VecDeque::new();
                    g.push_back(p);
                    groups.push((key, g));
                }
            }
        }
        // Optionally hold entire pair-batches back a round (slow links).
        if self.defer_percent > 0 {
            let mut kept = Vec::new();
            for (key, g) in groups.drain(..) {
                if (rand() % 100) < self.defer_percent as u64 {
                    self.deferred.extend(g);
                } else {
                    kept.push((key, g));
                }
            }
            groups = kept;
        }
        let mut out = Vec::new();
        while !groups.is_empty() {
            let i = (rand() % groups.len() as u64) as usize;
            if let Some(p) = groups[i].1.pop_front() {
                out.push(p);
            }
            if groups[i].1.is_empty() {
                groups.swap_remove(i);
            }
        }
        out
    }

    /// Packets currently held back by deferral injection.
    pub fn deferred_len(&self) -> usize {
        self.deferred.len()
    }

    /// Collect and route all pending actions from every engine. Returns the
    /// number of packets moved.
    pub fn route_once(&mut self) -> usize {
        let mut in_flight: Vec<Packet> = Vec::new();
        for e in self.engines.iter_mut() {
            for a in e.drain_actions() {
                match a {
                    Action::Send(p) => in_flight.push(p),
                    Action::EnableSignals => {
                        self.signals_enabled[e.rank() as usize] = true;
                    }
                    Action::DisableSignals => {
                        self.signals_enabled[e.rank() as usize] = false;
                    }
                }
            }
        }
        let in_flight = self.shuffle_batch(in_flight);
        let moved = in_flight.len();
        for mut p in in_flight {
            let key = (p.header.src.0, p.header.dst.0);
            let seq = self.wire_seq.entry(key).or_insert(0);
            p.header.wire_seq = *seq;
            *seq += 1;
            let dst = p.header.dst.index();
            // NIC-side pre-processing happens at arrival (the NIC-offload
            // extension); a consumed packet never reaches the host.
            let Some(p) = self.engines[dst].nic_preprocess(p) else {
                self.nic_consumed += 1;
                continue;
            };
            let signal = self.signal_dispatch && self.signals_enabled[dst] && p.generates_signal();
            self.engines[dst].deliver(p);
            if signal {
                self.signals_fired += 1;
                self.engines[dst].handle_signal();
                // handle_signal may emit follow-on actions; they are picked
                // up by the next route_once pass.
            }
        }
        moved
    }

    /// Make progress on every engine once. Returns true if anything moved.
    pub fn progress_all(&mut self) -> bool {
        let mut any = false;
        for e in self.engines.iter_mut() {
            any |= e.progress();
        }
        any
    }

    /// Route and progress until quiescent or `max_spins` is hit.
    ///
    /// # Panics
    /// Panics if the system fails to quiesce (a protocol deadlock or
    /// livelock in the code under test).
    pub fn run_to_quiescence(&mut self, max_spins: usize) {
        let mut idle_rounds = 0;
        for _ in 0..max_spins {
            let moved = self.route_once();
            let progressed = self.progress_all();
            if moved == 0 && !progressed && self.deferred.is_empty() {
                idle_rounds += 1;
                if idle_rounds >= 2 {
                    return;
                }
            } else {
                idle_rounds = 0;
            }
        }
        panic!("loopback failed to quiesce in {max_spins} spins");
    }

    /// Run until the given requests all complete (or panic after
    /// `max_spins`).
    pub fn run_until_complete(&mut self, reqs: &[(usize, ReqId)], max_spins: usize) {
        for _ in 0..max_spins {
            if reqs.iter().all(|&(r, id)| self.engines[r].test(id)) {
                return;
            }
            self.route_once();
            self.progress_all();
        }
        let stuck: Vec<_> = reqs
            .iter()
            .filter(|&&(r, id)| !self.engines[r].test(id))
            .collect();
        panic!("requests never completed: {stuck:?}");
    }

    /// Take a completed outcome, panicking on failure outcomes.
    pub fn expect_data(&mut self, rank: usize, req: ReqId) -> bytes::Bytes {
        match self.engines[rank].take_outcome(req) {
            Some(Outcome::Data(d)) => d,
            other => panic!("rank {rank} request {req:?}: expected data, got {other:?}"),
        }
    }

    /// Take a completed outcome, expecting plain completion.
    pub fn expect_done(&mut self, rank: usize, req: ReqId) {
        match self.engines[rank].take_outcome(req) {
            Some(Outcome::Done) => {}
            other => panic!("rank {rank} request {req:?}: expected done, got {other:?}"),
        }
    }
}

/// Build `n` baseline engines with a config.
pub fn engines(n: u32, config: crate::engine::EngineConfig) -> Vec<crate::engine::Engine> {
    (0..n)
        .map(|r| crate::engine::Engine::new(r, n, config.clone()))
        .collect()
}
