//! Posted-receive and unexpected-message queues with MPI matching semantics.
//!
//! §III of the paper describes the default MPICH behaviour this models: a
//! message that arrives before a matching receive is posted is copied into a
//! temporary buffer on the *unexpected queue*; a later matching receive
//! copies it again into the user buffer (two copies). A message that finds
//! a posted receive is copied once, directly into the user buffer.
//!
//! Matching is FIFO within each queue, on (context, source, tag) with
//! wildcard source and tag — the MPI non-overtaking rule given the FIFO
//! transport underneath.
//!
//! # Implementation
//!
//! Both queues keep their entries in a sequence-ordered store and index them
//! with per-selector FIFO buckets, so the common exact-match probe on a deep
//! queue is a few (cheaply) hashed lookups instead of a linear scan over
//! every parked entry. Queues at or below `SMALL_SCAN` entries — the
//! steady state for the engine — skip the buckets entirely and scan the
//! store directly, which picks the same entry for a fraction of the cost:
//!
//! * [`PostedQueue::take_match`] probes the four selector buckets an
//!   incoming message could match — (src, tag), (src, ANY), (ANY, tag),
//!   (ANY, ANY) — and takes the bucket whose front has the smallest global
//!   posting sequence, preserving MPI posting order exactly.
//! * [`UnexpectedQueue::take_match`] with an exact (source, tag) selector
//!   probes one bucket; wildcard receives fall back to a scan of the store
//!   in arrival order, which is the order wildcards must respect anyway.
//!
//! Entries removed out of FIFO order leave tombstones that are dropped
//! lazily; the store compacts whenever tombstones outnumber live entries,
//! so memory stays bounded by the live entry count.

use crate::request::ReqId;
use crate::types::{Rank, TagSel};
use abr_gm::packet::PacketKind;
use bytes::Bytes;
use std::collections::{HashMap, VecDeque};
use std::hash::{BuildHasherDefault, Hasher};

/// Queues at or below this length answer `take_match` with a direct scan of
/// the store instead of bucket probes. A scan in sequence order picks the
/// same (lowest-sequence) entry the probe would, and below a couple hundred
/// entries a cache-friendly scan beats per-op hashing outright — the bucket
/// index only pays off once the scan's quadratic drain cost bites. The
/// engine's day-to-day queues stay far below this.
const SMALL_SCAN: usize = 64;

/// Once an index exists, it is dropped again when the queue drains to this
/// length; the gap below [`SMALL_SCAN`] is hysteresis so a queue oscillating
/// around the threshold does not rebuild its index every few operations.
const INDEX_DROP: usize = SMALL_SCAN / 2;

/// Fx-style multiplicative hasher for the bucket maps. Selector keys are a
/// few small integers, attacker-controlled input is not a concern here, and
/// the default SipHash costs more than the bucket operation it guards.
#[derive(Default)]
struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(0x51_7c_c1_b7_27_22_0a_95);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.add(u64::from(b));
        }
    }
    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(u64::from(n));
    }
    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add(u64::from(n));
    }
    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(u64::from(n));
    }
    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }
    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
    #[inline]
    fn write_i32(&mut self, n: i32) {
        self.add(n as u32 as u64);
    }
    #[inline]
    fn write_isize(&mut self, n: isize) {
        self.add(n as u64);
    }
}

type FxMap<K> = HashMap<K, VecDeque<u64>, BuildHasherDefault<FxHasher>>;

/// A receive the application (or a collective state machine) has posted.
#[derive(Debug, Clone)]
pub struct PostedRecv {
    /// The request this receive completes.
    pub id: ReqId,
    /// Source selector; `None` is `MPI_ANY_SOURCE`.
    pub src: Option<Rank>,
    /// Tag selector.
    pub tag: TagSel,
    /// Communicator context id.
    pub context: u32,
    /// Receive-buffer capacity in bytes.
    pub capacity: usize,
    /// Collective sequence number this receive belongs to, if any; used only
    /// for debug cross-checks (FIFO ordering already guarantees instance
    /// correctness, §IV-D).
    pub expect_coll_seq: Option<u64>,
}

/// A key describing an incoming message for matching purposes.
#[derive(Debug, Clone, Copy)]
pub struct MsgKey {
    /// Sending rank.
    pub src: Rank,
    /// Message tag.
    pub tag: i32,
    /// Communicator context id.
    pub context: u32,
}

impl MsgKey {
    fn matches(&self, p: &PostedRecv) -> bool {
        p.context == self.context && p.src.is_none_or(|s| s == self.src) && p.tag.accepts(self.tag)
    }
}

/// A sequence-ordered store with tombstoning removal.
///
/// Entries keep the global sequence number they were inserted under, so
/// bucket indexes can refer to them by sequence; lookup is a binary search
/// (the store stays sorted by construction). Tombstones accumulate when
/// entries are taken out of order and are swept once they outnumber live
/// entries, keeping memory O(live).
#[derive(Debug)]
struct SeqStore<T> {
    entries: VecDeque<(u64, Option<T>)>,
    next_seq: u64,
    live: usize,
    dead: usize,
}

impl<T> Default for SeqStore<T> {
    fn default() -> Self {
        SeqStore {
            entries: VecDeque::new(),
            next_seq: 0,
            live: 0,
            dead: 0,
        }
    }
}

impl<T> SeqStore<T> {
    /// Append `val`, returning its sequence number.
    fn push(&mut self, val: T) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.entries.push_back((seq, Some(val)));
        self.live += 1;
        seq
    }

    fn index_of(&self, seq: u64) -> Option<usize> {
        let i = self.entries.partition_point(|&(s, _)| s < seq);
        (i < self.entries.len() && self.entries[i].0 == seq).then_some(i)
    }

    /// True if `seq` refers to a live (not taken) entry.
    fn is_live(&self, seq: u64) -> bool {
        self.index_of(seq)
            .is_some_and(|i| self.entries[i].1.is_some())
    }

    /// Remove and return the entry at `seq`, leaving a tombstone.
    fn take(&mut self, seq: u64) -> Option<T> {
        let i = self.index_of(seq)?;
        let val = self.entries[i].1.take()?;
        self.live -= 1;
        self.dead += 1;
        self.maybe_compact();
        Some(val)
    }

    /// Remove and return the first live entry satisfying `pred`, in
    /// insertion order.
    fn scan_take(&mut self, pred: impl Fn(&T) -> bool) -> Option<T> {
        let entry = self
            .entries
            .iter_mut()
            .find(|(_, slot)| slot.as_ref().is_some_and(&pred))?;
        let found = entry.1.take();
        self.live -= 1;
        self.dead += 1;
        self.maybe_compact();
        found
    }

    /// Drop tombstones once they outnumber live entries (amortized O(1) per
    /// removal). Sequence numbers survive compaction, so bucket references
    /// stay valid — a swept sequence simply no longer resolves.
    fn maybe_compact(&mut self) {
        while matches!(self.entries.front(), Some((_, None))) {
            self.entries.pop_front();
            self.dead -= 1;
        }
        if self.dead > self.live && self.dead >= 64 {
            self.entries.retain(|(_, slot)| slot.is_some());
            self.entries.shrink_to_fit();
            self.dead = 0;
        }
    }

    fn len(&self) -> usize {
        self.live
    }

    /// Live entries in sequence order, for (re)building a bucket index.
    fn iter_live(&self) -> impl Iterator<Item = (u64, &T)> {
        self.entries
            .iter()
            .filter_map(|(seq, slot)| slot.as_ref().map(|v| (*seq, v)))
    }
}

/// Pop stale (already-taken) sequences off a bucket's front and return the
/// front live sequence, if any. Standalone function so callers can borrow
/// the bucket map mutably alongside the store.
fn bucket_front<T, K>(buckets: &mut FxMap<K>, key: &K, store: &SeqStore<T>) -> Option<u64>
where
    K: std::hash::Hash + Eq,
{
    // An emptied bucket is left in place (capacity and all): selector keys
    // recur, so the next post reuses it without reallocating. prune_buckets
    // drops the genuinely dead ones.
    let b = buckets.get_mut(key)?;
    while let Some(&seq) = b.front() {
        if store.is_live(seq) {
            return Some(seq);
        }
        b.pop_front();
    }
    None
}

/// Drop swept sequences from every bucket and remove emptied buckets; run
/// opportunistically so bucket memory is also bounded by live entries.
fn prune_buckets<T, K>(buckets: &mut FxMap<K>, store: &SeqStore<T>)
where
    K: std::hash::Hash + Eq,
{
    for b in buckets.values_mut() {
        b.retain(|&seq| store.is_live(seq));
    }
    buckets.retain(|_, b| !b.is_empty());
}

/// Posted-receive selector bucket: context plus the literal source/tag
/// selectors (`None` = wildcard).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct PostedKey {
    context: u32,
    src: Option<Rank>,
    tag: Option<i32>,
}

/// The posted-receive queue.
#[derive(Debug, Default)]
pub struct PostedQueue {
    store: SeqStore<PostedRecv>,
    /// Selector index, built lazily: empty and untouched until a deep queue
    /// actually takes an exact probe (see [`PostedQueue::take_match`]).
    buckets: FxMap<PostedKey>,
    /// Whether `buckets` currently mirrors the store.
    indexed: bool,
    /// Removals since the last bucket prune; triggers housekeeping.
    removals: usize,
    trace: abr_trace::TraceHandle,
}

fn posted_key(recv: &PostedRecv) -> PostedKey {
    PostedKey {
        context: recv.context,
        src: recv.src,
        tag: match recv.tag {
            TagSel::Any => None,
            TagSel::Is(t) => Some(t),
        },
    }
}

impl PostedQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a posted receive (FIFO per MPI posting order).
    pub fn post(&mut self, recv: PostedRecv) {
        if self.indexed {
            let key = posted_key(&recv);
            let seq = self.store.push(recv);
            self.buckets.entry(key).or_default().push_back(seq);
        } else {
            self.store.push(recv);
        }
    }

    /// Emit a [`abr_trace::TraceEvent::MatchOutcome`] for every probe.
    pub fn set_tracer(&mut self, trace: abr_trace::TraceHandle) {
        self.trace = trace;
    }

    /// Remove and return the first posted receive matching `key`, in MPI
    /// posting order: the probe checks the four selector buckets the
    /// message could match and takes the earliest-posted candidate.
    pub fn take_match(&mut self, key: &MsgKey) -> Option<PostedRecv> {
        let hit = self.take_match_inner(key);
        self.trace.emit(abr_trace::TraceEvent::MatchOutcome {
            queue: "posted",
            outcome: if hit.is_some() { "hit" } else { "miss" },
        });
        hit
    }

    fn take_match_inner(&mut self, key: &MsgKey) -> Option<PostedRecv> {
        // Short queue: a scan in posting order picks the same entry the
        // bucket probe would, without touching the hash maps.
        if self.store.len() <= SMALL_SCAN {
            let recv = self.store.scan_take(|p| key.matches(p))?;
            self.after_removal();
            return Some(recv);
        }
        // Deep queue: build the selector index the first time it is needed.
        if !self.indexed {
            for (seq, recv) in self.store.iter_live() {
                self.buckets
                    .entry(posted_key(recv))
                    .or_default()
                    .push_back(seq);
            }
            self.indexed = true;
        }
        let probes = [
            PostedKey {
                context: key.context,
                src: Some(key.src),
                tag: Some(key.tag),
            },
            PostedKey {
                context: key.context,
                src: Some(key.src),
                tag: None,
            },
            PostedKey {
                context: key.context,
                src: None,
                tag: Some(key.tag),
            },
            PostedKey {
                context: key.context,
                src: None,
                tag: None,
            },
        ];
        let mut best: Option<(u64, PostedKey)> = None;
        for probe in probes {
            if let Some(seq) = bucket_front(&mut self.buckets, &probe, &self.store) {
                if best.is_none_or(|(s, _)| seq < s) {
                    best = Some((seq, probe));
                }
            }
        }
        let (seq, bucket) = best?;
        let b = self.buckets.get_mut(&bucket).expect("probed bucket exists");
        b.pop_front();
        let recv = self.store.take(seq).expect("bucket front is live");
        debug_assert!(key.matches(&recv), "bucket probe returned a non-match");
        self.after_removal();
        Some(recv)
    }

    /// Cancel a posted receive by request id; returns true if found.
    ///
    /// This is an error/teardown path, not a matching hot path, so it scans
    /// rather than carrying an id index on every post.
    pub fn cancel(&mut self, id: ReqId) -> bool {
        let hit = self.store.scan_take(|p| p.id == id).is_some();
        if hit {
            self.after_removal();
        }
        hit
    }

    fn after_removal(&mut self) {
        if !self.indexed {
            return;
        }
        // A drained queue drops its index outright and goes back to scans.
        if self.store.len() <= INDEX_DROP {
            self.buckets.clear();
            self.indexed = false;
            self.removals = 0;
            return;
        }
        self.removals += 1;
        // Periodically drop bucket references to swept entries so bucket
        // memory tracks the live count like the store does.
        if self.removals >= 256 {
            self.removals = 0;
            prune_buckets(&mut self.buckets, &self.store);
        }
    }

    /// Number of outstanding posted receives.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// True when nothing is posted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A message parked on the unexpected queue.
#[derive(Debug, Clone)]
pub struct UnexpectedMsg {
    /// Sender.
    pub src: Rank,
    /// Tag.
    pub tag: i32,
    /// Context id.
    pub context: u32,
    /// Original GM packet kind (an unexpected rendezvous RTS parks here with
    /// empty data).
    pub kind: PacketKind,
    /// Collective sequence number from the header.
    pub coll_seq: u64,
    /// Payload (already copied once into this temporary buffer).
    pub data: Bytes,
    /// Full message length the sender announced (equals `data.len()` except
    /// for a parked RTS).
    pub msg_len: usize,
}

/// The unexpected-message queue (the *MPICH* one; the application-bypass
/// layer keeps its own separate queue in `abr_core`, §V-A).
#[derive(Debug, Default)]
pub struct UnexpectedQueue {
    store: SeqStore<UnexpectedMsg>,
    /// Exact (context, src, tag) arrival buckets for the fully-specified
    /// receive against a deep queue; built lazily like the posted index.
    exact: FxMap<(u32, Rank, i32)>,
    /// Whether `exact` currently mirrors the store.
    indexed: bool,
    removals: usize,
    high_water: usize,
    trace: abr_trace::TraceHandle,
}

impl UnexpectedQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Park an unexpected message.
    pub fn push(&mut self, msg: UnexpectedMsg) {
        if self.indexed {
            let key = (msg.context, msg.src, msg.tag);
            let seq = self.store.push(msg);
            self.exact.entry(key).or_default().push_back(seq);
        } else {
            self.store.push(msg);
        }
        self.high_water = self.high_water.max(self.store.len());
    }

    /// Emit a [`abr_trace::TraceEvent::MatchOutcome`] for every probe.
    pub fn set_tracer(&mut self, trace: abr_trace::TraceHandle) {
        self.trace = trace;
    }

    /// Remove and return the first parked message a new receive
    /// (src/tag/context) matches, preserving arrival order.
    pub fn take_match(
        &mut self,
        src: Option<Rank>,
        tag: TagSel,
        context: u32,
    ) -> Option<UnexpectedMsg> {
        let hit = self.take_match_inner(src, tag, context);
        self.trace.emit(abr_trace::TraceEvent::MatchOutcome {
            queue: "unexpected",
            outcome: if hit.is_some() { "hit" } else { "miss" },
        });
        hit
    }

    fn take_match_inner(
        &mut self,
        src: Option<Rank>,
        tag: TagSel,
        context: u32,
    ) -> Option<UnexpectedMsg> {
        let msg = match (src, tag) {
            // Fully-specified receive against a deep queue: one bucket
            // probe, building the arrival index the first time one happens.
            (Some(s), TagSel::Is(t)) if self.store.len() > SMALL_SCAN => {
                if !self.indexed {
                    for (seq, m) in self.store.iter_live() {
                        self.exact
                            .entry((m.context, m.src, m.tag))
                            .or_default()
                            .push_back(seq);
                    }
                    self.indexed = true;
                }
                let key = (context, s, t);
                let seq = bucket_front(&mut self.exact, &key, &self.store)?;
                let b = self.exact.get_mut(&key).expect("probed bucket exists");
                b.pop_front();
                self.store.take(seq).expect("bucket front is live")
            }
            // Wildcard source and/or tag (arrival order across senders is
            // the contract) or a short queue: scan the store in sequence
            // order, which yields exactly the bucket-probe answer.
            _ => self.store.scan_take(|m| {
                m.context == context && src.is_none_or(|s| s == m.src) && tag.accepts(m.tag)
            })?,
        };
        self.after_removal();
        Some(msg)
    }

    fn after_removal(&mut self) {
        if !self.indexed {
            return;
        }
        if self.store.len() <= INDEX_DROP {
            self.exact.clear();
            self.indexed = false;
            self.removals = 0;
            return;
        }
        self.removals += 1;
        if self.removals >= 256 {
            self.removals = 0;
            prune_buckets(&mut self.exact, &self.store);
        }
    }

    /// Number of parked messages.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Largest queue length ever reached.
    pub fn high_water(&self) -> usize {
        self.high_water
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::ReqId;

    fn posted(id: u64, src: Option<Rank>, tag: TagSel, ctx: u32) -> PostedRecv {
        PostedRecv {
            id: ReqId::from_raw(id),
            src,
            tag,
            context: ctx,
            capacity: 64,
            expect_coll_seq: None,
        }
    }

    fn key(src: Rank, tag: i32, ctx: u32) -> MsgKey {
        MsgKey {
            src,
            tag,
            context: ctx,
        }
    }

    fn unexpected(src: Rank, tag: i32, ctx: u32) -> UnexpectedMsg {
        UnexpectedMsg {
            src,
            tag,
            context: ctx,
            kind: PacketKind::Eager,
            coll_seq: 0,
            data: Bytes::new(),
            msg_len: 0,
        }
    }

    #[test]
    fn exact_match_consumes_entry() {
        let mut q = PostedQueue::new();
        q.post(posted(1, Some(3), TagSel::Is(7), 0));
        assert!(q.take_match(&key(3, 8, 0)).is_none());
        assert!(q.take_match(&key(4, 7, 0)).is_none());
        assert!(q.take_match(&key(3, 7, 1)).is_none());
        let hit = q.take_match(&key(3, 7, 0)).unwrap();
        assert_eq!(hit.id, ReqId::from_raw(1));
        assert!(q.is_empty());
    }

    #[test]
    fn wildcards_match_anything_in_context() {
        let mut q = PostedQueue::new();
        q.post(posted(1, None, TagSel::Any, 2));
        assert!(
            q.take_match(&key(9, -5, 3)).is_none(),
            "context is never wild"
        );
        assert!(q.take_match(&key(9, -5, 2)).is_some());
    }

    #[test]
    fn fifo_order_among_multiple_matches() {
        let mut q = PostedQueue::new();
        q.post(posted(1, None, TagSel::Any, 0));
        q.post(posted(2, Some(5), TagSel::Is(7), 0));
        // Both match; the earlier posting wins (MPI matching order).
        let hit = q.take_match(&key(5, 7, 0)).unwrap();
        assert_eq!(hit.id, ReqId::from_raw(1));
        let hit = q.take_match(&key(5, 7, 0)).unwrap();
        assert_eq!(hit.id, ReqId::from_raw(2));
    }

    #[test]
    fn posting_order_wins_across_selector_buckets() {
        // Interleave postings across all four selector shapes; a message
        // matching all of them must take them in posting order.
        let mut q = PostedQueue::new();
        q.post(posted(1, Some(5), TagSel::Is(7), 0));
        q.post(posted(2, None, TagSel::Is(7), 0));
        q.post(posted(3, Some(5), TagSel::Any, 0));
        q.post(posted(4, None, TagSel::Any, 0));
        for expect in 1..=4u64 {
            let hit = q.take_match(&key(5, 7, 0)).unwrap();
            assert_eq!(hit.id, ReqId::from_raw(expect));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn non_matching_entries_are_skipped_not_blocked() {
        let mut q = PostedQueue::new();
        q.post(posted(1, Some(0), TagSel::Is(1), 0));
        q.post(posted(2, Some(9), TagSel::Is(2), 0));
        let hit = q.take_match(&key(9, 2, 0)).unwrap();
        assert_eq!(hit.id, ReqId::from_raw(2));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn cancel_removes_by_id() {
        let mut q = PostedQueue::new();
        q.post(posted(1, None, TagSel::Any, 0));
        q.post(posted(2, None, TagSel::Any, 0));
        assert!(q.cancel(ReqId::from_raw(1)));
        assert!(!q.cancel(ReqId::from_raw(1)));
        assert_eq!(q.take_match(&key(0, 0, 0)).unwrap().id, ReqId::from_raw(2));
    }

    #[test]
    fn unexpected_fifo_and_wildcards() {
        let mut q = UnexpectedQueue::new();
        q.push(unexpected(1, 5, 0));
        q.push(unexpected(2, 5, 0));
        q.push(unexpected(1, 6, 0));
        // Wildcard source, exact tag: arrival order among tag-5 messages.
        let m = q.take_match(None, TagSel::Is(5), 0).unwrap();
        assert_eq!(m.src, 1);
        let m = q.take_match(None, TagSel::Is(5), 0).unwrap();
        assert_eq!(m.src, 2);
        // Exact source, any tag.
        let m = q.take_match(Some(1), TagSel::Any, 0).unwrap();
        assert_eq!(m.tag, 6);
        assert!(q.is_empty());
    }

    #[test]
    fn unexpected_exact_probe_respects_wildcard_consumption() {
        // A wildcard receive consumes a message; the exact bucket must not
        // resurrect it.
        let mut q = UnexpectedQueue::new();
        q.push(unexpected(3, 9, 0));
        q.push(unexpected(3, 9, 0));
        assert!(q.take_match(None, TagSel::Any, 0).is_some());
        assert!(q.take_match(Some(3), TagSel::Is(9), 0).is_some());
        assert!(q.take_match(Some(3), TagSel::Is(9), 0).is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn unexpected_context_isolation() {
        let mut q = UnexpectedQueue::new();
        q.push(unexpected(1, 5, 0));
        assert!(q.take_match(None, TagSel::Any, 1).is_none());
        assert!(q.take_match(None, TagSel::Any, 0).is_some());
    }

    #[test]
    fn unexpected_high_water_tracks_peak() {
        let mut q = UnexpectedQueue::new();
        q.push(unexpected(1, 1, 0));
        q.push(unexpected(1, 2, 0));
        q.take_match(None, TagSel::Any, 0).unwrap();
        q.push(unexpected(1, 3, 0));
        assert_eq!(q.high_water(), 2);
    }

    #[test]
    fn deep_posted_queue_uses_buckets_and_keeps_posting_order() {
        // Well past SMALL_SCAN so take_match runs the 4-bucket probe, with
        // all four selector shapes interleaved: posting order must still win.
        let mut q = PostedQueue::new();
        let shapes: [(Option<Rank>, TagSel); 4] = [
            (Some(5), TagSel::Is(7)),
            (None, TagSel::Is(7)),
            (Some(5), TagSel::Any),
            (None, TagSel::Any),
        ];
        for i in 0..(4 * SMALL_SCAN as u64) {
            let (src, tag) = shapes[(i % 4) as usize];
            q.post(posted(i, src, tag, 0));
        }
        for expect in 0..(4 * SMALL_SCAN as u64) {
            let hit = q.take_match(&key(5, 7, 0)).unwrap();
            assert_eq!(hit.id, ReqId::from_raw(expect));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn deep_unexpected_queue_exact_probe_after_wildcard_holes() {
        // Deep queue: exact takes run the bucket probe; interleaved wildcard
        // takes punch holes the buckets must skip over.
        let mut q = UnexpectedQueue::new();
        let n = 4 * SMALL_SCAN as i32;
        for i in 0..n {
            q.push(unexpected(1, i, 0));
            q.push(unexpected(2, i, 0));
        }
        for i in 0..n {
            // Wildcard consumes the src-1 copy (earliest arrival for tag i)…
            let m = q.take_match(None, TagSel::Is(i), 0).unwrap();
            assert_eq!((m.src, m.tag), (1, i));
            // …and the exact probe must then find the src-2 copy, not the
            // consumed one.
            let m = q.take_match(Some(2), TagSel::Is(i), 0).unwrap();
            assert_eq!((m.src, m.tag), (2, i));
            assert!(q.take_match(Some(1), TagSel::Is(i), 0).is_none());
        }
        assert!(q.is_empty());
    }

    #[test]
    fn store_memory_is_bounded_under_churn() {
        // Take from the back repeatedly while the front stays parked: the
        // tombstone sweep must keep the store near the live count.
        let mut q = UnexpectedQueue::new();
        q.push(unexpected(0, 0, 0)); // never matched, pins the front
        for i in 0..10_000u32 {
            q.push(unexpected(1, i as i32, 0));
            assert!(q.take_match(Some(1), TagSel::Is(i as i32), 0).is_some());
        }
        assert_eq!(q.len(), 1);
        assert!(
            q.store.entries.len() <= 2 + 64 + 64,
            "store grew unboundedly: {} entries for 1 live",
            q.store.entries.len()
        );
    }
}
