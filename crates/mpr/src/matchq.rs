//! Posted-receive and unexpected-message queues with MPI matching semantics.
//!
//! §III of the paper describes the default MPICH behaviour this models: a
//! message that arrives before a matching receive is posted is copied into a
//! temporary buffer on the *unexpected queue*; a later matching receive
//! copies it again into the user buffer (two copies). A message that finds
//! a posted receive is copied once, directly into the user buffer.
//!
//! Matching is FIFO within each queue, on (context, source, tag) with
//! wildcard source and tag — the MPI non-overtaking rule given the FIFO
//! transport underneath.

use crate::request::ReqId;
use crate::types::{Rank, TagSel};
use abr_gm::packet::PacketKind;
use bytes::Bytes;
use std::collections::VecDeque;

/// A receive the application (or a collective state machine) has posted.
#[derive(Debug, Clone)]
pub struct PostedRecv {
    /// The request this receive completes.
    pub id: ReqId,
    /// Source selector; `None` is `MPI_ANY_SOURCE`.
    pub src: Option<Rank>,
    /// Tag selector.
    pub tag: TagSel,
    /// Communicator context id.
    pub context: u32,
    /// Receive-buffer capacity in bytes.
    pub capacity: usize,
    /// Collective sequence number this receive belongs to, if any; used only
    /// for debug cross-checks (FIFO ordering already guarantees instance
    /// correctness, §IV-D).
    pub expect_coll_seq: Option<u64>,
}

/// A key describing an incoming message for matching purposes.
#[derive(Debug, Clone, Copy)]
pub struct MsgKey {
    /// Sending rank.
    pub src: Rank,
    /// Message tag.
    pub tag: i32,
    /// Communicator context id.
    pub context: u32,
}

impl MsgKey {
    fn matches(&self, p: &PostedRecv) -> bool {
        p.context == self.context
            && p.src.is_none_or(|s| s == self.src)
            && p.tag.accepts(self.tag)
    }
}

/// The posted-receive queue.
#[derive(Debug, Default)]
pub struct PostedQueue {
    queue: VecDeque<PostedRecv>,
}

impl PostedQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a posted receive (FIFO per MPI posting order).
    pub fn post(&mut self, recv: PostedRecv) {
        self.queue.push_back(recv);
    }

    /// Remove and return the first posted receive matching `key`.
    pub fn take_match(&mut self, key: &MsgKey) -> Option<PostedRecv> {
        let idx = self.queue.iter().position(|p| key.matches(p))?;
        self.queue.remove(idx)
    }

    /// Cancel a posted receive by request id; returns true if found.
    pub fn cancel(&mut self, id: ReqId) -> bool {
        if let Some(idx) = self.queue.iter().position(|p| p.id == id) {
            self.queue.remove(idx);
            true
        } else {
            false
        }
    }

    /// Number of outstanding posted receives.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True when nothing is posted.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }
}

/// A message parked on the unexpected queue.
#[derive(Debug, Clone)]
pub struct UnexpectedMsg {
    /// Sender.
    pub src: Rank,
    /// Tag.
    pub tag: i32,
    /// Context id.
    pub context: u32,
    /// Original GM packet kind (an unexpected rendezvous RTS parks here with
    /// empty data).
    pub kind: PacketKind,
    /// Collective sequence number from the header.
    pub coll_seq: u64,
    /// Payload (already copied once into this temporary buffer).
    pub data: Bytes,
    /// Full message length the sender announced (equals `data.len()` except
    /// for a parked RTS).
    pub msg_len: usize,
}

/// The unexpected-message queue (the *MPICH* one; the application-bypass
/// layer keeps its own separate queue in `abr_core`, §V-A).
#[derive(Debug, Default)]
pub struct UnexpectedQueue {
    queue: VecDeque<UnexpectedMsg>,
    high_water: usize,
}

impl UnexpectedQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Park an unexpected message.
    pub fn push(&mut self, msg: UnexpectedMsg) {
        self.queue.push_back(msg);
        self.high_water = self.high_water.max(self.queue.len());
    }

    /// Remove and return the first parked message a new receive
    /// (src/tag/context) matches, preserving arrival order.
    pub fn take_match(
        &mut self,
        src: Option<Rank>,
        tag: TagSel,
        context: u32,
    ) -> Option<UnexpectedMsg> {
        let idx = self.queue.iter().position(|m| {
            m.context == context && src.is_none_or(|s| s == m.src) && tag.accepts(m.tag)
        })?;
        self.queue.remove(idx)
    }

    /// Number of parked messages.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Largest queue length ever reached.
    pub fn high_water(&self) -> usize {
        self.high_water
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::ReqId;

    fn posted(id: u64, src: Option<Rank>, tag: TagSel, ctx: u32) -> PostedRecv {
        PostedRecv {
            id: ReqId::from_raw(id),
            src,
            tag,
            context: ctx,
            capacity: 64,
            expect_coll_seq: None,
        }
    }

    fn key(src: Rank, tag: i32, ctx: u32) -> MsgKey {
        MsgKey { src, tag, context: ctx }
    }

    fn unexpected(src: Rank, tag: i32, ctx: u32) -> UnexpectedMsg {
        UnexpectedMsg {
            src,
            tag,
            context: ctx,
            kind: PacketKind::Eager,
            coll_seq: 0,
            data: Bytes::new(),
            msg_len: 0,
        }
    }

    #[test]
    fn exact_match_consumes_entry() {
        let mut q = PostedQueue::new();
        q.post(posted(1, Some(3), TagSel::Is(7), 0));
        assert!(q.take_match(&key(3, 8, 0)).is_none());
        assert!(q.take_match(&key(4, 7, 0)).is_none());
        assert!(q.take_match(&key(3, 7, 1)).is_none());
        let hit = q.take_match(&key(3, 7, 0)).unwrap();
        assert_eq!(hit.id, ReqId::from_raw(1));
        assert!(q.is_empty());
    }

    #[test]
    fn wildcards_match_anything_in_context() {
        let mut q = PostedQueue::new();
        q.post(posted(1, None, TagSel::Any, 2));
        assert!(q.take_match(&key(9, -5, 3)).is_none(), "context is never wild");
        assert!(q.take_match(&key(9, -5, 2)).is_some());
    }

    #[test]
    fn fifo_order_among_multiple_matches() {
        let mut q = PostedQueue::new();
        q.post(posted(1, None, TagSel::Any, 0));
        q.post(posted(2, Some(5), TagSel::Is(7), 0));
        // Both match; the earlier posting wins (MPI matching order).
        let hit = q.take_match(&key(5, 7, 0)).unwrap();
        assert_eq!(hit.id, ReqId::from_raw(1));
        let hit = q.take_match(&key(5, 7, 0)).unwrap();
        assert_eq!(hit.id, ReqId::from_raw(2));
    }

    #[test]
    fn non_matching_entries_are_skipped_not_blocked() {
        let mut q = PostedQueue::new();
        q.post(posted(1, Some(0), TagSel::Is(1), 0));
        q.post(posted(2, Some(9), TagSel::Is(2), 0));
        let hit = q.take_match(&key(9, 2, 0)).unwrap();
        assert_eq!(hit.id, ReqId::from_raw(2));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn cancel_removes_by_id() {
        let mut q = PostedQueue::new();
        q.post(posted(1, None, TagSel::Any, 0));
        q.post(posted(2, None, TagSel::Any, 0));
        assert!(q.cancel(ReqId::from_raw(1)));
        assert!(!q.cancel(ReqId::from_raw(1)));
        assert_eq!(q.take_match(&key(0, 0, 0)).unwrap().id, ReqId::from_raw(2));
    }

    #[test]
    fn unexpected_fifo_and_wildcards() {
        let mut q = UnexpectedQueue::new();
        q.push(unexpected(1, 5, 0));
        q.push(unexpected(2, 5, 0));
        q.push(unexpected(1, 6, 0));
        // Wildcard source, exact tag: arrival order among tag-5 messages.
        let m = q.take_match(None, TagSel::Is(5), 0).unwrap();
        assert_eq!(m.src, 1);
        let m = q.take_match(None, TagSel::Is(5), 0).unwrap();
        assert_eq!(m.src, 2);
        // Exact source, any tag.
        let m = q.take_match(Some(1), TagSel::Any, 0).unwrap();
        assert_eq!(m.tag, 6);
        assert!(q.is_empty());
    }

    #[test]
    fn unexpected_context_isolation() {
        let mut q = UnexpectedQueue::new();
        q.push(unexpected(1, 5, 0));
        assert!(q.take_match(None, TagSel::Any, 1).is_none());
        assert!(q.take_match(None, TagSel::Any, 0).is_some());
    }

    #[test]
    fn unexpected_high_water_tracks_peak() {
        let mut q = UnexpectedQueue::new();
        q.push(unexpected(1, 1, 0));
        q.push(unexpected(1, 2, 0));
        q.take_match(None, TagSel::Any, 0).unwrap();
        q.push(unexpected(1, 3, 0));
        assert_eq!(q.high_water(), 2);
    }
}
