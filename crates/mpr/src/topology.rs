//! Pluggable reduction topologies and precomputed per-rank schedules.
//!
//! The paper demonstrates application bypass on exactly one communication
//! structure — MPICH's binomial tree ([`crate::tree`]) — but nothing in the
//! bypass protocol depends on that shape: a reduction instance only needs to
//! know *which children to wait for* and *where to forward the partial
//! result*. This module makes that explicit. A [`TopologyKind`] names a tree
//! family; [`TopoSchedule`] is the precomputed per-rank view (parent, ordered
//! children, depth tags) the collective state machines step against, so the
//! same reduce/bcast/allreduce code runs over any tree shape.
//!
//! Schedules are immutable once built and cached per `(root, size)` inside
//! each engine ([`ScheduleCache`]), killing the per-instance `Vec` allocation
//! the old `tree::children` call paid on the reduction hot path.
//!
//! The binomial schedule reproduces `crate::tree` exactly — same child
//! order (increasing mask), same parent, same depth — so with the default
//! `TopologyKind::Binomial` every packet, charge, and figure byte is
//! identical to the pre-schedule code.

use crate::tree;
use crate::types::Rank;
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex, OnceLock};

/// A tree family for reduction/broadcast collectives.
///
/// Selected process-wide via the `ABR_TOPO` environment knob (see
/// [`TopologyKind::from_env`]); defaults to [`TopologyKind::Binomial`],
/// which is bit-identical to the MPICH mask loop the paper models.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum TopologyKind {
    /// MPICH's binomial tree (the paper's Fig. 1): relative rank `r` sends
    /// to `r - lsb(r)`; children arrive in increasing-mask order.
    #[default]
    Binomial,
    /// K-nomial tree of radix `k >= 2`: the base-`k` generalization of the
    /// binomial tree (which is exactly `Knomial(2)`). Higher radix means a
    /// shallower tree with more children per internal node.
    Knomial(u32),
    /// Chain (pipeline): relative rank `r` receives from `r + 1` and sends
    /// to `r - 1`. Maximum depth, minimum fan-in — the shape that rewards
    /// bypass most under skew because every rank is an internal node.
    Chain,
    /// Direction-reversed chain: relative rank `r` receives from `r - 1`
    /// and sends to `r + 1` (mod `size`), so data flows *up* the rank
    /// order instead of down. Exists for Träff's dual-root
    /// doubly-pipelined allreduce (PAPERS.md), whose second pipeline must
    /// traverse the physical chain in the opposite direction so the two
    /// halves never contend for the same link at the same step. Note
    /// `Chain` rooted at `size - 1` is *not* this shape — the relative
    /// rotation wraps, producing another downward chain.
    ChainRev,
    /// Flat (star): every non-root sends directly to the root. Minimum
    /// depth, maximum fan-in; no internal nodes, so bypass has nothing to
    /// optimize (the paper's 2-node observation taken to the limit).
    Flat,
    /// Bine ("binary negabinary") tree, after De Sensi et al. (PAPERS.md):
    /// relative rank `r` sends to `r - t` (mod `size`) where `t` is the
    /// lowest nonzero term of `r`'s canonical base-(-2) expansion. Edges
    /// span distances `±2^j` symmetrically around each subtree root, which
    /// halves the worst-case physical distance of the binomial tree's
    /// one-sided `+2^j` edges on locality-sensitive fabrics. Ranks whose
    /// negabinary edge would self-loop or cycle (possible at
    /// non-power-of-two sizes) are grafted onto their binomial parent, so
    /// the result is always a spanning tree.
    Bine,
    /// Placement-aware locality-greedy tree: ranks are grouped by the
    /// node/pod they land on (mirroring `abr_fabric`'s placement maps) and
    /// reduced hierarchically — a binomial tree among the ranks of each
    /// node, then among node leaders of each pod, then among pod leaders —
    /// so only `num_nodes - 1` edges cross the fabric and only
    /// `num_pods - 1` of those leave a pod.
    Locality {
        /// Ranks packed per node (matches `FabricSpec::ranks_per_node`).
        ranks_per_node: u32,
        /// Nodes grouped per pod (matches `FabricSpec::nodes_per_pod()`).
        nodes_per_pod: u32,
        /// Cyclic (round-robin) rank placement when true, blocked when
        /// false — must match the fabric's `PlacementPolicy` for the
        /// locality reasoning to hold.
        cyclic: bool,
    },
}

impl fmt::Display for TopologyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyKind::Binomial => write!(f, "binomial"),
            TopologyKind::Knomial(k) => write!(f, "knomial{k}"),
            TopologyKind::Chain => write!(f, "chain"),
            TopologyKind::ChainRev => write!(f, "chainrev"),
            TopologyKind::Flat => write!(f, "flat"),
            TopologyKind::Bine => write!(f, "bine"),
            TopologyKind::Locality {
                ranks_per_node,
                nodes_per_pod,
                cyclic,
            } => write!(
                f,
                "locality{ranks_per_node}x{nodes_per_pod}:{}",
                if *cyclic { "cyclic" } else { "blocked" }
            ),
        }
    }
}

impl TopologyKind {
    /// Parse an `ABR_TOPO` value: `binomial`, `knomial<k>` (k >= 2),
    /// `chain`, `chainrev`, `flat`, `bine`, or
    /// `locality[<R>x<P>][:cyclic|:blocked]`
    /// (defaults `locality4x16:cyclic`, matching `abr_fabric`'s default
    /// fat-tree shape). Errors name the variable per the fail-fast
    /// contract of [`abr_trace::parse_env`].
    ///
    /// # Examples
    ///
    /// ```
    /// use abr_mpr::topology::TopologyKind;
    ///
    /// assert_eq!(TopologyKind::parse("binomial"), Ok(TopologyKind::Binomial));
    /// assert_eq!(TopologyKind::parse("knomial4"), Ok(TopologyKind::Knomial(4)));
    /// assert_eq!(TopologyKind::parse("bine"), Ok(TopologyKind::Bine));
    /// assert_eq!(
    ///     TopologyKind::parse("locality4x16:cyclic"),
    ///     Ok(TopologyKind::Locality { ranks_per_node: 4, nodes_per_pod: 16, cyclic: true })
    /// );
    /// assert!(TopologyKind::parse("knomial1").unwrap_err().contains("ABR_TOPO"));
    /// assert!(TopologyKind::parse("ring").unwrap_err().contains("ABR_TOPO"));
    /// ```
    pub fn parse(raw: &str) -> Result<TopologyKind, String> {
        let raw = raw.trim();
        match raw {
            "binomial" => Ok(TopologyKind::Binomial),
            "chain" => Ok(TopologyKind::Chain),
            "chainrev" => Ok(TopologyKind::ChainRev),
            "flat" => Ok(TopologyKind::Flat),
            "bine" => Ok(TopologyKind::Bine),
            _ => {
                if let Some(k) = raw.strip_prefix("knomial") {
                    let k: u32 = k.parse().map_err(|_| {
                        format!("ABR_TOPO: knomial needs a numeric radix, got {raw:?}")
                    })?;
                    if k < 2 {
                        return Err(format!("ABR_TOPO: knomial radix must be >= 2, got {k}"));
                    }
                    Ok(TopologyKind::Knomial(k))
                } else if let Some(rest) = raw.strip_prefix("locality") {
                    Self::parse_locality(rest)
                } else {
                    Err(format!(
                        "ABR_TOPO: unknown topology {raw:?} (expected binomial, knomial<k>, \
                         chain, chainrev, flat, bine, or locality[<R>x<P>][:cyclic|:blocked])"
                    ))
                }
            }
        }
    }

    /// Parse the suffix of a `locality...` topology spec (everything after
    /// the `locality` prefix).
    fn parse_locality(rest: &str) -> Result<TopologyKind, String> {
        let (shape, cyclic) = match rest.split_once(':') {
            None => (rest, true),
            Some((s, "cyclic")) => (s, true),
            Some((s, "blocked")) => (s, false),
            Some((_, p)) => {
                return Err(format!(
                    "ABR_TOPO: locality placement suffix must be 'cyclic' or 'blocked', got {p:?}"
                ))
            }
        };
        let (ranks_per_node, nodes_per_pod) = if shape.is_empty() {
            (4, 16)
        } else {
            let (r, p) = shape.split_once('x').ok_or_else(|| {
                format!("ABR_TOPO: locality shape must look like '4x16', got {shape:?}")
            })?;
            let r: u32 = r.parse().map_err(|_| {
                format!("ABR_TOPO: locality ranks-per-node must be a number, got {r:?}")
            })?;
            let p: u32 = p.parse().map_err(|_| {
                format!("ABR_TOPO: locality nodes-per-pod must be a number, got {p:?}")
            })?;
            if r == 0 || p == 0 {
                return Err(format!(
                    "ABR_TOPO: locality shape terms must be >= 1, got {r}x{p}"
                ));
            }
            (r, p)
        };
        Ok(TopologyKind::Locality {
            ranks_per_node,
            nodes_per_pod,
            cyclic,
        })
    }

    /// Read `ABR_TOPO` from the environment; `None` when unset, panics
    /// (naming the variable) on an invalid value.
    pub fn from_env() -> Option<TopologyKind> {
        abr_trace::parse_env("ABR_TOPO", TopologyKind::parse)
    }

    /// [`TopologyKind::from_env`] with the binomial default applied — the
    /// process-wide topology every driver and figure uses unless a spec
    /// overrides it explicitly.
    pub fn from_env_or_default() -> TopologyKind {
        TopologyKind::from_env().unwrap_or_default()
    }

    /// Build the schedule for a `size`-rank communicator rooted at `root`.
    ///
    /// Prefer [`ScheduleCache::get`] on hot paths; this always allocates.
    pub fn schedule(self, root: Rank, size: u32) -> TopoSchedule {
        TopoSchedule::build(self, root, size)
    }

    /// Children of relative rank `rel`, pushed onto `out` in the order the
    /// blocking implementation waits on them (nearest subtree first).
    fn children_rel(self, rel: u32, size: u32, out: &mut Vec<u32>) {
        match self {
            TopologyKind::Binomial => {
                let mut mask = 1u32;
                while mask < size {
                    if rel & mask != 0 {
                        break;
                    }
                    let child = rel | mask;
                    if child < size {
                        out.push(child);
                    }
                    mask <<= 1;
                }
            }
            TopologyKind::Knomial(k) => {
                // Level i exists while rel's base-k digits 0..=i are all
                // zero; its children are rel + j*k^i for j in 1..k. At
                // k = 2 this is exactly the binomial mask loop.
                let k = k as u64;
                let mut step = 1u64; // k^i
                loop {
                    if !(rel as u64).is_multiple_of(step * k) {
                        break;
                    }
                    for j in 1..k {
                        let child = rel as u64 + j * step;
                        if child < size as u64 {
                            out.push(child as u32);
                        }
                    }
                    if step >= size as u64 {
                        break;
                    }
                    step *= k;
                }
            }
            TopologyKind::Chain => {
                if rel + 1 < size {
                    out.push(rel + 1);
                }
            }
            TopologyKind::ChainRev => {
                // Mirror of Chain in relative space: the root adopts the
                // deepest relative rank, every other rank adopts its
                // predecessor, and rel 1 is the single leaf. Rooted at
                // `size - 1` this lays data flow along the physical chain
                // 0 -> 1 -> ... -> size-1, the reverse of Chain's.
                if rel == 0 {
                    if size > 1 {
                        out.push(size - 1);
                    }
                } else if rel >= 2 {
                    out.push(rel - 1);
                }
            }
            TopologyKind::Flat => {
                if rel == 0 {
                    out.extend(1..size);
                }
            }
            TopologyKind::Bine | TopologyKind::Locality { .. } => {
                unreachable!("whole-tree kinds are built via children_lists")
            }
        }
    }

    /// Whole-tree child lists (indexed by relative rank) for the kinds
    /// whose parent rule cannot be evaluated per-rank in isolation;
    /// `None` for the per-rank families handled by `children_rel`.
    fn children_lists(self, size: u32) -> Option<Vec<Vec<u32>>> {
        match self {
            TopologyKind::Bine => Some(bine_children(size)),
            TopologyKind::Locality {
                ranks_per_node,
                nodes_per_pod,
                cyclic,
            } => Some(locality_children(
                size,
                ranks_per_node,
                nodes_per_pod,
                cyclic,
            )),
            _ => None,
        }
    }
}

/// The lowest nonzero term of `r`'s canonical base-(-2) expansion
/// (`r > 0`): scan negabinary digits from the least significant end and
/// return `(-2)^j` for the first nonzero digit.
fn lowest_negabinary_term(r: u32) -> i64 {
    let mut val = i64::from(r);
    let mut place: i64 = 1; // (-2)^j
    loop {
        debug_assert_ne!(val, 0, "r > 0 has a nonzero negabinary digit");
        if val.rem_euclid(2) != 0 {
            return place;
        }
        val /= -2;
        place *= -2;
    }
}

/// Bine tree over relative ranks: rank `r` parents onto
/// `r - lowest_negabinary_term(r)` mod `size`. The rule yields a valid
/// spanning tree at power-of-two sizes; at arbitrary sizes a few ranks
/// can self-loop or form cycles after the mod, so any rank BFS cannot
/// reach from 0 is grafted onto its binomial parent (`r - lsb(r)`,
/// strictly smaller, so grafting always terminates at 0). Children are
/// listed nearest-edge-first (by `|term|`, matching the binomial
/// wait-order convention), ties by rank.
fn bine_children(size: u32) -> Vec<Vec<u32>> {
    let n = size as usize;
    // (parent, |edge distance|) candidate per rank; None = self-loop.
    let mut cand: Vec<Option<(u32, u64)>> = vec![None; n];
    for r in 1..size {
        let term = lowest_negabinary_term(r);
        let p = (i64::from(r) - term).rem_euclid(i64::from(size)) as u32;
        if p != r {
            cand[r as usize] = Some((p, term.unsigned_abs()));
        }
    }
    // Reachability from rank 0 over the candidate edges.
    let mut cand_children: Vec<Vec<u32>> = vec![Vec::new(); n];
    for r in 1..size {
        if let Some((p, _)) = cand[r as usize] {
            cand_children[p as usize].push(r);
        }
    }
    let mut reached = vec![false; n];
    reached[0] = true;
    let mut frontier = vec![0u32];
    while let Some(r) = frontier.pop() {
        for &c in &cand_children[r as usize] {
            if !reached[c as usize] {
                reached[c as usize] = true;
                frontier.push(c);
            }
        }
    }
    // Final parent of each rank: the bine candidate if it connects to the
    // root's component, the binomial parent otherwise.
    let mut edges: Vec<(u32, u64)> = vec![(u32::MAX, 0); n]; // (parent, weight)
    for r in 1..size {
        edges[r as usize] = match cand[r as usize] {
            Some((p, w)) if reached[r as usize] => (p, w),
            _ => {
                let lsb = r & r.wrapping_neg();
                (r - lsb, u64::from(lsb))
            }
        };
    }
    let mut children: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut order: Vec<u32> = (1..size).collect();
    order.sort_by_key(|&r| (edges[r as usize].1, r));
    for r in order {
        children[edges[r as usize].0 as usize].push(r);
    }
    children
}

/// Locality-greedy tree over relative ranks: group ranks by the node and
/// pod they land on under the given placement, then reduce binomially
/// *within* each node (leader = lowest member), binomially among node
/// leaders within each pod, and binomially among pod leaders at the top.
/// Relative rank 0 is the lowest rank of its node, its node leads its
/// pod, and its pod leads the tree, so the root is always rel 0.
/// Children are listed innermost level first (intra-node, then
/// intra-pod, then cross-pod): the cheapest edges are waited on first.
fn locality_children(
    size: u32,
    ranks_per_node: u32,
    nodes_per_pod: u32,
    cyclic: bool,
) -> Vec<Vec<u32>> {
    let n = size as usize;
    let num_nodes = size.div_ceil(ranks_per_node).max(1);
    let node_of = |rel: u32| -> u32 {
        if cyclic {
            rel % num_nodes
        } else {
            rel / ranks_per_node
        }
    };
    // Ranks per node, ascending (iteration order keeps them sorted), so
    // members[0] is the node leader.
    let mut members: Vec<Vec<u32>> = vec![Vec::new(); num_nodes as usize];
    for rel in 0..size {
        members[node_of(rel) as usize].push(rel);
    }
    let mut children: Vec<Vec<u32>> = vec![Vec::new(); n];
    // Binomial tree over an index space, emitting item-level edges.
    let link_binomial = |items: &[u32], children: &mut Vec<Vec<u32>>| {
        let m = items.len() as u32;
        for i in 0..m {
            let mut mask = 1u32;
            while mask < m && i & mask == 0 {
                let child = i | mask;
                if child < m {
                    children[items[i as usize] as usize].push(items[child as usize]);
                }
                mask <<= 1;
            }
        }
    };
    // Level 1: within each occupied node.
    let mut node_leaders: Vec<Vec<u32>> = Vec::new(); // per pod, ascending
    for (node, ranks) in members.iter().enumerate() {
        if ranks.is_empty() {
            continue;
        }
        link_binomial(ranks, &mut children);
        let pod = node as u32 / nodes_per_pod;
        if node_leaders.len() <= pod as usize {
            node_leaders.resize(pod as usize + 1, Vec::new());
        }
        node_leaders[pod as usize].push(ranks[0]);
    }
    // Level 2: among node leaders within each pod.
    let mut pod_leaders: Vec<u32> = Vec::new();
    for leaders in &node_leaders {
        if leaders.is_empty() {
            continue;
        }
        link_binomial(leaders, &mut children);
        pod_leaders.push(leaders[0]);
    }
    // Level 3: among pod leaders; pod_leaders[0] == 0 is the tree root.
    debug_assert_eq!(pod_leaders.first().copied(), Some(0));
    link_binomial(&pod_leaders, &mut children);
    children
}

/// Precomputed per-rank schedule for one `(kind, root, size)` tree.
///
/// Stored in CSR form: a flat child array plus per-rank offsets, so
/// [`TopoSchedule::children_of`] is an allocation-free slice borrow. All
/// ranks in the arrays are *absolute* (already rotated by `root`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopoSchedule {
    kind: TopologyKind,
    root: Rank,
    size: u32,
    /// Per-rank parent, `u32::MAX` for the root (kept dense for cache
    /// friendliness; exposed as `Option` via [`TopoSchedule::parent_of`]).
    parent: Vec<u32>,
    /// CSR offsets into `child_arr`, length `size + 1`.
    child_off: Vec<u32>,
    /// Flat child array in per-rank wait order.
    child_arr: Vec<Rank>,
    /// Per-rank hops to the root — the schedule's phase tag: a rank at
    /// depth `d` can only be folded after its whole depth-`> d` subtree.
    depth: Vec<u32>,
    max_depth: u32,
    last_node: Rank,
}

impl TopoSchedule {
    /// Build the schedule; see [`TopologyKind::schedule`].
    ///
    /// # Panics
    /// Panics if `size == 0` or `root >= size`.
    pub fn build(kind: TopologyKind, root: Rank, size: u32) -> TopoSchedule {
        assert!(size >= 1, "communicator size must be >= 1");
        assert!(root < size, "root {root} out of range for size {size}");
        let n = size as usize;
        let mut parent = vec![u32::MAX; n];
        let mut child_off = Vec::with_capacity(n + 1);
        let mut child_arr = Vec::new();
        let mut kids = Vec::new();
        child_off.push(0);
        // Per-rank families evaluate children directly; whole-tree
        // families (bine, locality) precompute every rank's list at once.
        let whole = kind.children_lists(size);
        for rank in 0..size {
            let rel = tree::rel_rank(rank, root, size);
            kids.clear();
            match &whole {
                Some(lists) => kids.extend_from_slice(&lists[rel as usize]),
                None => kind.children_rel(rel, size, &mut kids),
            }
            for &child_rel in &kids {
                let child = tree::abs_rank(child_rel, root, size);
                child_arr.push(child);
                parent[child as usize] = rank;
            }
            child_off.push(child_arr.len() as u32);
        }
        debug_assert_eq!(child_arr.len() as u32, size - 1, "not a spanning tree");
        // Depth by BFS over the child CSR from the root: O(n) total. (The
        // previous per-rank parent walk was O(n * depth) — quadratic for a
        // chain, i.e. 4 * 10^9 steps at 65,536 ranks.)
        let mut depth = vec![0u32; n];
        let mut frontier = vec![root];
        let mut next = Vec::new();
        let mut visited = 1u32;
        let mut level = 0u32;
        while !frontier.is_empty() {
            level += 1;
            for &rank in &frontier {
                let lo = child_off[rank as usize] as usize;
                let hi = child_off[rank as usize + 1] as usize;
                for &child in &child_arr[lo..hi] {
                    depth[child as usize] = level;
                    visited += 1;
                    next.push(child);
                }
            }
            std::mem::swap(&mut frontier, &mut next);
            next.clear();
        }
        debug_assert_eq!(visited, size, "tree does not span all ranks");
        // Deepest contribution path; ties toward the larger relative rank
        // (matches `tree::last_node` for the binomial family).
        let last_rel = (0..size)
            .max_by_key(|&rel| (depth[tree::abs_rank(rel, root, size) as usize], rel))
            .expect("size >= 1");
        let last_node = tree::abs_rank(last_rel, root, size);
        let max_depth = depth.iter().copied().max().unwrap_or(0);
        TopoSchedule {
            kind,
            root,
            size,
            parent,
            child_off,
            child_arr,
            depth,
            max_depth,
            last_node,
        }
    }

    /// The tree family this schedule was built from.
    pub fn kind(&self) -> TopologyKind {
        self.kind
    }

    /// The reduction root.
    pub fn root(&self) -> Rank {
        self.root
    }

    /// Communicator size.
    pub fn size(&self) -> u32 {
        self.size
    }

    /// The children `rank` waits on, in wait order, as an allocation-free
    /// slice.
    pub fn children_of(&self, rank: Rank) -> &[Rank] {
        let lo = self.child_off[rank as usize] as usize;
        let hi = self.child_off[rank as usize + 1] as usize;
        &self.child_arr[lo..hi]
    }

    /// The parent `rank` forwards its partial result to; `None` for the
    /// root.
    pub fn parent_of(&self, rank: Rank) -> Option<Rank> {
        match self.parent[rank as usize] {
            u32::MAX => None,
            p => Some(p),
        }
    }

    /// True if `rank` contributes but folds nothing (white nodes in
    /// Fig. 1).
    pub fn is_leaf(&self, rank: Rank) -> bool {
        rank != self.root && self.children_of(rank).is_empty()
    }

    /// True if `rank` folds children and forwards — the only nodes
    /// application bypass optimizes (§II).
    pub fn is_internal(&self, rank: Rank) -> bool {
        rank != self.root && !self.children_of(rank).is_empty()
    }

    /// Hops from `rank` to the root (the schedule's phase tag).
    pub fn depth_of(&self, rank: Rank) -> u32 {
        self.depth[rank as usize]
    }

    /// Depth of the whole tree in hops.
    pub fn max_depth(&self) -> u32 {
        self.max_depth
    }

    /// The rank whose contribution traverses the most hops to the root,
    /// ties toward the larger relative rank — the "last node" of the §VI
    /// latency microbenchmark.
    pub fn last_node(&self) -> Rank {
        self.last_node
    }
}

/// Process-global registry of built schedules keyed by
/// `(kind, root, size)`. A schedule is pure structure — it depends only on
/// its key — so every engine in the process can share one copy. Without
/// this, an `n`-rank simulation builds the same `(root = reduction root,
/// size = n)` schedule once *per engine*: `O(n)` memory and build time per
/// rank, `O(n^2)` for the cluster — about 1 GB of redundant `Vec`s at 8k
/// ranks and an infeasible ~45 GB at 64k.
type ScheduleMap = HashMap<(TopologyKind, Rank, u32), Arc<TopoSchedule>>;
static REGISTRY: OnceLock<Mutex<ScheduleMap>> = OnceLock::new();

fn registry_get(kind: TopologyKind, root: Rank, size: u32) -> Arc<TopoSchedule> {
    let reg = REGISTRY.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(s) = reg.lock().unwrap().get(&(kind, root, size)) {
        return Arc::clone(s);
    }
    // Build outside the lock so one slow build (64k ranks) doesn't stall
    // unrelated lookups; a racing duplicate build is rare and harmless —
    // first insert wins, the loser's copy is dropped.
    let built = Arc::new(TopoSchedule::build(kind, root, size));
    let mut map = reg.lock().unwrap();
    Arc::clone(map.entry((kind, root, size)).or_insert(built))
}

/// Fetch the process-global shared schedule for an arbitrary
/// `(kind, root, size)` triple, building it on first use.
///
/// This always consults the global registry — even for engines configured
/// with `shared_schedules = false` — because its callers (the dual-root
/// allreduce's chain/chainrev halves) need a schedule of a *different*
/// kind than the engine's [`ScheduleCache`] was built for, and a pure
/// structural lookup is safe to share unconditionally.
pub fn shared_schedule(kind: TopologyKind, root: Rank, size: u32) -> Arc<TopoSchedule> {
    registry_get(kind, root, size)
}

/// Per-engine view of the schedule store, keyed by `(root, size)` (the kind
/// is fixed per cache). Collective instances share the cached schedule via
/// `Arc`, so steady-state reductions allocate nothing for tree structure.
///
/// By default the cache is a thin local index over the process-global
/// registry, so all engines in a simulation share one `TopoSchedule` per
/// shape; [`ScheduleCache::new_private`] opts out (used by benchmarks to
/// measure the pre-registry per-engine cost).
#[derive(Debug, Clone)]
pub struct ScheduleCache {
    kind: TopologyKind,
    shared: bool,
    map: HashMap<(Rank, u32), Arc<TopoSchedule>>,
}

impl ScheduleCache {
    /// Empty cache for one tree family, backed by the process-global
    /// registry.
    pub fn new(kind: TopologyKind) -> ScheduleCache {
        ScheduleCache {
            kind,
            shared: true,
            map: HashMap::new(),
        }
    }

    /// Empty cache that builds its own private schedules instead of
    /// consulting the global registry. This reproduces the pre-registry
    /// behavior where every engine paid its own `O(size)` build; it exists
    /// so the scale benchmark can measure that cost honestly.
    pub fn new_private(kind: TopologyKind) -> ScheduleCache {
        ScheduleCache {
            kind,
            shared: false,
            map: HashMap::new(),
        }
    }

    /// The tree family this cache builds.
    pub fn kind(&self) -> TopologyKind {
        self.kind
    }

    /// The schedule for `(root, size)`, building it on first use (or
    /// fetching it from the process-global registry for shared caches).
    pub fn get(&mut self, root: Rank, size: u32) -> Arc<TopoSchedule> {
        let (kind, shared) = (self.kind, self.shared);
        Arc::clone(self.map.entry((root, size)).or_insert_with(|| {
            if shared {
                registry_get(kind, root, size)
            } else {
                Arc::new(TopoSchedule::build(kind, root, size))
            }
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL_KINDS: [TopologyKind; 9] = [
        TopologyKind::Binomial,
        TopologyKind::Knomial(2),
        TopologyKind::Knomial(4),
        TopologyKind::Chain,
        TopologyKind::ChainRev,
        TopologyKind::Flat,
        TopologyKind::Bine,
        TopologyKind::Locality {
            ranks_per_node: 4,
            nodes_per_pod: 16,
            cyclic: true,
        },
        TopologyKind::Locality {
            ranks_per_node: 2,
            nodes_per_pod: 2,
            cyclic: false,
        },
    ];

    #[test]
    fn binomial_schedule_matches_tree_module_exactly() {
        for size in 1..=40u32 {
            for root in 0..size {
                let s = TopologyKind::Binomial.schedule(root, size);
                for rank in 0..size {
                    assert_eq!(
                        s.children_of(rank),
                        &tree::children(rank, root, size)[..],
                        "children size={size} root={root} rank={rank}"
                    );
                    assert_eq!(s.parent_of(rank), tree::parent(rank, root, size));
                    assert_eq!(s.is_leaf(rank), tree::is_leaf(rank, root, size));
                    assert_eq!(s.is_internal(rank), tree::is_internal(rank, root, size));
                    assert_eq!(s.depth_of(rank), tree::hops_to_root(rank, root, size));
                }
                assert_eq!(s.last_node(), tree::last_node(root, size));
                // Binomial depth is the relative-rank popcount; `tree_depth`
                // (ceil(log2)) can exceed it at non-power-of-two sizes.
                let max_hops = (0..size).map(u32::count_ones).max().unwrap();
                assert_eq!(s.max_depth(), max_hops);
            }
        }
    }

    #[test]
    fn knomial2_is_binomial() {
        for size in [1u32, 2, 3, 7, 8, 9, 16, 31, 33] {
            for root in [0, size / 2, size - 1] {
                assert_eq!(
                    TopologyKind::Knomial(2).schedule(root, size),
                    TopologyKind::Binomial
                        .schedule(root, size)
                        .clone_as_kind(TopologyKind::Knomial(2)),
                    "size={size} root={root}"
                );
            }
        }
    }

    #[test]
    fn knomial4_fig_shapes() {
        // Root 0, size 16, radix 4: children of 0 are 1,2,3 (level 0) then
        // 4,8,12 (level 1); 4's children are 5,6,7; 13 is a leaf.
        let s = TopologyKind::Knomial(4).schedule(0, 16);
        assert_eq!(s.children_of(0), &[1, 2, 3, 4, 8, 12]);
        assert_eq!(s.children_of(4), &[5, 6, 7]);
        assert_eq!(s.children_of(13), &[] as &[Rank]);
        assert_eq!(s.parent_of(13), Some(12));
        assert_eq!(s.max_depth(), 2);
    }

    #[test]
    fn chain_and_flat_shapes() {
        let c = TopologyKind::Chain.schedule(0, 5);
        assert_eq!(c.children_of(0), &[1]);
        assert_eq!(c.children_of(3), &[4]);
        assert_eq!(c.parent_of(4), Some(3));
        assert_eq!(c.max_depth(), 4);
        assert_eq!(c.last_node(), 4);
        let f = TopologyKind::Flat.schedule(0, 5);
        assert_eq!(f.children_of(0), &[1, 2, 3, 4]);
        assert!((1..5).all(|r| f.is_leaf(r)));
        assert_eq!(f.max_depth(), 1);
    }

    #[test]
    fn chainrev_is_the_physical_reverse_of_chain() {
        // Rooted at size-1, chainrev is the physical chain 0 -> 1 -> ... ->
        // size-1 with data flowing upward — the genuine reverse of
        // Chain(root 0), which Chain(root size-1) is NOT (it wraps).
        let r = TopologyKind::ChainRev.schedule(4, 5);
        assert_eq!(r.children_of(4), &[3]);
        assert_eq!(r.children_of(3), &[2]);
        assert_eq!(r.children_of(1), &[0]);
        assert_eq!(r.children_of(0), &[] as &[Rank]);
        assert_eq!(r.parent_of(0), Some(1));
        assert_eq!(r.max_depth(), 4);
        assert_eq!(r.last_node(), 0);
        // Each rank's parent edge is the same physical link Chain(root 0)
        // uses, just traversed the other way.
        let c = TopologyKind::Chain.schedule(0, 5);
        for rank in 0..5u32 {
            let down = c.parent_of(rank);
            let up = r.parent_of(rank);
            match (down, up) {
                (None, Some(p)) => assert_eq!(p, rank + 1),
                (Some(p), None) => assert_eq!(p, rank - 1),
                (Some(_), Some(p)) => assert_eq!(p, rank + 1),
                (None, None) => panic!("rank {rank} is root of both chains"),
            }
        }
        // Degenerate sizes still span.
        assert_eq!(TopologyKind::ChainRev.schedule(0, 1).size(), 1);
        let two = TopologyKind::ChainRev.schedule(1, 2);
        assert_eq!(two.children_of(1), &[0]);
    }

    #[test]
    fn shared_schedule_matches_fresh_build() {
        let via_registry = shared_schedule(TopologyKind::ChainRev, 3, 6);
        assert_eq!(*via_registry, TopologyKind::ChainRev.schedule(3, 6));
        // Same Arc on repeat lookups.
        assert!(Arc::ptr_eq(
            &via_registry,
            &shared_schedule(TopologyKind::ChainRev, 3, 6)
        ));
    }

    #[test]
    fn bine_shape_at_8() {
        // Hand-derived from the negabinary parent rule: 1,4,6 hang off
        // the root (distances 1, 4, 2), 4 folds {5, 2}, 2 folds {3},
        // 6 folds {7}.
        let s = TopologyKind::Bine.schedule(0, 8);
        assert_eq!(s.children_of(0), &[1, 6, 4]);
        assert_eq!(s.children_of(4), &[5, 2]);
        assert_eq!(s.children_of(2), &[3]);
        assert_eq!(s.children_of(6), &[7]);
        assert_eq!(s.parent_of(3), Some(2));
        assert_eq!(s.max_depth(), 3);
    }

    #[test]
    fn bine_spans_at_awkward_sizes() {
        // Non-power-of-two sizes exercise the binomial-graft fallback.
        for size in [1u32, 2, 3, 5, 6, 7, 9, 12, 13, 31, 33, 100, 255, 257] {
            for root in [0, size / 2, size - 1] {
                let s = TopologyKind::Bine.schedule(root, size);
                let mut edges = 0;
                for rank in 0..size {
                    edges += s.children_of(rank).len() as u32;
                    let mut cur = rank;
                    let mut hops = 0;
                    while let Some(p) = s.parent_of(cur) {
                        cur = p;
                        hops += 1;
                        assert!(hops < size, "cycle at size={size} root={root} rank={rank}");
                    }
                    assert_eq!(cur, root);
                }
                assert_eq!(edges, size - 1, "size={size} root={root}");
            }
        }
    }

    #[test]
    fn locality_prefers_intra_node_edges() {
        // 16 ranks, 4 per node, 2 nodes per pod, blocked placement:
        // nodes {0-3},{4-7},{8-11},{12-15}; pods {node0,node1},{node2,node3}.
        let kind = TopologyKind::Locality {
            ranks_per_node: 4,
            nodes_per_pod: 2,
            cyclic: false,
        };
        let s = kind.schedule(0, 16);
        // Rank 0: intra-node binomial children (1, 2), then node leader 4
        // (same pod), then pod leader 8.
        assert_eq!(s.children_of(0), &[1, 2, 4, 8]);
        // Node leader 4 folds its node (5, 6) — no pod/top duties.
        assert_eq!(s.children_of(4), &[5, 6]);
        // Pod leader 8 folds its node, then node leader 12.
        assert_eq!(s.children_of(8), &[9, 10, 12]);
        // Only node leaders cross nodes: exactly num_nodes - 1 = 3
        // cross-node edges.
        let cross_node = (0..16u32)
            .filter_map(|r| s.parent_of(r).map(|p| (r / 4, p / 4)))
            .filter(|(a, b)| a != b)
            .count();
        assert_eq!(cross_node, 3);
    }

    #[test]
    fn locality_cyclic_keeps_node_groups_together() {
        // 32 ranks round-robin over 8 nodes of 4 slots: node(r) = r % 8.
        let kind = TopologyKind::Locality {
            ranks_per_node: 4,
            nodes_per_pod: 4,
            cyclic: true,
        };
        let s = kind.schedule(0, 32);
        // Every non-leader rank's parent lives on the same node under the
        // cyclic map, except the 7 node-leader edges.
        let cross = (0..32u32)
            .filter_map(|r| s.parent_of(r).map(|p| (r % 8, p % 8)))
            .filter(|(a, b)| a != b)
            .count();
        assert_eq!(cross, 7);
    }

    #[test]
    fn rotation_applies_to_all_kinds() {
        for kind in ALL_KINDS {
            let s = kind.schedule(3, 8);
            assert_eq!(s.parent_of(3), None, "{kind}");
            // Every non-root reaches 3 by walking parents.
            for rank in 0..8u32 {
                let mut cur = rank;
                while let Some(p) = s.parent_of(cur) {
                    cur = p;
                }
                assert_eq!(cur, 3, "{kind} rank {rank}");
            }
        }
    }

    #[test]
    fn parse_accepts_and_rejects() {
        assert_eq!(
            TopologyKind::parse(" binomial "),
            Ok(TopologyKind::Binomial)
        );
        assert_eq!(
            TopologyKind::parse("knomial8"),
            Ok(TopologyKind::Knomial(8))
        );
        assert_eq!(TopologyKind::parse("chain"), Ok(TopologyKind::Chain));
        assert_eq!(TopologyKind::parse("flat"), Ok(TopologyKind::Flat));
        for bad in [
            "", "ring", "knomial", "knomial0", "knomial1", "knomialx", "Binomial",
        ] {
            let err = TopologyKind::parse(bad).unwrap_err();
            assert!(err.contains("ABR_TOPO"), "{bad:?}: {err}");
        }
    }

    #[test]
    fn display_round_trips_through_parse() {
        for kind in ALL_KINDS {
            assert_eq!(TopologyKind::parse(&kind.to_string()), Ok(kind));
        }
    }

    #[test]
    fn cache_shares_one_schedule_per_shape() {
        let mut cache = ScheduleCache::new(TopologyKind::Chain);
        let a = cache.get(0, 8);
        let b = cache.get(0, 8);
        assert!(Arc::ptr_eq(&a, &b));
        let c = cache.get(1, 8);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(cache.kind(), TopologyKind::Chain);
    }

    #[test]
    fn registry_shares_schedules_across_caches() {
        // Two independent shared caches (distinct engines in a real run)
        // must hand out the *same* Arc for the same shape.
        let mut c1 = ScheduleCache::new(TopologyKind::Knomial(3));
        let mut c2 = ScheduleCache::new(TopologyKind::Knomial(3));
        assert!(Arc::ptr_eq(&c1.get(2, 9), &c2.get(2, 9)));
        // Private caches build their own copies and never pollute (or read)
        // the registry-shared instance.
        let mut p1 = ScheduleCache::new_private(TopologyKind::Knomial(3));
        let mut p2 = ScheduleCache::new_private(TopologyKind::Knomial(3));
        assert!(!Arc::ptr_eq(&c1.get(2, 9), &p1.get(2, 9)));
        assert!(!Arc::ptr_eq(&p1.get(2, 9), &p2.get(2, 9)));
        // Structure is identical either way.
        assert_eq!(*c1.get(2, 9), *p1.get(2, 9));
    }

    #[test]
    fn schedules_build_at_64k_ranks() {
        // Regression for scale: the depth computation must stay O(n) (the
        // old parent-walk was quadratic for a chain) and all CSR offsets,
        // rank ids, and depth tags must fit their u32 types at 65,536.
        const N: u32 = 65_536;
        for kind in [
            TopologyKind::Binomial,
            TopologyKind::Knomial(4),
            TopologyKind::Chain,
        ] {
            let s = kind.schedule(0, N);
            assert_eq!(s.size(), N);
            // CSR invariant: offsets are monotone and end at n - 1 edges.
            assert!(s.child_off.windows(2).all(|w| w[0] <= w[1]), "{kind}");
            assert_eq!(*s.child_off.last().unwrap(), N - 1);
            let expect_depth = match kind {
                TopologyKind::Binomial => 16,
                TopologyKind::Knomial(4) => 8,
                TopologyKind::Chain => N - 1,
                _ => unreachable!(),
            };
            assert_eq!(s.max_depth(), expect_depth, "{kind}");
            assert_eq!(s.depth_of(s.last_node()), expect_depth, "{kind}");
            // Every rank's parent edge is consistent with the child arrays.
            for rank in [1u32, 255, 4_095, 65_535] {
                let p = s.parent_of(rank).expect("non-root has parent");
                assert!(s.children_of(p).contains(&rank), "{kind} rank {rank}");
                assert_eq!(s.depth_of(rank), s.depth_of(p) + 1, "{kind} rank {rank}");
            }
        }
    }

    impl TopoSchedule {
        /// Test helper: relabel the kind so structural equality can be
        /// asserted across families that build the same tree.
        fn clone_as_kind(&self, kind: TopologyKind) -> TopoSchedule {
            TopoSchedule {
                kind,
                ..self.clone()
            }
        }
    }
}
