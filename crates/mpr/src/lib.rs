//! `abr_mpr` — an MPICH-like message-passing runtime over the GM substrate.
//!
//! This crate rebuilds the parts of MPICH-1.2.4..8a that the paper's
//! application-bypass reduction modifies or depends on:
//!
//! * [`types`] — ranks, tags, datatypes, errors,
//! * [`op`] — MPI reduction operators applied over typed byte buffers,
//! * [`tree`] — the binomial tree MPICH organizes collectives around (Fig. 1),
//! * [`topology`] — pluggable tree families (binomial, k-nomial, chain,
//!   flat) compiled into precomputed per-rank schedules the collective
//!   state machines step against,
//! * [`comm`] — communicators (context ids separate point-to-point,
//!   collective and application-bypass traffic),
//! * [`matchq`] — posted-receive and unexpected-message queues with MPI
//!   matching semantics (§III),
//! * [`charge`] — CPU-cost accounting shared with the drivers,
//! * [`request`] — non-blocking request handles,
//! * [`coll`] — collective state machines: the **default blocking binomial
//!   reduction (the paper's `nab` baseline)**, broadcast, dissemination
//!   barrier and allreduce,
//! * [`engine`] — the per-rank sans-I/O protocol engine: eager and
//!   rendezvous point-to-point, the progress engine of Fig. 4 (minus the
//!   gray application-bypass boxes, which `abr_core` adds by wrapping it).
//!
//! The engine is *sans-I/O*: it consumes delivered packets and application
//! calls, and emits [`engine::Action`]s plus CPU charges. The same engine
//! runs under the discrete-event driver and the live threaded driver in
//! `abr_cluster`, which is how the simulated figures and the real threaded
//! examples exercise identical protocol code.

//! # Example
//!
//! Two engines exchanging an eager message through the test loopback:
//!
//! ```
//! use abr_mpr::engine::EngineConfig;
//! use abr_mpr::testutil::{engines, Loopback};
//! use abr_mpr::types::TagSel;
//! use bytes::Bytes;
//!
//! let mut lb = Loopback::new(engines(2, EngineConfig::default()));
//! let comm = lb.engines[0].world();
//! let s = lb.engines[0].isend(&comm, 1, 7, Bytes::from(vec![1, 2, 3]));
//! let r = lb.engines[1].irecv(&comm, Some(0), TagSel::Is(7), 16);
//! lb.run_until_complete(&[(0, s), (1, r)], 100);
//! assert_eq!(lb.expect_data(1, r).as_ref(), &[1, 2, 3]);
//! ```

#![warn(missing_docs)]

pub mod charge;
pub mod coll;
pub mod comm;
pub mod engine;
pub mod matchq;
pub mod op;
pub mod request;
#[doc(hidden)]
pub mod testutil;
pub mod topology;
pub mod tree;
pub mod types;

pub use charge::Charges;
pub use comm::Communicator;
pub use engine::{Action, Engine, EngineConfig, MessageEngine};
pub use op::ReduceOp;
pub use request::ReqId;
pub use topology::{ScheduleCache, TopoSchedule, TopologyKind};
pub use types::{Datatype, MprError, Rank, TagSel};
