//! Basic MPI-level types: ranks, tag selectors, datatypes and errors.

use std::fmt;

/// A process rank within a communicator. Equal to the GM [`abr_gm::NodeId`]
/// in this single-communicator-per-world stack.
pub type Rank = u32;

/// Tag selector for receives: a specific tag or the `MPI_ANY_TAG` wildcard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TagSel {
    /// Match any tag.
    Any,
    /// Match exactly this tag.
    Is(i32),
}

impl TagSel {
    /// Does this selector accept `tag`?
    #[inline]
    pub fn accepts(self, tag: i32) -> bool {
        match self {
            TagSel::Any => true,
            TagSel::Is(t) => t == tag,
        }
    }
}

/// Collective-kind codes embedded in per-instance collective tags.
pub mod coll_code {
    /// Reduction traffic.
    pub const REDUCE: u8 = 0;
    /// Broadcast traffic.
    pub const BCAST: u8 = 1;
    /// Gather traffic.
    pub const GATHER: u8 = 2;
    /// Scatter traffic.
    pub const SCATTER: u8 = 3;
    /// Rabenseifner allreduce exchanges.
    pub const RS: u8 = 4;
    /// Dissemination-barrier tokens (round in the sub-field).
    pub const BARRIER: u8 = 5;
}

/// Most positive tag of the reserved collective-tag space (tags at or below
/// this are collective-internal).
pub const COLL_TAG_BASE: i32 = -1024;

/// Per-instance collective tag: every collective instance gets its own tag
/// so *concurrent* collectives (the split-phase extensions, or MPI-3-style
/// nonblocking use) can never cross-match even when a process forwards
/// instance k+1 before instance k — the same device libNBC uses. `sub`
/// carries the barrier round (0 elsewhere).
pub fn coll_tag(code: u8, coll_seq: u64, sub: u8) -> i32 {
    debug_assert!(code < 8 && sub < 16);
    // 128 tags per instance; wraps after ~16M live instances, far beyond
    // any overlap window.
    let seq = (coll_seq % 16_000_000) as i32;
    COLL_TAG_BASE - (seq * 128 + code as i32 * 16 + sub as i32)
}

/// Recover the collective-kind code from a tag, if it is collective.
pub fn coll_tag_code(tag: i32) -> Option<u8> {
    if tag <= COLL_TAG_BASE {
        Some((((COLL_TAG_BASE - tag) % 128) / 16) as u8)
    } else {
        None
    }
}

/// Element datatypes supported by the reduction operators. The paper's
/// benchmarks use double-word (f64) elements exclusively; the others exist
/// because a credible MPI layer reduces more than doubles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Datatype {
    /// 64-bit IEEE float (`MPI_DOUBLE`) — what the paper measures.
    F64,
    /// 64-bit signed integer (`MPI_LONG_LONG`).
    I64,
    /// 32-bit signed integer (`MPI_INT`).
    I32,
    /// Unsigned byte (`MPI_BYTE`).
    U8,
}

impl Datatype {
    /// Size of one element in bytes.
    #[inline]
    pub const fn size(self) -> usize {
        match self {
            Datatype::F64 | Datatype::I64 => 8,
            Datatype::I32 => 4,
            Datatype::U8 => 1,
        }
    }

    /// True for integer types (bitwise/logical ops are only defined here).
    #[inline]
    pub const fn is_integer(self) -> bool {
        !matches!(self, Datatype::F64)
    }

    /// Number of elements a byte buffer of length `bytes` holds.
    ///
    /// # Panics
    /// Panics if `bytes` is not a multiple of the element size.
    pub fn count(self, bytes: usize) -> usize {
        assert!(
            bytes.is_multiple_of(self.size()),
            "buffer of {bytes} bytes is not a whole number of {self:?} elements"
        );
        bytes / self.size()
    }
}

/// Errors surfaced by the runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MprError {
    /// A received message was longer than the posted buffer
    /// (`MPI_ERR_TRUNCATE`).
    Truncation {
        /// Bytes the sender sent.
        received: usize,
        /// Bytes the receiver allowed.
        capacity: usize,
    },
    /// A rank outside the communicator was named.
    InvalidRank {
        /// The offending rank.
        rank: Rank,
        /// Communicator size.
        size: u32,
    },
    /// A reduction operator was applied to a datatype it is not defined for
    /// (e.g. bitwise AND over doubles).
    InvalidOpForType {
        /// Human-readable operator name.
        op: &'static str,
        /// The datatype.
        dtype: Datatype,
    },
    /// Send and receive buffer shapes disagree inside a collective.
    ShapeMismatch {
        /// Expected byte length.
        expected: usize,
        /// Actual byte length.
        actual: usize,
    },
}

impl fmt::Display for MprError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MprError::Truncation { received, capacity } => write!(
                f,
                "message truncated: {received} bytes arrived for a {capacity}-byte buffer"
            ),
            MprError::InvalidRank { rank, size } => {
                write!(f, "rank {rank} outside communicator of size {size}")
            }
            MprError::InvalidOpForType { op, dtype } => {
                write!(f, "operator {op} is undefined for {dtype:?}")
            }
            MprError::ShapeMismatch { expected, actual } => {
                write!(
                    f,
                    "buffer shape mismatch: expected {expected} bytes, got {actual}"
                )
            }
        }
    }
}

impl std::error::Error for MprError {}

/// Pack a slice of `f64` into little-endian bytes (the stack's wire order).
pub fn f64s_to_bytes(values: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 8);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Unpack little-endian bytes into `f64`s.
///
/// # Panics
/// Panics if the length is not a multiple of 8.
pub fn bytes_to_f64s(bytes: &[u8]) -> Vec<f64> {
    assert!(bytes.len().is_multiple_of(8), "not a whole number of f64s");
    bytes
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

/// Pack a slice of `i32` into little-endian bytes.
pub fn i32s_to_bytes(values: &[i32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 4);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Unpack little-endian bytes into `i32`s.
///
/// # Panics
/// Panics if the length is not a multiple of 4.
pub fn bytes_to_i32s(bytes: &[u8]) -> Vec<i32> {
    assert!(bytes.len().is_multiple_of(4), "not a whole number of i32s");
    bytes
        .chunks_exact(4)
        .map(|c| i32::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tagsel_matching() {
        assert!(TagSel::Any.accepts(5));
        assert!(TagSel::Any.accepts(-3));
        assert!(TagSel::Is(7).accepts(7));
        assert!(!TagSel::Is(7).accepts(8));
    }

    #[test]
    fn datatype_sizes() {
        assert_eq!(Datatype::F64.size(), 8);
        assert_eq!(Datatype::I64.size(), 8);
        assert_eq!(Datatype::I32.size(), 4);
        assert_eq!(Datatype::U8.size(), 1);
    }

    #[test]
    fn datatype_count() {
        assert_eq!(Datatype::F64.count(32), 4);
        assert_eq!(Datatype::U8.count(0), 0);
    }

    #[test]
    #[should_panic(expected = "whole number")]
    fn datatype_count_rejects_ragged() {
        Datatype::I32.count(6);
    }

    #[test]
    fn integer_classification() {
        assert!(!Datatype::F64.is_integer());
        assert!(Datatype::I64.is_integer());
        assert!(Datatype::I32.is_integer());
        assert!(Datatype::U8.is_integer());
    }

    #[test]
    fn f64_roundtrip() {
        let vals = [1.5, -2.25, 0.0, f64::MAX];
        assert_eq!(bytes_to_f64s(&f64s_to_bytes(&vals)), vals);
    }

    #[test]
    fn i32_roundtrip() {
        let vals = [0, -1, i32::MAX, i32::MIN, 42];
        assert_eq!(bytes_to_i32s(&i32s_to_bytes(&vals)), vals);
    }

    #[test]
    fn coll_tags_roundtrip_and_never_collide() {
        use super::coll_code::*;
        let mut seen = std::collections::HashSet::new();
        for seq in [0u64, 1, 2, 77, 9999] {
            for code in [REDUCE, BCAST, GATHER, SCATTER, RS] {
                let t = coll_tag(code, seq, 0);
                assert!(t <= COLL_TAG_BASE, "collective tags stay reserved");
                assert_eq!(coll_tag_code(t), Some(code));
                assert!(seen.insert(t), "tag collision at code={code} seq={seq}");
            }
            for round in 0..8u8 {
                let t = coll_tag(BARRIER, seq, round);
                assert_eq!(coll_tag_code(t), Some(BARRIER));
                assert!(seen.insert(t), "barrier tag collision");
            }
        }
        // Application tags are untouched.
        assert_eq!(coll_tag_code(0), None);
        assert_eq!(coll_tag_code(42), None);
        assert_eq!(coll_tag_code(-1023), None);
    }

    #[test]
    fn errors_display() {
        let e = MprError::Truncation {
            received: 100,
            capacity: 10,
        };
        assert!(format!("{e}").contains("truncated"));
        let e = MprError::InvalidOpForType {
            op: "band",
            dtype: Datatype::F64,
        };
        assert!(format!("{e}").contains("band"));
    }
}
