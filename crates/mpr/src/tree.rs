//! The binomial tree MPICH organizes reduction around (Fig. 1).
//!
//! Ranks are rotated so that the reduction root sits at relative rank 0;
//! relative rank `r` sends to `r - lsb(r)` and receives from `r | mask` for
//! every `mask` (a power of two) below `lsb(r)`. This is exactly the mask
//! loop in MPICH's `intra_Reduce`, and the child order (increasing mask) is
//! the order the default implementation blocks on its children — the order
//! sensitivity that application bypass removes.

use crate::types::Rank;

/// Relative rank of `rank` when the tree is rooted at `root`.
#[inline]
pub fn rel_rank(rank: Rank, root: Rank, size: u32) -> u32 {
    debug_assert!(rank < size && root < size);
    (rank + size - root) % size
}

/// Absolute rank of relative rank `rel` for a tree rooted at `root`.
#[inline]
pub fn abs_rank(rel: u32, root: Rank, size: u32) -> Rank {
    debug_assert!(rel < size && root < size);
    (rel + root) % size
}

/// The parent `rank` sends its (partial) result to; `None` for the root.
pub fn parent(rank: Rank, root: Rank, size: u32) -> Option<Rank> {
    let rel = rel_rank(rank, root, size);
    if rel == 0 {
        return None;
    }
    let lsb = rel & rel.wrapping_neg();
    Some(abs_rank(rel - lsb, root, size))
}

/// The children `rank` receives from, in the order the default blocking
/// implementation waits on them (increasing mask).
pub fn children(rank: Rank, root: Rank, size: u32) -> Vec<Rank> {
    let rel = rel_rank(rank, root, size);
    let mut out = Vec::new();
    let mut mask = 1u32;
    while mask < size {
        if rel & mask != 0 {
            break; // from here on this node is a sender, not a receiver
        }
        let child_rel = rel | mask;
        if child_rel < size {
            out.push(abs_rank(child_rel, root, size));
        }
        mask <<= 1;
    }
    out
}

/// True if `rank` has no children (white nodes in Fig. 1).
pub fn is_leaf(rank: Rank, root: Rank, size: u32) -> bool {
    rank != root && children(rank, root, size).is_empty()
}

/// True if `rank` has children and is not the root (gray nodes in Fig. 1) —
/// the only nodes application bypass optimizes (§II).
pub fn is_internal(rank: Rank, root: Rank, size: u32) -> bool {
    rank != root && !children(rank, root, size).is_empty()
}

/// Number of hops a contribution originating at `rank` takes to reach the
/// root (the popcount of the relative rank).
pub fn hops_to_root(rank: Rank, root: Rank, size: u32) -> u32 {
    rel_rank(rank, root, size).count_ones()
}

/// The "last node" of the latency microbenchmark (§VI): the rank whose
/// contribution traverses the most hops to the root; ties broken toward the
/// larger relative rank.
pub fn last_node(root: Rank, size: u32) -> Rank {
    let rel = (0..size)
        .max_by_key(|&r| (r.count_ones(), r))
        .expect("size >= 1");
    abs_rank(rel, root, size)
}

/// Depth of the whole tree in hops (`ceil(log2(size))`).
pub fn tree_depth(size: u32) -> u32 {
    debug_assert!(size >= 1);
    32 - (size - 1).leading_zeros()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_eight_node_tree() {
        // The paper's Fig. 1: root 0; leaves send to 0/2/4/6 per binomial
        // structure. With root 0: children(0)=[1,2,4], children(2)=[3],
        // children(4)=[5,6], children(6)=[7].
        let size = 8;
        assert_eq!(children(0, 0, size), vec![1, 2, 4]);
        assert_eq!(children(2, 0, size), vec![3]);
        assert_eq!(children(4, 0, size), vec![5, 6]);
        assert_eq!(children(6, 0, size), vec![7]);
        for leaf in [1, 3, 5, 7] {
            assert!(children(leaf, 0, size).is_empty());
            assert!(is_leaf(leaf, 0, size));
        }
        assert!(is_internal(2, 0, size));
        assert!(is_internal(4, 0, size));
        assert!(is_internal(6, 0, size));
        assert!(!is_internal(0, 0, size));
        assert!(!is_internal(7, 0, size));
    }

    #[test]
    fn parent_child_are_duals() {
        for size in 1..=40u32 {
            for root in 0..size {
                for rank in 0..size {
                    if let Some(p) = parent(rank, root, size) {
                        assert!(
                            children(p, root, size).contains(&rank),
                            "size={size} root={root}: {p} not parent of {rank}"
                        );
                    } else {
                        assert_eq!(rank, root);
                    }
                }
            }
        }
    }

    #[test]
    fn edge_count_is_size_minus_one() {
        for size in 1..=64u32 {
            for root in [0, size / 2, size - 1] {
                let edges: usize = (0..size).map(|r| children(r, root, size).len()).sum();
                assert_eq!(edges as u32, size - 1, "size={size} root={root}");
            }
        }
    }

    #[test]
    fn every_nonroot_has_exactly_one_parent() {
        for size in 1..=33u32 {
            let root = 3 % size;
            let mut seen = vec![0u32; size as usize];
            for rank in 0..size {
                for c in children(rank, root, size) {
                    seen[c as usize] += 1;
                }
            }
            for rank in 0..size {
                let expected = u32::from(rank != root);
                assert_eq!(seen[rank as usize], expected, "size={size} rank={rank}");
            }
        }
    }

    #[test]
    fn rotation_moves_the_root() {
        let size = 8;
        // With root 3, rank 3 plays the old rank-0 role.
        assert_eq!(children(3, 3, size), vec![4, 5, 7]);
        assert_eq!(parent(3, 3, size), None);
        assert_eq!(parent(4, 3, size), Some(3));
    }

    #[test]
    fn hops_bounded_by_depth() {
        for size in 1..=64u32 {
            for rank in 0..size {
                assert!(hops_to_root(rank, 0, size) <= tree_depth(size));
            }
        }
    }

    #[test]
    fn tree_depth_values() {
        assert_eq!(tree_depth(1), 0);
        assert_eq!(tree_depth(2), 1);
        assert_eq!(tree_depth(3), 2);
        assert_eq!(tree_depth(4), 2);
        assert_eq!(tree_depth(5), 3);
        assert_eq!(tree_depth(32), 5);
        assert_eq!(tree_depth(33), 6);
    }

    #[test]
    fn last_node_power_of_two() {
        // For size 2^k the deepest node is relative rank 2^k - 1.
        assert_eq!(last_node(0, 8), 7);
        assert_eq!(last_node(0, 32), 31);
        // Rotation applies.
        assert_eq!(last_node(2, 8), (7 + 2) % 8);
    }

    #[test]
    fn last_node_non_power_of_two() {
        // size 6: relative ranks 0..5; popcounts 0,1,1,2,1,2 -> max at 5.
        assert_eq!(last_node(0, 6), 5);
        // size 5: popcounts 0,1,1,2,1 -> rel 3.
        assert_eq!(last_node(0, 5), 3);
    }

    #[test]
    fn single_node_tree() {
        assert_eq!(parent(0, 0, 1), None);
        assert!(children(0, 0, 1).is_empty());
        assert!(!is_internal(0, 0, 1));
        assert_eq!(last_node(0, 1), 0);
    }

    #[test]
    fn two_node_tree_has_no_internal_nodes() {
        // The paper's observation that AB cannot help at 2 nodes: only a
        // root and a leaf exist.
        for root in 0..2 {
            assert!((0..2).all(|r| !is_internal(r, root, 2)));
        }
    }

    #[test]
    fn rel_abs_roundtrip() {
        for size in 1..=17u32 {
            for root in 0..size {
                for rank in 0..size {
                    let rel = rel_rank(rank, root, size);
                    assert_eq!(abs_rank(rel, root, size), rank);
                }
            }
        }
    }

    #[test]
    fn children_are_sorted_by_mask() {
        // Increasing mask order == increasing relative rank distance.
        let kids = children(0, 0, 32);
        assert_eq!(kids, vec![1, 2, 4, 8, 16]);
    }
}
