//! Collective-operation state machines (the data half).
//!
//! The stepping logic lives in [`crate::engine`] (it needs mutable access to
//! the engine's queues); this module defines the per-operation state that
//! persists across progress calls.
//!
//! [`ReduceState`] is the **default blocking tree reduction** — the `nab`
//! (non-application-bypass) baseline the paper compares against. Its
//! defining property is visible right in the state: `child_recv` holds *one*
//! posted receive at a time, in schedule order, and the caller polls until
//! the whole subtree has reported. An early message from a later child waits
//! in the unexpected queue (two copies); a late message from the current
//! child stalls the parent completely.
//!
//! Since the schedule refactor, reduce/bcast instances carry an
//! [`Arc<TopoSchedule>`] instead of re-deriving tree structure from mask
//! arithmetic: the engine steps against the schedule's ordered child list
//! and parent pointer, so the same state machine runs over any
//! [`crate::topology::TopologyKind`].

use crate::op::ReduceOp;
use crate::request::ReqId;
use crate::topology::TopoSchedule;
use crate::types::{Datatype, Rank};
use abr_gm::packet::PacketKind;
use std::sync::Arc;

/// State of a blocking tree reduction (MPICH `intra_Reduce` when the
/// schedule is binomial).
#[derive(Debug)]
pub struct ReduceState {
    /// Collective context id.
    pub context: u32,
    /// Root rank.
    pub root: Rank,
    /// Communicator size.
    pub size: u32,
    /// This rank.
    pub rank: Rank,
    /// Operator.
    pub op: ReduceOp,
    /// Element type.
    pub dtype: Datatype,
    /// Instance sequence number (stamped into packet headers).
    pub coll_seq: u64,
    /// Running partial result, seeded with this rank's contribution.
    pub acc: Vec<u8>,
    /// The precomputed schedule this instance steps against (shared with
    /// the engine's cache — no per-instance allocation).
    pub sched: Arc<TopoSchedule>,
    /// Index into this rank's schedule children: the next child to wait on.
    pub next_child: usize,
    /// The single outstanding child receive, if any.
    pub child_recv: Option<ReqId>,
    /// The send-to-parent request once every child has been folded in.
    pub send_req: Option<ReqId>,
    /// Packet kind for reduction messages: `Eager` for the stock baseline,
    /// `Collective` when running under the application-bypass layer (so the
    /// destination NIC can raise signals).
    pub packet_kind: PacketKind,
}

/// State of a tree broadcast.
#[derive(Debug)]
pub struct BcastState {
    /// Collective context id.
    pub context: u32,
    /// Root rank.
    pub root: Rank,
    /// Communicator size.
    pub size: u32,
    /// This rank.
    pub rank: Rank,
    /// Instance sequence number.
    pub coll_seq: u64,
    /// Payload length in bytes.
    pub len: usize,
    /// The data once this rank has it (root starts with it).
    pub data: Option<bytes::Bytes>,
    /// Outstanding receive from the parent.
    pub recv_req: Option<ReqId>,
    /// The precomputed schedule this instance steps against.
    pub sched: Arc<TopoSchedule>,
    /// Index into this rank's schedule children: the next child to send to.
    pub next_send: usize,
    /// In-flight send requests (rendezvous sends complete asynchronously).
    pub send_reqs: Vec<ReqId>,
}

/// State of a dissemination barrier.
#[derive(Debug)]
pub struct BarrierState {
    /// Collective context id.
    pub context: u32,
    /// Communicator size.
    pub size: u32,
    /// This rank.
    pub rank: Rank,
    /// Instance sequence number.
    pub coll_seq: u64,
    /// Current round (0-based); `ceil(log2(size))` rounds total.
    pub round: u32,
    /// Outstanding receive for the current round.
    pub recv_req: Option<ReqId>,
}

/// Which phase a composite allreduce is in.
#[derive(Debug)]
pub enum AllreducePhase {
    /// Reducing to rank 0.
    Reduce(ReduceState),
    /// Broadcasting the result from rank 0.
    Bcast(BcastState),
}

/// State of an allreduce (reduce-to-0 then broadcast, as MPICH does for
/// user-defined/commutative operations).
#[derive(Debug)]
pub struct AllreduceState {
    /// Current phase.
    pub phase: AllreducePhase,
    /// Operator/dtype kept to rebuild the bcast phase.
    pub op: ReduceOp,
    /// Element type.
    pub dtype: Datatype,
    /// Payload length in bytes.
    pub len: usize,
}

/// State of a gather (linear at the root, as MPICH does for small
/// messages: every rank sends its block directly; the root assembles them
/// in rank order).
#[derive(Debug)]
pub struct GatherState {
    /// Collective context id.
    pub context: u32,
    /// Root rank.
    pub root: Rank,
    /// Communicator size.
    pub size: u32,
    /// This rank.
    pub rank: Rank,
    /// Instance sequence number.
    pub coll_seq: u64,
    /// Per-rank block length in bytes.
    pub block: usize,
    /// Root: assembled blocks (index = rank).
    pub chunks: Vec<Option<bytes::Bytes>>,
    /// Root: outstanding receives (req, src).
    pub recvs: Vec<(ReqId, Rank)>,
    /// Non-root: the send request.
    pub send_req: Option<ReqId>,
}

/// State of a scatter (linear from the root).
#[derive(Debug)]
pub struct ScatterState {
    /// Collective context id.
    pub context: u32,
    /// Root rank.
    pub root: Rank,
    /// This rank.
    pub rank: Rank,
    /// Instance sequence number.
    pub coll_seq: u64,
    /// Non-root: the pending receive for this rank's block.
    pub recv_req: Option<ReqId>,
    /// Root: this rank's own block, returned when sends complete.
    pub own: Option<bytes::Bytes>,
    /// Root: outstanding sends.
    pub send_reqs: Vec<ReqId>,
}

/// Phase of a Rabenseifner (reduce-scatter + recursive-doubling allgather)
/// allreduce, the bandwidth-optimal algorithm real MPICH switches to for
/// large messages on power-of-two communicators.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RsPhase {
    /// Recursive-halving reduce-scatter round (distance shrinking).
    ReduceScatter {
        /// Current exchange distance (starts at size/2, halves).
        dist: u32,
    },
    /// Recursive-doubling allgather round (distance growing).
    Allgather {
        /// Current exchange distance (starts at 1, doubles).
        dist: u32,
    },
}

/// State of a Rabenseifner allreduce.
#[derive(Debug)]
pub struct RsAllreduceState {
    /// Collective context id.
    pub context: u32,
    /// Communicator size (a power of two).
    pub size: u32,
    /// This rank.
    pub rank: Rank,
    /// Operator.
    pub op: ReduceOp,
    /// Element type.
    pub dtype: Datatype,
    /// Instance sequence number.
    pub coll_seq: u64,
    /// Full-length working buffer.
    pub buf: Vec<u8>,
    /// Current phase and distance.
    pub phase: RsPhase,
    /// Byte offset of the segment this rank currently owns.
    pub offset: usize,
    /// Byte length of that segment.
    pub seglen: usize,
    /// Outstanding exchange.
    pub send_req: Option<ReqId>,
    /// Outstanding exchange receive.
    pub recv_req: Option<ReqId>,
}

/// State of a segmented (pipelined) tree reduction: `k` independent
/// [`ReduceState`] instances over contiguous slices of the payload, all
/// stepping the *same* shared schedule, with at most `window` segments
/// active on the wire at once (the `ABR_SEGMENTS` knob). Each segment has
/// its own collective sequence number (`base_seq + index`), so packets from
/// different segments match independently and interleave freely.
#[derive(Debug)]
pub struct SegReduceState {
    /// Root rank (for assembling the final buffer there).
    pub root: Rank,
    /// This rank.
    pub rank: Rank,
    /// Per-segment reduce machines: `Some` until the segment completes.
    /// Index `i` covers bytes `[i * seg_bytes, min((i+1) * seg_bytes, len))`
    /// and uses sequence number `base_seq + i`.
    pub segs: Vec<Option<ReduceState>>,
    /// Segments admitted to the pipeline so far (`segs[..started]` are
    /// active or done; the rest have not posted any traffic yet).
    pub started: usize,
    /// Segments fully completed.
    pub done: usize,
    /// Maximum segments in flight at once (`started - done <= window`).
    pub window: usize,
    /// Root only: per-segment results, concatenated in order on completion.
    pub results: Vec<Option<bytes::Bytes>>,
}

/// One segment of a dual-root allreduce half: a reduce toward the half's
/// root, then a broadcast of that segment's result back down the same tree.
#[derive(Debug)]
pub enum DualSeg {
    /// Reduction phase in progress.
    Reduce(ReduceState),
    /// Broadcast phase in progress.
    Bcast(BcastState),
    /// Segment complete (result recorded in the half's `results`).
    Done,
}

/// One half of a dual-root allreduce: an independent segmented
/// reduce-then-broadcast pipeline over its own chain schedule and its own
/// slice `[offset, offset + len)` of the payload.
#[derive(Debug)]
pub struct DualHalf {
    /// Byte offset of this half within the full payload.
    pub offset: usize,
    /// Byte length of this half.
    pub len: usize,
    /// This half's root rank.
    pub root: Rank,
    /// Chain (or chain-reverse) schedule both phases step.
    pub sched: Arc<TopoSchedule>,
    /// First reduce sequence number; segment `i` reduces on `+ i`.
    pub reduce_base_seq: u64,
    /// First broadcast sequence number; segment `i` broadcasts on `+ i`.
    pub bcast_base_seq: u64,
    /// Segment size in bytes (last segment may be shorter).
    pub seg_bytes: usize,
    /// Per-segment pipelines.
    pub segs: Vec<DualSeg>,
    /// Segments admitted to this half's pipeline so far.
    pub started: usize,
    /// Segments fully completed (broadcast received everywhere).
    pub done: usize,
    /// Maximum segments of this half in flight at once.
    pub window: usize,
    /// Per-segment broadcast results, assembled in order on completion.
    pub results: Vec<Option<bytes::Bytes>>,
}

/// State of Träff's dual-root doubly-pipelined allreduce (PAPERS.md): the
/// payload is split into two element-aligned halves that run *concurrent*
/// segmented reduce+broadcast pipelines over opposite-direction chains —
/// half L toward rank 0 over [`crate::topology::TopologyKind::Chain`], half
/// H toward rank `size - 1` over
/// [`crate::topology::TopologyKind::ChainRev`] — so every physical link
/// carries both halves in opposite directions and no link is idle while
/// the pipeline drains.
#[derive(Debug)]
pub struct DualAllreduceState {
    /// Collective context id.
    pub context: u32,
    /// Communicator size.
    pub size: u32,
    /// This rank.
    pub rank: Rank,
    /// Operator.
    pub op: ReduceOp,
    /// Element type.
    pub dtype: Datatype,
    /// Full payload length in bytes.
    pub len: usize,
    /// The two concurrent half-pipelines (L toward 0, H toward size-1).
    pub halves: [DualHalf; 2],
    /// Packet kind for reduction traffic (mirrors [`ReduceState`]).
    pub packet_kind: PacketKind,
}

/// Which phase a composite allgather is in.
#[derive(Debug)]
pub enum AllgatherPhase {
    /// Gathering to rank 0.
    Gather(GatherState),
    /// Broadcasting the assembled buffer from rank 0.
    Bcast(BcastState),
}

/// State of an allgather (gather to 0, then broadcast).
#[derive(Debug)]
pub struct AllgatherState {
    /// Current phase.
    pub phase: AllgatherPhase,
    /// Total assembled length (`block * size`).
    pub total_len: usize,
}

/// Any collective in flight.
#[derive(Debug)]
pub enum CollState {
    /// Blocking tree reduce (the `nab` baseline).
    Reduce(ReduceState),
    /// Tree broadcast.
    Bcast(BcastState),
    /// Dissemination barrier.
    Barrier(BarrierState),
    /// Reduce + broadcast.
    Allreduce(AllreduceState),
    /// Linear gather.
    Gather(GatherState),
    /// Linear scatter.
    Scatter(ScatterState),
    /// Gather + broadcast.
    Allgather(AllgatherState),
    /// Rabenseifner allreduce (large messages, power-of-two sizes).
    RsAllreduce(RsAllreduceState),
    /// Segmented (pipelined) tree reduce.
    SegReduce(SegReduceState),
    /// Dual-root doubly-pipelined allreduce.
    DualAllreduce(DualAllreduceState),
}

impl CollState {
    /// Short name for diagnostics.
    pub fn name(&self) -> &'static str {
        match self {
            CollState::Reduce(_) => "reduce",
            CollState::Bcast(_) => "bcast",
            CollState::Barrier(_) => "barrier",
            CollState::Allreduce(_) => "allreduce",
            CollState::Gather(_) => "gather",
            CollState::Scatter(_) => "scatter",
            CollState::Allgather(_) => "allgather",
            CollState::RsAllreduce(_) => "rs-allreduce",
            CollState::SegReduce(_) => "seg-reduce",
            CollState::DualAllreduce(_) => "dual-allreduce",
        }
    }
}

/// Number of dissemination-barrier rounds for `size` ranks.
pub fn barrier_rounds(size: u32) -> u32 {
    crate::tree::tree_depth(size)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn barrier_round_counts() {
        assert_eq!(barrier_rounds(1), 0);
        assert_eq!(barrier_rounds(2), 1);
        assert_eq!(barrier_rounds(3), 2);
        assert_eq!(barrier_rounds(8), 3);
        assert_eq!(barrier_rounds(9), 4);
        assert_eq!(barrier_rounds(32), 5);
    }

    #[test]
    fn coll_names() {
        let r = CollState::Barrier(BarrierState {
            context: 1,
            size: 2,
            rank: 0,
            coll_seq: 0,
            round: 0,
            recv_req: None,
        });
        assert_eq!(r.name(), "barrier");
    }
}
