//! Collective-operation state machines (the data half).
//!
//! The stepping logic lives in [`crate::engine`] (it needs mutable access to
//! the engine's queues); this module defines the per-operation state that
//! persists across progress calls.
//!
//! [`ReduceState`] is the **default blocking tree reduction** — the `nab`
//! (non-application-bypass) baseline the paper compares against. Its
//! defining property is visible right in the state: `child_recv` holds *one*
//! posted receive at a time, in schedule order, and the caller polls until
//! the whole subtree has reported. An early message from a later child waits
//! in the unexpected queue (two copies); a late message from the current
//! child stalls the parent completely.
//!
//! Since the schedule refactor, reduce/bcast instances carry an
//! [`Arc<TopoSchedule>`] instead of re-deriving tree structure from mask
//! arithmetic: the engine steps against the schedule's ordered child list
//! and parent pointer, so the same state machine runs over any
//! [`crate::topology::TopologyKind`].

use crate::op::ReduceOp;
use crate::request::ReqId;
use crate::topology::TopoSchedule;
use crate::types::{Datatype, Rank};
use abr_gm::packet::PacketKind;
use std::sync::Arc;

/// State of a blocking tree reduction (MPICH `intra_Reduce` when the
/// schedule is binomial).
#[derive(Debug)]
pub struct ReduceState {
    /// Collective context id.
    pub context: u32,
    /// Root rank.
    pub root: Rank,
    /// Communicator size.
    pub size: u32,
    /// This rank.
    pub rank: Rank,
    /// Operator.
    pub op: ReduceOp,
    /// Element type.
    pub dtype: Datatype,
    /// Instance sequence number (stamped into packet headers).
    pub coll_seq: u64,
    /// Running partial result, seeded with this rank's contribution.
    pub acc: Vec<u8>,
    /// The precomputed schedule this instance steps against (shared with
    /// the engine's cache — no per-instance allocation).
    pub sched: Arc<TopoSchedule>,
    /// Index into this rank's schedule children: the next child to wait on.
    pub next_child: usize,
    /// The single outstanding child receive, if any.
    pub child_recv: Option<ReqId>,
    /// The send-to-parent request once every child has been folded in.
    pub send_req: Option<ReqId>,
    /// Packet kind for reduction messages: `Eager` for the stock baseline,
    /// `Collective` when running under the application-bypass layer (so the
    /// destination NIC can raise signals).
    pub packet_kind: PacketKind,
}

/// State of a tree broadcast.
#[derive(Debug)]
pub struct BcastState {
    /// Collective context id.
    pub context: u32,
    /// Root rank.
    pub root: Rank,
    /// Communicator size.
    pub size: u32,
    /// This rank.
    pub rank: Rank,
    /// Instance sequence number.
    pub coll_seq: u64,
    /// Payload length in bytes.
    pub len: usize,
    /// The data once this rank has it (root starts with it).
    pub data: Option<bytes::Bytes>,
    /// Outstanding receive from the parent.
    pub recv_req: Option<ReqId>,
    /// The precomputed schedule this instance steps against.
    pub sched: Arc<TopoSchedule>,
    /// Index into this rank's schedule children: the next child to send to.
    pub next_send: usize,
    /// In-flight send requests (rendezvous sends complete asynchronously).
    pub send_reqs: Vec<ReqId>,
}

/// State of a dissemination barrier.
#[derive(Debug)]
pub struct BarrierState {
    /// Collective context id.
    pub context: u32,
    /// Communicator size.
    pub size: u32,
    /// This rank.
    pub rank: Rank,
    /// Instance sequence number.
    pub coll_seq: u64,
    /// Current round (0-based); `ceil(log2(size))` rounds total.
    pub round: u32,
    /// Outstanding receive for the current round.
    pub recv_req: Option<ReqId>,
}

/// Which phase a composite allreduce is in.
#[derive(Debug)]
pub enum AllreducePhase {
    /// Reducing to rank 0.
    Reduce(ReduceState),
    /// Broadcasting the result from rank 0.
    Bcast(BcastState),
}

/// State of an allreduce (reduce-to-0 then broadcast, as MPICH does for
/// user-defined/commutative operations).
#[derive(Debug)]
pub struct AllreduceState {
    /// Current phase.
    pub phase: AllreducePhase,
    /// Operator/dtype kept to rebuild the bcast phase.
    pub op: ReduceOp,
    /// Element type.
    pub dtype: Datatype,
    /// Payload length in bytes.
    pub len: usize,
}

/// State of a gather (linear at the root, as MPICH does for small
/// messages: every rank sends its block directly; the root assembles them
/// in rank order).
#[derive(Debug)]
pub struct GatherState {
    /// Collective context id.
    pub context: u32,
    /// Root rank.
    pub root: Rank,
    /// Communicator size.
    pub size: u32,
    /// This rank.
    pub rank: Rank,
    /// Instance sequence number.
    pub coll_seq: u64,
    /// Per-rank block length in bytes.
    pub block: usize,
    /// Root: assembled blocks (index = rank).
    pub chunks: Vec<Option<bytes::Bytes>>,
    /// Root: outstanding receives (req, src).
    pub recvs: Vec<(ReqId, Rank)>,
    /// Non-root: the send request.
    pub send_req: Option<ReqId>,
}

/// State of a scatter (linear from the root).
#[derive(Debug)]
pub struct ScatterState {
    /// Collective context id.
    pub context: u32,
    /// Root rank.
    pub root: Rank,
    /// This rank.
    pub rank: Rank,
    /// Instance sequence number.
    pub coll_seq: u64,
    /// Non-root: the pending receive for this rank's block.
    pub recv_req: Option<ReqId>,
    /// Root: this rank's own block, returned when sends complete.
    pub own: Option<bytes::Bytes>,
    /// Root: outstanding sends.
    pub send_reqs: Vec<ReqId>,
}

/// Phase of a Rabenseifner (reduce-scatter + recursive-doubling allgather)
/// allreduce, the bandwidth-optimal algorithm real MPICH switches to for
/// large messages on power-of-two communicators.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RsPhase {
    /// Recursive-halving reduce-scatter round (distance shrinking).
    ReduceScatter {
        /// Current exchange distance (starts at size/2, halves).
        dist: u32,
    },
    /// Recursive-doubling allgather round (distance growing).
    Allgather {
        /// Current exchange distance (starts at 1, doubles).
        dist: u32,
    },
}

/// State of a Rabenseifner allreduce.
#[derive(Debug)]
pub struct RsAllreduceState {
    /// Collective context id.
    pub context: u32,
    /// Communicator size (a power of two).
    pub size: u32,
    /// This rank.
    pub rank: Rank,
    /// Operator.
    pub op: ReduceOp,
    /// Element type.
    pub dtype: Datatype,
    /// Instance sequence number.
    pub coll_seq: u64,
    /// Full-length working buffer.
    pub buf: Vec<u8>,
    /// Current phase and distance.
    pub phase: RsPhase,
    /// Byte offset of the segment this rank currently owns.
    pub offset: usize,
    /// Byte length of that segment.
    pub seglen: usize,
    /// Outstanding exchange.
    pub send_req: Option<ReqId>,
    /// Outstanding exchange receive.
    pub recv_req: Option<ReqId>,
}

/// Which phase a composite allgather is in.
#[derive(Debug)]
pub enum AllgatherPhase {
    /// Gathering to rank 0.
    Gather(GatherState),
    /// Broadcasting the assembled buffer from rank 0.
    Bcast(BcastState),
}

/// State of an allgather (gather to 0, then broadcast).
#[derive(Debug)]
pub struct AllgatherState {
    /// Current phase.
    pub phase: AllgatherPhase,
    /// Total assembled length (`block * size`).
    pub total_len: usize,
}

/// Any collective in flight.
#[derive(Debug)]
pub enum CollState {
    /// Blocking tree reduce (the `nab` baseline).
    Reduce(ReduceState),
    /// Tree broadcast.
    Bcast(BcastState),
    /// Dissemination barrier.
    Barrier(BarrierState),
    /// Reduce + broadcast.
    Allreduce(AllreduceState),
    /// Linear gather.
    Gather(GatherState),
    /// Linear scatter.
    Scatter(ScatterState),
    /// Gather + broadcast.
    Allgather(AllgatherState),
    /// Rabenseifner allreduce (large messages, power-of-two sizes).
    RsAllreduce(RsAllreduceState),
}

impl CollState {
    /// Short name for diagnostics.
    pub fn name(&self) -> &'static str {
        match self {
            CollState::Reduce(_) => "reduce",
            CollState::Bcast(_) => "bcast",
            CollState::Barrier(_) => "barrier",
            CollState::Allreduce(_) => "allreduce",
            CollState::Gather(_) => "gather",
            CollState::Scatter(_) => "scatter",
            CollState::Allgather(_) => "allgather",
            CollState::RsAllreduce(_) => "rs-allreduce",
        }
    }
}

/// Number of dissemination-barrier rounds for `size` ranks.
pub fn barrier_rounds(size: u32) -> u32 {
    crate::tree::tree_depth(size)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn barrier_round_counts() {
        assert_eq!(barrier_rounds(1), 0);
        assert_eq!(barrier_rounds(2), 1);
        assert_eq!(barrier_rounds(3), 2);
        assert_eq!(barrier_rounds(8), 3);
        assert_eq!(barrier_rounds(9), 4);
        assert_eq!(barrier_rounds(32), 5);
    }

    #[test]
    fn coll_names() {
        let r = CollState::Barrier(BarrierState {
            context: 1,
            size: 2,
            rank: 0,
            coll_seq: 0,
            round: 0,
            recv_req: None,
        });
        assert_eq!(r.name(), "barrier");
    }
}
