//! MPI reduction operators applied elementwise over typed byte buffers.
//!
//! Buffers cross the stack as raw little-endian bytes (they ride in GM
//! packets); the operator reinterprets them per [`Datatype`]. All provided
//! operators are commutative and associative (over the reals — floating
//! point rounding makes f64 sums order-sensitive in the last ulps, which is
//! why correctness tests compare against a fold in tree order or use exact
//! integer payloads).

use crate::types::{Datatype, MprError};

/// A reduction operator (`MPI_SUM`, `MPI_MIN`, ...).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReduceOp {
    /// Elementwise sum.
    Sum,
    /// Elementwise product.
    Prod,
    /// Elementwise minimum.
    Min,
    /// Elementwise maximum.
    Max,
    /// Bitwise AND (integers only).
    BAnd,
    /// Bitwise OR (integers only).
    BOr,
    /// Bitwise XOR (integers only).
    BXor,
    /// Logical AND: nonzero is true; result 1 or 0 (integers only).
    LAnd,
    /// Logical OR (integers only).
    LOr,
}

impl ReduceOp {
    /// Stable human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            ReduceOp::Sum => "sum",
            ReduceOp::Prod => "prod",
            ReduceOp::Min => "min",
            ReduceOp::Max => "max",
            ReduceOp::BAnd => "band",
            ReduceOp::BOr => "bor",
            ReduceOp::BXor => "bxor",
            ReduceOp::LAnd => "land",
            ReduceOp::LOr => "lor",
        }
    }

    /// True if the operator is defined for `dtype`.
    pub fn defined_for(self, dtype: Datatype) -> bool {
        match self {
            ReduceOp::Sum | ReduceOp::Prod | ReduceOp::Min | ReduceOp::Max => true,
            _ => dtype.is_integer(),
        }
    }

    /// Apply `acc[i] = op(acc[i], operand[i])` for every element.
    ///
    /// Returns [`MprError::InvalidOpForType`] for undefined combinations and
    /// [`MprError::ShapeMismatch`] when the buffers disagree in length or
    /// are not whole elements.
    pub fn apply(self, dtype: Datatype, acc: &mut [u8], operand: &[u8]) -> Result<(), MprError> {
        if acc.len() != operand.len() {
            return Err(MprError::ShapeMismatch {
                expected: acc.len(),
                actual: operand.len(),
            });
        }
        if !acc.len().is_multiple_of(dtype.size()) {
            return Err(MprError::ShapeMismatch {
                expected: acc.len().next_multiple_of(dtype.size()),
                actual: acc.len(),
            });
        }
        if !self.defined_for(dtype) {
            return Err(MprError::InvalidOpForType {
                op: self.name(),
                dtype,
            });
        }
        match dtype {
            Datatype::F64 => {
                apply_typed::<f64, 8>(self, acc, operand, f64::from_le_bytes, |v| v.to_le_bytes())
            }
            Datatype::I64 => {
                apply_typed::<i64, 8>(self, acc, operand, i64::from_le_bytes, |v| v.to_le_bytes())
            }
            Datatype::I32 => {
                apply_typed::<i32, 4>(self, acc, operand, i32::from_le_bytes, |v| v.to_le_bytes())
            }
            Datatype::U8 => apply_typed::<u8, 1>(self, acc, operand, |b| b[0], |v| [v]),
        }
        Ok(())
    }
}

/// The elementwise combine for one numeric type.
trait Combine: Copy + PartialOrd {
    fn sum(self, rhs: Self) -> Self;
    fn prod(self, rhs: Self) -> Self;
    fn band(self, rhs: Self) -> Self;
    fn bor(self, rhs: Self) -> Self;
    fn bxor(self, rhs: Self) -> Self;
    fn truthy(self) -> bool;
    fn from_bool(b: bool) -> Self;
}

macro_rules! combine_int {
    ($t:ty) => {
        impl Combine for $t {
            fn sum(self, rhs: Self) -> Self {
                self.wrapping_add(rhs)
            }
            fn prod(self, rhs: Self) -> Self {
                self.wrapping_mul(rhs)
            }
            fn band(self, rhs: Self) -> Self {
                self & rhs
            }
            fn bor(self, rhs: Self) -> Self {
                self | rhs
            }
            fn bxor(self, rhs: Self) -> Self {
                self ^ rhs
            }
            fn truthy(self) -> bool {
                self != 0
            }
            fn from_bool(b: bool) -> Self {
                b as $t
            }
        }
    };
}

combine_int!(i64);
combine_int!(i32);
combine_int!(u8);

impl Combine for f64 {
    fn sum(self, rhs: Self) -> Self {
        self + rhs
    }
    fn prod(self, rhs: Self) -> Self {
        self * rhs
    }
    // Unreachable: defined_for() rejects bitwise/logical ops on F64.
    fn band(self, _: Self) -> Self {
        unreachable!("bitwise op on f64")
    }
    fn bor(self, _: Self) -> Self {
        unreachable!("bitwise op on f64")
    }
    fn bxor(self, _: Self) -> Self {
        unreachable!("bitwise op on f64")
    }
    fn truthy(self) -> bool {
        self != 0.0
    }
    fn from_bool(b: bool) -> Self {
        b as u8 as f64
    }
}

fn apply_typed<T: Combine, const N: usize>(
    op: ReduceOp,
    acc: &mut [u8],
    operand: &[u8],
    decode: impl Fn([u8; N]) -> T,
    encode: impl Fn(T) -> [u8; N],
) {
    for (a_chunk, o_chunk) in acc.chunks_exact_mut(N).zip(operand.chunks_exact(N)) {
        let a = decode(a_chunk.try_into().unwrap());
        let o = decode(o_chunk.try_into().unwrap());
        let r = match op {
            ReduceOp::Sum => a.sum(o),
            ReduceOp::Prod => a.prod(o),
            ReduceOp::Min => {
                if o < a {
                    o
                } else {
                    a
                }
            }
            ReduceOp::Max => {
                if o > a {
                    o
                } else {
                    a
                }
            }
            ReduceOp::BAnd => a.band(o),
            ReduceOp::BOr => a.bor(o),
            ReduceOp::BXor => a.bxor(o),
            ReduceOp::LAnd => T::from_bool(a.truthy() && o.truthy()),
            ReduceOp::LOr => T::from_bool(a.truthy() || o.truthy()),
        };
        a_chunk.copy_from_slice(&encode(r));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{bytes_to_f64s, bytes_to_i32s, f64s_to_bytes, i32s_to_bytes};

    #[test]
    fn f64_sum() {
        let mut acc = f64s_to_bytes(&[1.0, 2.0, 3.0]);
        let rhs = f64s_to_bytes(&[0.5, -2.0, 10.0]);
        ReduceOp::Sum.apply(Datatype::F64, &mut acc, &rhs).unwrap();
        assert_eq!(bytes_to_f64s(&acc), vec![1.5, 0.0, 13.0]);
    }

    #[test]
    fn f64_prod_min_max() {
        let mut acc = f64s_to_bytes(&[2.0, 5.0, -1.0]);
        let rhs = f64s_to_bytes(&[3.0, 4.0, -2.0]);
        let mut p = acc.clone();
        ReduceOp::Prod.apply(Datatype::F64, &mut p, &rhs).unwrap();
        assert_eq!(bytes_to_f64s(&p), vec![6.0, 20.0, 2.0]);
        let mut mn = acc.clone();
        ReduceOp::Min.apply(Datatype::F64, &mut mn, &rhs).unwrap();
        assert_eq!(bytes_to_f64s(&mn), vec![2.0, 4.0, -2.0]);
        ReduceOp::Max.apply(Datatype::F64, &mut acc, &rhs).unwrap();
        assert_eq!(bytes_to_f64s(&acc), vec![3.0, 5.0, -1.0]);
    }

    #[test]
    fn i32_bitwise() {
        let mut acc = i32s_to_bytes(&[0b1100, 0b1010]);
        let rhs = i32s_to_bytes(&[0b1010, 0b0110]);
        let mut band = acc.clone();
        ReduceOp::BAnd
            .apply(Datatype::I32, &mut band, &rhs)
            .unwrap();
        assert_eq!(bytes_to_i32s(&band), vec![0b1000, 0b0010]);
        let mut bor = acc.clone();
        ReduceOp::BOr.apply(Datatype::I32, &mut bor, &rhs).unwrap();
        assert_eq!(bytes_to_i32s(&bor), vec![0b1110, 0b1110]);
        ReduceOp::BXor.apply(Datatype::I32, &mut acc, &rhs).unwrap();
        assert_eq!(bytes_to_i32s(&acc), vec![0b0110, 0b1100]);
    }

    #[test]
    fn logical_ops_normalize_to_01() {
        let mut acc = i32s_to_bytes(&[5, 0, 7, 0]);
        let rhs = i32s_to_bytes(&[3, 2, 0, 0]);
        let mut land = acc.clone();
        ReduceOp::LAnd
            .apply(Datatype::I32, &mut land, &rhs)
            .unwrap();
        assert_eq!(bytes_to_i32s(&land), vec![1, 0, 0, 0]);
        ReduceOp::LOr.apply(Datatype::I32, &mut acc, &rhs).unwrap();
        assert_eq!(bytes_to_i32s(&acc), vec![1, 1, 1, 0]);
    }

    #[test]
    fn u8_sum_wraps() {
        let mut acc = vec![250u8, 1];
        ReduceOp::Sum
            .apply(Datatype::U8, &mut acc, &[10, 2])
            .unwrap();
        assert_eq!(acc, vec![4, 3]);
    }

    #[test]
    fn i64_min_handles_negatives() {
        let mut acc = (-5i64).to_le_bytes().to_vec();
        let rhs = (-100i64).to_le_bytes().to_vec();
        ReduceOp::Min.apply(Datatype::I64, &mut acc, &rhs).unwrap();
        assert_eq!(i64::from_le_bytes(acc.try_into().unwrap()), -100);
    }

    #[test]
    fn bitwise_on_f64_is_rejected() {
        let mut acc = f64s_to_bytes(&[1.0]);
        let rhs = acc.clone();
        for op in [
            ReduceOp::BAnd,
            ReduceOp::BOr,
            ReduceOp::BXor,
            ReduceOp::LAnd,
            ReduceOp::LOr,
        ] {
            let err = op.apply(Datatype::F64, &mut acc, &rhs).unwrap_err();
            assert!(matches!(err, MprError::InvalidOpForType { .. }), "{op:?}");
        }
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let mut acc = vec![0u8; 8];
        let err = ReduceOp::Sum
            .apply(Datatype::F64, &mut acc, &[0u8; 16])
            .unwrap_err();
        assert!(matches!(err, MprError::ShapeMismatch { .. }));
    }

    #[test]
    fn ragged_buffer_is_rejected() {
        let mut acc = vec![0u8; 6];
        let err = ReduceOp::Sum
            .apply(Datatype::F64, &mut acc, &[0u8; 6])
            .unwrap_err();
        assert!(matches!(err, MprError::ShapeMismatch { .. }));
    }

    #[test]
    fn empty_buffers_are_fine() {
        let mut acc: Vec<u8> = vec![];
        ReduceOp::Sum.apply(Datatype::F64, &mut acc, &[]).unwrap();
    }

    #[test]
    fn all_ops_have_names() {
        for op in [
            ReduceOp::Sum,
            ReduceOp::Prod,
            ReduceOp::Min,
            ReduceOp::Max,
            ReduceOp::BAnd,
            ReduceOp::BOr,
            ReduceOp::BXor,
            ReduceOp::LAnd,
            ReduceOp::LOr,
        ] {
            assert!(!op.name().is_empty());
        }
    }

    #[test]
    fn commutativity_on_random_f64() {
        // op(a, b) == op(b, a) for the arithmetic ops.
        let a = f64s_to_bytes(&[1.25, -3.5, 1e300]);
        let b = f64s_to_bytes(&[2.5, 4.0, -1e299]);
        for op in [ReduceOp::Sum, ReduceOp::Prod, ReduceOp::Min, ReduceOp::Max] {
            let mut ab = a.clone();
            op.apply(Datatype::F64, &mut ab, &b).unwrap();
            let mut ba = b.clone();
            op.apply(Datatype::F64, &mut ba, &a).unwrap();
            assert_eq!(ab, ba, "{op:?} not commutative");
        }
    }
}
