//! Communicators: a (point-to-point context, collective context, size)
//! triple. MPICH separates collective traffic from application traffic with
//! a hidden context id; the application-bypass layer additionally relies on
//! a per-communicator collective *sequence number* to identify reduction
//! instances (§IV-D).

use crate::types::{MprError, Rank};

/// A communicator handle. All ranks must create communicators in the same
/// order so context ids agree, as in MPI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Communicator {
    /// Context id stamped on point-to-point traffic.
    pub pt2pt_context: u32,
    /// Context id stamped on collective traffic (hidden from applications).
    pub coll_context: u32,
    /// Number of ranks.
    pub size: u32,
}

impl Communicator {
    /// The world communicator over `size` ranks.
    pub fn world(size: u32) -> Self {
        debug_assert!(size >= 1);
        Communicator {
            pt2pt_context: 0,
            coll_context: 1,
            size,
        }
    }

    /// Derive the `n`-th application-created communicator (all ranks must
    /// use the same `n` sequence). Context ids are allocated in pairs above
    /// the world communicator's.
    pub fn derived(n: u32, size: u32) -> Self {
        Communicator {
            pt2pt_context: 2 + 2 * n,
            coll_context: 3 + 2 * n,
            size,
        }
    }

    /// Validate a rank against this communicator.
    pub fn check_rank(&self, rank: Rank) -> Result<(), MprError> {
        if rank < self.size {
            Ok(())
        } else {
            Err(MprError::InvalidRank {
                rank,
                size: self.size,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_contexts_are_distinct() {
        let w = Communicator::world(4);
        assert_ne!(w.pt2pt_context, w.coll_context);
        assert_eq!(w.size, 4);
    }

    #[test]
    fn derived_contexts_never_collide() {
        let w = Communicator::world(4);
        let mut seen = std::collections::HashSet::new();
        seen.insert(w.pt2pt_context);
        seen.insert(w.coll_context);
        for n in 0..10 {
            let c = Communicator::derived(n, 4);
            assert!(seen.insert(c.pt2pt_context), "pt2pt ctx collision at {n}");
            assert!(seen.insert(c.coll_context), "coll ctx collision at {n}");
        }
    }

    #[test]
    fn rank_validation() {
        let w = Communicator::world(4);
        assert!(w.check_rank(0).is_ok());
        assert!(w.check_rank(3).is_ok());
        assert!(matches!(
            w.check_rank(4),
            Err(MprError::InvalidRank { rank: 4, size: 4 })
        ));
    }
}
