//! Communicators: a (point-to-point context, collective context, size)
//! triple. MPICH separates collective traffic from application traffic with
//! a hidden context id; the application-bypass layer additionally relies on
//! a per-communicator collective *sequence number* to identify reduction
//! instances (§IV-D).

use crate::types::{MprError, Rank};

/// A communicator handle. All ranks must create communicators in the same
/// order so context ids agree, as in MPI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Communicator {
    /// Context id stamped on point-to-point traffic.
    pub pt2pt_context: u32,
    /// Context id stamped on collective traffic (hidden from applications).
    pub coll_context: u32,
    /// Number of ranks.
    pub size: u32,
}

impl Communicator {
    /// The world communicator over `size` ranks.
    pub fn world(size: u32) -> Self {
        debug_assert!(size >= 1);
        Communicator {
            pt2pt_context: 0,
            coll_context: 1,
            size,
        }
    }

    /// Derive the `n`-th application-created communicator (all ranks must
    /// use the same `n` sequence). Context ids are allocated in pairs above
    /// the world communicator's.
    pub fn derived(n: u32, size: u32) -> Self {
        Communicator {
            pt2pt_context: 2 + 2 * n,
            coll_context: 3 + 2 * n,
            size,
        }
    }

    /// The world communicator of tenant job `job` over `size` ranks.
    ///
    /// Job 0 *is* the classic world communicator — a single-job tenant run
    /// must be bit-identical to the solo driver path — while every later
    /// job gets a context pair in a high band ([`Communicator::JOB_BASE`]
    /// and up) that can never collide with [`Communicator::derived`]
    /// communicators an application creates inside any job.
    pub fn job(job: u32, size: u32) -> Self {
        if job == 0 {
            return Communicator::world(size);
        }
        Communicator {
            pt2pt_context: Self::JOB_BASE + 2 * job,
            coll_context: Self::JOB_BASE + 2 * job + 1,
            size,
        }
    }

    /// First context id of the per-job band used by [`Communicator::job`].
    pub const JOB_BASE: u32 = 1 << 16;

    /// Validate a rank against this communicator.
    pub fn check_rank(&self, rank: Rank) -> Result<(), MprError> {
        if rank < self.size {
            Ok(())
        } else {
            Err(MprError::InvalidRank {
                rank,
                size: self.size,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_contexts_are_distinct() {
        let w = Communicator::world(4);
        assert_ne!(w.pt2pt_context, w.coll_context);
        assert_eq!(w.size, 4);
    }

    #[test]
    fn derived_contexts_never_collide() {
        let w = Communicator::world(4);
        let mut seen = std::collections::HashSet::new();
        seen.insert(w.pt2pt_context);
        seen.insert(w.coll_context);
        for n in 0..10 {
            let c = Communicator::derived(n, 4);
            assert!(seen.insert(c.pt2pt_context), "pt2pt ctx collision at {n}");
            assert!(seen.insert(c.coll_context), "coll ctx collision at {n}");
        }
    }

    #[test]
    fn job_zero_is_world_and_later_jobs_never_collide() {
        assert_eq!(Communicator::job(0, 8), Communicator::world(8));
        let mut seen = std::collections::HashSet::new();
        // A generous band of application-derived communicators…
        for n in 0..1000 {
            let c = Communicator::derived(n, 8);
            seen.insert(c.pt2pt_context);
            seen.insert(c.coll_context);
        }
        // …must stay disjoint from every per-job context pair.
        for job in 1..64 {
            let c = Communicator::job(job, 8);
            assert_ne!(c.pt2pt_context, c.coll_context);
            assert!(seen.insert(c.pt2pt_context), "job {job} pt2pt collision");
            assert!(seen.insert(c.coll_context), "job {job} coll collision");
        }
    }

    #[test]
    fn rank_validation() {
        let w = Communicator::world(4);
        assert!(w.check_rank(0).is_ok());
        assert!(w.check_rank(3).is_ok());
        assert!(matches!(
            w.check_rank(4),
            Err(MprError::InvalidRank { rank: 4, size: 4 })
        ));
    }
}
