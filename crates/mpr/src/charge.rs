//! CPU-cost accounting passed from the sans-I/O engine to the drivers.
//!
//! The engine computes *base* costs from the [`abr_gm::CostModel`]; the
//! driver scales them by the node's CPU class and turns them into virtual
//! time (DES) or simply records them (live runtime).

use abr_des::meter::CpuCategory;
use abr_des::SimDuration;

/// Accumulated CPU charges by category, drained by the driver after every
/// engine entry point.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Charges {
    /// Progress-engine polling overhead.
    pub polling: SimDuration,
    /// Protocol work: matching, copies, reduction arithmetic, send setup.
    pub protocol: SimDuration,
    /// Signal delivery and asynchronous-handler work.
    pub signal: SimDuration,
    /// Work performed on the NIC processor (NIC-offload extension) — not
    /// host CPU time; the driver accounts it separately and in parallel.
    pub nic: SimDuration,
}

impl Charges {
    /// No charges.
    pub const ZERO: Charges = Charges {
        polling: SimDuration::ZERO,
        protocol: SimDuration::ZERO,
        signal: SimDuration::ZERO,
        nic: SimDuration::ZERO,
    };

    /// Add a charge under `category`. `Application` time never originates in
    /// the engine and is folded into `protocol` defensively.
    pub fn add(&mut self, category: CpuCategory, d: SimDuration) {
        match category {
            CpuCategory::Polling => self.polling += d,
            CpuCategory::Protocol | CpuCategory::Application => self.protocol += d,
            CpuCategory::SignalHandler => self.signal += d,
            CpuCategory::NicOffload => self.nic += d,
        }
    }

    /// Total host CPU across categories (NIC time excluded: it runs on the
    /// NIC processor concurrently with the host).
    pub fn total(&self) -> SimDuration {
        self.polling + self.protocol + self.signal
    }

    /// True when nothing has been charged (host or NIC).
    pub fn is_zero(&self) -> bool {
        self.total().is_zero() && self.nic.is_zero()
    }

    /// Take the current charges, leaving zero behind.
    pub fn take(&mut self) -> Charges {
        std::mem::take(self)
    }

    /// Merge another set of charges into this one.
    pub fn merge(&mut self, other: Charges) {
        self.polling += other.polling;
        self.protocol += other.protocol;
        self.signal += other.signal;
        self.nic += other.nic;
    }

    /// Scale every host category (per-node CPU class); the NIC component is
    /// left alone — it scales with the NIC clock, which the driver applies.
    pub fn scaled_f64(&self, factor: f64) -> Charges {
        Charges {
            polling: self.polling.scaled_f64(factor),
            protocol: self.protocol.scaled_f64(factor),
            signal: self.signal.scaled_f64(factor),
            nic: self.nic,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(n: u64) -> SimDuration {
        SimDuration::from_us(n)
    }

    #[test]
    fn add_routes_by_category() {
        let mut c = Charges::ZERO;
        c.add(CpuCategory::Polling, us(1));
        c.add(CpuCategory::Protocol, us(2));
        c.add(CpuCategory::SignalHandler, us(3));
        c.add(CpuCategory::Application, us(4)); // folded into protocol
        assert_eq!(c.polling, us(1));
        assert_eq!(c.protocol, us(6));
        assert_eq!(c.signal, us(3));
        assert_eq!(c.total(), us(10));
    }

    #[test]
    fn take_resets() {
        let mut c = Charges::ZERO;
        c.add(CpuCategory::Polling, us(5));
        let taken = c.take();
        assert_eq!(taken.total(), us(5));
        assert!(c.is_zero());
    }

    #[test]
    fn merge_adds_componentwise() {
        let mut a = Charges::ZERO;
        a.add(CpuCategory::Polling, us(1));
        let mut b = Charges::ZERO;
        b.add(CpuCategory::SignalHandler, us(2));
        a.merge(b);
        assert_eq!(a.polling, us(1));
        assert_eq!(a.signal, us(2));
    }

    #[test]
    fn scaling_applies_to_every_category() {
        let mut c = Charges::ZERO;
        c.add(CpuCategory::Polling, us(2));
        c.add(CpuCategory::Protocol, us(4));
        c.add(CpuCategory::SignalHandler, us(6));
        let s = c.scaled_f64(1.5);
        assert_eq!(s.polling, us(3));
        assert_eq!(s.protocol, us(6));
        assert_eq!(s.signal, us(9));
    }

    #[test]
    fn zero_is_zero() {
        assert!(Charges::ZERO.is_zero());
        let mut c = Charges::ZERO;
        c.add(CpuCategory::Polling, SimDuration::ZERO);
        assert!(c.is_zero());
    }
}
