//! Property test: the bucketed match queues are observationally equivalent
//! to the straightforward linear-scan implementation they replaced.
//!
//! The reference model here *is* that old implementation — a flat list per
//! queue, matched front-to-back with `position()`. Random interleavings of
//! posts, arrivals, wildcard/exact receives, and cancels must produce
//! identical match decisions, in identical order, from both.

use abr_gm::packet::PacketKind;
use abr_mpr::matchq::{MsgKey, PostedQueue, PostedRecv, UnexpectedMsg, UnexpectedQueue};
use abr_mpr::types::{Rank, TagSel};
use abr_mpr::ReqId;
use bytes::Bytes;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    /// Post a receive with the given selectors.
    Post {
        src: Option<Rank>,
        tag: TagSel,
        ctx: u32,
    },
    /// A message arrives: match against posted receives, else park it
    /// unexpected.
    Arrive { src: Rank, tag: i32, ctx: u32 },
    /// A receive is issued against the unexpected queue.
    Recv {
        src: Option<Rank>,
        tag: TagSel,
        ctx: u32,
    },
    /// Cancel the nth request id issued so far (may already be gone).
    Cancel { nth: u64 },
}

/// The pre-bucketing linear-scan model, verbatim semantics.
#[derive(Default)]
struct RefModel {
    posted: Vec<PostedRecv>,
    unexpected: Vec<UnexpectedMsg>,
}

impl RefModel {
    fn take_posted(&mut self, key: &MsgKey) -> Option<PostedRecv> {
        let idx = self.posted.iter().position(|p| {
            p.context == key.context && p.src.is_none_or(|s| s == key.src) && p.tag.accepts(key.tag)
        })?;
        Some(self.posted.remove(idx))
    }

    fn cancel(&mut self, id: ReqId) -> bool {
        if let Some(idx) = self.posted.iter().position(|p| p.id == id) {
            self.posted.remove(idx);
            true
        } else {
            false
        }
    }

    fn take_unexpected(
        &mut self,
        src: Option<Rank>,
        tag: TagSel,
        ctx: u32,
    ) -> Option<UnexpectedMsg> {
        let idx = self.unexpected.iter().position(|m| {
            m.context == ctx && src.is_none_or(|s| s == m.src) && tag.accepts(m.tag)
        })?;
        Some(self.unexpected.remove(idx))
    }
}

fn msg(src: Rank, tag: i32, ctx: u32, serial: u64) -> UnexpectedMsg {
    UnexpectedMsg {
        src,
        tag,
        context: ctx,
        kind: PacketKind::Eager,
        coll_seq: serial, // unique serial so equivalence can track identity
        data: Bytes::new(),
        msg_len: 0,
    }
}

// Small selector domains so wildcard/exact collisions are common.
fn op_strategy() -> BoxedStrategy<Op> {
    prop_oneof![
        (0u32..4, 0i32..4, 0u32..2).prop_map(|(s, t, c)| Op::Post {
            src: s.checked_sub(1),
            tag: if t == 0 {
                TagSel::Any
            } else {
                TagSel::Is(t - 1)
            },
            ctx: c,
        }),
        (0u32..3, 0i32..3, 0u32..2).prop_map(|(s, t, c)| Op::Arrive {
            src: s,
            tag: t,
            ctx: c
        }),
        (0u32..4, 0i32..4, 0u32..2).prop_map(|(s, t, c)| Op::Recv {
            src: s.checked_sub(1),
            tag: if t == 0 {
                TagSel::Any
            } else {
                TagSel::Is(t - 1)
            },
            ctx: c,
        }),
        (0u64..64).prop_map(|nth| Op::Cancel { nth }),
    ]
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Random interleavings of post/arrive/recv/cancel must produce the
    /// same match decisions as the linear-scan model, in the same order.
    #[test]
    fn bucketed_queues_match_linear_reference(
        // Long enough that runs routinely push both queues past the
        // small-queue scan threshold and into the bucketed probe path.
        ops in prop::collection::vec(op_strategy(), 0..160),
    ) {
        let mut posted = PostedQueue::new();
        let mut unexpected = UnexpectedQueue::new();
        let mut reference = RefModel::default();
        let mut next_id = 0u64;
        let mut next_serial = 0u64;

        for op in &ops {
            match *op {
                Op::Post { src, tag, ctx } => {
                    let recv = PostedRecv {
                        id: ReqId::from_raw(next_id),
                        src,
                        tag,
                        context: ctx,
                        capacity: 64,
                        expect_coll_seq: None,
                    };
                    next_id += 1;
                    posted.post(recv.clone());
                    reference.posted.push(recv);
                }
                Op::Arrive { src, tag, ctx } => {
                    let key = MsgKey { src, tag, context: ctx };
                    let got = posted.take_match(&key);
                    let want = reference.take_posted(&key);
                    prop_assert_eq!(
                        got.as_ref().map(|p| p.id),
                        want.as_ref().map(|p| p.id),
                        "posted match diverged for {:?}",
                        key
                    );
                    if got.is_none() {
                        let m = msg(src, tag, ctx, next_serial);
                        next_serial += 1;
                        unexpected.push(m.clone());
                        reference.unexpected.push(m);
                    }
                }
                Op::Recv { src, tag, ctx } => {
                    let got = unexpected.take_match(src, tag, ctx);
                    let want = reference.take_unexpected(src, tag, ctx);
                    prop_assert_eq!(
                        got.as_ref().map(|m| m.coll_seq),
                        want.as_ref().map(|m| m.coll_seq),
                        "unexpected match diverged for src={:?} tag={:?} ctx={}",
                        src,
                        tag,
                        ctx
                    );
                }
                Op::Cancel { nth } => {
                    if next_id > 0 {
                        let id = ReqId::from_raw(nth % next_id);
                        prop_assert_eq!(posted.cancel(id), reference.cancel(id));
                    }
                }
            }
            prop_assert_eq!(posted.len(), reference.posted.len());
            prop_assert_eq!(unexpected.len(), reference.unexpected.len());
        }

        // Drain both unexpected queues with a full wildcard: remaining parked
        // messages must come out in identical (arrival) order.
        for ctx in 0..2 {
            loop {
                let got = unexpected.take_match(None, TagSel::Any, ctx);
                let want = reference.take_unexpected(None, TagSel::Any, ctx);
                prop_assert_eq!(
                    got.as_ref().map(|m| m.coll_seq),
                    want.as_ref().map(|m| m.coll_seq)
                );
                if got.is_none() {
                    break;
                }
            }
        }
    }
}
