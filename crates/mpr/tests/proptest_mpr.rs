//! Property tests for the MPICH-like runtime: binomial-tree invariants,
//! matching queues against a reference model, and collectives over random
//! shapes (with per-pair-FIFO-preserving network shuffles).

use abr_mpr::engine::{Engine, EngineConfig};
use abr_mpr::matchq::{MsgKey, PostedQueue, PostedRecv, UnexpectedMsg, UnexpectedQueue};
use abr_mpr::op::ReduceOp;
use abr_mpr::testutil::{engines, Loopback};
use abr_mpr::tree;
use abr_mpr::types::{bytes_to_f64s, f64s_to_bytes, Datatype, TagSel};
use abr_mpr::ReqId;
use proptest::prelude::*;

proptest! {
    /// Binomial-tree structural invariants for arbitrary (size, root).
    #[test]
    fn tree_invariants(size in 1u32..200, root_sel in 0u32..200) {
        let root = root_sel % size;
        let mut edges = 0u32;
        for rank in 0..size {
            match tree::parent(rank, root, size) {
                None => prop_assert_eq!(rank, root),
                Some(p) => {
                    prop_assert!(p < size);
                    prop_assert!(tree::children(p, root, size).contains(&rank));
                }
            }
            edges += tree::children(rank, root, size).len() as u32;
            prop_assert!(tree::hops_to_root(rank, root, size) <= tree::tree_depth(size));
            // Exactly one of root/leaf/internal.
            let is_root = rank == root;
            let leaf = tree::is_leaf(rank, root, size);
            let internal = tree::is_internal(rank, root, size);
            prop_assert_eq!(u8::from(is_root) + u8::from(leaf) + u8::from(internal), 1,
                "rank {} size {} root {}", rank, size, root);
        }
        prop_assert_eq!(edges, size - 1);
        // The designated last node is at maximal depth.
        let last = tree::last_node(root, size);
        let max_hops = (0..size).map(|r| tree::hops_to_root(r, root, size)).max().unwrap();
        prop_assert_eq!(tree::hops_to_root(last, root, size), max_hops);
    }

    /// The posted queue returns exactly what a linear-scan reference model
    /// returns, for arbitrary posting orders and match keys.
    #[test]
    fn posted_queue_matches_model(
        posts in prop::collection::vec((0u32..8, any::<bool>(), 0i32..8, any::<bool>(), 0u32..3), 0..40),
        probes in prop::collection::vec((0u32..8, 0i32..8, 0u32..3), 0..40),
    ) {
        let mut q = PostedQueue::new();
        let mut model: Vec<PostedRecv> = Vec::new();
        for (i, (src, any_src, tag, any_tag, ctx)) in posts.into_iter().enumerate() {
            let p = PostedRecv {
                id: ReqId::from_raw(i as u64),
                src: (!any_src).then_some(src),
                tag: if any_tag { TagSel::Any } else { TagSel::Is(tag) },
                context: ctx,
                capacity: 0,
                expect_coll_seq: None,
            };
            q.post(p.clone());
            model.push(p);
        }
        for (src, tag, ctx) in probes {
            let key = MsgKey { src, tag, context: ctx };
            let model_hit = model.iter().position(|p| {
                p.context == ctx
                    && p.src.is_none_or(|s| s == src)
                    && p.tag.accepts(tag)
            });
            let got = q.take_match(&key);
            match model_hit {
                Some(i) => {
                    let want = model.remove(i);
                    prop_assert_eq!(got.map(|g| g.id), Some(want.id));
                }
                None => prop_assert!(got.is_none()),
            }
        }
        prop_assert_eq!(q.len(), model.len());
    }

    /// Ditto for the unexpected queue.
    #[test]
    fn unexpected_queue_matches_model(
        msgs in prop::collection::vec((0u32..6, 0i32..6, 0u32..2), 0..40),
        probes in prop::collection::vec((0u32..6, any::<bool>(), 0i32..6, any::<bool>(), 0u32..2), 0..40),
    ) {
        let mut q = UnexpectedQueue::new();
        let mut model: Vec<(u32, i32, u32, u64)> = Vec::new();
        for (i, (src, tag, ctx)) in msgs.into_iter().enumerate() {
            q.push(UnexpectedMsg {
                src,
                tag,
                context: ctx,
                kind: abr_gm::packet::PacketKind::Eager,
                coll_seq: i as u64,
                data: bytes::Bytes::new(),
                msg_len: 0,
            });
            model.push((src, tag, ctx, i as u64));
        }
        for (src, any_src, tag, any_tag, ctx) in probes {
            let src_sel = (!any_src).then_some(src);
            let tag_sel = if any_tag { TagSel::Any } else { TagSel::Is(tag) };
            let model_hit = model.iter().position(|&(s, t, c, _)| {
                c == ctx && src_sel.is_none_or(|x| x == s) && tag_sel.accepts(t)
            });
            let got = q.take_match(src_sel, tag_sel, ctx);
            match model_hit {
                Some(i) => {
                    let (_, _, _, seq) = model.remove(i);
                    prop_assert_eq!(got.map(|m| m.coll_seq), Some(seq));
                }
                None => prop_assert!(got.is_none()),
            }
        }
    }

    /// Every collective completes and produces correct results for random
    /// sizes even when cross-pair packet delivery order is shuffled.
    #[test]
    fn collectives_survive_cross_pair_reordering(
        n in 2u32..12,
        seed in any::<u64>(),
        elems in 1usize..8,
    ) {
        let mut lb = Loopback::new(engines(n, EngineConfig::default()));
        lb.shuffle_seed = Some(seed);
        let comm = lb.engines[0].world();
        // A reduce, a barrier and an allreduce back to back.
        let mut reqs = Vec::new();
        for r in 0..n as usize {
            let data = f64s_to_bytes(&vec![r as f64 + 1.0; elems]);
            reqs.push((r, lb.engines[r].ireduce(&comm, 0, ReduceOp::Sum, Datatype::F64, &data)));
        }
        for r in 0..n as usize {
            reqs.push((r, lb.engines[r].ibarrier(&comm)));
        }
        for r in 0..n as usize {
            let data = f64s_to_bytes(&vec![1.0; elems]);
            reqs.push((r, lb.engines[r].iallreduce(&comm, ReduceOp::Sum, Datatype::F64, &data)));
        }
        lb.run_until_complete(&reqs, 8000);
        let expect: f64 = (1..=n).map(f64::from).sum();
        let red = lb.expect_data(0, reqs[0].1);
        prop_assert_eq!(bytes_to_f64s(&red), vec![expect; elems]);
        // Allreduce results at every rank.
        for r in 0..n as usize {
            let (_, id) = reqs[2 * n as usize + r];
            let d = lb.expect_data(r, id);
            prop_assert_eq!(bytes_to_f64s(&d), vec![n as f64; elems]);
        }
    }

    /// Point-to-point with wildcard receives never loses or duplicates a
    /// message under reordering.
    #[test]
    fn p2p_conservation_under_reordering(n_msgs in 1usize..30, seed in any::<u64>()) {
        let mut lb = Loopback::new(engines(2, EngineConfig::default()));
        lb.shuffle_seed = Some(seed);
        let comm = lb.engines[0].world();
        let mut sends = Vec::new();
        for i in 0..n_msgs {
            let payload = bytes::Bytes::from(vec![i as u8; 4]);
            sends.push((0usize, lb.engines[0].isend(&comm, 1, i as i32, payload)));
        }
        lb.run_to_quiescence(200);
        let mut seen = Vec::new();
        for _ in 0..n_msgs {
            let r = lb.engines[1].irecv(&comm, Some(0), TagSel::Any, 16);
            lb.run_until_complete(&[(1, r)], 200);
            seen.push(lb.expect_data(1, r)[0]);
        }
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..n_msgs as u8).collect::<Vec<_>>());
        let _ = sends;
    }
}

/// Engine construction panics on bad ranks (guard rails hold).
#[test]
#[should_panic(expected = "outside")]
fn engine_rejects_out_of_range_rank() {
    let _ = Engine::new(5, 4, EngineConfig::default());
}
