//! Property tests for the schedule layer: every [`TopologyKind`] must
//! produce a spanning tree rooted at the requested root, for arbitrary
//! (kind, size, root) — non-power-of-two sizes included.

use abr_mpr::topology::{ScheduleCache, TopologyKind};
use proptest::prelude::*;

fn kind_strategy() -> impl Strategy<Value = TopologyKind> {
    prop_oneof![
        Just(TopologyKind::Binomial),
        (2u32..8).prop_map(TopologyKind::Knomial),
        Just(TopologyKind::Chain),
        Just(TopologyKind::Flat),
        Just(TopologyKind::Bine),
        ((1u32..6), (1u32..6), (0u32..2)).prop_map(|(r, p, c)| TopologyKind::Locality {
            ranks_per_node: r,
            nodes_per_pod: p,
            cyclic: c == 1,
        }),
    ]
}

proptest! {
    /// Structural invariants shared by every topology: a schedule is a
    /// spanning tree over `0..size` rooted at `root`, with exactly
    /// `size - 1` parent/child edges and consistent parent/children
    /// views, and the depth metadata matches the actual parent chains.
    #[test]
    fn schedule_is_spanning_tree(
        kind in kind_strategy(),
        size in 1u32..150,
        root_sel in 0u32..150,
    ) {
        let root = root_sel % size;
        let s = kind.schedule(root, size);
        prop_assert_eq!(s.kind(), kind);
        prop_assert_eq!(s.root(), root);
        prop_assert_eq!(s.size(), size);

        let mut edges = 0u32;
        let mut max_depth = 0u32;
        for rank in 0..size {
            match s.parent_of(rank) {
                None => prop_assert_eq!(rank, root),
                Some(p) => {
                    prop_assert!(p < size);
                    prop_assert!(s.children_of(p).contains(&rank),
                        "kind {} size {} root {}: {} not listed under parent {}",
                        kind, size, root, rank, p);
                }
            }
            let kids = s.children_of(rank);
            edges += kids.len() as u32;
            for &c in kids {
                prop_assert!(c < size);
                prop_assert_eq!(s.parent_of(c), Some(rank));
            }

            // Walk the parent chain to the root; it must terminate in at
            // most size-1 hops (i.e. no cycles) and its length must equal
            // the precomputed depth tag.
            let mut cur = rank;
            let mut hops = 0u32;
            while let Some(p) = s.parent_of(cur) {
                cur = p;
                hops += 1;
                prop_assert!(hops < size, "cycle reaching root from {}", rank);
            }
            prop_assert_eq!(cur, root);
            prop_assert_eq!(s.depth_of(rank), hops,
                "kind {} size {} root {}: depth tag of {}", kind, size, root, rank);
            max_depth = max_depth.max(hops);

            // Exactly one of root/leaf/internal.
            let is_root = rank == root;
            prop_assert_eq!(
                u8::from(is_root) + u8::from(s.is_leaf(rank)) + u8::from(s.is_internal(rank)),
                1,
                "kind {} size {} root {} rank {}", kind, size, root, rank
            );
        }
        prop_assert_eq!(edges, size - 1);
        prop_assert_eq!(s.max_depth(), max_depth);
        // The designated last node sits at maximal depth.
        prop_assert_eq!(s.depth_of(s.last_node()), max_depth);
    }

    /// The cache hands out one shared schedule per (root, size) and the
    /// shared instance equals a freshly built one.
    #[test]
    fn cache_is_transparent(
        kind in kind_strategy(),
        size in 1u32..64,
        root_sel in 0u32..64,
    ) {
        let root = root_sel % size;
        let mut cache = ScheduleCache::new(kind);
        let a = cache.get(root, size);
        let b = cache.get(root, size);
        prop_assert!(std::sync::Arc::ptr_eq(&a, &b));
        let fresh = kind.schedule(root, size);
        for rank in 0..size {
            prop_assert_eq!(a.children_of(rank), fresh.children_of(rank));
            prop_assert_eq!(a.parent_of(rank), fresh.parent_of(rank));
        }
    }
}
