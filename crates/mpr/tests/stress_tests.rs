//! Mixed-collective stress: long random sequences of every collective,
//! interleaved across ranks under packet reordering and link deferral,
//! checked against locally computed expectations.

use abr_mpr::engine::EngineConfig;
use abr_mpr::request::Outcome;
use abr_mpr::testutil::{engines, Loopback};
use abr_mpr::types::{bytes_to_f64s, f64s_to_bytes, Datatype};
use abr_mpr::{ReduceOp, ReqId};
use bytes::Bytes;

/// A deterministic mini-RNG for the schedule.
fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Op {
    Reduce { root: u32, elems: usize },
    Bcast { root: u32, elems: usize },
    Allreduce { elems: usize },
    Allgather { elems: usize },
    Barrier,
}

fn schedule(seed: u64, n: u32, len: usize) -> Vec<Op> {
    let mut state = seed | 1;
    (0..len)
        .map(|_| {
            let root = (xorshift(&mut state) % n as u64) as u32;
            let elems = 1 + (xorshift(&mut state) % 16) as usize;
            match xorshift(&mut state) % 5 {
                0 => Op::Reduce { root, elems },
                1 => Op::Bcast { root, elems },
                2 => Op::Allreduce { elems },
                3 => Op::Allgather { elems },
                _ => Op::Barrier,
            }
        })
        .collect()
}

#[test]
fn long_mixed_collective_sequences_stay_correct() {
    for seed in [7u64, 99, 12345] {
        let n = 8u32;
        let ops = schedule(seed, n, 25);
        let mut lb = Loopback::new(engines(n, EngineConfig::default()));
        lb.shuffle_seed = Some(seed);
        lb.defer_percent = 20;
        let comm = lb.engines[0].world();
        // Post everything on every rank, staggered by occasional routing.
        let mut tracked: Vec<(usize, usize, ReqId)> = Vec::new(); // (op idx, rank, req)
        for (k, op) in ops.iter().enumerate() {
            for r in 0..n as usize {
                let req = match *op {
                    Op::Reduce { root, elems } => {
                        let data = f64s_to_bytes(&vec![(r + k) as f64; elems]);
                        lb.engines[r].ireduce(&comm, root, ReduceOp::Sum, Datatype::F64, &data)
                    }
                    Op::Bcast { root, elems } => {
                        let data = (r as u32 == root)
                            .then(|| Bytes::from(f64s_to_bytes(&vec![k as f64; elems])));
                        lb.engines[r].ibcast(&comm, root, data, elems * 8)
                    }
                    Op::Allreduce { elems } => {
                        let data = f64s_to_bytes(&vec![(r * 2 + k) as f64; elems]);
                        lb.engines[r].iallreduce(&comm, ReduceOp::Sum, Datatype::F64, &data)
                    }
                    Op::Allgather { elems } => {
                        let data = f64s_to_bytes(&vec![(r * 10 + k) as f64; elems]);
                        abr_mpr::engine::Engine::iallgather(&mut lb.engines[r], &comm, &data)
                    }
                    Op::Barrier => lb.engines[r].ibarrier(&comm),
                };
                tracked.push((k, r, req));
            }
            if k % 3 == 0 {
                lb.route_once();
                lb.progress_all();
            }
        }
        let all: Vec<(usize, ReqId)> = tracked.iter().map(|&(_, r, q)| (r, q)).collect();
        lb.run_until_complete(&all, 60_000);
        // Verify every data-bearing outcome.
        for (k, r, req) in tracked {
            let out = lb.engines[r].take_outcome(req);
            match (ops[k], out) {
                (Op::Reduce { root, elems }, Some(Outcome::Data(d))) => {
                    assert_eq!(r as u32, root, "only roots get reduce data");
                    let expect: f64 = (0..n as usize).map(|q| (q + k) as f64).sum();
                    assert_eq!(bytes_to_f64s(&d), vec![expect; elems], "seed={seed} op {k}");
                }
                (Op::Reduce { root, .. }, Some(Outcome::Done)) => {
                    assert_ne!(r as u32, root);
                }
                (Op::Bcast { elems, .. }, Some(Outcome::Data(d))) => {
                    assert_eq!(
                        bytes_to_f64s(&d),
                        vec![k as f64; elems],
                        "seed={seed} op {k}"
                    );
                }
                (Op::Allreduce { elems }, Some(Outcome::Data(d))) => {
                    let expect: f64 = (0..n as usize).map(|q| (q * 2 + k) as f64).sum();
                    assert_eq!(bytes_to_f64s(&d), vec![expect; elems], "seed={seed} op {k}");
                }
                (Op::Allgather { elems }, Some(Outcome::Data(d))) => {
                    let got = bytes_to_f64s(&d);
                    let expect: Vec<f64> = (0..n as usize)
                        .flat_map(|q| vec![(q * 10 + k) as f64; elems])
                        .collect();
                    assert_eq!(got, expect, "seed={seed} op {k}");
                }
                (Op::Barrier, Some(Outcome::Done)) => {}
                (op, out) => panic!("seed={seed} op {k} rank {r}: {op:?} -> {out:?}"),
            }
        }
        for e in &lb.engines {
            assert_eq!(
                e.live_requests(),
                0,
                "seed={seed}: rank {} leaked",
                e.rank()
            );
            assert!(e.memory().is_balanced());
        }
    }
}

#[test]
fn stress_with_large_messages_exercises_rendezvous_and_rs() {
    let n = 4u32;
    let cfg = EngineConfig {
        eager_limit: 1024,
        allreduce_rs_threshold: 512,
        ..EngineConfig::default()
    };
    let mut lb = Loopback::new(engines(n, cfg));
    lb.shuffle_seed = Some(42);
    let comm = lb.engines[0].world();
    let mut all = Vec::new();
    for round in 0..4 {
        for r in 0..n as usize {
            // 512 doubles = 4 KiB > eager limit -> rendezvous reduce path.
            let big = f64s_to_bytes(&vec![(r + round) as f64; 512]);
            all.push((
                r,
                lb.engines[r].ireduce(&comm, 0, ReduceOp::Sum, Datatype::F64, &big),
            ));
            // 64 doubles = 512 B >= threshold, power-of-two n -> RS path.
            let med = f64s_to_bytes(&vec![1.0; 64]);
            all.push((
                r,
                lb.engines[r].iallreduce(&comm, ReduceOp::Sum, Datatype::F64, &med),
            ));
        }
    }
    lb.run_until_complete(&all, 60_000);
    // Spot-check one of each per round.
    for round in 0..4usize {
        let (r0, red) = all[round * 2 * n as usize];
        assert_eq!(r0, 0);
        match lb.engines[0].take_outcome(red) {
            Some(Outcome::Data(d)) => {
                let expect: f64 = (0..n as usize).map(|q| (q + round) as f64).sum();
                assert!(
                    bytes_to_f64s(&d).iter().all(|&x| x == expect),
                    "round {round}"
                );
            }
            other => panic!("round {round}: {other:?}"),
        }
    }
    for e in &lb.engines {
        assert!(e.memory().is_balanced());
    }
    // Every non-root rank sent its 4KB contributions via rendezvous (the
    // root only receives in a reduce).
    for e in &lb.engines[1..] {
        assert!(
            e.stats().rndv_sent > 0,
            "rank {}: rendezvous path must be exercised",
            e.rank()
        );
    }
}
