//! Tests for the Rabenseifner (reduce-scatter + allgather) large-message
//! allreduce and its dispatch rules.

use abr_mpr::engine::{Engine, EngineConfig};
use abr_mpr::request::Outcome;
use abr_mpr::testutil::{engines, Loopback};
use abr_mpr::types::{bytes_to_f64s, f64s_to_bytes, Datatype};
use abr_mpr::ReduceOp;

fn world_with_threshold(n: u32, threshold: usize) -> Loopback<Engine> {
    let cfg = EngineConfig {
        allreduce_rs_threshold: threshold,
        ..EngineConfig::default()
    };
    Loopback::new(engines(n, cfg))
}

fn run_allreduce(lb: &mut Loopback<Engine>, elems: usize, op: ReduceOp) -> Vec<Vec<f64>> {
    let n = lb.engines.len();
    let comm = lb.engines[0].world();
    let reqs: Vec<_> = (0..n)
        .map(|r| {
            let data: Vec<f64> = (0..elems).map(|j| (r * 7 + j) as f64 * 0.5).collect();
            (
                r,
                lb.engines[r].iallreduce(&comm, op, Datatype::F64, &f64s_to_bytes(&data)),
            )
        })
        .collect();
    lb.run_until_complete(&reqs, 20_000);
    reqs.into_iter()
        .map(|(r, id)| match lb.engines[r].take_outcome(id) {
            Some(Outcome::Data(d)) => bytes_to_f64s(&d),
            other => panic!("rank {r}: {other:?}"),
        })
        .collect()
}

fn expected(n: usize, elems: usize, op: ReduceOp) -> Vec<f64> {
    (0..elems)
        .map(|j| {
            let col: Vec<f64> = (0..n).map(|r| (r * 7 + j) as f64 * 0.5).collect();
            match op {
                ReduceOp::Sum => col.iter().sum(),
                ReduceOp::Max => col.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
                ReduceOp::Min => col.iter().cloned().fold(f64::INFINITY, f64::min),
                _ => unreachable!(),
            }
        })
        .collect()
}

#[test]
fn rs_allreduce_matches_expected_sums() {
    for n in [2u32, 4, 8, 16, 32] {
        // Threshold 0 forces the RS path whenever legal.
        let mut lb = world_with_threshold(n, 0);
        let elems = 2 * n as usize; // divisible by n
        let results = run_allreduce(&mut lb, elems, ReduceOp::Sum);
        let expect = expected(n as usize, elems, ReduceOp::Sum);
        for (r, got) in results.into_iter().enumerate() {
            assert_eq!(got, expect, "n={n} rank={r}");
        }
    }
}

#[test]
fn rs_allreduce_min_max() {
    for op in [ReduceOp::Min, ReduceOp::Max] {
        let mut lb = world_with_threshold(8, 0);
        let results = run_allreduce(&mut lb, 16, op);
        let expect = expected(8, 16, op);
        for got in results {
            assert_eq!(got, expect, "{op:?}");
        }
    }
}

#[test]
fn rs_and_binomial_agree_bit_for_bit_on_integers() {
    // Integer payloads make tree-order-insensitivity exact.
    let n = 8u32;
    let elems = 64usize;
    let run = |threshold: usize| -> Vec<i32> {
        let mut lb = world_with_threshold(n, threshold);
        let comm = lb.engines[0].world();
        let reqs: Vec<_> = (0..n as usize)
            .map(|r| {
                let data: Vec<i32> = (0..elems).map(|j| (r * 31 + j) as i32).collect();
                (
                    r,
                    lb.engines[r].iallreduce(
                        &comm,
                        ReduceOp::Sum,
                        Datatype::I32,
                        &abr_mpr::types::i32s_to_bytes(&data),
                    ),
                )
            })
            .collect();
        lb.run_until_complete(&reqs, 20_000);
        match lb.engines[3].take_outcome(reqs[3].1) {
            Some(Outcome::Data(d)) => abr_mpr::types::bytes_to_i32s(&d),
            other => panic!("{other:?}"),
        }
    };
    let rs = run(0); // forces Rabenseifner
    let binomial = run(usize::MAX); // forces reduce+bcast
    assert_eq!(rs, binomial);
}

#[test]
fn non_power_of_two_sizes_fall_back() {
    for n in [3u32, 5, 6, 7, 12] {
        let mut lb = world_with_threshold(n, 0);
        let elems = 2 * n as usize;
        let results = run_allreduce(&mut lb, elems, ReduceOp::Sum);
        let expect = expected(n as usize, elems, ReduceOp::Sum);
        for got in results {
            assert_eq!(got, expect, "n={n}");
        }
    }
}

#[test]
fn ragged_element_counts_fall_back() {
    // 3 elements over 8 ranks cannot split on element boundaries; the
    // binomial path must be used and still give the right answer.
    let mut lb = world_with_threshold(8, 0);
    let results = run_allreduce(&mut lb, 3, ReduceOp::Sum);
    let expect = expected(8, 3, ReduceOp::Sum);
    for got in results {
        assert_eq!(got, expect);
    }
}

#[test]
fn small_messages_stay_on_the_binomial_path() {
    // Default threshold 2048 bytes: a 4-element message must not use RS.
    // (Indistinguishable by results; check via message counts: RS at n=4
    // sends 4 messages per rank, binomial far fewer for non-roots.)
    let mut lb = world_with_threshold(4, 2048);
    let _ = run_allreduce(&mut lb, 4, ReduceOp::Sum);
    // Leaf rank 3 under reduce+bcast: 1 reduce send + 1 bcast recv; under
    // RS it would send 2 exchanges in each of 2 phases.
    let sent = lb.engines[3].stats().eager_sent;
    assert!(
        sent <= 2,
        "rank 3 sent {sent} messages; RS path used for a small message?"
    );
}

#[test]
fn rs_interleaves_with_other_collectives() {
    let n = 8u32;
    let mut lb = world_with_threshold(n, 0);
    let comm = lb.engines[0].world();
    let mut all = Vec::new();
    for r in 0..n as usize {
        let big: Vec<f64> = (0..32).map(|j| (r + j) as f64).collect();
        all.push((
            r,
            lb.engines[r].iallreduce(&comm, ReduceOp::Sum, Datatype::F64, &f64s_to_bytes(&big)),
        ));
        all.push((r, lb.engines[r].ibarrier(&comm)));
        let small = f64s_to_bytes(&[r as f64]);
        all.push((
            r,
            lb.engines[r].ireduce(&comm, 0, ReduceOp::Sum, Datatype::F64, &small),
        ));
    }
    lb.run_until_complete(&all, 30_000);
    // Spot-check the plain reduce landed correctly despite RS traffic.
    let (_, red0) = all[2];
    match lb.engines[0].take_outcome(red0) {
        Some(Outcome::Data(d)) => {
            let expect: f64 = (0..n).map(f64::from).sum();
            assert_eq!(bytes_to_f64s(&d), vec![expect]);
        }
        other => panic!("{other:?}"),
    }
}
