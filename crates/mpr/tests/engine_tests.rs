//! Protocol tests for the baseline engine over the zero-latency loopback.

use abr_mpr::engine::{Engine, EngineConfig};
use abr_mpr::request::Outcome;
use abr_mpr::testutil::{engines, Loopback};
use abr_mpr::types::{bytes_to_f64s, f64s_to_bytes, Datatype, MprError, TagSel};
use abr_mpr::ReduceOp;
use bytes::Bytes;

fn world(n: u32) -> Loopback<Engine> {
    Loopback::new(engines(n, EngineConfig::default()))
}

#[test]
fn eager_send_recv_roundtrip() {
    let mut lb = world(2);
    let comm = lb.engines[0].world();
    let payload = Bytes::from(vec![1u8, 2, 3, 4]);
    let s = lb.engines[0].isend(&comm, 1, 7, payload.clone());
    let r = lb.engines[1].irecv(&comm, Some(0), TagSel::Is(7), 16);
    lb.run_until_complete(&[(0, s), (1, r)], 100);
    assert_eq!(lb.expect_data(1, r), payload);
    lb.expect_done(0, s);
}

#[test]
fn recv_posted_before_send_matches_directly() {
    let mut lb = world(2);
    let comm = lb.engines[0].world();
    let r = lb.engines[1].irecv(&comm, Some(0), TagSel::Is(3), 8);
    lb.run_to_quiescence(50);
    let s = lb.engines[0].isend(&comm, 1, 3, Bytes::from(vec![9u8; 8]));
    lb.run_until_complete(&[(0, s), (1, r)], 100);
    assert_eq!(lb.expect_data(1, r).as_ref(), &[9u8; 8]);
    // Message found a posted receive: exactly one receive-side copy.
    assert_eq!(lb.engines[1].stats().posted_matched, 1);
    assert_eq!(lb.engines[1].stats().unexpected_enqueued, 0);
}

#[test]
fn unexpected_message_takes_two_copies() {
    let mut lb = world(2);
    let comm = lb.engines[0].world();
    let s = lb.engines[0].isend(&comm, 1, 3, Bytes::from(vec![5u8; 32]));
    // Let it land before any receive is posted.
    lb.run_to_quiescence(50);
    lb.engines[1].progress();
    assert_eq!(lb.engines[1].stats().unexpected_enqueued, 1);
    let copies_before = lb.engines[1].stats().copies;
    let r = lb.engines[1].irecv(&comm, Some(0), TagSel::Is(3), 32);
    lb.run_until_complete(&[(0, s), (1, r)], 100);
    assert_eq!(lb.expect_data(1, r).as_ref(), &[5u8; 32]);
    assert_eq!(lb.engines[1].stats().unexpected_matched, 1);
    // Second copy happened when the receive matched the parked message.
    assert_eq!(lb.engines[1].stats().copies, copies_before + 1);
}

#[test]
fn wildcard_source_and_tag() {
    let mut lb = world(3);
    let comm = lb.engines[0].world();
    let s1 = lb.engines[1].isend(&comm, 0, 11, Bytes::from(vec![1u8]));
    let s2 = lb.engines[2].isend(&comm, 0, 22, Bytes::from(vec![2u8]));
    lb.run_to_quiescence(50);
    let ra = lb.engines[0].irecv(&comm, None, TagSel::Any, 8);
    let rb = lb.engines[0].irecv(&comm, None, TagSel::Any, 8);
    lb.run_until_complete(&[(1, s1), (2, s2), (0, ra), (0, rb)], 100);
    let mut got: Vec<u8> = vec![lb.expect_data(0, ra)[0], lb.expect_data(0, rb)[0]];
    got.sort_unstable();
    assert_eq!(got, vec![1, 2]);
}

#[test]
fn truncation_error_on_oversized_eager() {
    let mut lb = world(2);
    let comm = lb.engines[0].world();
    let _s = lb.engines[0].isend(&comm, 1, 1, Bytes::from(vec![0u8; 64]));
    let r = lb.engines[1].irecv(&comm, Some(0), TagSel::Is(1), 16);
    lb.run_until_complete(&[(1, r)], 100);
    match lb.engines[1].take_outcome(r) {
        Some(Outcome::Failed(MprError::Truncation { received, capacity })) => {
            assert_eq!((received, capacity), (64, 16));
        }
        other => panic!("expected truncation, got {other:?}"),
    }
}

#[test]
fn rendezvous_transfer_for_large_messages() {
    let mut lb = world(2);
    let comm = lb.engines[0].world();
    let big = vec![0xabu8; 64 * 1024];
    let s = lb.engines[0].isend(&comm, 1, 5, Bytes::from(big.clone()));
    let r = lb.engines[1].irecv(&comm, Some(0), TagSel::Is(5), big.len());
    lb.run_until_complete(&[(0, s), (1, r)], 200);
    assert_eq!(lb.expect_data(1, r).as_ref(), &big[..]);
    assert_eq!(lb.engines[0].stats().rndv_sent, 1);
    assert_eq!(lb.engines[0].stats().eager_sent, 0);
    // Rendezvous DMAs between pinned buffers: no payload copies anywhere.
    assert_eq!(lb.engines[0].stats().copy_bytes, 0);
    assert_eq!(lb.engines[1].stats().copy_bytes, 0);
    // Pins balanced on both sides.
    assert!(lb.engines[0].memory().is_balanced());
    assert!(lb.engines[1].memory().is_balanced());
}

#[test]
fn rendezvous_rts_arriving_before_recv_is_parked() {
    let mut lb = world(2);
    let comm = lb.engines[0].world();
    let big = vec![7u8; 20 * 1024];
    let s = lb.engines[0].isend(&comm, 1, 5, Bytes::from(big.clone()));
    lb.run_to_quiescence(50); // RTS lands unexpected
    assert_eq!(lb.engines[1].stats().unexpected_enqueued, 1);
    let r = lb.engines[1].irecv(&comm, Some(0), TagSel::Is(5), big.len());
    lb.run_until_complete(&[(0, s), (1, r)], 200);
    assert_eq!(lb.expect_data(1, r).len(), big.len());
    assert!(lb.engines[1].memory().is_balanced());
}

#[test]
fn rendezvous_truncation_detected_at_rts() {
    let mut lb = world(2);
    let comm = lb.engines[0].world();
    let _s = lb.engines[0].isend(&comm, 1, 5, Bytes::from(vec![0u8; 32 * 1024]));
    let r = lb.engines[1].irecv(&comm, Some(0), TagSel::Is(5), 1024);
    lb.run_until_complete(&[(1, r)], 200);
    match lb.engines[1].take_outcome(r) {
        Some(Outcome::Failed(MprError::Truncation { .. })) => {}
        other => panic!("expected truncation, got {other:?}"),
    }
}

fn run_reduce(n: u32, root: u32, op: ReduceOp, inputs: &[Vec<f64>]) -> Vec<f64> {
    let mut lb = world(n);
    let comm = lb.engines[0].world();
    let reqs: Vec<_> = (0..n as usize)
        .map(|r| {
            let data = f64s_to_bytes(&inputs[r]);
            (
                r,
                lb.engines[r].ireduce(&comm, root, op, Datatype::F64, &data),
            )
        })
        .collect();
    lb.run_until_complete(&reqs, 2000);
    let mut result = Vec::new();
    for (r, id) in reqs {
        if r == root as usize {
            result = bytes_to_f64s(&lb.expect_data(r, id));
        } else {
            lb.expect_done(r, id);
        }
    }
    result
}

#[test]
fn reduce_sum_two_ranks() {
    let res = run_reduce(2, 0, ReduceOp::Sum, &[vec![1.0, 2.0], vec![10.0, 20.0]]);
    assert_eq!(res, vec![11.0, 22.0]);
}

#[test]
fn reduce_sum_various_sizes_and_roots() {
    for n in [1u32, 2, 3, 4, 5, 7, 8, 13, 16, 32] {
        for root in [0, n - 1, n / 2] {
            let inputs: Vec<Vec<f64>> = (0..n).map(|r| vec![r as f64, 1.0]).collect();
            let res = run_reduce(n, root, ReduceOp::Sum, &inputs);
            let expect0: f64 = (0..n).map(|r| r as f64).sum();
            assert_eq!(res, vec![expect0, n as f64], "n={n} root={root}");
        }
    }
}

#[test]
fn reduce_min_max() {
    let inputs: Vec<Vec<f64>> = (0..8).map(|r| vec![(r as f64) - 3.5]).collect();
    assert_eq!(run_reduce(8, 2, ReduceOp::Min, &inputs), vec![-3.5]);
    assert_eq!(run_reduce(8, 2, ReduceOp::Max, &inputs), vec![3.5]);
}

#[test]
fn reduce_single_rank_completes_immediately() {
    let res = run_reduce(1, 0, ReduceOp::Sum, &[vec![42.0]]);
    assert_eq!(res, vec![42.0]);
}

#[test]
fn reduce_large_message_uses_rendezvous() {
    let n = 4u32;
    let elems = 4096; // 32 KiB > 16 KiB eager limit
    let mut lb = world(n);
    let comm = lb.engines[0].world();
    let reqs: Vec<_> = (0..n as usize)
        .map(|r| {
            let data = f64s_to_bytes(&vec![1.0; elems]);
            (
                r,
                lb.engines[r].ireduce(&comm, 0, ReduceOp::Sum, Datatype::F64, &data),
            )
        })
        .collect();
    lb.run_until_complete(&reqs, 5000);
    let res = bytes_to_f64s(&lb.expect_data(0, reqs[0].1));
    assert!(res.iter().all(|&x| x == n as f64));
    assert!(lb.engines.iter().any(|e| e.stats().rndv_sent > 0));
    for e in &lb.engines {
        assert!(e.memory().is_balanced());
    }
}

#[test]
fn reduce_large_message_with_early_rts() {
    // A child's rendezvous RTS lands *before* the parent posts its reduce:
    // the parked RTS (whose header reuses the coll_seq field as a transfer
    // id) must still match the collective-internal receive cleanly.
    let n = 4u32;
    let elems = 4096; // 32 KiB > eager limit
    let mut lb = world(n);
    let comm = lb.engines[0].world();
    let mut reqs = Vec::new();
    // Leaves (1, 3) and internal node 2 post first; their sends' RTS reach
    // ranks 0 and 2 early.
    for r in [1usize, 3, 2] {
        let data = f64s_to_bytes(&vec![r as f64; elems]);
        reqs.push((
            r,
            lb.engines[r].ireduce(&comm, 0, ReduceOp::Sum, Datatype::F64, &data),
        ));
        lb.run_to_quiescence(100);
    }
    let data = f64s_to_bytes(&vec![0.0; elems]);
    reqs.push((
        0,
        lb.engines[0].ireduce(&comm, 0, ReduceOp::Sum, Datatype::F64, &data),
    ));
    lb.run_until_complete(&reqs, 10_000);
    let res = bytes_to_f64s(&lb.expect_data(0, reqs[3].1));
    assert!(res.iter().all(|&x| x == 6.0), "sum of ranks 0..4");
    for e in &lb.engines {
        assert!(e.memory().is_balanced());
    }
}

#[test]
fn barrier_completes_everywhere() {
    for n in [1u32, 2, 3, 5, 8, 16, 31] {
        let mut lb = world(n);
        let comm = lb.engines[0].world();
        let reqs: Vec<_> = (0..n as usize)
            .map(|r| (r, lb.engines[r].ibarrier(&comm)))
            .collect();
        lb.run_until_complete(&reqs, 2000);
        for (r, id) in reqs {
            lb.expect_done(r, id);
        }
    }
}

#[test]
fn bcast_distributes_root_data() {
    for n in [1u32, 2, 6, 8, 17] {
        for root in [0, n - 1] {
            let mut lb = world(n);
            let comm = lb.engines[0].world();
            let payload = Bytes::from(f64s_to_bytes(&[3.25, -1.0, 0.5]));
            let reqs: Vec<_> = (0..n as usize)
                .map(|r| {
                    let data = (r as u32 == root).then(|| payload.clone());
                    (r, lb.engines[r].ibcast(&comm, root, data, payload.len()))
                })
                .collect();
            lb.run_until_complete(&reqs, 2000);
            for (r, id) in reqs {
                assert_eq!(lb.expect_data(r, id), payload, "n={n} root={root} rank={r}");
            }
        }
    }
}

#[test]
fn allreduce_gives_everyone_the_sum() {
    for n in [1u32, 2, 4, 9, 16] {
        let mut lb = world(n);
        let comm = lb.engines[0].world();
        let reqs: Vec<_> = (0..n as usize)
            .map(|r| {
                let data = f64s_to_bytes(&[r as f64, 2.0]);
                (
                    r,
                    lb.engines[r].iallreduce(&comm, ReduceOp::Sum, Datatype::F64, &data),
                )
            })
            .collect();
        lb.run_until_complete(&reqs, 4000);
        let expect0: f64 = (0..n).map(|r| r as f64).sum();
        for (r, id) in reqs {
            let res = bytes_to_f64s(&lb.expect_data(r, id));
            assert_eq!(res, vec![expect0, 2.0 * n as f64], "n={n} rank={r}");
        }
    }
}

#[test]
fn back_to_back_reduces_keep_instances_straight() {
    let n = 8u32;
    let mut lb = world(n);
    let comm = lb.engines[0].world();
    let rounds = 5;
    let mut reqs_per_round = Vec::new();
    // Post all rounds at once: instances overlap arbitrarily.
    for k in 0..rounds {
        let reqs: Vec<_> = (0..n as usize)
            .map(|r| {
                let data = f64s_to_bytes(&[(r as f64) * (k as f64 + 1.0)]);
                (
                    r,
                    lb.engines[r].ireduce(&comm, 0, ReduceOp::Sum, Datatype::F64, &data),
                )
            })
            .collect();
        reqs_per_round.push(reqs);
    }
    let all: Vec<_> = reqs_per_round.iter().flatten().copied().collect();
    lb.run_until_complete(&all, 5000);
    let base: f64 = (0..n).map(|r| r as f64).sum();
    for (k, reqs) in reqs_per_round.into_iter().enumerate() {
        let res = bytes_to_f64s(&lb.expect_data(0, reqs[0].1));
        assert_eq!(res, vec![base * (k as f64 + 1.0)], "round {k}");
    }
}

#[test]
fn integer_allreduce_band() {
    let n = 4u32;
    let mut lb = world(n);
    let comm = lb.engines[0].world();
    let inputs = [0b1111i32, 0b1110, 0b1101, 0b1011];
    let reqs: Vec<_> = (0..n as usize)
        .map(|r| {
            let data = abr_mpr::types::i32s_to_bytes(&[inputs[r]]);
            (
                r,
                lb.engines[r].iallreduce(&comm, ReduceOp::BAnd, Datatype::I32, &data),
            )
        })
        .collect();
    lb.run_until_complete(&reqs, 2000);
    for (r, id) in reqs {
        let res = abr_mpr::types::bytes_to_i32s(&lb.expect_data(r, id));
        assert_eq!(res, vec![0b1000], "rank {r}");
    }
}

#[test]
fn reduce_charges_cpu_work() {
    let mut lb = world(4);
    let comm = lb.engines[0].world();
    let reqs: Vec<_> = (0..4usize)
        .map(|r| {
            let data = f64s_to_bytes(&[1.0; 32]);
            (
                r,
                lb.engines[r].ireduce(&comm, 0, ReduceOp::Sum, Datatype::F64, &data),
            )
        })
        .collect();
    lb.run_until_complete(&reqs, 1000);
    for e in lb.engines.iter_mut() {
        let c = e.take_charges();
        assert!(!c.is_zero(), "rank {} charged nothing", e.rank());
        assert!(!c.polling.is_zero(), "polling must be charged");
        assert!(!c.protocol.is_zero(), "protocol work must be charged");
    }
}

#[test]
fn no_request_leaks_after_collectives() {
    let n = 8u32;
    let mut lb = world(n);
    let comm = lb.engines[0].world();
    let mut all = Vec::new();
    for _ in 0..3 {
        for r in 0..n as usize {
            let data = f64s_to_bytes(&[1.0]);
            all.push((
                r,
                lb.engines[r].ireduce(&comm, 0, ReduceOp::Sum, Datatype::F64, &data),
            ));
        }
        for r in 0..n as usize {
            all.push((r, lb.engines[r].ibarrier(&comm)));
        }
    }
    lb.run_until_complete(&all, 5000);
    for (r, id) in all {
        let _ = lb.engines[r].take_outcome(id);
    }
    for e in &lb.engines {
        assert_eq!(e.live_requests(), 0, "rank {} leaked requests", e.rank());
    }
}

#[test]
fn distinct_communicators_do_not_cross_match() {
    let mut lb = world(2);
    let world_comm = lb.engines[0].world();
    let other: Vec<_> = lb.engines.iter_mut().map(|e| e.create_comm()).collect();
    assert_eq!(other[0], other[1]);
    // Send on the derived communicator, receive posted on world: no match.
    let s = lb.engines[0].isend(&other[0], 1, 4, Bytes::from(vec![1u8]));
    let r_world = lb.engines[1].irecv(&world_comm, Some(0), TagSel::Is(4), 8);
    lb.run_to_quiescence(50);
    assert!(!lb.engines[1].test(r_world), "cross-communicator match!");
    // A receive on the right communicator picks it up.
    let r_other = lb.engines[1].irecv(&other[1], Some(0), TagSel::Is(4), 8);
    lb.run_until_complete(&[(0, s), (1, r_other)], 100);
    assert_eq!(lb.expect_data(1, r_other).as_ref(), &[1u8]);
}
