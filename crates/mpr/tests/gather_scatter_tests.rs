//! Tests for the gather / scatter / allgather collectives.

use abr_mpr::engine::{Engine, EngineConfig};
use abr_mpr::request::Outcome;
use abr_mpr::testutil::{engines, Loopback};
use abr_mpr::types::{bytes_to_f64s, f64s_to_bytes};

fn world(n: u32) -> Loopback<Engine> {
    Loopback::new(engines(n, EngineConfig::default()))
}

#[test]
fn gather_assembles_blocks_in_rank_order() {
    for n in [1u32, 2, 3, 5, 8, 16] {
        for root in [0, n - 1] {
            let mut lb = world(n);
            let comm = lb.engines[0].world();
            let reqs: Vec<_> = (0..n as usize)
                .map(|r| {
                    let data = f64s_to_bytes(&[r as f64, -(r as f64)]);
                    (r, lb.engines[r].igather(&comm, root, &data))
                })
                .collect();
            lb.run_until_complete(&reqs, 3000);
            for (r, id) in reqs {
                match lb.engines[r].take_outcome(id) {
                    Some(Outcome::Data(d)) => {
                        assert_eq!(r as u32, root, "only the root gets data");
                        let vals = bytes_to_f64s(&d);
                        let expect: Vec<f64> =
                            (0..n).flat_map(|k| [k as f64, -(k as f64)]).collect();
                        assert_eq!(vals, expect, "n={n} root={root}");
                    }
                    Some(Outcome::Done) => assert_ne!(r as u32, root),
                    other => panic!("n={n} root={root} rank={r}: {other:?}"),
                }
            }
        }
    }
}

#[test]
fn scatter_distributes_blocks() {
    for n in [1u32, 2, 4, 7, 8] {
        for root in [0, n / 2] {
            let mut lb = world(n);
            let comm = lb.engines[0].world();
            let full: Vec<f64> = (0..n).map(|k| 100.0 + k as f64).collect();
            let buf = f64s_to_bytes(&full);
            let reqs: Vec<_> = (0..n as usize)
                .map(|r| {
                    let data = (r as u32 == root).then_some(&buf[..]);
                    (r, lb.engines[r].iscatter(&comm, root, data, 8))
                })
                .collect();
            lb.run_until_complete(&reqs, 3000);
            for (r, id) in reqs {
                match lb.engines[r].take_outcome(id) {
                    Some(Outcome::Data(d)) => {
                        assert_eq!(
                            bytes_to_f64s(&d),
                            vec![100.0 + r as f64],
                            "n={n} root={root}"
                        )
                    }
                    other => panic!("n={n} root={root} rank={r}: {other:?}"),
                }
            }
        }
    }
}

#[test]
fn allgather_gives_everyone_everything() {
    for n in [1u32, 2, 4, 6, 16] {
        let mut lb = world(n);
        let comm = lb.engines[0].world();
        let reqs: Vec<_> = (0..n as usize)
            .map(|r| {
                let data = f64s_to_bytes(&[(r * r) as f64]);
                (r, lb.engines[r].iallgather(&comm, &data))
            })
            .collect();
        lb.run_until_complete(&reqs, 4000);
        let expect: Vec<f64> = (0..n).map(|k| (k * k) as f64).collect();
        for (r, id) in reqs {
            match lb.engines[r].take_outcome(id) {
                Some(Outcome::Data(d)) => assert_eq!(bytes_to_f64s(&d), expect, "n={n} rank={r}"),
                other => panic!("n={n} rank={r}: {other:?}"),
            }
        }
    }
}

#[test]
fn scatter_then_gather_roundtrips() {
    let n = 8u32;
    let mut lb = world(n);
    let comm = lb.engines[0].world();
    let original: Vec<f64> = (0..n).map(|k| k as f64 * 3.25).collect();
    let buf = f64s_to_bytes(&original);
    // Scatter the buffer, then gather it back; it must be unchanged.
    let scatter: Vec<_> = (0..n as usize)
        .map(|r| {
            let data = (r == 0).then_some(&buf[..]);
            (r, lb.engines[r].iscatter(&comm, 0, data, 8))
        })
        .collect();
    lb.run_until_complete(&scatter, 3000);
    let mut chunks = Vec::new();
    for (r, id) in scatter {
        match lb.engines[r].take_outcome(id) {
            Some(Outcome::Data(d)) => chunks.push((r, d)),
            other => panic!("rank {r}: {other:?}"),
        }
    }
    let gather: Vec<_> = chunks
        .into_iter()
        .map(|(r, chunk)| (r, lb.engines[r].igather(&comm, 0, &chunk)))
        .collect();
    lb.run_until_complete(&gather, 3000);
    match lb.engines[0].take_outcome(gather[0].1) {
        Some(Outcome::Data(d)) => assert_eq!(bytes_to_f64s(&d), original),
        other => panic!("{other:?}"),
    }
}

#[test]
fn gather_with_early_and_late_senders() {
    let n = 6u32;
    let mut lb = world(n);
    let comm = lb.engines[0].world();
    // Half the senders go before the root posts, half after.
    let mut reqs = Vec::new();
    for r in [1usize, 2] {
        let data = f64s_to_bytes(&[r as f64]);
        reqs.push((r, lb.engines[r].igather(&comm, 0, &data)));
    }
    lb.run_to_quiescence(100);
    let root_req = {
        let data = f64s_to_bytes(&[0.0]);
        lb.engines[0].igather(&comm, 0, &data)
    };
    reqs.push((0, root_req));
    for r in [3usize, 4, 5] {
        let data = f64s_to_bytes(&[r as f64]);
        reqs.push((r, lb.engines[r].igather(&comm, 0, &data)));
    }
    lb.run_until_complete(&reqs, 3000);
    match lb.engines[0].take_outcome(root_req) {
        Some(Outcome::Data(d)) => {
            assert_eq!(bytes_to_f64s(&d), vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0])
        }
        other => panic!("{other:?}"),
    }
}

#[test]
#[should_panic(expected = "size*block")]
fn scatter_rejects_misshapen_buffer() {
    let mut lb = world(4);
    let comm = lb.engines[0].world();
    let buf = vec![0u8; 17]; // not 4 * block for any block=8
    let _ = lb.engines[0].iscatter(&comm, 0, Some(&buf), 8);
}
