//! The machine cost model.
//!
//! Every CPU or transfer cost in the stack comes from this one struct so the
//! benches can do sensitivity ablations (e.g. "how does the factor of
//! improvement move with signal cost?"). Base constants are calibrated for
//! the paper's 1-GHz Pentium-III class; per-node scaling (CPU speed, PCI
//! width, LANai clock) is applied by [`crate::nic`].
//!
//! Rough 2003-era anchors: GM one-way small-message latency ~8-10 µs,
//! host-side eager send overhead ~1 µs, memcpy bandwidth ~400 MB/s on PIII,
//! Unix signal delivery a few µs, page pinning tens of µs (it is a syscall —
//! the very overhead GM's eager mode exists to avoid).

use abr_des::SimDuration;
use serde::{Deserialize, Serialize};

/// All tunable cost constants, in microseconds (per-byte costs in µs/byte).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// One pass through the MPICH progress engine (queue check, bookkeeping)
    /// even when nothing arrives. While blocked in `MPI_Recv`/`MPI_Reduce`
    /// the host burns CPU continuously; this is the granularity of that burn.
    pub poll_iteration_us: f64,
    /// Matching one incoming message against a receive queue.
    pub match_us: f64,
    /// Fixed cost of one memory copy (call overhead, cache setup).
    pub copy_base_us: f64,
    /// Per-byte memory copy cost (µs/byte). 0.0025 µs/B = 400 MB/s.
    pub copy_per_byte_us: f64,
    /// Applying a reduction operator, per element (load+op+store).
    pub reduce_op_per_elem_us: f64,
    /// Host-side cost to initiate an eager/collective send (descriptor setup;
    /// the copy into the pre-pinned bounce buffer is charged separately).
    pub eager_send_host_us: f64,
    /// Host-side cost to initiate a rendezvous control packet (RTS/CTS).
    pub rndv_control_host_us: f64,
    /// Pinning (registering) memory for DMA — a syscall.
    pub pin_us: f64,
    /// Per-byte pinning cost (page-table walking), µs/byte.
    pub pin_per_byte_us: f64,
    /// Unpinning (deregistering) memory.
    pub unpin_us: f64,
    /// LANai processing per packet (DMA setup, route lookup) at the 200-MHz
    /// LANai 9.2 clock; slower LANai revisions scale this up.
    pub nic_per_packet_us: f64,
    /// Switch traversal (cut-through crossbar) plus cable propagation.
    pub switch_us: f64,
    /// Per-byte serialization on the wire, µs/byte. 0.004 µs/B = 2 Gb/s.
    pub wire_per_byte_us: f64,
    /// PCI per-byte cost at 66 MHz / 64-bit; narrower buses scale this up.
    pub pci_per_byte_us: f64,
    /// Kernel-to-user signal delivery (the interrupt path the paper pays for
    /// late messages).
    pub signal_delivery_us: f64,
    /// Entering/leaving the signal handler on the host.
    pub signal_handler_entry_us: f64,
    /// Enabling or disabling NIC signal generation via the GM library call
    /// the paper added.
    pub signal_toggle_us: f64,
    /// Enqueue or dequeue of an application-bypass reduce descriptor.
    pub ab_descriptor_us: f64,
    /// Probing one descriptor-queue entry while matching a late message.
    pub ab_descriptor_probe_us: f64,
    /// NIC-processor cost to match one incoming collective packet against
    /// the NIC-resident descriptor table (NIC-offload extension; LANai-200
    /// baseline, scaled up for slower revisions by the driver).
    pub nic_match_us: f64,
    /// NIC-processor cost to apply the reduction operator, per element —
    /// the LANai is roughly an order of magnitude slower per element than
    /// the host, the crux of refs. \[9\]/\[11\]'s "is it beneficial?" question.
    pub nic_op_per_elem_us: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            poll_iteration_us: 0.25,
            match_us: 0.2,
            copy_base_us: 0.25,
            copy_per_byte_us: 0.002,
            reduce_op_per_elem_us: 0.04,
            eager_send_host_us: 1.2,
            rndv_control_host_us: 0.6,
            pin_us: 18.0,
            pin_per_byte_us: 0.0004,
            unpin_us: 9.0,
            nic_per_packet_us: 1.5,
            switch_us: 0.6,
            wire_per_byte_us: 0.004,
            pci_per_byte_us: 0.0019,
            signal_delivery_us: 6.0,
            signal_handler_entry_us: 1.5,
            signal_toggle_us: 0.2,
            ab_descriptor_us: 0.3,
            ab_descriptor_probe_us: 0.1,
            nic_match_us: 0.5,
            nic_op_per_elem_us: 0.35,
        }
    }
}

impl CostModel {
    /// Cost of one memory copy of `bytes` bytes.
    pub fn copy(&self, bytes: usize) -> SimDuration {
        SimDuration::from_us_f64(self.copy_base_us + self.copy_per_byte_us * bytes as f64)
    }

    /// Cost of applying a reduction operator over `elems` elements.
    pub fn reduce_op(&self, elems: usize) -> SimDuration {
        SimDuration::from_us_f64(self.reduce_op_per_elem_us * elems as f64)
    }

    /// One progress-engine poll iteration.
    pub fn poll(&self) -> SimDuration {
        SimDuration::from_us_f64(self.poll_iteration_us)
    }

    /// Matching one message against a queue.
    pub fn matching(&self) -> SimDuration {
        SimDuration::from_us_f64(self.match_us)
    }

    /// Host cost to initiate an eager-mode send (excluding the bounce copy).
    pub fn eager_send_host(&self) -> SimDuration {
        SimDuration::from_us_f64(self.eager_send_host_us)
    }

    /// Host cost to initiate a rendezvous control packet.
    pub fn rndv_control_host(&self) -> SimDuration {
        SimDuration::from_us_f64(self.rndv_control_host_us)
    }

    /// Pinning `bytes` bytes for DMA.
    pub fn pin(&self, bytes: usize) -> SimDuration {
        SimDuration::from_us_f64(self.pin_us + self.pin_per_byte_us * bytes as f64)
    }

    /// Unpinning a region.
    pub fn unpin(&self) -> SimDuration {
        SimDuration::from_us_f64(self.unpin_us)
    }

    /// Full host-side cost of taking one NIC signal (delivery + handler
    /// entry/exit). The asynchronous work done *inside* the handler is
    /// charged separately by the protocol code.
    pub fn signal_cost(&self) -> SimDuration {
        SimDuration::from_us_f64(self.signal_delivery_us + self.signal_handler_entry_us)
    }

    /// Cost of a signal that is delivered but then *ignored* because
    /// progress is already underway (Fig. 4). The kernel-to-user delivery
    /// is paid either way; only the handler body is skipped — the reason
    /// the paper still sees a latency penalty while nodes poll inside
    /// other MPI calls with signals enabled.
    pub fn signal_ignored_cost(&self) -> SimDuration {
        SimDuration::from_us_f64(self.signal_delivery_us)
    }

    /// Toggling NIC signal generation on or off.
    pub fn signal_toggle(&self) -> SimDuration {
        SimDuration::from_us_f64(self.signal_toggle_us)
    }

    /// Descriptor enqueue/dequeue.
    pub fn descriptor(&self) -> SimDuration {
        SimDuration::from_us_f64(self.ab_descriptor_us)
    }

    /// Probing `entries` descriptor-queue entries.
    pub fn descriptor_probe(&self, entries: usize) -> SimDuration {
        SimDuration::from_us_f64(self.ab_descriptor_probe_us * entries.max(1) as f64)
    }

    /// NIC-side matching of one collective packet (NIC-offload extension).
    pub fn nic_match(&self) -> SimDuration {
        SimDuration::from_us_f64(self.nic_match_us)
    }

    /// NIC-side reduction over `elems` elements.
    pub fn nic_reduce_op(&self, elems: usize) -> SimDuration {
        SimDuration::from_us_f64(self.nic_op_per_elem_us * elems as f64)
    }

    /// Optimal segment size (bytes) for pipelining a `total_bytes` message
    /// down a `depth`-deep reduction tree, per Lowery & Langou's greedy
    /// pipelining bound (PAPERS.md): for a `p`-stage pipeline with
    /// per-segment startup `alpha` and per-byte cost `beta`, total time
    /// `(m/s + p - 1)(alpha + s*beta)` is minimized at
    /// `s* = sqrt(alpha * m / ((p - 1) * beta))`.
    ///
    /// `alpha` is this model's per-packet host+NIC+switch startup and
    /// `beta` its per-byte wire + 2x PCI + copy cost. The result is
    /// clamped to `[elem_bytes, eager_limit]` (a segment must hold at
    /// least one element, and must stay on the eager path the bypass
    /// descriptors require) and rounded down to an element multiple, so
    /// every rank computes the identical size from shared configuration.
    pub fn optimal_segment_bytes(
        &self,
        total_bytes: usize,
        depth: u32,
        elem_bytes: usize,
        eager_limit: usize,
    ) -> usize {
        let alpha = self.eager_send_host_us + self.nic_per_packet_us + self.switch_us;
        let beta = self.wire_per_byte_us + 2.0 * self.pci_per_byte_us + self.copy_per_byte_us;
        let p = f64::from(depth.max(2));
        let s = (alpha * total_bytes as f64 / ((p - 1.0) * beta)).sqrt();
        let elem = elem_bytes.max(1);
        let clamped = (s as usize).clamp(elem, eager_limit.max(elem));
        (clamped / elem).max(1) * elem
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copy_cost_scales_with_length() {
        let c = CostModel::default();
        let small = c.copy(8);
        let big = c.copy(1024);
        assert!(big > small);
        // 1 KiB at 0.002us/B = 2.048us + base
        assert!((big.as_us_f64() - (0.25 + 2.048)).abs() < 1e-9);
    }

    #[test]
    fn zero_byte_copy_still_costs_base() {
        let c = CostModel::default();
        assert_eq!(c.copy(0).as_us_f64(), c.copy_base_us);
    }

    #[test]
    fn reduce_op_linear_in_elements() {
        let c = CostModel::default();
        assert_eq!(c.reduce_op(0), SimDuration::ZERO);
        let four = c.reduce_op(4);
        let eight = c.reduce_op(8);
        assert_eq!(eight.as_nanos(), 2 * four.as_nanos());
    }

    #[test]
    fn pinning_dwarfs_eager_overhead_for_small_messages() {
        // The reason GM (and the paper) use eager mode for small messages.
        let c = CostModel::default();
        let eager_small = c.eager_send_host() + c.copy(32);
        let rndv_small = c.pin(32) + c.unpin();
        assert!(rndv_small > eager_small * 5);
    }

    #[test]
    fn signal_cost_is_several_microseconds() {
        let c = CostModel::default();
        let s = c.signal_cost().as_us_f64();
        assert!(
            (2.0..20.0).contains(&s),
            "signal cost {s}us out of plausible range"
        );
    }

    #[test]
    fn descriptor_probe_charges_at_least_one_entry() {
        let c = CostModel::default();
        assert_eq!(c.descriptor_probe(0), c.descriptor_probe(1));
        assert!(c.descriptor_probe(10) > c.descriptor_probe(1));
    }

    #[test]
    fn optimal_segment_size_tracks_the_pipelining_bound() {
        let c = CostModel::default();
        let eager = 16 * 1024;
        // 64 KiB message, depth-4 tree, f64 elements: alpha = 3.3,
        // beta = 0.0098, s* = sqrt(3.3 * 65536 / (3 * 0.0098)) ~= 2712 ->
        // rounded down to an 8-byte multiple.
        let s = c.optimal_segment_bytes(65_536, 4, 8, eager);
        assert_eq!(s, 2712);
        // Bigger messages and shallower trees both want bigger segments.
        assert!(c.optimal_segment_bytes(1 << 22, 4, 8, eager) > s);
        assert!(c.optimal_segment_bytes(65_536, 2, 8, eager) > s);
        // Never below one element, never above the eager limit, always an
        // element multiple.
        assert_eq!(c.optimal_segment_bytes(16, 64, 8, eager), 8);
        assert_eq!(c.optimal_segment_bytes(1 << 30, 2, 8, eager), eager);
        assert_eq!(c.optimal_segment_bytes(1 << 20, 3, 24, eager) % 24, 0);
    }

    #[test]
    fn default_model_is_self_consistent() {
        let c = CostModel::default();
        // Polling for the duration of one signal is cheaper than a signal —
        // but polling for a full 1000us skew is far more expensive. This is
        // the trade-off the whole paper rests on.
        let long_wait_polls = SimDuration::from_us(1000);
        assert!(c.signal_cost() < long_wait_polls);
        assert!(c.poll() < c.signal_cost());
    }
}
