//! Node hardware classes and the network delivery-time model.
//!
//! The paper's testbed (§VI) mixes two node flavours behind one 32-port
//! Myrinet-2000 switch:
//!
//! * 16 × quad-SMP 700-MHz Pentium-III, 66-MHz/64-bit PCI, LANai 9.1,
//! * 16 × dual-SMP 1-GHz Pentium-III, 33-MHz/32-bit PCI, LANai 9.1
//!   (four of them LANai 9.2 at 200 MHz).
//!
//! Only one processor per node is used, so the SMP widths are irrelevant;
//! what matters is CPU clock (scales protocol CPU costs), PCI bandwidth and
//! LANai clock (scale transfer segments). [`Network`] turns a packet plus
//! the two endpoints' hardware into a delivery delay, and enforces the
//! per-(src,dst) FIFO delivery order that GM guarantees.

use crate::cost::CostModel;
use crate::packet::{NodeId, Packet, PacketHeader, PacketKind};
use abr_des::{FxHashMap, SimDuration, SimTime};
use abr_trace::{TraceEvent, TraceHandle};
use bytes::Bytes;
use serde::{Deserialize, Serialize};

/// PCI bus class of a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PciClass {
    /// 66 MHz / 64-bit — the 700-MHz nodes' wide bus (~528 MB/s burst).
    Mhz66Bit64,
    /// 33 MHz / 32-bit — the 1-GHz nodes' narrow bus (~132 MB/s burst).
    Mhz33Bit32,
}

impl PciClass {
    /// Multiplier on the base (66 MHz/64-bit) per-byte PCI cost.
    pub fn per_byte_scale(self) -> f64 {
        match self {
            PciClass::Mhz66Bit64 => 1.0,
            PciClass::Mhz33Bit32 => 4.0, // half clock x half width
        }
    }
}

/// LANai (Myrinet NIC processor) revision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LanaiClass {
    /// LANai 9.1 at 133 MHz (PCI64B cards; 28 of the 32 nodes).
    L91At133,
    /// LANai 9.2 at 200 MHz (PCI64C cards; 4 of the 1-GHz nodes).
    L92At200,
}

impl LanaiClass {
    /// Multiplier on the base (200 MHz) per-packet NIC processing cost.
    pub fn per_packet_scale(self) -> f64 {
        match self {
            LanaiClass::L91At133 => 200.0 / 133.0,
            LanaiClass::L92At200 => 1.0,
        }
    }
}

/// The hardware profile of one node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeHw {
    /// Multiplier on protocol CPU costs (1.0 = the 1-GHz reference class).
    pub cpu_scale: f64,
    /// PCI bus class.
    pub pci: PciClass,
    /// NIC processor revision.
    pub lanai: LanaiClass,
}

impl NodeHw {
    /// The 700-MHz quad-SMP flavour: slower CPU, wide PCI, LANai 9.1.
    pub fn p3_700() -> Self {
        NodeHw {
            cpu_scale: 1000.0 / 700.0,
            pci: PciClass::Mhz66Bit64,
            lanai: LanaiClass::L91At133,
        }
    }

    /// The 1-GHz dual-SMP flavour with the common PCI64B card (LANai 9.1).
    pub fn p3_1000() -> Self {
        NodeHw {
            cpu_scale: 1.0,
            pci: PciClass::Mhz33Bit32,
            lanai: LanaiClass::L91At133,
        }
    }

    /// The 1-GHz flavour with the PCI64C card (LANai 9.2 at 200 MHz); the
    /// testbed had four of these.
    pub fn p3_1000_l92() -> Self {
        NodeHw {
            cpu_scale: 1.0,
            pci: PciClass::Mhz33Bit32,
            lanai: LanaiClass::L92At200,
        }
    }

    /// Scale a base CPU cost by this node's CPU clock.
    pub fn scale_cpu(&self, d: SimDuration) -> SimDuration {
        d.scaled_f64(self.cpu_scale)
    }
}

/// A delivery-time model for the simulated interconnect.
///
/// Both the flat crossbar [`Network`] and the contended fabric model in
/// `abr_fabric` implement this interface, so the DES drivers are generic
/// over *how* a packet's arrival time is computed: the flat model charges
/// endpoint hardware plus one uncontended wire, while a fabric model may
/// route the packet over shared links with per-link busy-until clocks.
pub trait LinkCost {
    /// Compute the delivery time for a packet handed to the source NIC at
    /// `sent_at`, updating whatever serialization state (NIC injection,
    /// FIFO floors, link clocks) the model maintains.
    fn delivery_time(
        &mut self,
        sent_at: SimTime,
        src: &NodeHw,
        dst: &NodeHw,
        packet: &Packet,
    ) -> SimTime;

    /// A strict lower bound on the delivery delay of *any* packet between
    /// nodes drawn from `hws` — the conservative parallel executor's
    /// lookahead.
    fn min_delivery_delay(&self, hws: &[NodeHw]) -> SimDuration;
}

/// Once the FIFO-floor map crosses this many entries, floors that can no
/// longer influence an arrival (entries at or below the send-time
/// watermark) are pruned. Keeps `last_delivery` bounded by the number of
/// pairs *in flight around the same sim time* instead of O(all pairs ever
/// used), which at 64k ranks is the difference between ~10^5 and ~10^9
/// potential entries.
const FLOOR_PRUNE_LIMIT: usize = 65_536;

/// The network: one cut-through crossbar switch connecting every node.
///
/// `delivery_delay` returns how long after the *host hands the packet to the
/// NIC* the packet is available in the destination's receive queue. GM
/// delivers packets of one priority in order per (src, dst) pair;
/// [`Network::delivery_time`] additionally serializes per ordered pair to
/// preserve that guarantee even when a small packet follows a large one.
#[derive(Debug, Clone)]
pub struct Network {
    cost: CostModel,
    /// Earliest next delivery time per (src, dst), enforcing FIFO order.
    last_delivery: FxHashMap<(u32, u32), SimTime>,
    /// When each source NIC's injection path frees up: a NIC DMAs one
    /// packet at a time, so bursts (e.g. a bcast root's fan-out) serialize.
    tx_free: FxHashMap<u32, SimTime>,
    packets_carried: u64,
    bytes_carried: u64,
    /// Highest `sent_at` observed: everything at or below this time can no
    /// longer raise an arrival (DES event times are non-decreasing per
    /// executor), so floors under it are dead weight and prunable.
    watermark: SimTime,
    floors_pruned: u64,
    trace: TraceHandle,
}

impl Network {
    /// A network using the given cost model.
    pub fn new(cost: CostModel) -> Self {
        Network {
            cost,
            last_delivery: FxHashMap::default(),
            tx_free: FxHashMap::default(),
            packets_carried: 0,
            bytes_carried: 0,
            watermark: SimTime::ZERO,
            floors_pruned: 0,
            trace: TraceHandle::default(),
        }
    }

    /// Emit per-segment delivery pipeline costs (source PCI DMA, source
    /// NIC, wire, destination NIC, destination PCI DMA) to `trace` as
    /// [`TraceEvent::WireSegment`] events charged to the source rank.
    pub fn set_tracer(&mut self, trace: TraceHandle) {
        self.trace = trace;
    }

    /// The injection (source-side) portion of a packet's path: source PCI
    /// transfer plus LANai processing. This occupies the source NIC
    /// exclusively.
    pub fn tx_time(&self, src: &NodeHw, packet: &Packet) -> SimDuration {
        let bytes = packet.wire_bytes() as f64;
        let src_pci = self.cost.pci_per_byte_us * src.pci.per_byte_scale() * bytes;
        let src_nic = self.cost.nic_per_packet_us * src.lanai.per_packet_scale();
        SimDuration::from_us_f64(src_pci + src_nic)
    }

    /// The raw path latency of `packet` from `src` hardware to `dst`
    /// hardware, ignoring FIFO serialization: source PCI + source NIC +
    /// switch/wire + destination NIC + destination PCI.
    pub fn delivery_delay(&self, src: &NodeHw, dst: &NodeHw, packet: &Packet) -> SimDuration {
        let bytes = packet.wire_bytes() as f64;
        let src_pci = self.cost.pci_per_byte_us * src.pci.per_byte_scale() * bytes;
        let dst_pci = self.cost.pci_per_byte_us * dst.pci.per_byte_scale() * bytes;
        let src_nic = self.cost.nic_per_packet_us * src.lanai.per_packet_scale();
        let dst_nic = self.cost.nic_per_packet_us * dst.lanai.per_packet_scale();
        let wire = self.cost.switch_us + self.cost.wire_per_byte_us * bytes;
        SimDuration::from_us_f64(src_pci + src_nic + wire + dst_nic + dst_pci)
    }

    /// Compute the delivery time for a packet handed to the source NIC at
    /// `sent_at`, and record it so a later packet on the same (src, dst)
    /// pair can never arrive earlier (GM FIFO guarantee).
    pub fn delivery_time(
        &mut self,
        sent_at: SimTime,
        src: &NodeHw,
        dst: &NodeHw,
        packet: &Packet,
    ) -> SimTime {
        // The source NIC injects one packet at a time: a burst handed to it
        // back-to-back drains serially through PCI + LANai.
        let src_id = packet.header.src.0;
        let tx_start = sent_at.max(self.tx_free.get(&src_id).copied().unwrap_or(SimTime::ZERO));
        let tx_done = tx_start + self.tx_time(src, packet);
        self.tx_free.insert(src_id, tx_done);
        let rest = self.delivery_delay(src, dst, packet) - self.tx_time(src, packet);
        let nominal = tx_done + rest;
        let key = (src_id, packet.header.dst.0);
        let floor = self
            .last_delivery
            .get(&key)
            .copied()
            .unwrap_or(SimTime::ZERO);
        let arrival = nominal.max(floor);
        self.last_delivery.insert(key, arrival);
        self.packets_carried += 1;
        self.bytes_carried += packet.wire_bytes() as u64;
        self.watermark = self.watermark.max(sent_at);
        if self.last_delivery.len() > FLOOR_PRUNE_LIMIT {
            // A floor at or below the watermark can never exceed a future
            // `nominal` (which is strictly later than any future `sent_at`,
            // itself >= watermark), so `max(nominal, floor)` is the identity
            // and the entry is droppable without changing any arrival.
            let wm = self.watermark;
            let before = self.last_delivery.len();
            self.last_delivery.retain(|_, v| *v > wm);
            self.floors_pruned += (before - self.last_delivery.len()) as u64;
        }
        if self.tx_free.len() > FLOOR_PRUNE_LIMIT {
            let wm = self.watermark;
            self.tx_free.retain(|_, v| *v > wm);
        }
        if self.trace.is_enabled() {
            let bytes = packet.wire_bytes() as f64;
            let dst_id = packet.header.dst.0;
            let seg = |us: f64| SimDuration::from_us_f64(us).as_nanos();
            let segments = [
                (
                    "src-pci",
                    seg(self.cost.pci_per_byte_us * src.pci.per_byte_scale() * bytes),
                ),
                (
                    "src-nic",
                    seg(self.cost.nic_per_packet_us * src.lanai.per_packet_scale()),
                ),
                (
                    "wire",
                    seg(self.cost.switch_us + self.cost.wire_per_byte_us * bytes),
                ),
                (
                    "dst-nic",
                    seg(self.cost.nic_per_packet_us * dst.lanai.per_packet_scale()),
                ),
                (
                    "dst-pci",
                    seg(self.cost.pci_per_byte_us * dst.pci.per_byte_scale() * bytes),
                ),
            ];
            for (segment, nanos) in segments {
                self.trace.emit_for(
                    src_id,
                    TraceEvent::WireSegment {
                        dst: dst_id,
                        segment,
                        nanos,
                    },
                );
            }
        }
        arrival
    }

    /// A strict lower bound on the delivery delay of *any* packet between
    /// nodes drawn from `hws` — the conservative parallel executor's
    /// lookahead. Computed as the raw path latency of a header-only packet
    /// over the fastest pair of hardware classes present; FIFO serialization
    /// and payload bytes only ever add to that.
    pub fn min_delivery_delay(&self, hws: &[NodeHw]) -> SimDuration {
        // Dedup the (few) hardware classes so this stays O(classes^2) even
        // for 64k-rank clusters.
        let mut classes: Vec<NodeHw> = Vec::new();
        for hw in hws {
            if !classes.iter().any(|c| c == hw) {
                classes.push(*hw);
            }
        }
        let probe = Packet::new(
            PacketHeader {
                src: NodeId(0),
                dst: NodeId(0),
                kind: PacketKind::Eager,
                context: 0,
                tag: 0,
                coll_seq: 0,
                coll_root: 0,
                msg_len: 0,
                wire_seq: 0,
                rel_seq: 0,
            },
            Bytes::new(),
        );
        let mut best: Option<SimDuration> = None;
        for src in &classes {
            for dst in &classes {
                let d = self.delivery_delay(src, dst, &probe);
                best = Some(match best {
                    Some(b) if b <= d => b,
                    _ => d,
                });
            }
        }
        best.unwrap_or(SimDuration::ZERO)
    }

    /// Fold another network's state into this one: counters sum, and the
    /// FIFO floors / NIC-free times take the per-key maximum. Used when
    /// merging the per-shard networks of a parallel run back into one (the
    /// shards' key spaces are disjoint because each map entry is owned by
    /// its source rank's shard, so the maximum is just a defensive union).
    pub fn absorb(&mut self, other: &Network) {
        self.packets_carried += other.packets_carried;
        self.bytes_carried += other.bytes_carried;
        self.watermark = self.watermark.max(other.watermark);
        self.floors_pruned += other.floors_pruned;
        for (&k, &v) in &other.last_delivery {
            let e = self.last_delivery.entry(k).or_insert(v);
            *e = (*e).max(v);
        }
        for (&k, &v) in &other.tx_free {
            let e = self.tx_free.entry(k).or_insert(v);
            *e = (*e).max(v);
        }
    }

    /// Packets carried so far.
    pub fn packets_carried(&self) -> u64 {
        self.packets_carried
    }

    /// Wire bytes carried so far.
    pub fn bytes_carried(&self) -> u64 {
        self.bytes_carried
    }

    /// Live FIFO-floor entries currently held (per-(src,dst) map size).
    pub fn floor_entries(&self) -> usize {
        self.last_delivery.len()
    }

    /// Dead FIFO floors reclaimed by watermark pruning so far.
    pub fn floors_pruned(&self) -> u64 {
        self.floors_pruned
    }

    /// Record a packet carried by an outer model (e.g. the contended
    /// fabric) that computed the wire path itself but still wants the
    /// carried-traffic counters to live in one place.
    pub fn record_carried(&mut self, wire_bytes: u64) {
        self.packets_carried += 1;
        self.bytes_carried += wire_bytes;
    }

    /// The installed trace handle (shared with outer models).
    pub fn tracer(&self) -> &TraceHandle {
        &self.trace
    }

    /// The cost model in use.
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }
}

impl LinkCost for Network {
    fn delivery_time(
        &mut self,
        sent_at: SimTime,
        src: &NodeHw,
        dst: &NodeHw,
        packet: &Packet,
    ) -> SimTime {
        Network::delivery_time(self, sent_at, src, dst, packet)
    }

    fn min_delivery_delay(&self, hws: &[NodeHw]) -> SimDuration {
        Network::min_delivery_delay(self, hws)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{NodeId, PacketHeader, PacketKind};
    use bytes::Bytes;

    fn packet(src: u32, dst: u32, len: usize) -> Packet {
        Packet::new(
            PacketHeader {
                src: NodeId(src),
                dst: NodeId(dst),
                kind: PacketKind::Eager,
                context: 0,
                tag: 0,
                coll_seq: 0,
                coll_root: 0,
                msg_len: len as u32,
                wire_seq: 0,
                rel_seq: 0,
            },
            Bytes::from(vec![0u8; len]),
        )
    }

    #[test]
    fn narrow_pci_is_slower() {
        let net = Network::new(CostModel::default());
        let wide = NodeHw::p3_700();
        let narrow = NodeHw::p3_1000();
        let p = packet(0, 1, 1024);
        assert!(net.delivery_delay(&narrow, &narrow, &p) > net.delivery_delay(&wide, &wide, &p));
    }

    #[test]
    fn older_lanai_is_slower() {
        let net = Network::new(CostModel::default());
        let l91 = NodeHw::p3_1000();
        let l92 = NodeHw::p3_1000_l92();
        let p = packet(0, 1, 8);
        assert!(net.delivery_delay(&l91, &l91, &p) > net.delivery_delay(&l92, &l92, &p));
    }

    #[test]
    fn small_message_latency_is_2003_plausible() {
        let net = Network::new(CostModel::default());
        let hw = NodeHw::p3_700();
        let d = net.delivery_delay(&hw, &hw, &packet(0, 1, 8)).as_us_f64();
        assert!(
            (2.0..12.0).contains(&d),
            "8-byte path latency {d}us is implausible for Myrinet-2000"
        );
    }

    #[test]
    fn larger_packets_take_longer() {
        let net = Network::new(CostModel::default());
        let hw = NodeHw::p3_700();
        assert!(
            net.delivery_delay(&hw, &hw, &packet(0, 1, 1024))
                > net.delivery_delay(&hw, &hw, &packet(0, 1, 8))
        );
    }

    #[test]
    fn fifo_order_is_enforced_per_pair() {
        let mut net = Network::new(CostModel::default());
        let hw = NodeHw::p3_700();
        // Big packet sent first, tiny packet right after: the tiny one's
        // nominal arrival would be earlier, but FIFO must hold.
        let t0 = SimTime::from_us(100);
        let big = net.delivery_time(t0, &hw, &hw, &packet(0, 1, 64 * 1024));
        let small = net.delivery_time(t0 + SimDuration::from_us(1), &hw, &hw, &packet(0, 1, 8));
        assert!(
            small >= big,
            "FIFO violated: small {small:?} before big {big:?}"
        );
    }

    #[test]
    fn fifo_does_not_couple_distinct_pairs() {
        let mut net = Network::new(CostModel::default());
        let hw = NodeHw::p3_700();
        let t0 = SimTime::from_us(100);
        let big = net.delivery_time(t0, &hw, &hw, &packet(0, 1, 64 * 1024));
        // Different destination: unaffected by the 0->1 backlog.
        let other = net.delivery_time(t0 + SimDuration::from_us(1), &hw, &hw, &packet(0, 2, 8));
        assert!(other < big);
        // Reverse direction is its own channel too.
        let reverse = net.delivery_time(t0 + SimDuration::from_us(1), &hw, &hw, &packet(1, 0, 8));
        assert!(reverse < big);
    }

    #[test]
    fn source_nic_serializes_bursts() {
        let mut net = Network::new(CostModel::default());
        let hw = NodeHw::p3_700();
        let t0 = SimTime::from_us(10);
        // A fan-out burst to distinct destinations still serializes at the
        // source NIC's injection path.
        let a1 = net.delivery_time(t0, &hw, &hw, &packet(0, 1, 1024));
        let a2 = net.delivery_time(t0, &hw, &hw, &packet(0, 2, 1024));
        let a3 = net.delivery_time(t0, &hw, &hw, &packet(0, 3, 1024));
        assert!(a2 > a1);
        assert!(a3 > a2);
        let gap = a3 - a2;
        let tx = net.tx_time(&hw, &packet(0, 3, 1024));
        assert_eq!(gap, tx, "burst spacing equals the per-packet TX time");
        // A different source is unaffected.
        let b = net.delivery_time(t0, &hw, &hw, &packet(5, 1, 1024));
        assert!(b < a3);
    }

    #[test]
    fn min_delivery_delay_bounds_every_packet() {
        let mut net = Network::new(CostModel::default());
        let hws = [NodeHw::p3_700(), NodeHw::p3_1000(), NodeHw::p3_1000_l92()];
        let lookahead = net.min_delivery_delay(&hws);
        assert!(!lookahead.is_zero());
        for (si, src) in hws.iter().enumerate() {
            for dst in &hws {
                for len in [0usize, 8, 1024, 64 * 1024] {
                    let t0 = SimTime::from_us(50);
                    let arrive = net.delivery_time(t0, src, dst, &packet(si as u32, 9, len));
                    assert!(
                        arrive >= t0 + lookahead,
                        "packet arrived before the lookahead bound"
                    );
                }
            }
        }
        assert_eq!(net.min_delivery_delay(&[]), SimDuration::ZERO);
    }

    #[test]
    fn absorb_sums_counters_and_unions_floors() {
        let hw = NodeHw::p3_700();
        let mut a = Network::new(CostModel::default());
        let mut b = Network::new(CostModel::default());
        let t1 = a.delivery_time(SimTime::ZERO, &hw, &hw, &packet(0, 1, 100));
        let t2 = b.delivery_time(SimTime::from_us(5), &hw, &hw, &packet(2, 1, 50));
        a.absorb(&b);
        assert_eq!(a.packets_carried(), 2);
        assert_eq!(a.bytes_carried(), (100 + 32 + 50 + 32) as u64);
        // Floors from both halves survive the merge.
        assert_eq!(a.last_delivery.get(&(0, 1)), Some(&t1));
        assert_eq!(a.last_delivery.get(&(2, 1)), Some(&t2));
        assert!(a.tx_free.contains_key(&0) && a.tx_free.contains_key(&2));
    }

    #[test]
    fn counters_accumulate() {
        let mut net = Network::new(CostModel::default());
        let hw = NodeHw::p3_700();
        net.delivery_time(SimTime::ZERO, &hw, &hw, &packet(0, 1, 100));
        net.delivery_time(SimTime::ZERO, &hw, &hw, &packet(1, 0, 50));
        assert_eq!(net.packets_carried(), 2);
        assert_eq!(net.bytes_carried(), (100 + 32 + 50 + 32) as u64);
    }

    #[test]
    fn floor_map_stays_bounded_under_many_pairs() {
        let mut net = Network::new(CostModel::default());
        let hw = NodeHw::p3_700();
        // Distinct (src, dst) pairs at advancing sim times: the map would
        // grow O(pairs) without pruning. Spacing the sends far apart keeps
        // each floor behind the watermark by the time the limit trips.
        let pairs = (FLOOR_PRUNE_LIMIT + 4_096) as u32;
        for i in 0..pairs {
            let t = SimTime::from_us(u64::from(i) * 1_000);
            net.delivery_time(t, &hw, &hw, &packet(i, i + 1, 8));
        }
        assert!(
            net.floor_entries() <= FLOOR_PRUNE_LIMIT + 1,
            "floor map grew unbounded: {} entries",
            net.floor_entries()
        );
        assert!(net.floors_pruned() > 0);
        assert_eq!(net.packets_carried(), u64::from(pairs));
        // Pruning only drops *dead* floors: a pair with in-flight backlog
        // keeps its FIFO guarantee.
        let t0 = SimTime::from_us(u64::from(pairs) * 1_000);
        let big = net.delivery_time(t0, &hw, &hw, &packet(0, 1, 64 * 1024));
        let small = net.delivery_time(t0 + SimDuration::from_us(1), &hw, &hw, &packet(0, 1, 8));
        assert!(small >= big);
    }

    #[test]
    fn cpu_scaling_on_node_hw() {
        let slow = NodeHw::p3_700();
        let fast = NodeHw::p3_1000();
        let base = SimDuration::from_us(7);
        assert!(slow.scale_cpu(base) > fast.scale_cpu(base));
        assert_eq!(fast.scale_cpu(base), base);
    }
}
