//! A real in-process transport for the live threaded runtime.
//!
//! Each node owns a [`Mailbox`]; the [`LiveFabric`] routes packets to the
//! destination mailbox and stamps per-(src,dst) wire sequence numbers so
//! receivers can assert GM's FIFO guarantee. Two consumers drain a mailbox
//! in the live runtime — the application thread (inside blocking MPI calls)
//! and the per-node signal-dispatcher thread — which mirrors the paper's
//! host/NIC split; both serialize on the node's engine lock before touching
//! protocol state.

use crate::packet::{NodeId, Packet};
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

struct MailboxInner {
    queue: VecDeque<Packet>,
    closed: bool,
}

/// A node's receive queue: packets pushed by peers, popped by the node's
/// application or signal-dispatcher thread.
pub struct Mailbox {
    inner: Mutex<MailboxInner>,
    cv: Condvar,
}

impl Default for Mailbox {
    fn default() -> Self {
        Self::new()
    }
}

impl Mailbox {
    /// An empty, open mailbox.
    pub fn new() -> Self {
        Mailbox {
            inner: Mutex::new(MailboxInner {
                queue: VecDeque::new(),
                closed: false,
            }),
            cv: Condvar::new(),
        }
    }

    /// Deposit a packet and wake any waiter. Packets pushed after close are
    /// dropped (the run is over).
    pub fn push(&self, packet: Packet) {
        let mut inner = self.inner.lock().unwrap();
        if !inner.closed {
            inner.queue.push_back(packet);
            self.cv.notify_all();
        }
    }

    /// Non-blocking pop.
    pub fn try_pop(&self) -> Option<Packet> {
        self.inner.lock().unwrap().queue.pop_front()
    }

    /// Drain everything currently queued.
    pub fn drain(&self) -> Vec<Packet> {
        let mut inner = self.inner.lock().unwrap();
        inner.queue.drain(..).collect()
    }

    /// Number of queued packets.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().queue.len()
    }

    /// True if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Block until at least one packet is queued (returning `true`) or the
    /// mailbox is closed and empty (returning `false`). An optional timeout
    /// bounds the wait; on timeout the current emptiness is returned.
    pub fn wait_nonempty(&self, timeout: Option<Duration>) -> bool {
        let mut inner = self.inner.lock().unwrap();
        match timeout {
            Some(t) => {
                let (guard, _res) = self
                    .cv
                    .wait_timeout_while(inner, t, |m| m.queue.is_empty() && !m.closed)
                    .unwrap();
                inner = guard;
                !inner.queue.is_empty()
            }
            None => {
                inner = self
                    .cv
                    .wait_while(inner, |m| m.queue.is_empty() && !m.closed)
                    .unwrap();
                !inner.queue.is_empty()
            }
        }
    }

    /// Close the mailbox, waking all waiters. Used at teardown so dispatcher
    /// threads exit.
    pub fn close(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.closed = true;
        self.cv.notify_all();
    }

    /// True once closed.
    pub fn is_closed(&self) -> bool {
        self.inner.lock().unwrap().closed
    }
}

/// Routes packets between the mailboxes of `n` nodes and stamps wire
/// sequence numbers.
pub struct LiveFabric {
    boxes: Vec<Arc<Mailbox>>,
    wire_seq: Mutex<HashMap<(u32, u32), u64>>,
}

impl LiveFabric {
    /// A fabric connecting `n` nodes.
    pub fn new(n: usize) -> Self {
        LiveFabric {
            boxes: (0..n).map(|_| Arc::new(Mailbox::new())).collect(),
            wire_seq: Mutex::new(HashMap::new()),
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.boxes.len()
    }

    /// True for a zero-node fabric (never useful, but keeps clippy honest).
    pub fn is_empty(&self) -> bool {
        self.boxes.is_empty()
    }

    /// The mailbox of `node`, for the node's own threads to drain.
    pub fn mailbox(&self, node: NodeId) -> Arc<Mailbox> {
        Arc::clone(&self.boxes[node.index()])
    }

    /// Route `packet` to its destination mailbox, stamping the wire
    /// sequence number for the (src, dst) pair.
    ///
    /// # Panics
    /// Panics if the destination is out of range.
    pub fn send(&self, mut packet: Packet) {
        let key = (packet.header.src.0, packet.header.dst.0);
        {
            let mut seqs = self.wire_seq.lock().unwrap();
            let seq = seqs.entry(key).or_insert(0);
            packet.header.wire_seq = *seq;
            *seq += 1;
        }
        self.boxes[packet.header.dst.index()].push(packet);
    }

    /// Close every mailbox (teardown).
    pub fn close_all(&self) {
        for b in &self.boxes {
            b.close();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{PacketHeader, PacketKind};
    use bytes::Bytes;
    use std::thread;

    fn pkt(src: u32, dst: u32, tag: i32) -> Packet {
        Packet::new(
            PacketHeader {
                src: NodeId(src),
                dst: NodeId(dst),
                kind: PacketKind::Eager,
                context: 0,
                tag,
                coll_seq: 0,
                coll_root: 0,
                msg_len: 0,
                wire_seq: 0,
                rel_seq: 0,
            },
            Bytes::new(),
        )
    }

    #[test]
    fn push_pop_roundtrip() {
        let m = Mailbox::new();
        assert!(m.try_pop().is_none());
        m.push(pkt(0, 1, 7));
        assert_eq!(m.len(), 1);
        let p = m.try_pop().unwrap();
        assert_eq!(p.header.tag, 7);
        assert!(m.is_empty());
    }

    #[test]
    fn drain_preserves_order() {
        let m = Mailbox::new();
        for t in 0..5 {
            m.push(pkt(0, 1, t));
        }
        let tags: Vec<_> = m.drain().into_iter().map(|p| p.header.tag).collect();
        assert_eq!(tags, vec![0, 1, 2, 3, 4]);
        assert!(m.is_empty());
    }

    #[test]
    fn fabric_routes_by_destination() {
        let f = LiveFabric::new(3);
        f.send(pkt(0, 2, 1));
        f.send(pkt(1, 0, 2));
        assert_eq!(f.mailbox(NodeId(2)).len(), 1);
        assert_eq!(f.mailbox(NodeId(0)).len(), 1);
        assert_eq!(f.mailbox(NodeId(1)).len(), 0);
    }

    #[test]
    fn fabric_stamps_fifo_wire_seq() {
        let f = LiveFabric::new(2);
        for t in 0..4 {
            f.send(pkt(0, 1, t));
        }
        f.send(pkt(1, 0, 99)); // separate pair, separate numbering
        let seqs: Vec<_> = f
            .mailbox(NodeId(1))
            .drain()
            .into_iter()
            .map(|p| p.header.wire_seq)
            .collect();
        assert_eq!(seqs, vec![0, 1, 2, 3]);
        assert_eq!(f.mailbox(NodeId(0)).try_pop().unwrap().header.wire_seq, 0);
    }

    #[test]
    fn wait_nonempty_wakes_on_push() {
        let f = LiveFabric::new(2);
        let mb = f.mailbox(NodeId(1));
        let t = thread::spawn(move || mb.wait_nonempty(None));
        thread::sleep(Duration::from_millis(20));
        f.send(pkt(0, 1, 5));
        assert!(t.join().unwrap());
    }

    #[test]
    fn wait_nonempty_wakes_on_close() {
        let m = Arc::new(Mailbox::new());
        let m2 = Arc::clone(&m);
        let t = thread::spawn(move || m2.wait_nonempty(None));
        thread::sleep(Duration::from_millis(20));
        m.close();
        assert!(!t.join().unwrap(), "close with empty queue returns false");
    }

    #[test]
    fn wait_nonempty_timeout_returns_emptiness() {
        let m = Mailbox::new();
        assert!(!m.wait_nonempty(Some(Duration::from_millis(10))));
        m.push(pkt(0, 0, 1));
        assert!(m.wait_nonempty(Some(Duration::from_millis(10))));
    }

    #[test]
    fn push_after_close_is_dropped() {
        let m = Mailbox::new();
        m.close();
        m.push(pkt(0, 1, 1));
        assert!(m.is_empty());
        assert!(m.is_closed());
    }

    #[test]
    fn concurrent_producers_deliver_everything() {
        let f = Arc::new(LiveFabric::new(2));
        let mut handles = Vec::new();
        for src in 0..4u32 {
            let f = Arc::clone(&f);
            handles.push(thread::spawn(move || {
                for t in 0..250 {
                    f.send(pkt(src % 2, 1, t));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(f.mailbox(NodeId(1)).len(), 1000);
    }
}
