//! `abr_gm` — a GM/Myrinet-like user-level messaging substrate.
//!
//! GM is the user-level message-passing system for Myrinet networks that the
//! paper's MPICH port runs on. We cannot run LANai firmware, so this crate
//! rebuilds the *interfaces and costs* that the application-bypass design
//! depends on:
//!
//! * [`packet`] — the wire format, including the paper's new **collective
//!   packet type** (§V-A) that the NIC uses to decide whether to raise a
//!   host signal,
//! * [`cost`] — the machine cost model: host overheads, memory-copy costs,
//!   PCI/wire/NIC transfer times, signal delivery cost, poll cost. All
//!   figure-level behaviour is driven by these calibrated constants,
//! * [`nic`] — node hardware classes (the paper's two Pentium-III node
//!   flavours, PCI widths and LANai revisions) and the network delivery-time
//!   model (cut-through crossbar, full-duplex links, per-source-destination
//!   FIFO ordering as GM guarantees),
//! * [`memory`] — the pinned-memory (DMA registration) bookkeeping behind
//!   GM's eager/rendezvous split,
//! * [`signal`] — host-side signal enable/disable control mirroring the
//!   GM-library calls the paper added, with counters,
//! * [`live`] — a real in-process transport (mailboxes + wakeups) used by
//!   the live threaded runtime in `abr_cluster`.
//!
//! **Tracing**: with an [`abr_trace::TraceHandle`] installed,
//! [`nic::Network::delivery_time`] emits the five per-packet cost segments
//! (source PCI, source NIC, wire, destination NIC, destination PCI) and
//! [`signal::SignalControl::on_arrival`] emits every raise/suppress
//! decision, so a timeline shows exactly where each microsecond of the
//! cost model went.

#![deny(missing_docs)]

pub mod cost;
pub mod live;
pub mod memory;
pub mod nic;
pub mod packet;
pub mod signal;

pub use cost::CostModel;
pub use memory::MemoryRegistry;
pub use nic::{LanaiClass, LinkCost, Network, NodeHw, PciClass};
pub use packet::{NodeId, Packet, PacketHeader, PacketKind};
pub use signal::SignalControl;
