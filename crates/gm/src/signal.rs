//! Host-side control of NIC signal generation.
//!
//! The paper modifies GM so that (a) only the new collective packet type can
//! generate a host signal and (b) MPICH can enable/disable signal generation
//! cheaply from user space (§V-A). Signals start disabled; they are enabled
//! only while at least one reduction is outstanding asynchronously, and
//! disabled again as soon as the descriptor queue drains.
//!
//! [`SignalControl`] models that toggle plus the delivery decision, and
//! counts what happened so benchmarks and tests can audit signal behaviour
//! (e.g. "no signals are ever generated in a run with no late messages").

use crate::packet::Packet;
use abr_trace::{TraceEvent, TraceHandle};

/// Why a packet did not produce a signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SignalSuppression {
    /// Signals are disabled at the NIC.
    Disabled,
    /// The packet is not of the collective type.
    WrongKind,
    /// The host was already inside the progress engine, so the signal was
    /// ignored (Fig. 4: "if a signal happens to occur while progress is
    /// already underway, it is simply ignored").
    ProgressUnderway,
}

/// Per-node signal state and counters.
#[derive(Debug, Clone, Default)]
pub struct SignalControl {
    enabled: bool,
    raised: u64,
    suppressed_disabled: u64,
    suppressed_kind: u64,
    suppressed_busy: u64,
    toggles: u64,
    trace: TraceHandle,
}

impl SignalControl {
    /// Initial state: disabled, as MPICH initializes it (§V-A: "We
    /// initialize MPICH with signals in a disabled state").
    pub fn new() -> Self {
        Self::default()
    }

    /// Emit every signal decision to `trace` as
    /// [`TraceEvent::Signal`] events.
    pub fn set_tracer(&mut self, trace: TraceHandle) {
        self.trace = trace;
    }

    /// Enable NIC signal generation. Idempotent; returns true if the state
    /// changed (i.e. a real GM library call would have been made).
    pub fn enable(&mut self) -> bool {
        let changed = !self.enabled;
        if changed {
            self.enabled = true;
            self.toggles += 1;
        }
        changed
    }

    /// Disable NIC signal generation. Idempotent; returns true on change.
    pub fn disable(&mut self) -> bool {
        let changed = self.enabled;
        if changed {
            self.enabled = false;
            self.toggles += 1;
        }
        changed
    }

    /// Current state.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Decide whether the arrival of `packet` raises a host signal, given
    /// whether the host is already making progress. Updates counters.
    pub fn on_arrival(
        &mut self,
        packet: &Packet,
        progress_underway: bool,
    ) -> Result<(), SignalSuppression> {
        if !packet.generates_signal() {
            self.suppressed_kind += 1;
            self.trace.emit(TraceEvent::Signal {
                outcome: "suppressed-kind",
            });
            return Err(SignalSuppression::WrongKind);
        }
        if !self.enabled {
            self.suppressed_disabled += 1;
            self.trace.emit(TraceEvent::Signal {
                outcome: "suppressed-disabled",
            });
            return Err(SignalSuppression::Disabled);
        }
        if progress_underway {
            self.suppressed_busy += 1;
            self.trace.emit(TraceEvent::Signal {
                outcome: "suppressed-progress",
            });
            return Err(SignalSuppression::ProgressUnderway);
        }
        self.raised += 1;
        self.trace.emit(TraceEvent::Signal { outcome: "raised" });
        Ok(())
    }

    /// Signals actually raised.
    pub fn raised(&self) -> u64 {
        self.raised
    }

    /// Collective packets that arrived while signals were disabled.
    pub fn suppressed_disabled(&self) -> u64 {
        self.suppressed_disabled
    }

    /// Non-collective packets (which can never signal).
    pub fn suppressed_wrong_kind(&self) -> u64 {
        self.suppressed_kind
    }

    /// Signals ignored because progress was already underway.
    pub fn suppressed_progress_underway(&self) -> u64 {
        self.suppressed_busy
    }

    /// Number of real enable/disable transitions.
    pub fn toggles(&self) -> u64 {
        self.toggles
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{NodeId, PacketHeader, PacketKind};
    use bytes::Bytes;

    fn pkt(kind: PacketKind) -> Packet {
        Packet::new(
            PacketHeader {
                src: NodeId(0),
                dst: NodeId(1),
                kind,
                context: 0,
                tag: 0,
                coll_seq: 0,
                coll_root: 0,
                msg_len: 0,
                wire_seq: 0,
                rel_seq: 0,
            },
            Bytes::new(),
        )
    }

    #[test]
    fn starts_disabled() {
        let s = SignalControl::new();
        assert!(!s.is_enabled());
    }

    #[test]
    fn collective_packet_signals_when_enabled_and_idle() {
        let mut s = SignalControl::new();
        s.enable();
        assert_eq!(s.on_arrival(&pkt(PacketKind::Collective), false), Ok(()));
        assert_eq!(s.raised(), 1);
    }

    #[test]
    fn disabled_suppresses() {
        let mut s = SignalControl::new();
        assert_eq!(
            s.on_arrival(&pkt(PacketKind::Collective), false),
            Err(SignalSuppression::Disabled)
        );
        assert_eq!(s.suppressed_disabled(), 1);
        assert_eq!(s.raised(), 0);
    }

    #[test]
    fn non_collective_never_signals_even_when_enabled() {
        let mut s = SignalControl::new();
        s.enable();
        for kind in [
            PacketKind::Eager,
            PacketKind::RendezvousRts,
            PacketKind::RendezvousCts,
            PacketKind::RendezvousData,
        ] {
            assert_eq!(
                s.on_arrival(&pkt(kind), false),
                Err(SignalSuppression::WrongKind)
            );
        }
        assert_eq!(s.suppressed_wrong_kind(), 4);
    }

    #[test]
    fn progress_underway_suppresses() {
        let mut s = SignalControl::new();
        s.enable();
        assert_eq!(
            s.on_arrival(&pkt(PacketKind::Collective), true),
            Err(SignalSuppression::ProgressUnderway)
        );
        assert_eq!(s.suppressed_progress_underway(), 1);
    }

    #[test]
    fn toggles_are_idempotent_and_counted() {
        let mut s = SignalControl::new();
        assert!(s.enable());
        assert!(!s.enable(), "second enable is a no-op");
        assert!(s.disable());
        assert!(!s.disable(), "second disable is a no-op");
        assert_eq!(s.toggles(), 2);
    }

    #[test]
    fn kind_check_precedes_enabled_check() {
        // An eager packet with signals disabled counts as wrong-kind, not
        // disabled — the NIC filters on type first.
        let mut s = SignalControl::new();
        assert_eq!(
            s.on_arrival(&pkt(PacketKind::Eager), false),
            Err(SignalSuppression::WrongKind)
        );
        assert_eq!(s.suppressed_disabled(), 0);
    }
}
