//! Pinned-memory (DMA registration) bookkeeping.
//!
//! GM can only DMA to and from *registered* (pinned) memory. Registration is
//! a system call and expensive, which is why MPICH-over-GM sends small
//! messages through pre-pinned bounce buffers (eager mode) and only pins
//! in place for large messages (rendezvous mode) — §III of the paper. This
//! registry models the bookkeeping so the protocol layer can be audited for
//! balanced pin/unpin behaviour and for respecting a pinned-memory budget.

use std::collections::HashMap;

/// Identifies a registered region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegionId(u64);

/// Errors from the registry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemoryError {
    /// Deregistering a region that is not registered.
    UnknownRegion(RegionId),
    /// Registering would exceed the configured pinnable-memory budget.
    BudgetExceeded {
        /// Bytes requested.
        requested: usize,
        /// Bytes still available under the budget.
        available: usize,
    },
}

impl std::fmt::Display for MemoryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemoryError::UnknownRegion(id) => write!(f, "unknown pinned region {id:?}"),
            MemoryError::BudgetExceeded {
                requested,
                available,
            } => write!(
                f,
                "pin request of {requested} bytes exceeds remaining budget of {available} bytes"
            ),
        }
    }
}

impl std::error::Error for MemoryError {}

/// Tracks pinned regions and enforces an optional budget.
#[derive(Debug, Clone)]
pub struct MemoryRegistry {
    regions: HashMap<u64, usize>,
    next_id: u64,
    pinned_bytes: usize,
    budget: Option<usize>,
    total_pins: u64,
    total_unpins: u64,
    high_water: usize,
}

impl Default for MemoryRegistry {
    fn default() -> Self {
        Self::unbounded()
    }
}

impl MemoryRegistry {
    /// A registry with no budget limit.
    pub fn unbounded() -> Self {
        MemoryRegistry {
            regions: HashMap::new(),
            next_id: 0,
            pinned_bytes: 0,
            budget: None,
            total_pins: 0,
            total_unpins: 0,
            high_water: 0,
        }
    }

    /// A registry that refuses to pin beyond `budget_bytes` at once.
    pub fn with_budget(budget_bytes: usize) -> Self {
        MemoryRegistry {
            budget: Some(budget_bytes),
            ..Self::unbounded()
        }
    }

    /// Register (pin) a region of `len` bytes.
    pub fn register(&mut self, len: usize) -> Result<RegionId, MemoryError> {
        if let Some(budget) = self.budget {
            let available = budget.saturating_sub(self.pinned_bytes);
            if len > available {
                return Err(MemoryError::BudgetExceeded {
                    requested: len,
                    available,
                });
            }
        }
        let id = self.next_id;
        self.next_id += 1;
        self.regions.insert(id, len);
        self.pinned_bytes += len;
        self.high_water = self.high_water.max(self.pinned_bytes);
        self.total_pins += 1;
        Ok(RegionId(id))
    }

    /// Deregister (unpin) a region.
    pub fn deregister(&mut self, id: RegionId) -> Result<(), MemoryError> {
        match self.regions.remove(&id.0) {
            Some(len) => {
                self.pinned_bytes -= len;
                self.total_unpins += 1;
                Ok(())
            }
            None => Err(MemoryError::UnknownRegion(id)),
        }
    }

    /// Bytes currently pinned.
    pub fn pinned_bytes(&self) -> usize {
        self.pinned_bytes
    }

    /// Number of currently registered regions.
    pub fn live_regions(&self) -> usize {
        self.regions.len()
    }

    /// Highest concurrent pinned-byte count seen.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Lifetime pin count.
    pub fn total_pins(&self) -> u64 {
        self.total_pins
    }

    /// Lifetime unpin count.
    pub fn total_unpins(&self) -> u64 {
        self.total_unpins
    }

    /// True when every pin has been matched by an unpin — asserted at the
    /// end of protocol tests.
    pub fn is_balanced(&self) -> bool {
        self.regions.is_empty() && self.total_pins == self.total_unpins
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_then_deregister_balances() {
        let mut m = MemoryRegistry::unbounded();
        let a = m.register(4096).unwrap();
        let b = m.register(100).unwrap();
        assert_eq!(m.pinned_bytes(), 4196);
        assert_eq!(m.live_regions(), 2);
        m.deregister(a).unwrap();
        m.deregister(b).unwrap();
        assert!(m.is_balanced());
        assert_eq!(m.pinned_bytes(), 0);
    }

    #[test]
    fn double_deregister_fails() {
        let mut m = MemoryRegistry::unbounded();
        let a = m.register(10).unwrap();
        m.deregister(a).unwrap();
        assert_eq!(m.deregister(a), Err(MemoryError::UnknownRegion(a)));
    }

    #[test]
    fn budget_is_enforced() {
        let mut m = MemoryRegistry::with_budget(1000);
        let a = m.register(800).unwrap();
        let err = m.register(300).unwrap_err();
        assert_eq!(
            err,
            MemoryError::BudgetExceeded {
                requested: 300,
                available: 200
            }
        );
        m.deregister(a).unwrap();
        m.register(300).unwrap();
    }

    #[test]
    fn high_water_tracks_peak() {
        let mut m = MemoryRegistry::unbounded();
        let a = m.register(500).unwrap();
        let b = m.register(500).unwrap();
        m.deregister(a).unwrap();
        m.deregister(b).unwrap();
        let _ = m.register(100).unwrap();
        assert_eq!(m.high_water(), 1000);
    }

    #[test]
    fn distinct_ids_for_distinct_regions() {
        let mut m = MemoryRegistry::unbounded();
        let a = m.register(1).unwrap();
        let b = m.register(1).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn zero_length_region_is_fine() {
        let mut m = MemoryRegistry::with_budget(0);
        let a = m.register(0).unwrap();
        m.deregister(a).unwrap();
        assert!(m.is_balanced());
    }

    #[test]
    fn error_display_is_informative() {
        let msg = format!(
            "{}",
            MemoryError::BudgetExceeded {
                requested: 10,
                available: 5
            }
        );
        assert!(msg.contains("10") && msg.contains("5"));
    }
}
