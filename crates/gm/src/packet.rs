//! The wire format exchanged between nodes.
//!
//! The paper adds a new *collective packet type* to GM 1.5.2.1 so the NIC
//! control program can raise a host signal only for application-bypass
//! reduction traffic (§V-A). All other MPI traffic keeps its normal types
//! and never generates signals.

use bytes::Bytes;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A node (GM port) identifier; equal to the MPI rank in this stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The id as a usize index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// GM-level packet types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PacketKind {
    /// Small message sent through pre-pinned bounce buffers (GM eager mode).
    Eager,
    /// Rendezvous request-to-send: header only, announces a large message.
    RendezvousRts,
    /// Rendezvous clear-to-send: receiver has pinned its buffer.
    RendezvousCts,
    /// Rendezvous payload, DMA'd between pinned regions.
    RendezvousData,
    /// The paper's new collective type: like `Eager`, but the NIC raises a
    /// host signal on arrival when signals are enabled.
    Collective,
    /// Reliability acknowledgement (`abr_faults` layer): header-only, its
    /// `rel_seq` field carries the cumulative ack. Consumed by the
    /// transport's reliability state — engines never see one.
    Ack,
}

impl PacketKind {
    /// True for the application-bypass collective type (§V-A): the only kind
    /// for which the NIC will ever generate a signal.
    #[inline]
    pub fn generates_signal(self) -> bool {
        matches!(self, PacketKind::Collective)
    }

    /// Stable short label used in trace events.
    #[inline]
    pub fn label(self) -> &'static str {
        match self {
            PacketKind::Eager => "eager",
            PacketKind::RendezvousRts => "rts",
            PacketKind::RendezvousCts => "cts",
            PacketKind::RendezvousData => "rndv-data",
            PacketKind::Collective => "coll",
            PacketKind::Ack => "ack",
        }
    }

    /// True if this kind carries message payload on the wire (as opposed to
    /// a header-only control packet).
    #[inline]
    pub fn carries_payload(self) -> bool {
        !matches!(
            self,
            PacketKind::RendezvousRts | PacketKind::RendezvousCts | PacketKind::Ack
        )
    }
}

/// Fixed per-packet wire overhead in bytes (GM header + CRC + route bytes).
pub const HEADER_WIRE_BYTES: u32 = 32;

/// The packet header. Tag/context/sequence fields belong logically to the
/// MPI layer but ride in the GM header so the NIC (and the application-
/// bypass pre-processing step) can classify packets without touching payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PacketHeader {
    /// Sending node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// GM packet type.
    pub kind: PacketKind,
    /// MPI communicator context id.
    pub context: u32,
    /// MPI tag.
    pub tag: i32,
    /// Collective-instance sequence number (disambiguates overlapped
    /// reductions, §IV-D). For rendezvous control/data packets this field
    /// carries the transfer id instead. Zero for plain eager traffic.
    pub coll_seq: u64,
    /// Root rank of the collective instance a [`PacketKind::Collective`]
    /// packet belongs to; the receiver uses it for the Fig. 4 check
    /// "is the current process the root of this reduction instance".
    /// Zero and meaningless for non-collective kinds.
    pub coll_root: u32,
    /// Total message length in bytes (for rendezvous, the full payload the
    /// RTS announces; for eager/collective, the payload carried here).
    pub msg_len: u32,
    /// Per-(src,dst) monotone sequence number; transports use it to assert
    /// the FIFO ordering GM guarantees.
    pub wire_seq: u64,
    /// Reliability sequence number (`abr_faults` layer). Zero when the
    /// reliability protocol is inactive; data sequences start at 1. For
    /// [`PacketKind::Ack`] this field carries the cumulative ack instead.
    pub rel_seq: u64,
}

/// A packet: header plus (possibly empty) payload bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Header fields.
    pub header: PacketHeader,
    /// Payload; empty for header-only control packets.
    pub payload: Bytes,
}

impl Packet {
    /// Build a packet, checking payload/kind consistency.
    pub fn new(header: PacketHeader, payload: Bytes) -> Self {
        debug_assert!(
            header.kind.carries_payload() || payload.is_empty(),
            "control packets must not carry payload"
        );
        debug_assert!(
            !header.kind.carries_payload()
                || payload.len() == header.msg_len as usize
                || header.kind == PacketKind::RendezvousData,
            "payload length {} disagrees with header msg_len {}",
            payload.len(),
            header.msg_len,
        );
        Packet { header, payload }
    }

    /// Bytes this packet occupies on the wire (payload + fixed overhead).
    pub fn wire_bytes(&self) -> u32 {
        self.payload.len() as u32 + HEADER_WIRE_BYTES
    }

    /// True if the NIC would raise a host signal for this packet when
    /// signals are enabled.
    pub fn generates_signal(&self) -> bool {
        self.header.kind.generates_signal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header(kind: PacketKind, len: u32) -> PacketHeader {
        PacketHeader {
            src: NodeId(0),
            dst: NodeId(1),
            kind,
            context: 7,
            tag: 3,
            coll_seq: 0,
            coll_root: 0,
            msg_len: len,
            wire_seq: 0,
            rel_seq: 0,
        }
    }

    #[test]
    fn only_collective_generates_signal() {
        assert!(PacketKind::Collective.generates_signal());
        for k in [
            PacketKind::Eager,
            PacketKind::RendezvousRts,
            PacketKind::RendezvousCts,
            PacketKind::RendezvousData,
            PacketKind::Ack,
        ] {
            assert!(!k.generates_signal(), "{k:?} must not signal");
        }
    }

    #[test]
    fn control_packets_carry_no_payload() {
        assert!(!PacketKind::RendezvousRts.carries_payload());
        assert!(!PacketKind::RendezvousCts.carries_payload());
        assert!(!PacketKind::Ack.carries_payload());
        assert!(PacketKind::Eager.carries_payload());
        assert!(PacketKind::Collective.carries_payload());
        assert!(PacketKind::RendezvousData.carries_payload());
    }

    #[test]
    fn wire_bytes_includes_header_overhead() {
        let p = Packet::new(header(PacketKind::Eager, 4), Bytes::from(vec![0u8; 4]));
        assert_eq!(p.wire_bytes(), 4 + HEADER_WIRE_BYTES);
        let rts = Packet::new(header(PacketKind::RendezvousRts, 1 << 20), Bytes::new());
        assert_eq!(rts.wire_bytes(), HEADER_WIRE_BYTES);
    }

    #[test]
    fn packet_signal_delegates_to_kind() {
        let coll = Packet::new(header(PacketKind::Collective, 0), Bytes::new());
        assert!(coll.generates_signal());
        let eager = Packet::new(header(PacketKind::Eager, 0), Bytes::new());
        assert!(!eager.generates_signal());
    }

    #[test]
    #[should_panic(expected = "control packets must not carry payload")]
    #[cfg(debug_assertions)]
    fn rts_with_payload_is_rejected() {
        let _ = Packet::new(
            header(PacketKind::RendezvousRts, 8),
            Bytes::from(vec![0u8; 8]),
        );
    }

    #[test]
    fn node_id_display_and_index() {
        assert_eq!(NodeId(5).index(), 5);
        assert_eq!(format!("{}", NodeId(5)), "n5");
    }
}
