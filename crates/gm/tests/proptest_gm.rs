//! Property tests for the GM substrate: FIFO delivery under arbitrary
//! traffic, cost-model monotonicity, and the memory registry against a
//! reference model.

use abr_des::{SimDuration, SimTime};
use abr_gm::cost::CostModel;
use abr_gm::memory::MemoryRegistry;
use abr_gm::nic::{Network, NodeHw};
use abr_gm::packet::{NodeId, Packet, PacketHeader, PacketKind};
use abr_gm::signal::SignalControl;
use bytes::Bytes;
use proptest::prelude::*;
use std::collections::HashMap;

fn packet(src: u32, dst: u32, len: usize) -> Packet {
    Packet::new(
        PacketHeader {
            src: NodeId(src),
            dst: NodeId(dst),
            kind: PacketKind::Eager,
            context: 0,
            tag: 0,
            coll_seq: 0,
            coll_root: 0,
            msg_len: len as u32,
            wire_seq: 0,
            rel_seq: 0,
        },
        Bytes::from(vec![0u8; len]),
    )
}

proptest! {
    /// Delivery times per (src, dst) pair are non-decreasing no matter the
    /// send interleaving, sizes or hardware mix — the GM FIFO guarantee the
    /// whole matching layer depends on.
    #[test]
    fn network_preserves_per_pair_fifo(
        sends in prop::collection::vec((0u32..4, 0u32..3, 0usize..8192, 0u64..50), 1..80),
    ) {
        let mut net = Network::new(CostModel::default());
        let hw = [NodeHw::p3_700(), NodeHw::p3_1000(), NodeHw::p3_1000_l92(), NodeHw::p3_700()];
        let mut t = SimTime::ZERO;
        let mut last: HashMap<(u32, u32), SimTime> = HashMap::new();
        for (src, dst_off, len, dt) in sends {
            let dst = (src + 1 + dst_off) % 4; // always != src
            t += SimDuration::from_us(dt);
            let p = packet(src, dst, len);
            let arrive = net.delivery_time(t, &hw[src as usize], &hw[dst as usize], &p);
            prop_assert!(arrive > t, "arrival not after send");
            if let Some(prev) = last.insert((src, dst), arrive) {
                prop_assert!(arrive >= prev, "FIFO violated for ({src},{dst})");
            }
        }
    }

    /// Path latency grows monotonically with payload size for any pair of
    /// hardware classes.
    #[test]
    fn delivery_delay_monotone_in_size(a in 0usize..3, b in 0usize..3, len in 0usize..16000, extra in 1usize..4096) {
        let net = Network::new(CostModel::default());
        let hw = [NodeHw::p3_700(), NodeHw::p3_1000(), NodeHw::p3_1000_l92()];
        let small = net.delivery_delay(&hw[a], &hw[b], &packet(0, 1, len));
        let big = net.delivery_delay(&hw[a], &hw[b], &packet(0, 1, len + extra));
        prop_assert!(big > small);
    }

    /// Registry against a reference model: arbitrary register/deregister
    /// sequences keep pinned-byte accounting exact.
    #[test]
    fn memory_registry_matches_model(ops in prop::collection::vec((any::<bool>(), 0usize..4096), 1..120)) {
        let mut reg = MemoryRegistry::unbounded();
        let mut live: Vec<(abr_gm::memory::RegionId, usize)> = Vec::new();
        let mut model_bytes = 0usize;
        for (register, len) in ops {
            if register || live.is_empty() {
                let id = reg.register(len).unwrap();
                live.push((id, len));
                model_bytes += len;
            } else {
                let (id, len) = live.swap_remove(len % live.len());
                reg.deregister(id).unwrap();
                model_bytes -= len;
            }
            prop_assert_eq!(reg.pinned_bytes(), model_bytes);
            prop_assert_eq!(reg.live_regions(), live.len());
        }
        for (id, len) in live.drain(..) {
            reg.deregister(id).unwrap();
            model_bytes -= len;
        }
        prop_assert_eq!(model_bytes, 0);
        prop_assert!(reg.is_balanced());
    }

    /// The signal-control decision table: a signal fires iff the packet is
    /// collective AND signals are enabled AND progress is not underway.
    #[test]
    fn signal_decision_table(enabled in any::<bool>(), busy in any::<bool>(), kind_sel in 0usize..5) {
        let kinds = [
            PacketKind::Eager,
            PacketKind::Collective,
            PacketKind::RendezvousRts,
            PacketKind::RendezvousCts,
            PacketKind::RendezvousData,
        ];
        let kind = kinds[kind_sel];
        let mut s = SignalControl::new();
        if enabled {
            s.enable();
        }
        let p = Packet::new(
            PacketHeader {
                src: NodeId(0),
                dst: NodeId(1),
                kind,
                context: 0,
                tag: 0,
                coll_seq: 0,
                coll_root: 0,
                msg_len: 0,
                wire_seq: 0,
                rel_seq: 0,
            },
            Bytes::new(),
        );
        let fired = s.on_arrival(&p, busy).is_ok();
        let expect = kind == PacketKind::Collective && enabled && !busy;
        prop_assert_eq!(fired, expect);
        prop_assert_eq!(s.raised(), u64::from(expect));
    }

    /// Cost model basics hold for any byte count: copies and pins are
    /// positive and monotone.
    #[test]
    fn cost_model_positive_and_monotone(len in 0usize..1_000_000) {
        let c = CostModel::default();
        prop_assert!(c.copy(len) >= c.copy(0));
        prop_assert!(c.copy(len + 1) > c.copy(len));
        // Per-byte pin cost is sub-nanosecond; monotonicity shows at page
        // granularity rather than per byte.
        prop_assert!(c.pin(len + 4096) > c.pin(len));
        prop_assert!(c.pin(len + 1) >= c.pin(len));
        prop_assert!(!c.copy(0).is_zero());
        prop_assert!(!c.signal_cost().is_zero());
        prop_assert!(c.signal_ignored_cost() < c.signal_cost());
    }
}
