//! Driver-level behaviour of the contended fabric: determinism of the
//! sequential executor under link contention, the flat fabric's
//! equivalence with the default (fabric-less) configuration, and the
//! executor guard that keeps per-link busy clocks off the sharded path.

use abr_cluster::microbench::{run_cpu_util, CpuUtilConfig, Mode};
use abr_cluster::node::ClusterSpec;
use abr_cluster::program::ScriptProgram;
use abr_cluster::{DesDriver, Step};
use abr_des::SimDuration;
use abr_fabric::FabricSpec;
use abr_mpr::engine::{Engine, EngineConfig};
use abr_mpr::op::ReduceOp;
use abr_mpr::types::{f64s_to_bytes, Datatype};

fn cfg(fabric: FabricSpec, mode: Mode) -> CpuUtilConfig {
    CpuUtilConfig {
        elems: 32,
        max_skew_us: 200,
        iters: 12,
        mode,
        ..CpuUtilConfig::new(ClusterSpec::heterogeneous(64).with_fabric(fabric), mode)
    }
}

#[test]
fn contended_runs_are_deterministic() {
    let run = || {
        let r = run_cpu_util(&cfg(FabricSpec::fat_tree(4.0), Mode::Baseline));
        (
            r.mean_cpu_us,
            r.per_node_us.clone(),
            r.signals,
            r.link_waits,
            r.link_wait_us,
        )
    };
    let a = run();
    assert!(a.3 > 0, "64-rank fat-tree run produced no link contention");
    assert_eq!(a, run(), "contended run is not reproducible");
}

#[test]
fn flat_fabric_matches_default_configuration() {
    // An explicit flat fabric must be indistinguishable from the spec the
    // constructors build when ABR_FABRIC is unset — the guarantee that
    // keeps every committed figure byte-identical.
    let default_spec = ClusterSpec::heterogeneous(64);
    assert!(
        default_spec.fabric.is_flat(),
        "tests assume ABR_FABRIC unset"
    );
    for mode in [Mode::Baseline, Mode::Bypass(abr_core::DelayPolicy::None)] {
        let flat = run_cpu_util(&cfg(FabricSpec::flat(), mode));
        let defaulted = run_cpu_util(&CpuUtilConfig {
            elems: 32,
            max_skew_us: 200,
            iters: 12,
            mode,
            ..CpuUtilConfig::new(default_spec.clone(), mode)
        });
        assert_eq!(flat.mean_cpu_us, defaulted.mean_cpu_us);
        assert_eq!(flat.per_node_us, defaulted.per_node_us);
        assert_eq!(flat.link_waits, 0);
        assert_eq!(flat.link_wait_us, 0.0);
    }
}

#[test]
fn contention_slows_the_blocking_engine() {
    let flat = run_cpu_util(&cfg(FabricSpec::flat(), Mode::Baseline));
    let contended = run_cpu_util(&cfg(FabricSpec::fat_tree(4.0), Mode::Baseline));
    assert!(contended.link_waits > 0);
    assert!(
        contended.mean_cpu_us > flat.mean_cpu_us,
        "oversubscribed fat-tree did not raise blocking CPU: {} vs {}",
        contended.mean_cpu_us,
        flat.mean_cpu_us
    );
}

fn tiny_programs(n: u32) -> Vec<ScriptProgram> {
    (0..n)
        .map(|rank| {
            ScriptProgram::new(vec![
                Step::Busy(SimDuration::from_us(u64::from(rank % 7) * 10)),
                Step::Reduce {
                    root: 0,
                    op: ReduceOp::Sum,
                    dtype: Datatype::F64,
                    data: f64s_to_bytes(&[f64::from(rank) + 1.0]),
                },
            ])
        })
        .collect()
}

#[test]
fn run_sharded_rejects_contended_fabric() {
    let n = 32u32;
    let spec = ClusterSpec::heterogeneous(n).with_fabric(FabricSpec::fat_tree(4.0));
    let mut d = DesDriver::new(
        &spec,
        |r, ec: EngineConfig| Engine::new(r, n, ec),
        tiny_programs(n),
    );
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| d.run_sharded(2)))
        .expect_err("run_sharded accepted a contended fabric");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(
        msg.contains("ABR_FABRIC"),
        "panic does not name the knob: {msg}"
    );
}

#[test]
fn sharded_flat_fabric_still_works() {
    // The guard must not catch the degenerate case: a flat FabricNetwork
    // is exactly the legacy model and stays shardable.
    let n = 32u32;
    let spec = ClusterSpec::heterogeneous(n).with_fabric(FabricSpec::flat());
    let run = |shards: usize| {
        let mut d = DesDriver::new(
            &spec,
            |r, ec: EngineConfig| Engine::new(r, n, ec),
            tiny_programs(n),
        );
        d.run_sharded(shards);
        (d.results(), d.packets_delivered, d.now())
    };
    assert_eq!(run(1), run(8), "flat fabric broke sharded determinism");
}
