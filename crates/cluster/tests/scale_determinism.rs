//! Determinism of the parallel conservative executor: for any shard count
//! the sharded run must produce *identical* results — per-node CPU meters,
//! observations, signal counts, packet totals, and the final virtual clock
//! — because every event carries a partition-independent
//! `(origin, counter)` tie-break key and shards only advance inside
//! provably safe lookahead windows.

use abr_cluster::node::ClusterSpec;
use abr_cluster::program::ScriptProgram;
use abr_cluster::{DesDriver, Step};
use abr_core::{AbConfig, AbEngine};
use abr_des::{SimDuration, SimTime};
use abr_mpr::engine::{Engine, EngineConfig};
use abr_mpr::op::ReduceOp;
use abr_mpr::types::{f64s_to_bytes, Datatype};

/// A deterministic mixed workload: per-rank skewed compute, reductions to
/// rotating roots, broadcasts, and barriers. `seed` varies the skew
/// pattern, which varies which events collide in time.
fn programs(n: u32, seed: u64) -> Vec<ScriptProgram> {
    (0..n)
        .map(|rank| {
            let mut steps = Vec::new();
            let mut x = seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(rank as u64);
            for round in 0..3u32 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                let skew_us = (x >> 33) % 400;
                steps.push(Step::Busy(SimDuration::from_us(skew_us)));
                steps.push(Step::Reduce {
                    root: round % n,
                    op: ReduceOp::Sum,
                    dtype: Datatype::F64,
                    data: f64s_to_bytes(&[rank as f64 + 1.0, round as f64]),
                });
                steps.push(Step::Bcast {
                    root: 0,
                    data: (rank == 0).then(|| f64s_to_bytes(&[round as f64; 4]).into()),
                    len: 32,
                });
                steps.push(Step::Barrier);
            }
            ScriptProgram::new(steps)
        })
        .collect()
}

/// Everything a run can disagree on, in one comparable bundle.
fn fingerprint(
    d: &DesDriver<Engine, ScriptProgram>,
) -> (Vec<abr_cluster::driver::NodeResult>, u64, SimTime) {
    (d.results(), d.packets_delivered, d.now())
}

#[test]
fn sharded_runs_identical_across_shard_counts() {
    let n = 13u32; // odd: shards get unequal contiguous ranges
    for seed in [1u64, 0xDEAD_BEEF, 42] {
        let spec = ClusterSpec::heterogeneous(n);
        let run = |shards: usize| {
            let mut d = DesDriver::new(
                &spec,
                |r, ec: EngineConfig| Engine::new(r, n, ec),
                programs(n, seed),
            );
            d.run_sharded(shards);
            fingerprint(&d)
        };
        let one = run(1);
        let two = run(2);
        let eight = run(8);
        assert_eq!(one, two, "seed {seed:#x}: 1 vs 2 shards diverged");
        assert_eq!(one, eight, "seed {seed:#x}: 1 vs 8 shards diverged");
    }
}

#[test]
fn sharded_runs_identical_with_bypass_engine() {
    // The signal-driven bypass engine exercises preemption (StepDone
    // cancel/reschedule) and synthesized signals — the orderings most
    // sensitive to tie-breaking.
    let n = 12u32;
    let spec = ClusterSpec::heterogeneous(n);
    let run = |shards: usize| {
        let mut d = DesDriver::new(
            &spec,
            |r, ec: EngineConfig| AbEngine::new(r, n, ec, AbConfig::default()),
            programs(n, 7),
        );
        d.run_sharded(shards);
        (d.results(), d.packets_delivered, d.now())
    };
    let one = run(1);
    for shards in [2usize, 3, 8] {
        assert_eq!(one, run(shards), "{shards} shards diverged from 1");
    }
}

#[test]
fn sharded_executor_rejects_reuse() {
    let n = 4u32;
    let spec = ClusterSpec::homogeneous_1000(n);
    let mut d = DesDriver::new(
        &spec,
        |r, ec: EngineConfig| Engine::new(r, n, ec),
        programs(n, 1),
    );
    d.run_sharded(2);
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| d.run_sharded(2)));
    assert!(err.is_err(), "a second run must be rejected");
}

#[test]
fn shard_count_clamps_to_cluster_size() {
    let n = 3u32;
    let spec = ClusterSpec::homogeneous_1000(n);
    let mut d = DesDriver::new(
        &spec,
        |r, ec: EngineConfig| Engine::new(r, n, ec),
        programs(n, 2),
    );
    // More shards than ranks: clamps, still completes and matches.
    d.run_sharded(16);
    let mut d1 = DesDriver::new(
        &spec,
        |r, ec: EngineConfig| Engine::new(r, n, ec),
        programs(n, 2),
    );
    d1.run_sharded(1);
    assert_eq!(d.results(), d1.results());
}

/// Overflow regression at the 64k-rank target: one full binomial reduction
/// across 65,536 ranks. Exercises rank indices near u16::MAX through the
/// packet headers, the `(origin << 40)` key packing at the largest origin,
/// and the arena indexing — any u16/u32 truncation in the path corrupts
/// the tree and the run deadlocks or panics.
#[test]
fn reduce_completes_at_64k_ranks() {
    let n = 65_536u32;
    let spec = ClusterSpec::homogeneous_1000(n);
    let programs: Vec<ScriptProgram> = (0..n)
        .map(|rank| {
            ScriptProgram::new(vec![Step::Reduce {
                root: 0,
                op: ReduceOp::Sum,
                dtype: Datatype::F64,
                data: f64s_to_bytes(&[rank as f64]),
            }])
        })
        .collect();
    let mut d = DesDriver::new(&spec, |r, ec: EngineConfig| Engine::new(r, n, ec), programs);
    d.run_sharded(2);
    assert_eq!(
        d.packets_delivered, 65_535,
        "binomial reduce delivers exactly n-1 contributions"
    );
    assert!(d.now() > SimTime::ZERO);
}
