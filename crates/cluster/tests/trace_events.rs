//! Tracing-layer integration: the DES and live drivers must emit the same
//! ordered event skeleton for the same seed and fault plan, trace CPU
//! attribution must reconcile exactly with the driver's meters, and an
//! installed-but-absent tracer must not perturb simulation results.

use abr_cluster::microbench::{run_cpu_util, run_cpu_util_traced, CpuUtilConfig, Mode};
use abr_cluster::node::ClusterSpec;
use abr_cluster::program::{FnProgram, Program, Step, StepCtx};
use abr_cluster::{DesDriver, FaultPlan, RelConfig};
use abr_core::{AbConfig, AbEngine, DelayPolicy};
use abr_faults::{FaultKind, FaultRule, KindSel, LinkSel};
use abr_mpr::engine::EngineConfig;
use abr_mpr::op::ReduceOp;
use abr_mpr::topology::TopologyKind;
use abr_mpr::types::{f64s_to_bytes, Datatype};
use abr_trace::{cpu_attribution, RingRecorder, TraceClock, Tracer};
use std::sync::Arc;

/// One sum-reduction to root 0 under the DES with a tracer installed;
/// returns the trace's ordered send/recv skeleton.
fn des_skeleton(n: u32, topo: TopologyKind, plan: &FaultPlan) -> Vec<String> {
    let spec = ClusterSpec::homogeneous_1000(n).with_topology(topo);
    let programs: Vec<Box<dyn Program>> = (0..n)
        .map(|rank| {
            let mut done = false;
            Box::new(FnProgram(move |_ctx: &mut StepCtx| {
                if done {
                    return Step::Done;
                }
                done = true;
                Step::Reduce {
                    root: 0,
                    op: ReduceOp::Sum,
                    dtype: Datatype::F64,
                    data: f64s_to_bytes(&[rank as f64 + 1.0, 2.0]),
                }
            })) as Box<dyn Program>
        })
        .collect();
    let mut d = DesDriver::new(
        &spec,
        |r, ec: EngineConfig| AbEngine::new(r, n, ec, AbConfig::default()),
        programs,
    );
    let rec = RingRecorder::new(n, 1 << 14, TraceClock::Virtual, plan.seed, 0);
    d.install_tracer(Arc::clone(&rec) as Arc<dyn Tracer>);
    d.set_faults(plan, RelConfig::sim_default());
    d.run();
    rec.snapshot().skeleton()
}

/// The same reduction over real threads, wall-clock stamped.
fn live_skeleton(n: u32, topo: TopologyKind, plan: &FaultPlan) -> Vec<String> {
    let rec = RingRecorder::new(n, 1 << 14, TraceClock::Wall, plan.seed, 0);
    abr_cluster::live::run_live_traced(
        &ClusterSpec::homogeneous_1000(n).with_topology(topo),
        AbConfig::default(),
        plan,
        RelConfig::live_default(),
        Some(Arc::clone(&rec) as Arc<dyn Tracer>),
        |ctx| {
            let data = f64s_to_bytes(&[ctx.rank() as f64 + 1.0, 2.0]);
            ctx.reduce(0, ReduceOp::Sum, Datatype::F64, &data).unwrap()
        },
    );
    rec.snapshot().skeleton()
}

#[test]
fn des_and_live_emit_identical_skeleton_clean() {
    let n = 8;
    let plan = FaultPlan::none();
    let des = des_skeleton(n, TopologyKind::Binomial, &plan);
    let live = live_skeleton(n, TopologyKind::Binomial, &plan);
    assert_eq!(des, live, "clean-wire skeletons diverge");
    // Sanity: the skeleton is non-trivial — every rank but the root sends.
    assert_eq!(des.len(), n as usize);
    assert!(des[1].contains("send"), "rank 1 must send: {}", des[1]);
    assert!(des[0].contains("recv"), "root must receive: {}", des[0]);
}

#[test]
fn des_and_live_emit_identical_skeleton_under_faults() {
    let n = 8;
    // Duplicate the first packet on 1 -> 0 and delay the first on 2 -> 0:
    // deterministic (p = 1.0), lossless, so both drivers replay it exactly.
    let plan = FaultPlan {
        seed: 0xD1CE,
        rules: vec![
            FaultRule {
                link: LinkSel::Between(1, 0),
                kinds: KindSel::Any,
                window: None,
                attempt: Some(0),
                fault: FaultKind::Duplicate { p: 1.0 },
            },
            FaultRule {
                link: LinkSel::Between(2, 0),
                kinds: KindSel::Any,
                window: None,
                attempt: Some(0),
                fault: FaultKind::Delay {
                    p: 1.0,
                    extra_ns: 200_000,
                },
            },
        ],
    };
    let des = des_skeleton(n, TopologyKind::Binomial, &plan);
    let live = live_skeleton(n, TopologyKind::Binomial, &plan);
    assert_eq!(des, live, "faulted skeletons diverge");
    // The duplicate is suppressed by the reliability layer before the
    // engine, so it must NOT appear as a second recv from rank 1.
    assert_eq!(
        des,
        des_skeleton(n, TopologyKind::Binomial, &FaultPlan::none()),
        "lossless faults must not change the skeleton"
    );
}

#[test]
fn des_and_live_emit_identical_skeleton_chain_topology_under_faults() {
    let n = 8;
    // On a chain rooted at 0, rank r sends to r-1, so the only link into
    // the root is 1 -> 0; rank 2's traffic rides 2 -> 1. Duplicate the
    // first packet on 1 -> 0 and delay the first on 2 -> 1: deterministic
    // and lossless, so both drivers must replay the same skeleton.
    let plan = FaultPlan {
        seed: 0xD1CE,
        rules: vec![
            FaultRule {
                link: LinkSel::Between(1, 0),
                kinds: KindSel::Any,
                window: None,
                attempt: Some(0),
                fault: FaultKind::Duplicate { p: 1.0 },
            },
            FaultRule {
                link: LinkSel::Between(2, 1),
                kinds: KindSel::Any,
                window: None,
                attempt: Some(0),
                fault: FaultKind::Delay {
                    p: 1.0,
                    extra_ns: 200_000,
                },
            },
        ],
    };
    let des = des_skeleton(n, TopologyKind::Chain, &plan);
    let live = live_skeleton(n, TopologyKind::Chain, &plan);
    assert_eq!(des, live, "faulted chain skeletons diverge");
    assert_eq!(
        des,
        des_skeleton(n, TopologyKind::Chain, &FaultPlan::none()),
        "lossless faults must not change the chain skeleton"
    );
    // Sanity: the topology knob actually changed the traffic pattern.
    assert_ne!(
        des,
        des_skeleton(n, TopologyKind::Binomial, &FaultPlan::none()),
        "chain and binomial skeletons should differ"
    );
}

#[test]
fn trace_cpu_attribution_reconciles_with_meters() {
    let cfg = CpuUtilConfig {
        iters: 20,
        ..CpuUtilConfig::new(
            ClusterSpec::heterogeneous(8),
            Mode::Bypass(DelayPolicy::None),
        )
    };
    let rec = RingRecorder::new(8, 1 << 16, TraceClock::Virtual, cfg.seed, 0);
    let res = run_cpu_util_traced(&cfg, Some(Arc::clone(&rec) as Arc<dyn Tracer>));
    let trace = rec.snapshot();
    assert_eq!(trace.dropped, 0, "ring overflow would break reconciliation");
    let attr = cpu_attribution(&trace);
    assert_eq!(attr.per_rank.len(), 8);
    for (rank, rc) in attr.per_rank.iter().enumerate() {
        for (bucket, us) in [
            ("app", res.nodes[rank].cpu_app_us),
            ("poll", res.nodes[rank].cpu_poll_us),
            ("protocol", res.nodes[rank].cpu_protocol_us),
            ("signal", res.nodes[rank].cpu_signal_us),
            ("nic", res.nodes[rank].cpu_nic_us),
        ] {
            let traced_us = rc.bucket_ns(bucket) as f64 / 1000.0;
            assert!(
                (traced_us - us).abs() < 1e-6,
                "rank {rank} bucket {bucket}: trace {traced_us} us vs meter {us} us"
            );
        }
    }
}

/// Installing a tracer must be invisible to the simulation itself: every
/// result a run reports (virtual-time CPU, signals, engine counters,
/// percentiles) is identical with and without the recorder. Combined with
/// the existing sweep-determinism suite this pins the cost-neutrality
/// contract: `ABR_TRACE` unset changes nothing but wall-clock overhead.
#[test]
fn tracer_does_not_perturb_simulation_results() {
    let cfg = CpuUtilConfig {
        iters: 15,
        ..CpuUtilConfig::new(
            ClusterSpec::heterogeneous(8),
            Mode::Bypass(DelayPolicy::None),
        )
    };
    let plain = run_cpu_util(&cfg);
    let rec = RingRecorder::new(8, 1 << 16, TraceClock::Virtual, cfg.seed, 0);
    let traced = run_cpu_util_traced(&cfg, Some(Arc::clone(&rec) as Arc<dyn Tracer>));
    assert!(
        !rec.snapshot().is_empty(),
        "the traced run must record events"
    );
    let digest = |r: &abr_cluster::CpuUtilResult| {
        format!(
            "{:?} {:?} {} {} {:?} {:?} {:?} {:?} {:?}",
            r.mean_cpu_us,
            r.per_node_us,
            r.signals,
            r.signals_suppressed,
            r.counters,
            r.p50_us,
            r.p95_us,
            r.max_us,
            r.nic_us_total
        )
    };
    assert_eq!(digest(&plain), digest(&traced));
}
