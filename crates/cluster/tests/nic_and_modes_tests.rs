//! Tests for the NIC-offload extension and mode coverage under the
//! discrete-event driver.

use abr_cluster::microbench::{run_cpu_util, run_latency, CpuUtilConfig, LatencyConfig, Mode};
use abr_cluster::node::ClusterSpec;
use abr_cluster::program::{Program, Step, StepCtx};
use abr_cluster::DesDriver;
use abr_core::{AbConfig, AbEngine};
use abr_mpr::engine::EngineConfig;
use abr_mpr::op::ReduceOp;
use abr_mpr::types::{bytes_to_f64s, f64s_to_bytes, Datatype};

/// One reduce per rank, staggered by per-rank busy delays, recording the
/// root's result.
struct OneReduce {
    rank: u32,
    skew_us: u64,
    elems: usize,
    phase: u8,
}

impl Program for OneReduce {
    fn next(&mut self, ctx: &mut StepCtx) -> Step {
        match self.phase {
            0 => {
                self.phase = 1;
                Step::Busy(abr_des::SimDuration::from_us(self.skew_us))
            }
            1 => {
                self.phase = 2;
                Step::Reduce {
                    root: 0,
                    op: ReduceOp::Sum,
                    dtype: Datatype::F64,
                    data: f64s_to_bytes(&vec![self.rank as f64 + 1.0; self.elems]),
                }
            }
            2 => {
                if self.rank == 0 {
                    if let Some(d) = ctx.last_data.take() {
                        for v in bytes_to_f64s(&d) {
                            ctx.record("sum", v);
                        }
                    }
                }
                self.phase = 3;
                Step::Barrier
            }
            _ => Step::Done,
        }
    }
}

fn run_one_reduce(
    n: u32,
    config: AbConfig,
    elems: usize,
) -> (Vec<f64>, Vec<abr_cluster::driver::NodeResult>) {
    let spec = ClusterSpec::heterogeneous(n);
    let programs: Vec<Box<dyn Program>> = (0..n)
        .map(|rank| {
            Box::new(OneReduce {
                rank,
                skew_us: (rank as u64 * 83) % 400,
                elems,
                phase: 0,
            }) as Box<dyn Program>
        })
        .collect();
    let mut d = DesDriver::new(
        &spec,
        |r, ec: EngineConfig| AbEngine::new(r, n, ec, config.clone()),
        programs,
    );
    d.run();
    let results = d.results();
    let sums: Vec<f64> = results[0]
        .obs
        .iter()
        .filter(|o| o.key == "sum")
        .map(|o| o.value)
        .collect();
    (sums, results)
}

#[test]
fn nic_offload_computes_identical_results() {
    for n in [4u32, 8, 16] {
        let expect: f64 = (1..=n).map(f64::from).sum();
        let (plain, _) = run_one_reduce(n, AbConfig::default(), 3);
        let (nic, _) = run_one_reduce(n, AbConfig::nic_offload(), 3);
        assert_eq!(plain, vec![expect; 3], "plain ab n={n}");
        assert_eq!(nic, vec![expect; 3], "nic ab n={n}");
    }
}

#[test]
fn nic_offload_charges_the_nic_not_the_host() {
    let (_, results) = run_one_reduce(16, AbConfig::nic_offload(), 4);
    let nic_total: f64 = results.iter().map(|r| r.cpu_nic_us).sum();
    let signals: u64 = results.iter().map(|r| r.signals_raised).sum();
    assert!(nic_total > 0.0, "NIC meter must show the offloaded work");
    assert_eq!(signals, 0, "NIC offload must not signal the host");
    // Internal nodes still pay their synchronous call, but no handler time.
    let handler: f64 = results.iter().map(|r| r.cpu_signal_us).sum();
    assert_eq!(handler, 0.0);
}

#[test]
fn plain_bypass_uses_host_not_nic() {
    let (_, results) = run_one_reduce(16, AbConfig::default(), 4);
    let nic_total: f64 = results.iter().map(|r| r.cpu_nic_us).sum();
    assert_eq!(nic_total, 0.0);
}

#[test]
fn nic_mode_cuts_host_cpu_below_plain_bypass_under_skew() {
    let base = CpuUtilConfig {
        iters: 40,
        max_skew_us: 500,
        ..CpuUtilConfig::new(ClusterSpec::heterogeneous(16), Mode::Baseline)
    };
    let ab = run_cpu_util(&CpuUtilConfig {
        mode: Mode::Bypass(abr_core::DelayPolicy::None),
        ..base.clone()
    });
    let nic = run_cpu_util(&CpuUtilConfig {
        mode: Mode::NicBypass,
        ..base.clone()
    });
    assert!(
        nic.mean_cpu_us < ab.mean_cpu_us,
        "nic {:.1} should beat ab {:.1} on host CPU",
        nic.mean_cpu_us,
        ab.mean_cpu_us
    );
    assert_eq!(nic.signals, 0);
    assert!(nic.nic_us_total > 0.0);
}

#[test]
fn nic_latency_grows_with_message_size_faster_than_host_paths() {
    let lat = |elems, mode| {
        run_latency(&LatencyConfig {
            elems,
            iters: 25,
            ..LatencyConfig::new(ClusterSpec::heterogeneous(16), mode)
        })
        .mean_latency_us
    };
    let growth_nic = lat(256, Mode::NicBypass) / lat(1, Mode::NicBypass);
    let growth_ab = lat(256, Mode::Bypass(abr_core::DelayPolicy::None))
        / lat(1, Mode::Bypass(abr_core::DelayPolicy::None));
    assert!(
        growth_nic > growth_ab,
        "slow NIC arithmetic must show in the size scaling: {growth_nic:.2} vs {growth_ab:.2}"
    );
}

#[test]
fn all_modes_run_on_every_cluster_flavour() {
    for spec in [
        ClusterSpec::heterogeneous(8),
        ClusterSpec::homogeneous_700(8),
        ClusterSpec::homogeneous_1000(8),
    ] {
        for mode in [
            Mode::Baseline,
            Mode::Bypass(abr_core::DelayPolicy::Fixed { us: 30.0 }),
            Mode::SplitPhase,
            Mode::NicBypass,
        ] {
            let r = run_cpu_util(&CpuUtilConfig {
                iters: 8,
                ..CpuUtilConfig::new(spec.clone(), mode)
            });
            assert!(
                r.mean_cpu_us.is_finite() && r.mean_cpu_us >= 0.0,
                "{mode:?}"
            );
        }
    }
}
